// The bound-function registry and interpreter model.
//
// Pre-instantiated template combinations are registered under mangled names
// ("csr_apply_double_int32" — the paper's funcxx_int / funcxx_float scheme,
// §5.1).  The Pythonic front end (api.hpp) composes names from dtype
// strings at run time and calls through this registry, paying:
//
//   * the global interpreter lock,
//   * the name composition + hash lookup,
//   * argument boxing / unboxing,
//   * a modeled CPython dispatch constant (MGKO_SIM_PYCALL_NS, default
//     1.2 us — our C++ boxing is faster than a real interpreter frame).
//
// A CallProbe measures the *real* wall time of all of the above (total call
// wall time minus time spent inside actual kernel bodies) and ticks it onto
// the executor's SimClock: the binding overhead of Fig. 5b/5c is measured,
// not assumed.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bindings/boxed.hpp"
#include "core/executor.hpp"
#include "log/event_logger.hpp"

namespace mgko::bind {


/// The global interpreter lock of the simulated Python layer.
std::mutex& gil();

/// Modeled per-call interpreter cost [ns] (env MGKO_SIM_PYCALL_NS).
double interpreter_call_ns();


/// Attaches an event logger to the binding layer itself: every registry
/// call emits on_binding_call_completed with the measured GIL-wait /
/// lookup / boxing breakdown plus the modeled interpreter constant, making
/// the paper's Fig. 5b/5c overhead attributable per call at runtime.  With
/// no logger attached the dispatch path takes no extra clock reads.
void add_logger(std::shared_ptr<log::EventLogger> logger);
void remove_logger(const log::EventLogger* logger);
const std::vector<std::shared_ptr<log::EventLogger>>& get_loggers();


/// Measures host-side overhead of a bound call and charges it to the
/// executor: overhead = (wall time of scope) - (wall time spent inside
/// kernel bodies during the scope) + interpreter constant.  When binding
/// loggers are attached and a call name was given, the destructor also
/// emits the per-call breakdown event.
class CallProbe {
public:
    explicit CallProbe(std::shared_ptr<const Executor> exec,
                       const char* name = nullptr);
    ~CallProbe();

    CallProbe(const CallProbe&) = delete;
    CallProbe& operator=(const CallProbe&) = delete;

private:
    std::shared_ptr<const Executor> exec_;
    const char* name_;
    double wall_start_ns_;
    double kernel_wall_start_ns_;
};


using BoundFunction = std::function<Value(const List&)>;


class Module {
public:
    /// The singleton module, analogous to the pyGinkgoBindings extension
    /// module the paper describes.
    static Module& instance();

    /// Registers a bound function; duplicate names throw.
    void def(const std::string& name, BoundFunction fn);

    /// Looks up and invokes a bound function under the GIL.
    Value call(const std::string& name, const List& args) const;

    bool has(const std::string& name) const;

    /// All registered names (the dir() of the module).
    std::vector<std::string> names() const;

    size_type size() const
    {
        return static_cast<size_type>(functions_.size());
    }

private:
    Module() = default;
    std::unordered_map<std::string, BoundFunction> functions_;
};


/// Registers the full pre-instantiated binding surface (all value/index/
/// format combinations).  Idempotent; called lazily by the API layer.
void ensure_bindings_registered();


}  // namespace mgko::bind
