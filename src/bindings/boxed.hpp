// Boxed (dynamically typed) values — the "PyObject" of the binding layer.
//
// Every argument crossing the binding boundary is boxed into a Value and
// unboxed on the other side, reproducing the cost structure of pybind11
// argument conversion.  Framework objects (tensors, matrices, solvers,
// devices) travel as shared_ptr<Object> handles with a type-name tag, the
// equivalent of pybind11 holder types (paper §4.1: "pyGinkgo relies on
// pybind11's support for smart pointers, allowing Python to share ownership
// with C++ in a safe way").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/exception.hpp"
#include "core/types.hpp"

namespace mgko::bind {


/// Type-erased handle to a framework object.
class Object {
public:
    Object(std::string type_name, std::shared_ptr<void> payload)
        : type_name_{std::move(type_name)}, payload_{std::move(payload)}
    {}

    const std::string& type_name() const { return type_name_; }

    /// Recovers the typed payload; the caller asserts the type via the tag.
    template <typename T>
    std::shared_ptr<T> as(const std::string& expected) const
    {
        if (type_name_ != expected) {
            throw BadParameter(__FILE__, __LINE__,
                               "object of type '" + type_name_ +
                                   "' where '" + expected + "' expected");
        }
        return std::static_pointer_cast<T>(payload_);
    }

private:
    std::string type_name_;
    std::shared_ptr<void> payload_;
};


struct Value;
using List = std::vector<Value>;
/// Dict preserves insertion order like Python 3.7+ dicts.
using Dict = std::vector<std::pair<std::string, Value>>;


struct Value {
    std::variant<std::monostate, bool, std::int64_t, double, std::string,
                 std::shared_ptr<Object>, List, Dict>
        data;

    Value() = default;
    Value(bool b) : data{b} {}
    Value(int i) : data{static_cast<std::int64_t>(i)} {}
    Value(std::int64_t i) : data{i} {}
    Value(double d) : data{d} {}
    Value(const char* s) : data{std::string{s}} {}
    Value(std::string s) : data{std::move(s)} {}
    Value(std::shared_ptr<Object> o) : data{std::move(o)} {}
    Value(List l) : data{std::move(l)} {}
    Value(Dict d) : data{std::move(d)} {}

    bool is_none() const
    {
        return std::holds_alternative<std::monostate>(data);
    }

    bool as_bool() const { return expect<bool>("bool"); }
    std::int64_t as_int() const { return expect<std::int64_t>("int"); }
    double as_double() const
    {
        if (std::holds_alternative<std::int64_t>(data)) {
            return static_cast<double>(std::get<std::int64_t>(data));
        }
        return expect<double>("float");
    }
    const std::string& as_string() const
    {
        return expect<std::string>("str");
    }
    const List& as_list() const { return expect<List>("list"); }
    const Dict& as_dict() const { return expect<Dict>("dict"); }

    const std::shared_ptr<Object>& as_object() const
    {
        return expect<std::shared_ptr<Object>>("object");
    }

    /// Unbox a framework handle of the given tag.
    template <typename T>
    std::shared_ptr<T> as(const std::string& type_name) const
    {
        return as_object()->as<T>(type_name);
    }

private:
    template <typename T>
    const T& expect(const char* what) const
    {
        if (!std::holds_alternative<T>(data)) {
            throw BadParameter(__FILE__, __LINE__,
                               std::string{"boxed value is not "} + what);
        }
        return std::get<T>(data);
    }
};


/// Boxes a framework object under a type tag.  Constness is erased inside
/// the box (like Python's lack of const); `as<const T>` restores it.
template <typename T>
Value box(const std::string& type_name, std::shared_ptr<T> payload)
{
    auto mutable_payload =
        std::const_pointer_cast<std::remove_const_t<T>>(std::move(payload));
    return Value{std::make_shared<Object>(
        type_name,
        std::static_pointer_cast<void>(std::move(mutable_payload)))};
}


}  // namespace mgko::bind
