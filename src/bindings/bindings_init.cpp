// Registration of the pre-instantiated binding surface.
//
// This is the moral equivalent of the PYBIND11_MODULE block: every
// value-type x index-type x format combination of every bound operation is
// instantiated here and registered under its mangled name (paper §5.1 —
// "pre-instantiation of all possible template parameter combinations that
// the Python side might require").
#include <fcntl.h>
#include <unistd.h>

#include <mutex>

#include "batch/batch_bicgstab.hpp"
#include "batch/batch_cg.hpp"
#include "batch/batch_csr.hpp"
#include "batch/batch_dense.hpp"
#include "batch/batch_jacobi.hpp"
#include "bindings/registry.hpp"
#include "config/config_solver.hpp"
#include "core/dispatch.hpp"
#include "core/mtx_io.hpp"
#include "log/flight_recorder.hpp"
#include "log/hw_counters.hpp"
#include "log/metrics.hpp"
#include "log/sampling_profiler.hpp"
#include "log/trace.hpp"
#include "matrix/convolution.hpp"
#include "serve/solve_server.hpp"
#include "serve/telemetry_server.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"
#include "matrix/ell.hpp"
#include "matrix/hybrid.hpp"
#include "matrix/sellcs.hpp"
#include "matrix/spgemm.hpp"
#include "multigrid/amg_solver.hpp"
#include "reorder/reorder.hpp"
#include "solver/direct.hpp"
#include "preconditioner/ilu.hpp"
#include "preconditioner/jacobi.hpp"
#include "solver/bicgstab.hpp"
#include "solver/cg.hpp"
#include "solver/cgs.hpp"
#include "solver/fcg.hpp"
#include "solver/gmres.hpp"
#include "solver/solver_base.hpp"
#include "solver/triangular.hpp"
#include "stop/criterion.hpp"

namespace mgko::bind {

namespace {

std::shared_ptr<Executor> unbox_device(const Value& v)
{
    return v.as<Executor>("device");
}

std::shared_ptr<LinOp> unbox_linop(const Value& v, const char* tag)
{
    return v.as<LinOp>(tag);
}

template <typename V>
std::shared_ptr<Dense<V>> unbox_tensor(const Value& v)
{
    auto op = unbox_linop(v, "tensor");
    auto dense = std::dynamic_pointer_cast<Dense<V>>(op);
    if (!dense) {
        throw BadParameter(__FILE__, __LINE__,
                           "tensor has a different dtype than the bound "
                           "function expects");
    }
    return dense;
}

template <typename Mat>
std::shared_ptr<Mat> unbox_matrix(const Value& v)
{
    auto op = unbox_linop(v, "matrix");
    auto mat = std::dynamic_pointer_cast<Mat>(op);
    if (!mat) {
        throw BadParameter(__FILE__, __LINE__,
                           "matrix has a different format/dtype than the "
                           "bound function expects");
    }
    return mat;
}

Value box_linop(const char* tag, std::shared_ptr<LinOp> op)
{
    return box(tag, std::move(op));
}

std::string suffix(dtype v)
{
    return "_" + to_string(v);
}

std::string suffix(dtype v, itype i)
{
    return "_" + to_string(v) + "_" + to_string(i);
}


// --- tensor bindings (per value type) --------------------------------------

template <typename V>
void register_tensor_bindings(Module& m)
{
    const auto s = suffix(dtype_of<V>::value);

    m.def("tensor_create" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        const auto rows = args.at(1).as_int();
        const auto cols = args.at(2).as_int();
        const auto fill = args.at(3).as_double();
        auto tensor = Dense<V>::create_filled(exec, dim2{rows, cols},
                                              static_cast<V>(fill));
        return box_linop("tensor", std::shared_ptr<LinOp>{std::move(tensor)});
    });

    m.def("tensor_from_host" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        auto host = args.at(1).as<const std::vector<double>>("host_f64");
        const auto rows = args.at(2).as_int();
        const auto cols = args.at(3).as_int();
        MGKO_ENSURE(static_cast<size_type>(host->size()) >= rows * cols,
                    "host buffer smaller than requested tensor");
        auto tensor = Dense<V>::create(exec, dim2{rows, cols});
        for (size_type r = 0; r < rows; ++r) {
            for (size_type c = 0; c < cols; ++c) {
                tensor->at(r, c) = static_cast<V>(
                    (*host)[static_cast<std::size_t>(r * cols + c)]);
            }
        }
        exec->charge_copy(nullptr, rows * cols *
                                       static_cast<size_type>(sizeof(V)));
        return box_linop("tensor", std::shared_ptr<LinOp>{std::move(tensor)});
    });

    m.def("tensor_view" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        auto* data = reinterpret_cast<V*>(
            static_cast<std::uintptr_t>(args.at(1).as_int()));
        const auto rows = args.at(2).as_int();
        const auto cols = args.at(3).as_int();
        auto tensor = Dense<V>::create_view(exec, dim2{rows, cols}, data);
        return box_linop("tensor", std::shared_ptr<LinOp>{std::move(tensor)});
    });

    m.def("tensor_item" + s, [](const List& args) -> Value {
        auto t = unbox_tensor<V>(args.at(0));
        return Value{to_float(t->at(args.at(1).as_int(),
                                    args.at(2).as_int())) +
                     0.0};
    });

    m.def("tensor_set_item" + s, [](const List& args) -> Value {
        auto t = unbox_tensor<V>(args.at(0));
        t->at(args.at(1).as_int(), args.at(2).as_int()) =
            static_cast<V>(args.at(3).as_double());
        return {};
    });

    m.def("tensor_fill" + s, [](const List& args) -> Value {
        unbox_tensor<V>(args.at(0))
            ->fill(static_cast<V>(args.at(1).as_double()));
        return {};
    });

    m.def("tensor_norm" + s, [](const List& args) -> Value {
        // Frobenius norm: combine the per-column norms.
        auto t = unbox_tensor<V>(args.at(0));
        auto norms = Dense<V>::create(t->get_executor(),
                                      dim2{1, t->get_size().cols});
        t->compute_norm2(norms.get());
        double acc = 0.0;
        for (size_type c = 0; c < t->get_size().cols; ++c) {
            const double v = to_float(norms->at(0, c));
            acc += v * v;
        }
        return Value{std::sqrt(acc)};
    });

    m.def("tensor_dot" + s, [](const List& args) -> Value {
        // Frobenius inner product: sum of per-column dots.
        auto a = unbox_tensor<V>(args.at(0));
        auto b = unbox_tensor<V>(args.at(1));
        auto dots = Dense<V>::create(a->get_executor(),
                                     dim2{1, a->get_size().cols});
        a->compute_dot(b.get(), dots.get());
        double acc = 0.0;
        for (size_type c = 0; c < a->get_size().cols; ++c) {
            acc += to_float(dots->at(0, c));
        }
        return Value{acc};
    });

    m.def("tensor_add_scaled" + s, [](const List& args) -> Value {
        auto x = unbox_tensor<V>(args.at(0));
        auto alpha = Dense<V>::create(x->get_executor(), dim2{1, 1});
        alpha->get_values()[0] = static_cast<V>(args.at(1).as_double());
        x->add_scaled(alpha.get(), unbox_tensor<V>(args.at(2)).get());
        return {};
    });

    m.def("tensor_scale" + s, [](const List& args) -> Value {
        auto x = unbox_tensor<V>(args.at(0));
        auto alpha = Dense<V>::create(x->get_executor(), dim2{1, 1});
        alpha->get_values()[0] = static_cast<V>(args.at(1).as_double());
        x->scale(alpha.get());
        return {};
    });

    m.def("tensor_matmul" + s, [](const List& args) -> Value {
        auto a = unbox_tensor<V>(args.at(0));
        auto b = unbox_tensor<V>(args.at(1));
        auto x = Dense<V>::create(
            a->get_executor(),
            dim2{a->get_size().rows, b->get_size().cols});
        a->apply(b.get(), x.get());
        return box_linop("tensor", std::shared_ptr<LinOp>{std::move(x)});
    });

    m.def("tensor_t_matmul" + s, [](const List& args) -> Value {
        auto a = unbox_tensor<V>(args.at(0));
        auto b = unbox_tensor<V>(args.at(1));
        auto x = Dense<V>::create(
            a->get_executor(),
            dim2{a->get_size().cols, b->get_size().cols});
        a->transpose_apply(b.get(), x.get());
        return box_linop("tensor", std::shared_ptr<LinOp>{std::move(x)});
    });

    m.def("tensor_clone" + s, [](const List& args) -> Value {
        return box_linop("tensor", std::shared_ptr<LinOp>{
                                       unbox_tensor<V>(args.at(0))->clone()});
    });

    m.def("tensor_to_device" + s, [](const List& args) -> Value {
        auto t = unbox_tensor<V>(args.at(0));
        auto exec = unbox_device(args.at(1));
        return box_linop("tensor",
                         std::shared_ptr<LinOp>{t->clone_to(std::move(exec))});
    });

    m.def("tensor_export" + s, [](const List& args) -> Value {
        auto t = unbox_tensor<V>(args.at(0));
        auto host = std::make_shared<std::vector<double>>();
        host->reserve(static_cast<std::size_t>(t->get_size().area()));
        for (size_type r = 0; r < t->get_size().rows; ++r) {
            for (size_type c = 0; c < t->get_size().cols; ++c) {
                host->push_back(to_float(t->at(r, c)));
            }
        }
        return box("host_f64", std::shared_ptr<const std::vector<double>>{
                                   std::move(host)});
    });

    m.def("conv2d_create" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        const auto height = args.at(1).as_int();
        const auto width = args.at(2).as_int();
        std::vector<double> kernel;
        for (const auto& v : args.at(3).as_list()) {
            kernel.push_back(v.as_double());
        }
        return box_linop("conv",
                         std::shared_ptr<LinOp>{Convolution<V>::create(
                             std::move(exec), height, width, kernel)});
    });

    m.def("conv2d_apply" + s, [](const List& args) -> Value {
        auto conv = unbox_linop(args.at(0), "conv");
        auto b = unbox_tensor<V>(args.at(1));
        auto x = unbox_tensor<V>(args.at(2));
        conv->apply(b.get(), x.get());
        return {};
    });

    m.def("solver_apply" + s, [](const List& args) -> Value {
        auto solver = unbox_linop(args.at(0), "solver");
        auto b = unbox_tensor<V>(args.at(1));
        auto x = unbox_tensor<V>(args.at(2));
        solver->apply(b.get(), x.get());
        auto iterative =
            std::dynamic_pointer_cast<mgko::solver::IterativeSolver<V>>(
                solver);
        if (!iterative) {
            // A config "reorder" key wraps the solver; the logger lives on
            // the inner operator running in the permuted space.
            if (auto reordered =
                    std::dynamic_pointer_cast<mgko::reorder::ReorderedOperator>(
                        solver)) {
                iterative = std::dynamic_pointer_cast<
                    mgko::solver::IterativeSolver<V>>(
                    reordered->inner_operator());
            }
        }
        if (iterative) {
            return box("logger",
                       std::shared_ptr<const log::ConvergenceLogger>{
                           iterative->get_logger()});
        }
        return {};
    });
}


// --- matrix / solver / preconditioner bindings (per value x index type) ----

template <typename V, typename I>
void register_matrix_bindings(Module& m)
{
    const auto s = suffix(dtype_of<V>::value, itype_of<I>::value);

    auto box_matrix = [](std::shared_ptr<LinOp> op, size_type nnz) -> Value {
        List result;
        result.emplace_back(box_linop("matrix", std::move(op)));
        result.emplace_back(nnz);
        return Value{std::move(result)};
    };

    auto register_format = [&](const std::string& fmt, auto format_token) {
        using Mat = typename decltype(format_token)::type;
        m.def("matrix_read_" + fmt + s, [box_matrix](const List& args) -> Value {
            auto exec = unbox_device(args.at(0));
            auto data = read_mtx(args.at(1).as_string());
            auto mat = Mat::create_from_data(
                std::move(exec), data.template cast<V, I>());
            const auto nnz = mat->get_num_stored_elements();
            return box_matrix(std::shared_ptr<LinOp>{std::move(mat)}, nnz);
        });

        m.def("matrix_from_data_" + fmt + s,
              [box_matrix](const List& args) -> Value {
                  auto exec = unbox_device(args.at(0));
                  auto data = args.at(1).as<const matrix_data<double, int64>>(
                      "matrix_data");
                  auto mat = Mat::create_from_data(
                      std::move(exec), data->template cast<V, I>());
                  const auto nnz = mat->get_num_stored_elements();
                  return box_matrix(std::shared_ptr<LinOp>{std::move(mat)},
                                    nnz);
              });

        m.def("matrix_apply_" + fmt + s, [](const List& args) -> Value {
            auto mat = unbox_matrix<Mat>(args.at(0));
            auto b = unbox_tensor<V>(args.at(1));
            auto x = unbox_tensor<V>(args.at(2));
            mat->apply(b.get(), x.get());
            return {};
        });
    };
    register_format("csr", type_token<Csr<V, I>>{});
    register_format("coo", type_token<Coo<V, I>>{});
    register_format("ell", type_token<Ell<V, I>>{});
    register_format("hybrid", type_token<Hybrid<V, I>>{});
    register_format("sellcs", type_token<SellCs<V, I>>{});

    // Format conversions (through the staging representation for the
    // non-CSR pairs; CSR owns direct paths).
    m.def("matrix_convert_csr_to_coo" + s,
          [box_matrix](const List& args) -> Value {
              auto src = unbox_matrix<Csr<V, I>>(args.at(0));
              auto dst = Coo<V, I>::create(src->get_executor());
              src->convert_to(dst.get());
              const auto nnz = dst->get_num_stored_elements();
              return box_matrix(std::shared_ptr<LinOp>{std::move(dst)}, nnz);
          });
    m.def("matrix_convert_csr_to_ell" + s,
          [box_matrix](const List& args) -> Value {
              auto src = unbox_matrix<Csr<V, I>>(args.at(0));
              auto dst = Ell<V, I>::create(src->get_executor());
              src->convert_to(dst.get());
              const auto nnz = dst->get_num_stored_elements();
              return box_matrix(std::shared_ptr<LinOp>{std::move(dst)}, nnz);
          });
    m.def("matrix_convert_coo_to_csr" + s,
          [box_matrix](const List& args) -> Value {
              auto src = unbox_matrix<Coo<V, I>>(args.at(0));
              auto dst = Csr<V, I>::create(src->get_executor());
              src->convert_to(dst.get());
              const auto nnz = dst->get_num_stored_elements();
              return box_matrix(std::shared_ptr<LinOp>{std::move(dst)}, nnz);
          });
    m.def("matrix_convert_ell_to_csr" + s,
          [box_matrix](const List& args) -> Value {
              auto src = unbox_matrix<Ell<V, I>>(args.at(0));
              auto dst = Csr<V, I>::create(src->get_executor());
              src->convert_to(dst.get());
              const auto nnz = dst->get_num_stored_elements();
              return box_matrix(std::shared_ptr<LinOp>{std::move(dst)}, nnz);
          });
    m.def("matrix_convert_csr_to_hybrid" + s,
          [box_matrix](const List& args) -> Value {
              auto src = unbox_matrix<Csr<V, I>>(args.at(0));
              auto dst = Hybrid<V, I>::create_from_data(src->get_executor(),
                                                        src->to_data());
              const auto nnz = dst->get_num_stored_elements();
              return box_matrix(std::shared_ptr<LinOp>{std::move(dst)}, nnz);
          });
    m.def("matrix_convert_hybrid_to_csr" + s,
          [box_matrix](const List& args) -> Value {
              auto src = unbox_matrix<Hybrid<V, I>>(args.at(0));
              auto dst = Csr<V, I>::create(src->get_executor());
              src->convert_to(dst.get());
              const auto nnz = dst->get_num_stored_elements();
              return box_matrix(std::shared_ptr<LinOp>{std::move(dst)}, nnz);
          });
    m.def("matrix_convert_csr_to_sellcs" + s,
          [box_matrix](const List& args) -> Value {
              auto src = unbox_matrix<Csr<V, I>>(args.at(0));
              auto dst = SellCs<V, I>::create(src->get_executor());
              src->convert_to(dst.get());
              const auto nnz = dst->get_num_stored_elements();
              return box_matrix(std::shared_ptr<LinOp>{std::move(dst)}, nnz);
          });
    m.def("matrix_convert_sellcs_to_csr" + s,
          [box_matrix](const List& args) -> Value {
              auto src = unbox_matrix<SellCs<V, I>>(args.at(0));
              auto dst = Csr<V, I>::create(src->get_executor());
              src->convert_to(dst.get());
              const auto nnz = dst->get_num_stored_elements();
              return box_matrix(std::shared_ptr<LinOp>{std::move(dst)}, nnz);
          });

    // Preconditioners (Figure 2: IC and ILU bound explicitly + Jacobi).
    m.def("precond_ilu" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        auto mat = unbox_matrix<Csr<V, I>>(args.at(1));
        return box("precond", std::shared_ptr<const LinOp>{
                                  mgko::preconditioner::Ilu<V, I>::create(
                                      std::move(exec), std::move(mat))});
    });
    m.def("precond_ic" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        auto mat = unbox_matrix<Csr<V, I>>(args.at(1));
        return box("precond", std::shared_ptr<const LinOp>{
                                  mgko::preconditioner::Ic<V, I>::create(
                                      std::move(exec), std::move(mat))});
    });
    m.def("precond_jacobi" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        auto mat = unbox_matrix<Csr<V, I>>(args.at(1));
        auto factory = mgko::preconditioner::Jacobi<V, I>::build()
                           .with_max_block_size(args.at(2).as_int())
                           .on(std::move(exec));
        return box("precond",
                   std::shared_ptr<const LinOp>{factory->generate(mat)});
    });
    // args: device, matrix, theta, max_levels, min_coarse_rows, smoother,
    //       cycles
    m.def("precond_amg" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        auto mat = unbox_matrix<Csr<V, I>>(args.at(1));
        auto factory =
            mgko::multigrid::AmgPreconditioner<V, I>::build()
                .with_theta(args.at(2).as_double())
                .with_max_levels(args.at(3).as_int())
                .with_min_coarse_rows(args.at(4).as_int())
                .with_smoother(mgko::multigrid::smoother_from_string(
                    args.at(5).as_string()))
                .with_cycles(args.at(6).as_int())
                .on(std::move(exec));
        return box("precond",
                   std::shared_ptr<const LinOp>{factory->generate(mat)});
    });

    // Direct solver bindings.
    auto make_criteria = [](const List& args, std::size_t max_iters_idx,
                            std::size_t reduction_idx) {
        std::vector<std::shared_ptr<const stop::CriterionFactory>> criteria;
        criteria.push_back(
            stop::iteration(args.at(max_iters_idx).as_int()));
        criteria.push_back(
            stop::residual_norm(args.at(reduction_idx).as_double()));
        return criteria;
    };
    auto maybe_precond = [](const Value& v) -> std::shared_ptr<const LinOp> {
        if (v.is_none()) {
            return nullptr;
        }
        return v.as<const LinOp>("precond");
    };

    // args: device, matrix, precond|none, max_iters, krylov_dim, reduction
    m.def("solver_gmres" + s, [=](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        auto mat = unbox_matrix<Csr<V, I>>(args.at(1));
        auto builder = mgko::solver::Gmres<V>::build();
        for (auto& c : make_criteria(args, 3, 5)) {
            builder.with_criteria(c);
        }
        builder.with_krylov_dim(args.at(4).as_int());
        if (auto p = maybe_precond(args.at(2))) {
            builder.with_generated_preconditioner(p);
        }
        return box_linop("solver", builder.on(std::move(exec))->generate(mat));
    });

    auto register_krylov = [&](const std::string& name, auto solver_token) {
        using SolverT = typename decltype(solver_token)::type;
        // args: device, matrix, precond|none, max_iters, reduction
        m.def("solver_" + name + s, [=](const List& args) -> Value {
            auto exec = unbox_device(args.at(0));
            auto mat = unbox_matrix<Csr<V, I>>(args.at(1));
            auto builder = SolverT::build();
            for (auto& c : make_criteria(args, 3, 4)) {
                builder.with_criteria(c);
            }
            if (auto p = maybe_precond(args.at(2))) {
                builder.with_generated_preconditioner(p);
            }
            return box_linop("solver",
                             builder.on(std::move(exec))->generate(mat));
        });
    };
    register_krylov("cg", type_token<mgko::solver::Cg<V>>{});
    register_krylov("cgs", type_token<mgko::solver::Cgs<V>>{});
    register_krylov("bicgstab", type_token<mgko::solver::Bicgstab<V>>{});
    register_krylov("fcg", type_token<mgko::solver::Fcg<V>>{});

    // Standalone AMG V-cycle solver.
    // args: device, matrix, max_iters, reduction, theta, smoother
    m.def("solver_amg" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        auto mat = unbox_matrix<Csr<V, I>>(args.at(1));
        auto factory =
            mgko::multigrid::AmgSolver<V, I>::build()
                .with_criteria(stop::iteration(args.at(2).as_int()))
                .with_criteria(
                    stop::residual_norm(args.at(3).as_double()))
                .with_theta(args.at(4).as_double())
                .with_smoother(mgko::multigrid::smoother_from_string(
                    args.at(5).as_string()))
                .on(std::move(exec));
        return box_linop("solver", factory->generate(mat));
    });

    // C = A @ B (sparse matrix product; §1 names it next to SpMV as a
    // core sparse-ML operation).
    m.def("matrix_spgemm" + s, [box_matrix](const List& args) -> Value {
        auto a = unbox_matrix<Csr<V, I>>(args.at(0));
        auto b = unbox_matrix<Csr<V, I>>(args.at(1));
        auto c = mgko::spgemm(a.get(), b.get());
        const auto nnz = c->get_num_stored_elements();
        return box_matrix(std::shared_ptr<LinOp>{std::move(c)}, nnz);
    });

    m.def("solver_direct" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        auto mat = unbox_matrix<Csr<V, I>>(args.at(1));
        return box_linop("solver",
                         mgko::solver::Direct<V, I>::build_on(std::move(exec))
                             ->generate(mat));
    });

    m.def("solver_lower_trs" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        auto mat = unbox_matrix<Csr<V, I>>(args.at(1));
        return box_linop("solver",
                         mgko::solver::LowerTrs<V, I>::build()
                             .with_unit_diagonal(args.at(2).as_bool())
                             .on(std::move(exec))
                             ->generate(mat));
    });
    m.def("solver_upper_trs" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        auto mat = unbox_matrix<Csr<V, I>>(args.at(1));
        return box_linop("solver",
                         mgko::solver::UpperTrs<V, I>::build()
                             .with_unit_diagonal(args.at(2).as_bool())
                             .on(std::move(exec))
                             ->generate(mat));
    });

    // The generic config-solver entry point (paper §5): the Python dict has
    // already been serialized to JSON by the front end.
    m.def("config_solver" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        auto mat = unbox_matrix<Csr<V, I>>(args.at(1));
        auto json = args.at(2).as<const config::Json>("json");
        return box_linop(
            "solver",
            config::parse_factory(*json, std::move(exec))->generate(mat));
    });
}


// --- batched bindings (paper §5.1 applied to mgko::batch) ------------------
//
// The batched surface follows the same pre-instantiation scheme as the
// single-system one: every value-type (x index-type) combination of every
// batched operation is registered under its mangled name, so a string
// lookup reaches a fully typed batched solver without any template
// machinery on the caller's side.

std::shared_ptr<batch::BatchLinOp> unbox_batch_op(const Value& v,
                                                  const char* tag)
{
    return v.as<batch::BatchLinOp>(tag);
}

template <typename V>
std::shared_ptr<batch::Dense<V>> unbox_batch_tensor(const Value& v)
{
    auto op = unbox_batch_op(v, "batch_tensor");
    auto dense = std::dynamic_pointer_cast<batch::Dense<V>>(op);
    if (!dense) {
        throw BadParameter(__FILE__, __LINE__,
                           "batch tensor has a different dtype than the "
                           "bound function expects");
    }
    return dense;
}

/// Per-system diagnostics of a batched solve, exported as a list of dicts —
/// the shape a Python caller would iterate over.
Value export_batch_log(const batch::BatchConvergenceLogger& log)
{
    List systems;
    for (size_type s = 0; s < log.num_systems(); ++s) {
        Dict entry;
        entry.emplace_back("iterations",
                           Value{static_cast<std::int64_t>(
                               log.num_iterations(s))});
        entry.emplace_back("residual_norm",
                           Value{log.final_residual_norm(s)});
        entry.emplace_back("converged", Value{log.has_converged(s)});
        entry.emplace_back("reason", Value{log.stop_reason(s)});
        systems.emplace_back(Dict{std::move(entry)});
    }
    return Value{std::move(systems)};
}

template <typename V>
void register_batch_tensor_bindings(Module& m)
{
    const auto s = suffix(dtype_of<V>::value);

    // args: device, num_systems, rows, cols, fill
    m.def("batch_tensor_create" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        const auto num = args.at(1).as_int();
        const auto rows = args.at(2).as_int();
        const auto cols = args.at(3).as_int();
        auto tensor = batch::Dense<V>::create_filled(
            exec,
            batch::batch_dim{static_cast<size_type>(num), dim2{rows, cols}},
            static_cast<V>(args.at(4).as_double()));
        return box("batch_tensor",
                   std::shared_ptr<batch::BatchLinOp>{std::move(tensor)});
    });

    m.def("batch_tensor_item" + s, [](const List& args) -> Value {
        auto t = unbox_batch_tensor<V>(args.at(0));
        return Value{to_float(t->at(args.at(1).as_int(), args.at(2).as_int(),
                                    args.at(3).as_int())) +
                     0.0};
    });

    m.def("batch_tensor_set_item" + s, [](const List& args) -> Value {
        auto t = unbox_batch_tensor<V>(args.at(0));
        t->at(args.at(1).as_int(), args.at(2).as_int(), args.at(3).as_int()) =
            static_cast<V>(args.at(4).as_double());
        return {};
    });

    m.def("batch_tensor_fill" + s, [](const List& args) -> Value {
        unbox_batch_tensor<V>(args.at(0))
            ->fill(static_cast<V>(args.at(1).as_double()));
        return {};
    });

    // args: solver, b, x — advances every system of the batch and returns
    // the per-system convergence records.
    m.def("batch_solver_apply" + s, [](const List& args) -> Value {
        auto solver = unbox_batch_op(args.at(0), "batch_solver");
        auto b = unbox_batch_tensor<V>(args.at(1));
        auto x = unbox_batch_tensor<V>(args.at(2));
        solver->apply(b.get(), x.get());
        if (auto iterative =
                std::dynamic_pointer_cast<batch::BatchIterativeSolver<V>>(
                    solver)) {
            return export_batch_log(*iterative->get_batch_logger());
        }
        return {};
    });
}

template <typename V, typename I>
void register_batch_matrix_bindings(Module& m)
{
    const auto s = suffix(dtype_of<V>::value, itype_of<I>::value);

    // args: device, num_systems, matrix_data — shared pattern, values
    // duplicated across the batch (edited per system afterwards).
    m.def("batch_csr_from_data" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        const auto num = static_cast<size_type>(args.at(1).as_int());
        auto data =
            args.at(2).as<const matrix_data<double, int64>>("matrix_data");
        auto mat = batch::Csr<V, I>::create_duplicate(
            std::move(exec), num, data->template cast<V, I>());
        const auto nnz = mat->get_num_stored_elements_per_system();
        List result;
        result.emplace_back(
            box("batch_matrix",
                std::shared_ptr<batch::BatchLinOp>{std::move(mat)}));
        result.emplace_back(static_cast<std::int64_t>(nnz));
        return Value{std::move(result)};
    });

    // args: matrix, sys, row, col, value — per-system coefficient edit on
    // the shared pattern (entries absent from the pattern throw).
    m.def("batch_csr_set_entry" + s, [](const List& args) -> Value {
        auto op = unbox_batch_op(args.at(0), "batch_matrix");
        auto mat = std::dynamic_pointer_cast<batch::Csr<V, I>>(op);
        if (!mat) {
            throw BadParameter(__FILE__, __LINE__,
                               "batch matrix has a different format/dtype "
                               "than the bound function expects");
        }
        const auto sys = static_cast<size_type>(args.at(1).as_int());
        const auto row = args.at(2).as_int();
        const auto col = static_cast<I>(args.at(3).as_int());
        const auto* row_ptrs = mat->get_const_row_ptrs();
        const auto* col_idxs = mat->get_const_col_idxs();
        MGKO_ENSURE(row >= 0 &&
                        row < static_cast<std::int64_t>(
                                  mat->get_common_size().rows),
                    "row index out of range");
        for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            if (col_idxs[k] == col) {
                mat->system_values(sys)[k] =
                    static_cast<V>(args.at(4).as_double());
                return {};
            }
        }
        throw BadParameter(__FILE__, __LINE__,
                           "entry is not part of the shared sparsity "
                           "pattern of the batched CSR matrix");
    });

    // args: matrix, b, x — one batched SpMV launch across all systems.
    m.def("batch_matrix_apply" + s, [](const List& args) -> Value {
        auto mat = unbox_batch_op(args.at(0), "batch_matrix");
        auto b = unbox_batch_tensor<V>(args.at(1));
        auto x = unbox_batch_tensor<V>(args.at(2));
        mat->apply(b.get(), x.get());
        return {};
    });

    // args: device — the batched scalar-Jacobi factory (generated against
    // the system inside the solver builder).
    m.def("batch_precond_jacobi" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        return box("batch_precond",
                   std::shared_ptr<const batch::BatchLinOpFactory>{
                       batch::Jacobi<V>::build().on(std::move(exec))});
    });

    auto register_batch_krylov = [&](const std::string& name,
                                     auto solver_token) {
        using SolverT = typename decltype(solver_token)::type;
        // args: device, matrix, precond|none, max_iters, reduction
        m.def("batch_solver_" + name + s, [](const List& args) -> Value {
            auto exec = unbox_device(args.at(0));
            auto mat = unbox_batch_op(args.at(1), "batch_matrix");
            auto builder = SolverT::build();
            builder.with_criteria(stop::iteration(args.at(3).as_int()));
            builder.with_criteria(
                stop::residual_norm(args.at(4).as_double()));
            if (!args.at(2).is_none()) {
                builder.with_preconditioner(
                    args.at(2).as<const batch::BatchLinOpFactory>(
                        "batch_precond"));
            }
            return box("batch_solver",
                       std::shared_ptr<batch::BatchLinOp>{
                           builder.on(std::move(exec))->generate(mat)});
        });
    };
    register_batch_krylov("cg", type_token<batch::Cg<V>>{});
    register_batch_krylov("bicgstab", type_token<batch::Bicgstab<V>>{});

    // args: device, matrix, json — the "batch": N config entry point.
    m.def("batch_config_solver" + s, [](const List& args) -> Value {
        auto exec = unbox_device(args.at(0));
        auto mat = unbox_batch_op(args.at(1), "batch_matrix");
        auto json = args.at(2).as<const config::Json>("json");
        return box("batch_solver",
                   std::shared_ptr<batch::BatchLinOp>{
                       config::batch_config_solver(*json, std::move(exec),
                                                   std::move(mat))});
    });
}

// --- observability bindings (module-level, no type suffix) ------------------
//
// The Python front end exposes these as mgko.trace_dump() etc.; they
// operate on the process-wide shared tracer/metrics singletons, so a
// caller can scrape metrics or pull a Perfetto-loadable trace of
// everything that ran since the last reset without touching executors.

void register_observability_bindings(Module& m)
{
    m.def("trace_dump", [](const List&) -> Value {
        return Value{log::shared_tracer()->to_json()};
    });
    m.def("trace_reset", [](const List&) -> Value {
        log::shared_tracer()->reset();
        return {};
    });
    m.def("metrics_text", [](const List&) -> Value {
        return Value{log::shared_metrics()->registry().prometheus_text()};
    });
    m.def("metrics_json", [](const List&) -> Value {
        return Value{log::shared_metrics()->registry().to_json()};
    });
    m.def("metrics_reset", [](const List&) -> Value {
        log::shared_metrics()->registry().reset();
        return {};
    });

    // args: [rate] — sets the request-trace sampling probability (the
    // binding twin of MGKO_TRACE_SAMPLE / the "trace_sample" config key);
    // with no argument just returns the current rate.
    m.def("trace_sample", [](const List& args) -> Value {
        if (!args.empty() && !args.at(0).is_none()) {
            log::set_trace_sample_rate(args.at(0).as_double());
        }
        return Value{log::trace_sample_rate()};
    });
    // The calling thread's active trace context as a W3C traceparent
    // string; "" when no context is in scope (see log/trace_context.hpp).
    m.def("traceparent", [](const List&) -> Value {
        const auto ctx = log::current_trace_context();
        return Value{ctx.valid() ? ctx.traceparent() : std::string{}};
    });

    // args: [port] — starts the process-wide telemetry server (port 0 or
    // no argument binds an ephemeral port) and returns the bound port.
    m.def("telemetry_start", [](const List& args) -> Value {
        int port = 0;
        if (!args.empty() && !args.at(0).is_none()) {
            port = static_cast<int>(args.at(0).as_int());
        }
        return Value{static_cast<std::int64_t>(serve::telemetry_start(port))};
    });
    m.def("telemetry_stop", [](const List&) -> Value {
        serve::telemetry_stop();
        return {};
    });

    // args: [port] — starts the process-wide solve-as-a-service server
    // (port 0 or no argument binds an ephemeral port) and returns the
    // bound port.  Same conflict semantics as telemetry_start.
    m.def("solve_server_start", [](const List& args) -> Value {
        int port = 0;
        if (!args.empty() && !args.at(0).is_none()) {
            port = static_cast<int>(args.at(0).as_int());
        }
        return Value{
            static_cast<std::int64_t>(serve::solve_server_start(port))};
    });
    m.def("solve_server_stop", [](const List&) -> Value {
        serve::solve_server_stop();
        return {};
    });
    m.def("solve_server_port", [](const List&) -> Value {
        return Value{static_cast<std::int64_t>(serve::solve_server_port())};
    });
    m.def("solve_server_stats", [](const List&) -> Value {
        return Value{serve::solve_server_stats_json()};
    });

    // --- measured tier (sampling profiler + hardware counters) ---

    // args: [hz] — starts (or retunes) the SIGPROF sampling profiler at
    // `hz` samples per second (default 99); hz 0 stops it.  Returns the
    // active rate.
    m.def("sampling_start", [](const List& args) -> Value {
        int hz = 99;
        if (!args.empty() && !args.at(0).is_none()) {
            hz = static_cast<int>(args.at(0).as_int());
        }
        if (hz == 0) {
            log::sampling_stop();
        } else {
            log::sampling_start(hz);
        }
        return Value{static_cast<std::int64_t>(log::sampling_hz())};
    });
    m.def("sampling_stop", [](const List&) -> Value {
        log::sampling_stop();
        return {};
    });
    m.def("sampling_hz", [](const List&) -> Value {
        return Value{static_cast<std::int64_t>(log::sampling_hz())};
    });
    // The aggregated samples as folded stacks ("frame;frame;... count"
    // lines, flamegraph.pl-ready).
    m.def("sampling_folded", [](const List&) -> Value {
        return Value{log::sampling_folded()};
    });
    // The aggregated samples as pprof-like JSON (the /profile_cpu.json
    // body).
    m.def("sampling_profile", [](const List&) -> Value {
        return Value{log::sampling_profile_json()};
    });
    m.def("sampling_reset", [](const List&) -> Value {
        log::sampling_reset();
        return {};
    });

    // args: [mode] — enables the hardware-counter tier: "auto" (default)
    // probes perf_event_open and falls back to rusage, "rusage" forces
    // the fallback, "off" disables.  Returns the active source.
    m.def("hw_counters", [](const List& args) -> Value {
        std::string mode = "auto";
        if (!args.empty() && !args.at(0).is_none()) {
            mode = args.at(0).as_string();
        }
        if (mode == "off") {
            log::hw_counters_disable();
        } else {
            log::hw_counters_enable(mode);
        }
        return Value{std::string{log::hw_counters_source()}};
    });
    m.def("hw_counters_source", [](const List&) -> Value {
        return Value{std::string{log::hw_counters_source()}};
    });
    // Per-kernel accumulated counters as JSON.
    m.def("hw_counters_json", [](const List&) -> Value {
        return Value{log::hw_counters_json()};
    });
    m.def("hw_counters_reset", [](const List&) -> Value {
        log::hw_counters_reset();
        return {};
    });

    // args: [path] — with a path, writes the flight recorder's black box
    // there as text (the postmortem format) and returns the path; with no
    // argument returns the Chrome Trace JSON of the snapshot.
    m.def("flight_dump", [](const List& args) -> Value {
        auto recorder = log::shared_flight_recorder();
        if (args.empty() || args.at(0).is_none()) {
            return Value{recorder->to_chrome_trace_json()};
        }
        const std::string path = args.at(0).as_string();
        const int fd =
            ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        MGKO_ENSURE(fd >= 0, "flight_dump: cannot write '" + path + "'");
        recorder->write_postmortem(fd, "flight_dump binding");
        ::close(fd);
        return Value{path};
    });
}

}  // namespace


void ensure_bindings_registered()
{
    static std::once_flag once;
    std::call_once(once, [] {
        auto& m = Module::instance();

#define MGKO_REGISTER_TENSOR(V) register_tensor_bindings<V>(m)
        MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_REGISTER_TENSOR);
#undef MGKO_REGISTER_TENSOR

#define MGKO_REGISTER_MATRIX(V, I) register_matrix_bindings<V, I>(m)
        MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_REGISTER_MATRIX);
#undef MGKO_REGISTER_MATRIX

#define MGKO_REGISTER_BATCH_TENSOR(V) register_batch_tensor_bindings<V>(m)
        MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_REGISTER_BATCH_TENSOR);
#undef MGKO_REGISTER_BATCH_TENSOR

#define MGKO_REGISTER_BATCH_MATRIX(V, I) \
    register_batch_matrix_bindings<V, I>(m)
        MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(
            MGKO_REGISTER_BATCH_MATRIX);
#undef MGKO_REGISTER_BATCH_MATRIX

        register_observability_bindings(m);

        // The always-on tier covers the binding layer too: every bound
        // call lands in the flight recorder's ring unless the user set
        // MGKO_FLIGHT_RECORDER=0.
        add_logger(log::flight_recorder_from_env());
    });
}


}  // namespace mgko::bind
