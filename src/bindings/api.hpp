// The Pythonic front end — the pyGinkgo API surface (paper §3.5,
// Listings 1-2), realized as C++ functions with dynamically typed handles.
//
//   auto dev    = bind::device("cuda");
//   auto mtx    = bind::read(dev, "m1.mtx", "double", "Csr");
//   auto b      = bind::as_tensor(dev, {n, 1}, "double", 1.0);
//   auto x      = bind::as_tensor(dev, {n, 1}, "double", 0.0);
//   auto precon = bind::preconditioner::ilu(dev, mtx);
//   auto solver = bind::solver::gmres(dev, mtx, precon, 1000, 30, 1e-6);
//   auto [logger, result] = solver.apply(b, x);
//
// Every operation composes a mangled binding name from the handle's dtype
// strings ("csr_apply_double_int32") and calls through the registry,
// paying the measured boxing/GIL/lookup overhead plus the modeled
// interpreter constant — the quantity Fig. 5b/5c isolates.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bindings/boxed.hpp"
#include "config/json.hpp"
#include "core/executor.hpp"
#include "core/lin_op.hpp"
#include "core/matrix_data.hpp"
#include "log/logger.hpp"

namespace mgko::bind {


/// pg.device("cuda") — wraps an executor (paper §4.1).
class Device {
public:
    Device() = default;
    explicit Device(std::shared_ptr<Executor> exec) : exec_{std::move(exec)} {}

    const std::shared_ptr<Executor>& executor() const { return exec_; }
    std::string name() const { return exec_ ? exec_->name() : "<none>"; }
    bool valid() const { return exec_ != nullptr; }

private:
    std::shared_ptr<Executor> exec_;
};

Device device(const std::string& name, int id = 0);


/// Returned by Solver::apply alongside the solution (paper §3.5).  A
/// default-constructed (invalid) Logger answers every query with a benign
/// value instead of dereferencing its missing impl.
class Logger {
public:
    Logger() = default;
    explicit Logger(std::shared_ptr<const log::ConvergenceLogger> impl)
        : impl_{std::move(impl)}
    {}

    bool valid() const { return impl_ != nullptr; }
    size_type num_iterations() const
    {
        return impl_ ? impl_->num_iterations() : 0;
    }
    bool converged() const { return impl_ && impl_->has_converged(); }
    /// NaN when invalid or nothing was logged (see
    /// ConvergenceLogger::final_residual_norm).
    double final_residual_norm() const
    {
        return impl_ ? impl_->final_residual_norm()
                     : std::numeric_limits<double>::quiet_NaN();
    }
    const std::string& stop_reason() const
    {
        static const std::string empty;
        return impl_ ? impl_->stop_reason() : empty;
    }
    const std::vector<double>& residual_history() const
    {
        static const std::vector<double> empty;
        return impl_ ? impl_->residual_history() : empty;
    }

private:
    std::shared_ptr<const log::ConvergenceLogger> impl_;
};


/// Dense multi-vector handle (pg.as_tensor).
class Tensor {
public:
    Tensor() = default;

    dim2 shape() const;
    dtype value_type() const { return vt_; }
    std::string dtype_name() const { return to_string(vt_); }
    Device device() const;
    bool valid() const { return op_ != nullptr; }

    /// Host-side element access (through the binding layer).
    double item(size_type row, size_type col = 0) const;
    void set_item(size_type row, size_type col, double value);

    void fill(double value);
    double norm() const;
    double dot(const Tensor& other) const;
    /// this += alpha * other
    void add_scaled(double alpha, const Tensor& other);
    void scale(double alpha);
    /// this(m,k) @ b(k,n)
    Tensor matmul(const Tensor& b) const;
    /// thisᵀ(k,m) @ b(m,n) without materializing the transpose
    Tensor t_matmul(const Tensor& b) const;

    Tensor clone() const;
    Tensor to(const Device& target) const;
    /// Row-major host export (the numpy() escape hatch).
    std::vector<double> to_host() const;

    // -- internal plumbing (used by the binding implementation and pyside) --
    const std::shared_ptr<LinOp>& op() const { return op_; }
    static Tensor wrap(dtype vt, std::shared_ptr<LinOp> op);

private:
    dtype vt_{dtype::f64};
    std::shared_ptr<LinOp> op_;
};

/// pg.as_tensor(device=dev, dim=(n,1), dtype="double", fill=1.0)
Tensor as_tensor(const Device& dev, dim2 dims,
                 const std::string& dtype_name = "double", double fill = 0.0);
/// pg.as_tensor(numpy_array, device=dev) — copies host data in.
Tensor as_tensor(const Device& dev, const std::vector<double>& host_data,
                 dim2 dims, const std::string& dtype_name = "double");
/// Buffer protocol: wraps external memory zero-copy; the caller keeps
/// ownership (paper §5.2).  The element type selects the dtype.
Tensor from_buffer(const Device& dev, double* data, dim2 dims);
Tensor from_buffer(const Device& dev, float* data, dim2 dims);


/// Sparse matrix handle (pg.read / pg.matrix_from_data).
class Matrix {
public:
    Matrix() = default;

    dim2 shape() const;
    size_type nnz() const;
    dtype value_type() const { return vt_; }
    itype index_type() const { return it_; }
    const std::string& format() const { return format_; }
    Device device() const;
    bool valid() const { return op_ != nullptr; }

    /// x = A b (allocates the result).
    Tensor spmv(const Tensor& b) const;
    /// In-place apply into an existing tensor.
    void apply(const Tensor& b, Tensor& x) const;
    /// Converts between formats ("Csr", "Coo", "Ell", "Hybrid").
    Matrix to_format(const std::string& format) const;
    /// Sparse matrix product C = this @ other (CSR operands).
    Matrix matmul(const Matrix& other) const;

    const std::shared_ptr<LinOp>& op() const { return op_; }
    static Matrix wrap(dtype vt, itype it, std::string format,
                       std::shared_ptr<LinOp> op);
    /// Stored-element count is captured at construction (a cached Python
    /// attribute, not a bound call).
    void set_nnz(size_type nnz) { nnz_ = nnz; }

private:
    dtype vt_{dtype::f64};
    itype it_{itype::i32};
    std::string format_{"Csr"};
    size_type nnz_{0};
    std::shared_ptr<LinOp> op_;
};

/// pg.read(device=dev, path=fn, dtype="double", format="Csr")
Matrix read(const Device& dev, const std::string& path,
            const std::string& dtype_name = "double",
            const std::string& format = "Csr",
            const std::string& index_name = "int32");
/// Builds from staging data (the synthetic-workload path of the benches).
Matrix matrix_from_data(const Device& dev,
                        const matrix_data<double, int64>& data,
                        const std::string& dtype_name = "double",
                        const std::string& format = "Csr",
                        const std::string& index_name = "int32");


/// Generated preconditioner handle.
class Preconditioner {
public:
    Preconditioner() = default;
    bool valid() const { return op_ != nullptr; }
    const std::shared_ptr<const LinOp>& op() const { return op_; }
    static Preconditioner wrap(std::shared_ptr<const LinOp> op);

private:
    std::shared_ptr<const LinOp> op_;
};

namespace preconditioner {
/// pg.preconditioner.Ilu(dev, mtx)
Preconditioner ilu(const Device& dev, const Matrix& mtx);
Preconditioner ic(const Device& dev, const Matrix& mtx);
Preconditioner jacobi(const Device& dev, const Matrix& mtx,
                      size_type block_size = 1);
}  // namespace preconditioner


/// Generated solver handle.
class Solver {
public:
    Solver() = default;
    bool valid() const { return op_ != nullptr; }

    /// Solves into x (which holds the initial guess) and returns the
    /// convergence logger together with the solution handle — the
    /// `logger, result = solver.apply(b, x)` shape of Listing 1.
    std::pair<Logger, Tensor> apply(const Tensor& b, Tensor& x) const;

    const std::shared_ptr<LinOp>& op() const { return op_; }
    static Solver wrap(dtype vt, std::shared_ptr<LinOp> op);

private:
    dtype vt_{dtype::f64};
    std::shared_ptr<LinOp> op_;
};

namespace solver {
/// pg.solver.gmres(dev, mtx, precond, max_iters, krylov_dim,
/// reduction_factor) — the direct solver bindings of Listing 1 / Figure 2.
Solver gmres(const Device& dev, const Matrix& mtx,
             const Preconditioner& precond = {}, size_type max_iters = 1000,
             size_type krylov_dim = 30, double reduction_factor = 1e-6);
Solver cg(const Device& dev, const Matrix& mtx,
          const Preconditioner& precond = {}, size_type max_iters = 1000,
          double reduction_factor = 1e-6);
Solver cgs(const Device& dev, const Matrix& mtx,
           const Preconditioner& precond = {}, size_type max_iters = 1000,
           double reduction_factor = 1e-6);
Solver bicgstab(const Device& dev, const Matrix& mtx,
                const Preconditioner& precond = {},
                size_type max_iters = 1000, double reduction_factor = 1e-6);
Solver fcg(const Device& dev, const Matrix& mtx,
           const Preconditioner& precond = {}, size_type max_iters = 1000,
           double reduction_factor = 1e-6);
Solver lower_trs(const Device& dev, const Matrix& mtx,
                 bool unit_diagonal = false);
Solver upper_trs(const Device& dev, const Matrix& mtx,
                 bool unit_diagonal = false);
/// The direct (dense LU) solver of Figure 2.
Solver direct(const Device& dev, const Matrix& mtx);
}  // namespace solver


/// 2D convolution operator handle (the paper's §7 outlook feature).
class Conv2d {
public:
    Conv2d() = default;
    bool valid() const { return op_ != nullptr; }
    dim2 image_shape() const { return image_; }

    /// Applies the stencil to an image tensor of (height*width) x cols.
    Tensor apply(const Tensor& image) const;

    static Conv2d wrap(dtype vt, dim2 image, std::shared_ptr<LinOp> op);

private:
    dtype vt_{dtype::f64};
    dim2 image_{};
    std::shared_ptr<LinOp> op_;
};

/// Builds a centered k x k stencil operator over height x width images.
Conv2d convolution(const Device& dev, size_type height, size_type width,
                   const std::vector<double>& kernel,
                   const std::string& dtype_name = "double");

/// The generic config-solver entry point: builds the solver described by a
/// Python-style dictionary (paper §5, Listing 2).  The dictionary is
/// serialized to JSON in memory — no temporary files.
Solver config_solver(const Device& dev, const Matrix& mtx,
                     const config::Json& options);

/// pg.solve(...): one-shot convenience over config_solver.
std::pair<Logger, Tensor> solve(const Device& dev, const Matrix& mtx,
                                const Tensor& b, Tensor& x,
                                const config::Json& options);


}  // namespace mgko::bind
