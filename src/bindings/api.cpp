#include "bindings/api.hpp"

#include <algorithm>
#include <cctype>

#include "bindings/registry.hpp"
#include "matrix/dense.hpp"
#include "solver/solver_base.hpp"

namespace mgko::bind {

namespace {

std::string lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/// Composes the mangled binding name from runtime type tags — the dispatch
/// step of the paper's §5.1 funcxx_<type> scheme.
std::string mangle(const std::string& base, dtype v)
{
    return base + "_" + to_string(v);
}

std::string mangle(const std::string& base, dtype v, itype i)
{
    return base + "_" + to_string(v) + "_" + to_string(i);
}

std::string mangle_fmt(const std::string& base, const std::string& fmt,
                       dtype v, itype i)
{
    return base + "_" + lower(fmt) + "_" + to_string(v) + "_" + to_string(i);
}

Value boxed_device(const Device& dev)
{
    MGKO_ENSURE(dev.valid(), "operation requires a valid device");
    return box("device", dev.executor());
}

/// Calls through the registry with overhead probing charged to `exec`;
/// the probe also emits the per-call binding-dispatch event to any loggers
/// attached via bind::add_logger.
Value probed_call(const std::shared_ptr<const Executor>& exec,
                  const std::string& name, List args)
{
    ensure_bindings_registered();
    CallProbe probe{exec, name.c_str()};
    return Module::instance().call(name, args);
}

std::string normalize_format(const std::string& format)
{
    const auto f = lower(format);
    if (f == "csr") {
        return "Csr";
    }
    if (f == "coo") {
        return "Coo";
    }
    if (f == "ell") {
        return "Ell";
    }
    if (f == "hybrid" || f == "hyb") {
        return "Hybrid";
    }
    if (f == "sellcs" || f == "sell" || f == "sell-c-sigma") {
        return "Sellcs";
    }
    throw BadParameter(__FILE__, __LINE__,
                       "unknown matrix format: " + format);
}

}  // namespace


Device device(const std::string& name, int id)
{
    return Device{create_executor(name, id)};
}


// --- Tensor -----------------------------------------------------------------

Tensor Tensor::wrap(dtype vt, std::shared_ptr<LinOp> op)
{
    Tensor result;
    result.vt_ = vt;
    result.op_ = std::move(op);
    return result;
}

dim2 Tensor::shape() const
{
    MGKO_ENSURE(valid(), "tensor is empty");
    return op_->get_size();
}

Device Tensor::device() const
{
    MGKO_ENSURE(valid(), "tensor is empty");
    return Device{std::const_pointer_cast<Executor>(op_->get_executor())};
}

double Tensor::item(size_type row, size_type col) const
{
    return probed_call(op_->get_executor(), mangle("tensor_item", vt_),
                       {Value{box("tensor", op_)}, Value{row}, Value{col}})
        .as_double();
}

void Tensor::set_item(size_type row, size_type col, double value)
{
    probed_call(op_->get_executor(), mangle("tensor_set_item", vt_),
                {Value{box("tensor", op_)}, Value{row}, Value{col},
                 Value{value}});
}

void Tensor::fill(double value)
{
    probed_call(op_->get_executor(), mangle("tensor_fill", vt_),
                {Value{box("tensor", op_)}, Value{value}});
}

double Tensor::norm() const
{
    return probed_call(op_->get_executor(), mangle("tensor_norm", vt_),
                       {Value{box("tensor", op_)}})
        .as_double();
}

double Tensor::dot(const Tensor& other) const
{
    return probed_call(op_->get_executor(), mangle("tensor_dot", vt_),
                       {Value{box("tensor", op_)},
                        Value{box("tensor", other.op_)}})
        .as_double();
}

void Tensor::add_scaled(double alpha, const Tensor& other)
{
    probed_call(op_->get_executor(), mangle("tensor_add_scaled", vt_),
                {Value{box("tensor", op_)}, Value{alpha},
                 Value{box("tensor", other.op_)}});
}

void Tensor::scale(double alpha)
{
    probed_call(op_->get_executor(), mangle("tensor_scale", vt_),
                {Value{box("tensor", op_)}, Value{alpha}});
}

Tensor Tensor::matmul(const Tensor& b) const
{
    auto result = probed_call(op_->get_executor(),
                              mangle("tensor_matmul", vt_),
                              {Value{box("tensor", op_)},
                               Value{box("tensor", b.op_)}});
    return wrap(vt_, result.as<LinOp>("tensor"));
}

Tensor Tensor::t_matmul(const Tensor& b) const
{
    auto result = probed_call(op_->get_executor(),
                              mangle("tensor_t_matmul", vt_),
                              {Value{box("tensor", op_)},
                               Value{box("tensor", b.op_)}});
    return wrap(vt_, result.as<LinOp>("tensor"));
}

Tensor Tensor::clone() const
{
    auto result = probed_call(op_->get_executor(),
                              mangle("tensor_clone", vt_),
                              {Value{box("tensor", op_)}});
    return wrap(vt_, result.as<LinOp>("tensor"));
}

Tensor Tensor::to(const Device& target) const
{
    auto result = probed_call(op_->get_executor(),
                              mangle("tensor_to_device", vt_),
                              {Value{box("tensor", op_)},
                               boxed_device(target)});
    return wrap(vt_, result.as<LinOp>("tensor"));
}

std::vector<double> Tensor::to_host() const
{
    auto result = probed_call(op_->get_executor(),
                              mangle("tensor_export", vt_),
                              {Value{box("tensor", op_)}});
    return *result.as<const std::vector<double>>("host_f64");
}


Tensor as_tensor(const Device& dev, dim2 dims, const std::string& dtype_name,
                 double fill)
{
    const auto vt = dtype_from_string(dtype_name);
    auto result = probed_call(dev.executor(), mangle("tensor_create", vt),
                              {boxed_device(dev), Value{dims.rows},
                               Value{dims.cols}, Value{fill}});
    return Tensor::wrap(vt, result.as<LinOp>("tensor"));
}


Tensor as_tensor(const Device& dev, const std::vector<double>& host_data,
                 dim2 dims, const std::string& dtype_name)
{
    const auto vt = dtype_from_string(dtype_name);
    auto host = std::make_shared<const std::vector<double>>(host_data);
    auto result =
        probed_call(dev.executor(), mangle("tensor_from_host", vt),
                    {boxed_device(dev), Value{box("host_f64", host)},
                     Value{dims.rows}, Value{dims.cols}});
    return Tensor::wrap(vt, result.as<LinOp>("tensor"));
}


namespace {

template <typename T>
Tensor view_impl(const Device& dev, T* data, dim2 dims)
{
    const auto vt = dtype_of<T>::value;
    auto result = probed_call(
        dev.executor(), mangle("tensor_view", vt),
        {boxed_device(dev),
         Value{static_cast<std::int64_t>(reinterpret_cast<std::uintptr_t>(data))},
         Value{dims.rows}, Value{dims.cols}});
    return Tensor::wrap(vt, result.template as<LinOp>("tensor"));
}

}  // namespace

Tensor from_buffer(const Device& dev, double* data, dim2 dims)
{
    return view_impl(dev, data, dims);
}

Tensor from_buffer(const Device& dev, float* data, dim2 dims)
{
    return view_impl(dev, data, dims);
}


// --- Matrix -----------------------------------------------------------------

Matrix Matrix::wrap(dtype vt, itype it, std::string format,
                    std::shared_ptr<LinOp> op)
{
    Matrix result;
    result.vt_ = vt;
    result.it_ = it;
    result.format_ = std::move(format);
    result.op_ = std::move(op);
    return result;
}

dim2 Matrix::shape() const
{
    MGKO_ENSURE(valid(), "matrix is empty");
    return op_->get_size();
}

Device Matrix::device() const
{
    MGKO_ENSURE(valid(), "matrix is empty");
    return Device{std::const_pointer_cast<Executor>(op_->get_executor())};
}

size_type Matrix::nnz() const { return nnz_; }

Tensor Matrix::spmv(const Tensor& b) const
{
    auto x = as_tensor(device(), dim2{shape().rows, b.shape().cols},
                       to_string(vt_), 0.0);
    apply(b, x);
    return x;
}

void Matrix::apply(const Tensor& b, Tensor& x) const
{
    probed_call(op_->get_executor(),
                mangle_fmt("matrix_apply", format_, vt_, it_),
                {Value{box("matrix", op_)}, Value{box("tensor", b.op())},
                 Value{box("tensor", x.op())}});
}

Matrix Matrix::matmul(const Matrix& other) const
{
    MGKO_ENSURE(format_ == "Csr" && other.format_ == "Csr",
                "matmul requires CSR operands (convert first)");
    auto result = probed_call(op_->get_executor(),
                              mangle("matrix_spgemm", vt_, it_),
                              {Value{box("matrix", op_)},
                               Value{box("matrix", other.op_)}});
    const auto& pair = result.as_list();
    auto product =
        Matrix::wrap(vt_, it_, "Csr", pair.at(0).as<LinOp>("matrix"));
    product.set_nnz(pair.at(1).as_int());
    return product;
}


Matrix Matrix::to_format(const std::string& format) const
{
    const auto target = normalize_format(format);
    if (target == format_) {
        return *this;
    }
    const auto name = "matrix_convert_" + lower(format_) + "_to_" +
                      lower(target) + "_" + to_string(vt_) + "_" +
                      to_string(it_);
    auto result = probed_call(op_->get_executor(), name,
                              {Value{box("matrix", op_)}});
    const auto& pair = result.as_list();
    auto converted =
        Matrix::wrap(vt_, it_, target, pair.at(0).as<LinOp>("matrix"));
    converted.nnz_ = pair.at(1).as_int();
    return converted;
}


namespace {

Matrix matrix_from_boxed(const Value& result, dtype vt, itype it,
                         const std::string& format)
{
    const auto& pair = result.as_list();
    auto mat = Matrix::wrap(vt, it, format, pair.at(0).as<LinOp>("matrix"));
    mat.set_nnz(pair.at(1).as_int());
    return mat;
}

}  // namespace


Matrix read(const Device& dev, const std::string& path,
            const std::string& dtype_name, const std::string& format,
            const std::string& index_name)
{
    const auto vt = dtype_from_string(dtype_name);
    const auto it = itype_from_string(index_name);
    const auto fmt = normalize_format(format);
    auto result = probed_call(dev.executor(),
                              mangle_fmt("matrix_read", fmt, vt, it),
                              {boxed_device(dev), Value{path}});
    return matrix_from_boxed(result, vt, it, fmt);
}


Matrix matrix_from_data(const Device& dev,
                        const matrix_data<double, int64>& data,
                        const std::string& dtype_name,
                        const std::string& format,
                        const std::string& index_name)
{
    const auto vt = dtype_from_string(dtype_name);
    const auto it = itype_from_string(index_name);
    const auto fmt = normalize_format(format);
    auto shared =
        std::make_shared<const matrix_data<double, int64>>(data);
    auto result = probed_call(dev.executor(),
                              mangle_fmt("matrix_from_data", fmt, vt, it),
                              {boxed_device(dev),
                               Value{box("matrix_data", shared)}});
    return matrix_from_boxed(result, vt, it, fmt);
}


// --- Preconditioner -----------------------------------------------------------

Preconditioner Preconditioner::wrap(std::shared_ptr<const LinOp> op)
{
    Preconditioner result;
    result.op_ = std::move(op);
    return result;
}

namespace preconditioner {

Preconditioner ilu(const Device& dev, const Matrix& mtx)
{
    auto result = probed_call(
        dev.executor(),
        mangle("precond_ilu", mtx.value_type(), mtx.index_type()),
        {boxed_device(dev), Value{box("matrix", mtx.op())}});
    return Preconditioner::wrap(result.as<const LinOp>("precond"));
}

Preconditioner ic(const Device& dev, const Matrix& mtx)
{
    auto result = probed_call(
        dev.executor(),
        mangle("precond_ic", mtx.value_type(), mtx.index_type()),
        {boxed_device(dev), Value{box("matrix", mtx.op())}});
    return Preconditioner::wrap(result.as<const LinOp>("precond"));
}

Preconditioner jacobi(const Device& dev, const Matrix& mtx,
                      size_type block_size)
{
    auto result = probed_call(
        dev.executor(),
        mangle("precond_jacobi", mtx.value_type(), mtx.index_type()),
        {boxed_device(dev), Value{box("matrix", mtx.op())},
         Value{block_size}});
    return Preconditioner::wrap(result.as<const LinOp>("precond"));
}

}  // namespace preconditioner


// --- Solver ---------------------------------------------------------------------

Solver Solver::wrap(dtype vt, std::shared_ptr<LinOp> op)
{
    Solver result;
    result.vt_ = vt;
    result.op_ = std::move(op);
    return result;
}

std::pair<Logger, Tensor> Solver::apply(const Tensor& b, Tensor& x) const
{
    auto result = probed_call(op_->get_executor(),
                              mangle("solver_apply", vt_),
                              {Value{box("solver", op_)},
                               Value{box("tensor", b.op())},
                               Value{box("tensor", x.op())}});
    Logger logger;
    if (!result.is_none()) {
        logger = Logger{
            result.as<const log::ConvergenceLogger>("logger")};
    }
    return {logger, x};
}


namespace solver {

namespace {

Value precond_value(const Preconditioner& precond)
{
    if (!precond.valid()) {
        return {};
    }
    return box("precond", precond.op());
}

}  // namespace

Solver gmres(const Device& dev, const Matrix& mtx,
             const Preconditioner& precond, size_type max_iters,
             size_type krylov_dim, double reduction_factor)
{
    auto result = probed_call(
        dev.executor(),
        mangle("solver_gmres", mtx.value_type(), mtx.index_type()),
        {boxed_device(dev), Value{box("matrix", mtx.op())},
         precond_value(precond), Value{max_iters}, Value{krylov_dim},
         Value{reduction_factor}});
    return Solver::wrap(mtx.value_type(), result.as<LinOp>("solver"));
}

namespace {

Solver krylov_common(const char* name, const Device& dev, const Matrix& mtx,
                     const Preconditioner& precond, size_type max_iters,
                     double reduction_factor)
{
    auto result = probed_call(
        dev.executor(), mangle(name, mtx.value_type(), mtx.index_type()),
        {boxed_device(dev), Value{box("matrix", mtx.op())},
         precond_value(precond), Value{max_iters}, Value{reduction_factor}});
    return Solver::wrap(mtx.value_type(), result.as<LinOp>("solver"));
}

}  // namespace

Solver cg(const Device& dev, const Matrix& mtx, const Preconditioner& precond,
          size_type max_iters, double reduction_factor)
{
    return krylov_common("solver_cg", dev, mtx, precond, max_iters,
                         reduction_factor);
}

Solver cgs(const Device& dev, const Matrix& mtx,
           const Preconditioner& precond, size_type max_iters,
           double reduction_factor)
{
    return krylov_common("solver_cgs", dev, mtx, precond, max_iters,
                         reduction_factor);
}

Solver bicgstab(const Device& dev, const Matrix& mtx,
                const Preconditioner& precond, size_type max_iters,
                double reduction_factor)
{
    return krylov_common("solver_bicgstab", dev, mtx, precond, max_iters,
                         reduction_factor);
}

Solver fcg(const Device& dev, const Matrix& mtx,
           const Preconditioner& precond, size_type max_iters,
           double reduction_factor)
{
    return krylov_common("solver_fcg", dev, mtx, precond, max_iters,
                         reduction_factor);
}

Solver lower_trs(const Device& dev, const Matrix& mtx, bool unit_diagonal)
{
    auto result = probed_call(
        dev.executor(),
        mangle("solver_lower_trs", mtx.value_type(), mtx.index_type()),
        {boxed_device(dev), Value{box("matrix", mtx.op())},
         Value{unit_diagonal}});
    return Solver::wrap(mtx.value_type(), result.as<LinOp>("solver"));
}

Solver upper_trs(const Device& dev, const Matrix& mtx, bool unit_diagonal)
{
    auto result = probed_call(
        dev.executor(),
        mangle("solver_upper_trs", mtx.value_type(), mtx.index_type()),
        {boxed_device(dev), Value{box("matrix", mtx.op())},
         Value{unit_diagonal}});
    return Solver::wrap(mtx.value_type(), result.as<LinOp>("solver"));
}

Solver direct(const Device& dev, const Matrix& mtx)
{
    auto result = probed_call(
        dev.executor(),
        mangle("solver_direct", mtx.value_type(), mtx.index_type()),
        {boxed_device(dev), Value{box("matrix", mtx.op())}});
    return Solver::wrap(mtx.value_type(), result.as<LinOp>("solver"));
}

}  // namespace solver


// --- convolution ------------------------------------------------------------

Conv2d Conv2d::wrap(dtype vt, dim2 image, std::shared_ptr<LinOp> op)
{
    Conv2d result;
    result.vt_ = vt;
    result.image_ = image;
    result.op_ = std::move(op);
    return result;
}

Tensor Conv2d::apply(const Tensor& image) const
{
    MGKO_ENSURE(valid(), "convolution operator is empty");
    auto out = as_tensor(Device{std::const_pointer_cast<Executor>(
                             op_->get_executor())},
                         image.shape(), to_string(vt_), 0.0);
    probed_call(op_->get_executor(), mangle("conv2d_apply", vt_),
                {Value{box("conv", op_)}, Value{box("tensor", image.op())},
                 Value{box("tensor", out.op())}});
    return out;
}

Conv2d convolution(const Device& dev, size_type height, size_type width,
                   const std::vector<double>& kernel,
                   const std::string& dtype_name)
{
    const auto vt = dtype_from_string(dtype_name);
    List boxed_kernel;
    boxed_kernel.reserve(kernel.size());
    for (const double v : kernel) {
        boxed_kernel.emplace_back(v);
    }
    auto result = probed_call(dev.executor(), mangle("conv2d_create", vt),
                              {boxed_device(dev), Value{height}, Value{width},
                               Value{boxed_kernel}});
    return Conv2d::wrap(vt, dim2{height, width},
                        result.as<LinOp>("conv"));
}


Solver config_solver(const Device& dev, const Matrix& mtx,
                     const config::Json& options)
{
    // The dict -> JSON step happens here, in memory (paper §5: "without
    // depending on any temporary configuration files on disk").
    auto normalized =
        std::make_shared<const config::Json>(config::Json::parse(
            options.dump()));
    auto result = probed_call(
        dev.executor(),
        mangle("config_solver", mtx.value_type(), mtx.index_type()),
        {boxed_device(dev), Value{box("matrix", mtx.op())},
         Value{box("json", normalized)}});
    return Solver::wrap(mtx.value_type(), result.as<LinOp>("solver"));
}


std::pair<Logger, Tensor> solve(const Device& dev, const Matrix& mtx,
                                const Tensor& b, Tensor& x,
                                const config::Json& options)
{
    return config_solver(dev, mtx, options).apply(b, x);
}


}  // namespace mgko::bind
