#include "bindings/registry.hpp"

#include <algorithm>
#include <chrono>

#include "sim/machine_model.hpp"

namespace mgko::bind {

namespace {

double now_wall_ns()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::vector<std::shared_ptr<log::EventLogger>>& binding_loggers()
{
    static std::vector<std::shared_ptr<log::EventLogger>> loggers;
    return loggers;
}

// Module::call measures GIL wait and lookup time (only while loggers are
// attached); the enclosing CallProbe picks the values up here when it
// emits the per-call event.  Thread-local: concurrent bound calls from
// different threads measure independently.
thread_local double tl_gil_wait_ns = 0.0;
thread_local double tl_lookup_ns = 0.0;

}  // namespace


void add_logger(std::shared_ptr<log::EventLogger> logger)
{
    if (!logger) {
        return;
    }
    // A logger already attached here is not attached a second time — a
    // duplicate would double-count every bound call.
    auto& loggers = binding_loggers();
    for (const auto& existing : loggers) {
        if (existing.get() == logger.get()) {
            return;
        }
    }
    loggers.push_back(std::move(logger));
}


void remove_logger(const log::EventLogger* logger)
{
    auto& loggers = binding_loggers();
    loggers.erase(std::remove_if(loggers.begin(), loggers.end(),
                                 [&](const auto& l) {
                                     return l.get() == logger;
                                 }),
                  loggers.end());
}


const std::vector<std::shared_ptr<log::EventLogger>>& get_loggers()
{
    return binding_loggers();
}


std::mutex& gil()
{
    static std::mutex mutex;
    return mutex;
}


double interpreter_call_ns()
{
    static const double ns = sim::env_override("MGKO_SIM_PYCALL_NS", 4000.0);
    return ns;
}


CallProbe::CallProbe(std::shared_ptr<const Executor> exec, const char* name)
    : exec_{std::move(exec)},
      name_{name},
      wall_start_ns_{now_wall_ns()},
      kernel_wall_start_ns_{exec_ ? exec_->real_kernel_wall_ns() : 0.0}
{
    tl_gil_wait_ns = 0.0;
    tl_lookup_ns = 0.0;
}


CallProbe::~CallProbe()
{
    if (!exec_) {
        return;
    }
    const double wall = now_wall_ns() - wall_start_ns_;
    const double kernel_wall =
        exec_->real_kernel_wall_ns() - kernel_wall_start_ns_;
    const double overhead = wall - kernel_wall;
    // Measured boxing/lookup/GIL time + the modeled interpreter frame +
    // the device runtime's dynamic-dispatch surcharge (nonzero on the
    // simulated AMD backend, see MachineModel::mi100).
    exec_->clock().tick((overhead > 0.0 ? overhead : 0.0) +
                        interpreter_call_ns() +
                        exec_->model().framework_call_ns);
    if (name_ != nullptr && !binding_loggers().empty()) {
        // The overhead minus the measured GIL wait and lookup is the
        // remaining host-side glue: argument boxing and dispatch.
        const double gil_wait = tl_gil_wait_ns;
        const double lookup = tl_lookup_ns;
        double boxing = (overhead > 0.0 ? overhead : 0.0) - gil_wait - lookup;
        if (boxing < 0.0) {
            boxing = 0.0;
        }
        for (const auto& logger : binding_loggers()) {
            logger->on_binding_call_completed(name_, wall, gil_wait, lookup,
                                              boxing, interpreter_call_ns());
        }
    }
}


Module& Module::instance()
{
    static Module module;
    return module;
}


void Module::def(const std::string& name, BoundFunction fn)
{
    auto [it, inserted] = functions_.emplace(name, std::move(fn));
    (void)it;
    MGKO_ENSURE(inserted, "duplicate binding name: " + name);
}


Value Module::call(const std::string& name, const List& args) const
{
    // GIL-wait and lookup phases are timed only while binding loggers are
    // attached, keeping the unlogged dispatch path free of clock reads.
    const bool logged = !binding_loggers().empty();
    const double t0 = logged ? now_wall_ns() : 0.0;
    std::lock_guard<std::mutex> guard{gil()};
    const double t1 = logged ? now_wall_ns() : 0.0;
    auto it = functions_.find(name);
    if (logged) {
        tl_gil_wait_ns = t1 - t0;
        tl_lookup_ns = now_wall_ns() - t1;
    }
    if (it == functions_.end()) {
        throw BadParameter(__FILE__, __LINE__,
                           "no binding named '" + name +
                               "' (unsupported type combination?)");
    }
    return it->second(args);
}


bool Module::has(const std::string& name) const
{
    return functions_.count(name) > 0;
}


std::vector<std::string> Module::names() const
{
    std::vector<std::string> result;
    result.reserve(functions_.size());
    for (const auto& [name, fn] : functions_) {
        result.push_back(name);
    }
    return result;
}


}  // namespace mgko::bind
