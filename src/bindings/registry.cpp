#include "bindings/registry.hpp"

#include <chrono>

#include "sim/machine_model.hpp"

namespace mgko::bind {

namespace {

double now_wall_ns()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace


std::mutex& gil()
{
    static std::mutex mutex;
    return mutex;
}


double interpreter_call_ns()
{
    static const double ns = sim::env_override("MGKO_SIM_PYCALL_NS", 4000.0);
    return ns;
}


CallProbe::CallProbe(std::shared_ptr<const Executor> exec)
    : exec_{std::move(exec)},
      wall_start_ns_{now_wall_ns()},
      kernel_wall_start_ns_{exec_ ? exec_->real_kernel_wall_ns() : 0.0}
{}


CallProbe::~CallProbe()
{
    if (!exec_) {
        return;
    }
    const double wall = now_wall_ns() - wall_start_ns_;
    const double kernel_wall =
        exec_->real_kernel_wall_ns() - kernel_wall_start_ns_;
    const double overhead = wall - kernel_wall;
    // Measured boxing/lookup/GIL time + the modeled interpreter frame +
    // the device runtime's dynamic-dispatch surcharge (nonzero on the
    // simulated AMD backend, see MachineModel::mi100).
    exec_->clock().tick((overhead > 0.0 ? overhead : 0.0) +
                        interpreter_call_ns() +
                        exec_->model().framework_call_ns);
}


Module& Module::instance()
{
    static Module module;
    return module;
}


void Module::def(const std::string& name, BoundFunction fn)
{
    auto [it, inserted] = functions_.emplace(name, std::move(fn));
    (void)it;
    MGKO_ENSURE(inserted, "duplicate binding name: " + name);
}


Value Module::call(const std::string& name, const List& args) const
{
    std::lock_guard<std::mutex> guard{gil()};
    auto it = functions_.find(name);
    if (it == functions_.end()) {
        throw BadParameter(__FILE__, __LINE__,
                           "no binding named '" + name +
                               "' (unsupported type combination?)");
    }
    return it->second(args);
}


bool Module::has(const std::string& name) const
{
    return functions_.count(name) > 0;
}


std::vector<std::string> Module::names() const
{
    std::vector<std::string> result;
    result.reserve(functions_.size());
    for (const auto& [name, fn] : functions_) {
        result.push_back(name);
    }
    return result;
}


}  // namespace mgko::bind
