#include "solver/cgs.hpp"

#include "core/math.hpp"
#include "solver/detail.hpp"

namespace mgko::solver {


template <typename ValueType>
void Cgs<ValueType>::apply_impl(const LinOp* b, LinOp* x) const
{
    using detail::scalar;
    using detail::set_scalar;
    auto exec = this->get_executor();
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    this->validate_single_column(dense_b);
    this->logger_->reset();

    const auto n = this->get_size().rows;
    auto make_vec = [&] { return Dense<ValueType>::create(exec, dim2{n, 1}); };
    auto r = make_vec();
    auto r_tilde = make_vec();
    auto u = make_vec();
    auto p = make_vec();
    auto q = make_vec();
    auto v = make_vec();
    auto t = make_vec();
    auto t_hat = make_vec();
    auto one_s = scalar<ValueType>(exec, 1.0);
    auto neg_one_s = scalar<ValueType>(exec, -1.0);
    auto alpha_s = scalar<ValueType>(exec, 0.0);
    auto beta_s = scalar<ValueType>(exec, 0.0);

    const double b_norm = dense_b->norm2_scalar();
    double r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                             dense_x, r.get(), one_s.get(),
                                             neg_one_s.get());
    auto criterion = this->bind_criterion(b_norm, r_norm);
    this->logger_->log_iteration(0, r_norm);
    r_tilde->copy_from(r.get());

    double rho_prev = 1.0;
    size_type iter = 0;
    bool first = true;
    while (!criterion->is_satisfied(iter, r_norm)) {
        const double rho = r_tilde->dot_scalar(r.get());
        if (rho == 0.0 || !std::isfinite(rho)) {
            this->logger_->log_stop(iter, false, "breakdown: rho == 0");
            return;
        }
        if (first) {
            u->copy_from(r.get());
            p->copy_from(u.get());
            first = false;
        } else {
            const double beta = rho / rho_prev;
            set_scalar(beta_s.get(), beta);
            // u = r + beta * q
            u->copy_from(r.get());
            u->add_scaled(beta_s.get(), q.get());
            // p = u + beta * (q + beta * p)
            p->scale(beta_s.get());
            p->add_scaled(one_s.get(), q.get());
            p->scale(beta_s.get());
            p->add_scaled(one_s.get(), u.get());
        }
        // v = A * M(p)
        this->precond_->apply(p.get(), t_hat.get());
        this->system_->apply(t_hat.get(), v.get());
        const double sigma = r_tilde->dot_scalar(v.get());
        if (sigma == 0.0 || !std::isfinite(sigma)) {
            this->logger_->log_stop(iter, false, "breakdown: sigma == 0");
            return;
        }
        const double alpha = rho / sigma;
        set_scalar(alpha_s.get(), alpha);
        // q = u - alpha * v
        q->copy_from(u.get());
        q->sub_scaled(alpha_s.get(), v.get());
        // t = M(u + q)
        t_hat->copy_from(u.get());
        t_hat->add_scaled(one_s.get(), q.get());
        this->precond_->apply(t_hat.get(), t.get());
        // x += alpha * t ; r -= alpha * A t
        dense_x->add_scaled(alpha_s.get(), t.get());
        this->system_->apply(t.get(), v.get());
        r->sub_scaled(alpha_s.get(), v.get());

        rho_prev = rho;
        r_norm = r->norm2_scalar();
        ++iter;
        this->logger_->log_iteration(iter, r_norm);
    }
    this->logger_->log_stop(iter, criterion->indicates_convergence(),
                            criterion->reason());
}


#define MGKO_DECLARE_CGS(ValueType) template class Cgs<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_CGS);


}  // namespace mgko::solver
