#include "solver/cgs.hpp"

#include "core/math.hpp"
#include "solver/detail.hpp"

namespace mgko::solver {

namespace {
enum cgs_slots : std::size_t {
    ws_r,
    ws_r_tilde,
    ws_u,
    ws_p,
    ws_q,
    ws_v,
    ws_t,
    ws_t_hat,
    ws_reduce,
    ws_one,
    ws_neg_one,
    ws_alpha,
    ws_beta,
};
}  // namespace


template <typename ValueType>
void Cgs<ValueType>::apply_impl(const LinOp* b, LinOp* x) const
{
    using detail::set_scalar;
    auto apply_span = this->make_span("solver.cgs.apply");
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    this->validate_single_column(dense_b);
    this->logger_->reset();

    const auto n = this->get_size().rows;
    auto& ws = this->workspace_;
    auto* r = ws.vec(ws_r, dim2{n, 1});
    auto* r_tilde = ws.vec(ws_r_tilde, dim2{n, 1});
    auto* u = ws.vec(ws_u, dim2{n, 1});
    auto* p = ws.vec(ws_p, dim2{n, 1});
    auto* q = ws.vec(ws_q, dim2{n, 1});
    auto* v = ws.vec(ws_v, dim2{n, 1});
    auto* t = ws.vec(ws_t, dim2{n, 1});
    auto* t_hat = ws.vec(ws_t_hat, dim2{n, 1});
    auto* reduce = ws.vec(ws_reduce, dim2{1, 1});
    auto* one_s = ws.scalar(ws_one, 1.0);
    auto* neg_one_s = ws.scalar(ws_neg_one, -1.0);
    auto* alpha_s = ws.scalar(ws_alpha, 0.0);
    auto* beta_s = ws.scalar(ws_beta, 0.0);

    const double b_norm = detail::norm2(dense_b, reduce);
    double r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                             dense_x, r, one_s, neg_one_s,
                                             reduce);
    auto criterion = this->bind_criterion(b_norm, r_norm);
    this->log_iteration(0, r_norm);
    r_tilde->copy_from(r);

    double rho_prev = 1.0;
    size_type iter = 0;
    bool first = true;
    while (!criterion->is_satisfied(iter, r_norm)) {
        auto iteration_span = this->make_span("solver.cgs.iteration");
        const double rho = detail::dot(r_tilde, r, reduce);
        if (rho == 0.0 || !std::isfinite(rho)) {
            this->log_stop(iter, false, "breakdown: rho == 0");
            return;
        }
        if (first) {
            u->copy_from(r);
            p->copy_from(u);
            first = false;
        } else {
            const double beta = rho / rho_prev;
            set_scalar(beta_s, beta);
            // u = r + beta * q
            u->copy_from(r);
            u->add_scaled(beta_s, q);
            // p = u + beta * (q + beta * p)
            p->scale(beta_s);
            p->add_scaled(one_s, q);
            p->scale(beta_s);
            p->add_scaled(one_s, u);
        }
        // v = A * M(p)
        this->precond_->apply(p, t_hat);
        this->system_->apply(t_hat, v);
        const double sigma = detail::dot(r_tilde, v, reduce);
        if (sigma == 0.0 || !std::isfinite(sigma)) {
            this->log_stop(iter, false, "breakdown: sigma == 0");
            return;
        }
        const double alpha = rho / sigma;
        set_scalar(alpha_s, alpha);
        // q = u - alpha * v
        q->copy_from(u);
        q->sub_scaled(alpha_s, v);
        // t = M(u + q)
        t_hat->copy_from(u);
        t_hat->add_scaled(one_s, q);
        this->precond_->apply(t_hat, t);
        // x += alpha * t ; r -= alpha * A t
        dense_x->add_scaled(alpha_s, t);
        this->system_->apply(t, v);
        r->sub_scaled(alpha_s, v);

        rho_prev = rho;
        r_norm = detail::norm2(r, reduce);
        ++iter;
        this->log_iteration(iter, r_norm);
    }
    this->log_stop(iter, criterion->indicates_convergence(),
                            criterion->reason());
}


#define MGKO_DECLARE_CGS(ValueType) template class Cgs<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_CGS);


}  // namespace mgko::solver
