// Flexible Conjugate Gradient: tolerates preconditioners that vary between
// iterations (uses the Polak-Ribiere style update with an extra vector).
#pragma once

#include "solver/solver_base.hpp"

namespace mgko::solver {


template <typename ValueType = double>
class Fcg : public IterativeSolver<ValueType> {
public:
    static builder<Fcg> build() { return {}; }

protected:
    friend class SolverFactory<Fcg>;
    Fcg(std::shared_ptr<const Executor> exec, iterative_parameters params,
        std::shared_ptr<const LinOp> system)
        : IterativeSolver<ValueType>{std::move(exec), std::move(params),
                                     std::move(system)}
    {}

    void apply_impl(const LinOp* b, LinOp* x) const override;
    using IterativeSolver<ValueType>::apply_impl;
};


}  // namespace mgko::solver
