#include "solver/gmres.hpp"

#include <cmath>
#include <vector>

#include "core/kernel_utils.hpp"
#include "core/math.hpp"
#include "solver/detail.hpp"

namespace mgko::solver {

namespace {

/// Charges the cost of one device-side Hessenberg/Givens update: Ginkgo
/// performs the rotation, the residual-estimate update, and the check as
/// small device kernels (one extra launch + a tiny stream), which is the
/// per-iteration overhead the paper contrasts with CuPy's restart-only
/// policy (§6.2.1).
void tick_small_device_op(const Executor* exec, size_type elems)
{
    exec->run(make_operation(
        "gmres_hessenberg_update",
        [&](const ReferenceExecutor* e) {
            mgko::kernels::tick(e, sim::profile_stream(
                                 static_cast<double>(elems) * 8.0, 0.0));
        },
        [&](const OmpExecutor* e) {
            mgko::kernels::tick(e, sim::profile_stream(
                                 static_cast<double>(elems) * 8.0, 0.0));
        },
        [&](const CudaExecutor* e) {
            mgko::kernels::tick(e, sim::profile_stream(
                                 static_cast<double>(elems) * 8.0, 0.0));
        },
        [&](const HipExecutor* e) {
            mgko::kernels::tick(e, sim::profile_stream(
                                 static_cast<double>(elems) * 8.0, 0.0));
        }));
}

/// Ginkgo solves the triangular Hessenberg system on the device, which
/// serializes into `steps` dependent small kernels — the trait the paper
/// identifies as a disadvantage against CuPy's host-side solve.
void tick_device_triangular(const Executor* exec, size_type steps)
{
    for (size_type i = 0; i < steps; ++i) {
        tick_small_device_op(exec, i + 1);
    }
}

// Device-side workspace slots; the Krylov basis and the Gram-Schmidt /
// update-step scratch are sized by (n, krylov_dim) and persist across
// apply() calls.  Per-inner-iteration sub-vectors (hcol for columns
// 0..j, the restart correction y) are row-block *views* into the
// full-size slots, so the inner loop never allocates.
enum gmres_slots : std::size_t {
    ws_r,
    ws_w,
    ws_w_hat,
    ws_basis,
    ws_hcol,
    ws_hcol2,
    ws_y,
    ws_reduce,
    ws_one,
    ws_neg_one,
    ws_coeff,
};

// Host-side workspace slots (Hessenberg/Givens state).
enum gmres_host_slots : std::size_t {
    ws_h_hessenberg,
    ws_h_givens_c,
    ws_h_givens_s,
    ws_h_g,
    ws_h_y,
};

}  // namespace


template <typename ValueType>
void Gmres<ValueType>::apply_impl(const LinOp* b, LinOp* x) const
{
    using detail::set_scalar;
    auto apply_span = this->make_span("solver.gmres.apply");
    auto exec = this->get_executor();
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    this->validate_single_column(dense_b);
    this->logger_->reset();

    const auto n = this->get_size().rows;
    const auto m = this->params_.krylov_dim;
    MGKO_ENSURE(m >= 1, "krylov_dim must be >= 1");

    auto& ws = this->workspace_;
    auto* r = ws.vec(ws_r, dim2{n, 1});
    auto* w = ws.vec(ws_w, dim2{n, 1});
    auto* w_hat = ws.vec(ws_w_hat, dim2{n, 1});
    // Krylov basis: n x (m+1), one column per basis vector.
    auto* basis = ws.vec(ws_basis, dim2{n, m + 1});
    // Full-height Gram-Schmidt coefficient columns; iteration j uses the
    // leading (j+1)-row view.
    auto* hcol_full = ws.vec(ws_hcol, dim2{m + 1, 1});
    auto* hcol2_full = ws.vec(ws_hcol2, dim2{m + 1, 1});
    auto* y_full = ws.vec(ws_y, dim2{m, 1});
    auto* reduce = ws.vec(ws_reduce, dim2{1, 1});
    auto* one_s = ws.scalar(ws_one, 1.0);
    auto* neg_one_s = ws.scalar(ws_neg_one, -1.0);
    auto* coeff_s = ws.scalar(ws_coeff, 0.0);

    // Hessenberg matrix and Givens state; physically these live on the
    // device in Ginkgo — here they are host-backed and their device cost is
    // charged via tick_small_device_op.  Only entries written this cycle
    // are ever read, so the persistent buffers need no re-zeroing.
    auto& hessenberg =
        ws.host(ws_h_hessenberg, static_cast<std::size_t>((m + 1) * m));
    auto h_at = [&](size_type i, size_type j) -> double& {
        return hessenberg[static_cast<std::size_t>(i * m + j)];
    };
    auto& givens_c = ws.host(ws_h_givens_c, static_cast<std::size_t>(m));
    auto& givens_s = ws.host(ws_h_givens_s, static_cast<std::size_t>(m));
    auto& g = ws.host(ws_h_g, static_cast<std::size_t>(m + 1));

    const double b_norm = detail::norm2(dense_b, reduce);
    double r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                             dense_x, r, one_s, neg_one_s,
                                             reduce);
    auto criterion = this->bind_criterion(b_norm, r_norm);
    this->log_iteration(0, r_norm);

    size_type total_iters = 0;
    bool breakdown_converged = false;
    bool stopped = criterion->is_satisfied(total_iters, r_norm);
    while (!stopped) {
        // --- start a restart cycle --------------------------------------
        auto cycle_span = this->make_span("solver.gmres.cycle");
        // Left-preconditioned initial direction: v0 = M r / ||M r||.
        this->precond_->apply(r, w_hat);
        const double beta0 = detail::norm2(w_hat, reduce);
        if (beta0 == 0.0 || !std::isfinite(beta0)) {
            this->log_stop(total_iters, beta0 == 0.0,
                                    beta0 == 0.0 ? "exact solution reached"
                                                 : "breakdown: non-finite "
                                                   "residual");
            return;
        }
        {
            auto v0 = basis->column_view(0);
            v0->copy_from(w_hat);
            set_scalar(coeff_s, 1.0 / beta0);
            v0->scale(coeff_s);
        }
        std::fill(g.begin(), g.end(), 0.0);
        g[0] = beta0;
        double res_estimate = beta0;

        size_type j_end = 0;
        for (size_type j = 0; j < m; ++j) {
            auto iteration_span = this->make_span("solver.gmres.iteration");
            // w = M A v_j
            {
                auto vj = basis->column_view(j);
                this->system_->apply(vj.get(), w_hat);
            }
            this->precond_->apply(w_hat, w);
            // Block Gram-Schmidt against columns 0..j with a second
            // re-orthogonalization pass (CGS2) — Ginkgo re-orthogonalizes
            // for robustness, doubling the dense projection work relative
            // to CuPy's single-pass projection.
            auto vblock = Dense<ValueType>::create_view(
                exec, dim2{n, j + 1}, basis->get_values(), m + 1);
            auto hcol = hcol_full->row_block_view(0, j + 1);
            vblock->transpose_apply(w, hcol.get());
            vblock->apply(neg_one_s, hcol.get(), one_s, w);
            auto hcol2 = hcol2_full->row_block_view(0, j + 1);
            vblock->transpose_apply(w, hcol2.get());
            vblock->apply(neg_one_s, hcol2.get(), one_s, w);
            for (size_type i = 0; i <= j; ++i) {
                h_at(i, j) =
                    to_float(hcol->at(i, 0)) + to_float(hcol2->at(i, 0));
            }
            const double h_next = detail::norm2(w, reduce);
            h_at(j + 1, j) = h_next;

            const bool happy_breakdown =
                h_next <= 1e-14 * std::abs(h_at(j, j) + 1e-300);
            if (!happy_breakdown) {
                auto vnext = basis->column_view(j + 1);
                vnext->copy_from(w);
                set_scalar(coeff_s, 1.0 / h_next);
                vnext->scale(coeff_s);
            }

            // Givens update of column j (device-side in Ginkgo).
            for (size_type i = 0; i < j; ++i) {
                const double tmp =
                    givens_c[i] * h_at(i, j) + givens_s[i] * h_at(i + 1, j);
                h_at(i + 1, j) = -givens_s[i] * h_at(i, j) +
                                 givens_c[i] * h_at(i + 1, j);
                h_at(i, j) = tmp;
            }
            const double denom = std::hypot(h_at(j, j), h_at(j + 1, j));
            givens_c[j] = denom == 0.0 ? 1.0 : h_at(j, j) / denom;
            givens_s[j] = denom == 0.0 ? 0.0 : h_at(j + 1, j) / denom;
            h_at(j, j) = denom;
            h_at(j + 1, j) = 0.0;
            g[j + 1] = -givens_s[j] * g[j];
            g[j] = givens_c[j] * g[j];
            res_estimate = std::abs(g[j + 1]);
            // Givens rotation + residual-estimate update: two small device
            // kernels in Ginkgo's implementation.
            tick_small_device_op(exec.get(), j + 2);
            tick_small_device_op(exec.get(), 2);
            if (check_every_update_) {
                // The per-update convergence check reads the residual
                // estimate back to the host and stalls the pipeline until
                // the host reacts: a device-to-host round trip (two
                // interconnect latencies) plus a stream synchronization per
                // inner iteration.  This is the "(restart - 1) additional
                // checks" cost the paper contrasts with CuPy's restart-only
                // policy (§6.2.1).
                exec->charge_copy(exec->get_master().get(),
                                  static_cast<size_type>(sizeof(double)));
                exec->clock().tick(exec->model().transfer_latency_ns);
                exec->synchronize();
            }

            ++total_iters;
            j_end = j + 1;
            this->log_iteration(total_iters, res_estimate);
            if (happy_breakdown) {
                stopped = true;
                breakdown_converged = true;
                break;
            }
            // The paper's point: Ginkgo checks after every update; CuPy
            // only at restart boundaries.
            if (check_every_update_ &&
                criterion->is_satisfied(total_iters, res_estimate)) {
                stopped = true;
                break;
            }
        }

        // --- solve the triangular system R y = g (device) ---------------
        auto& y = ws.host(ws_h_y, static_cast<std::size_t>(j_end));
        for (size_type i = j_end; i-- > 0;) {
            double sum = g[i];
            for (size_type l = i + 1; l < j_end; ++l) {
                sum -= h_at(i, l) * y[static_cast<std::size_t>(l)];
            }
            const double diag = h_at(i, i);
            y[static_cast<std::size_t>(i)] =
                diag == 0.0 ? 0.0 : sum / diag;
        }
        tick_device_triangular(exec.get(), j_end);

        // x += V(:, 0..j_end-1) * y  (single GEMV).
        auto y_dev = y_full->row_block_view(0, j_end);
        for (size_type i = 0; i < j_end; ++i) {
            y_dev->get_values()[i * y_dev->get_stride()] =
                static_cast<ValueType>(y[static_cast<std::size_t>(i)]);
        }
        auto vblock = Dense<ValueType>::create_view(
            exec, dim2{n, j_end}, basis->get_values(), m + 1);
        vblock->apply(one_s, y_dev.get(), one_s, dense_x);

        // True residual for the restart decision.  The inner loop logged
        // the Givens estimate for this iteration; replace it with the true
        // norm so restart-boundary (and final) history entries follow the
        // same convention as the other solvers.
        r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                          dense_x, r, one_s, neg_one_s,
                                          reduce);
        this->update_last_residual(r_norm);
        if (!stopped) {
            stopped = criterion->is_satisfied(total_iters, r_norm);
        }
    }
    if (breakdown_converged) {
        this->log_stop(total_iters, true,
                                "happy breakdown: exact Krylov solution");
    } else {
        this->log_stop(total_iters,
                                criterion->indicates_convergence(),
                                criterion->reason());
    }
}


#define MGKO_DECLARE_GMRES(ValueType) template class Gmres<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_GMRES);


}  // namespace mgko::solver
