#include "solver/direct.hpp"

#include <cmath>

#include "core/kernel_utils.hpp"
#include "core/math.hpp"
#include "sim/cost_model.hpp"

namespace mgko::solver {


template <typename ValueType, typename IndexType>
Direct<ValueType, IndexType>::Direct(
    std::shared_ptr<const Executor> exec,
    std::shared_ptr<const Csr<ValueType, IndexType>> system)
    : LinOp{exec, system->get_size()}
{
    const auto n = system->get_size().rows;
    MGKO_ENSURE(system->get_size().rows == system->get_size().cols,
                "direct solver requires a square system");
    MGKO_ENSURE(n <= max_dimension,
                "direct solver densifies the system; dimension exceeds the "
                "guard rail");
    lu_ = Dense<ValueType>::create(exec, dim2{n});
    system->convert_to(lu_.get());
    pivots_.resize(static_cast<std::size_t>(n));

    // LU factorization with partial pivoting (accumulated in the value
    // type, as a device implementation would).
    auto* a = lu_->get_values();
    const auto stride = lu_->get_stride();
    for (size_type col = 0; col < n; ++col) {
        size_type pivot = col;
        double best = std::abs(to_float(a[col * stride + col]));
        for (size_type r = col + 1; r < n; ++r) {
            const double candidate = std::abs(to_float(a[r * stride + col]));
            if (candidate > best) {
                best = candidate;
                pivot = r;
            }
        }
        if (best == 0.0) {
            throw NumericalError(__FILE__, __LINE__,
                                 "singular matrix in direct solver at column " +
                                     std::to_string(col));
        }
        pivots_[static_cast<std::size_t>(col)] = pivot;
        if (pivot != col) {
            for (size_type c = 0; c < n; ++c) {
                std::swap(a[col * stride + c], a[pivot * stride + c]);
            }
        }
        const auto diag = a[col * stride + col];
        for (size_type r = col + 1; r < n; ++r) {
            const auto factor = a[r * stride + col] / diag;
            a[r * stride + col] = factor;
            if (factor != zero<ValueType>()) {
                for (size_type c = col + 1; c < n; ++c) {
                    a[r * stride + c] -= factor * a[col * stride + c];
                }
            }
        }
    }
    // Generate-time cost: the O(2/3 n^3) factorization.
    const double nd = static_cast<double>(n);
    exec->clock().tick(
        sim::profile_stream(nd * nd * sizeof(ValueType) * 2.0,
                            2.0 / 3.0 * nd * nd * nd, 0.8)
            .time_ns(exec->model()));
}


template <typename ValueType, typename IndexType>
void Direct<ValueType, IndexType>::apply_impl(const LinOp* b, LinOp* x) const
{
    log::ScopedSpan apply_span{this, this->get_executor().get(),
                               "solver.direct.apply"};
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    const auto n = get_size().rows;
    const auto vec_cols = dense_b->get_size().cols;
    dense_x->copy_from(dense_b);
    auto* xv = dense_x->get_values();
    const auto xs = dense_x->get_stride();
    const auto* a = lu_->get_const_values();
    const auto stride = lu_->get_stride();

    auto kernel = [&](const Executor* e) {
        // apply the pivot permutation
        for (size_type col = 0; col < n; ++col) {
            const auto p = pivots_[static_cast<std::size_t>(col)];
            if (p != col) {
                for (size_type c = 0; c < vec_cols; ++c) {
                    std::swap(xv[col * xs + c], xv[p * xs + c]);
                }
            }
        }
        // forward substitution (unit lower)
        for (size_type r = 1; r < n; ++r) {
            for (size_type c = 0; c < vec_cols; ++c) {
                using acc_t = accumulate_t<ValueType>;
                acc_t acc = static_cast<acc_t>(xv[r * xs + c]);
                for (size_type j = 0; j < r; ++j) {
                    acc -= static_cast<acc_t>(a[r * stride + j]) *
                           static_cast<acc_t>(xv[j * xs + c]);
                }
                xv[r * xs + c] = ValueType{acc};
            }
        }
        // backward substitution
        for (size_type r = n; r-- > 0;) {
            for (size_type c = 0; c < vec_cols; ++c) {
                using acc_t = accumulate_t<ValueType>;
                acc_t acc = static_cast<acc_t>(xv[r * xs + c]);
                for (size_type j = r + 1; j < n; ++j) {
                    acc -= static_cast<acc_t>(a[r * stride + j]) *
                           static_cast<acc_t>(xv[j * xs + c]);
                }
                xv[r * xs + c] =
                    ValueType{acc} / a[r * stride + r];
            }
        }
        const double nd = static_cast<double>(n);
        mgko::kernels::tick(
            e, sim::profile_stream(nd * nd * sizeof(ValueType),
                                   2.0 * nd * nd *
                                       static_cast<double>(vec_cols),
                                   0.8));
    };
    get_executor()->run(make_operation(
        "direct_solve", [&](const ReferenceExecutor* e) { kernel(e); },
        [&](const OmpExecutor* e) { kernel(e); },
        [&](const CudaExecutor* e) { kernel(e); },
        [&](const HipExecutor* e) { kernel(e); }));
}


template <typename ValueType, typename IndexType>
void Direct<ValueType, IndexType>::apply_impl(const LinOp* alpha,
                                              const LinOp* b,
                                              const LinOp* beta,
                                              LinOp* x) const
{
    auto dense_x = as_dense<ValueType>(x);
    auto* tmp = detail::ensure_vec(adv_tmp_, get_executor(),
                                   dense_x->get_size());
    apply_impl(b, tmp);
    dense_x->scale(as_dense<ValueType>(beta));
    dense_x->add_scaled(as_dense<ValueType>(alpha), tmp);
}


template <typename ValueType, typename IndexType>
std::unique_ptr<LinOp> Direct<ValueType, IndexType>::Factory::generate_impl(
    std::shared_ptr<const LinOp> system) const
{
    auto csr =
        std::dynamic_pointer_cast<const Csr<ValueType, IndexType>>(system);
    if (!csr) {
        MGKO_NOT_SUPPORTED(
            "Direct requires a Csr system of matching value/index type");
    }
    return std::unique_ptr<LinOp>{
        new Direct{this->get_executor(), std::move(csr)}};
}


#define MGKO_DECLARE_DIRECT(ValueType, IndexType) \
    template class Direct<ValueType, IndexType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_DIRECT);


}  // namespace mgko::solver
