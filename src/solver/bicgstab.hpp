// BiCGStab solver (nonsymmetric systems, smoother convergence than CGS).
#pragma once

#include "solver/solver_base.hpp"

namespace mgko::solver {


template <typename ValueType = double>
class Bicgstab : public IterativeSolver<ValueType> {
public:
    static builder<Bicgstab> build() { return {}; }

protected:
    friend class SolverFactory<Bicgstab>;
    Bicgstab(std::shared_ptr<const Executor> exec, iterative_parameters params,
             std::shared_ptr<const LinOp> system)
        : IterativeSolver<ValueType>{std::move(exec), std::move(params),
                                     std::move(system)}
    {}

    void apply_impl(const LinOp* b, LinOp* x) const override;
    using IterativeSolver<ValueType>::apply_impl;
};


}  // namespace mgko::solver
