// Shared machinery for iterative solvers: the parameter/builder pattern,
// the solver factory template, and the common solver state (system matrix,
// preconditioner, criteria, logger).
//
// Usage (mirrors Ginkgo's factory idiom, which pyGinkgo's solver bindings
// wrap — Figure 2 of the paper):
//
//   auto solver = mgko::solver::Cg<double>::build()
//                     .with_criteria(stop::iteration(1000))
//                     .with_criteria(stop::residual_norm(1e-6))
//                     .with_preconditioner(jacobi_factory)
//                     .on(exec)
//                     ->generate(A);
//   solver->apply(b, x);
//   auto logger = solver->get_logger();
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/lin_op.hpp"
#include "core/types.hpp"
#include "log/event_logger.hpp"
#include "log/logger.hpp"
#include "matrix/dense.hpp"
#include "solver/workspace.hpp"
#include "stop/criterion.hpp"

namespace mgko::solver {


/// Working precision of a solver's inner stage.  Used by mixed-precision
/// IR (config key "inner_precision"): the outer residual stays in the
/// solver's value type while the inner correction solve runs reduced.
enum class precision { full, single, half_prec };

std::string to_string(precision p);
/// Parses "double"/"full", "float"/"single", "half"; throws BadParameter
/// on anything else.
precision precision_from_string(const std::string& name);


/// Parameters shared by the iterative solvers.  Unknown fields are ignored
/// by solvers that do not use them (krylov_dim by CG, etc.).
struct iterative_parameters {
    std::vector<std::shared_ptr<const stop::CriterionFactory>> criteria;
    /// Generated per system matrix at generate() time.
    std::shared_ptr<const LinOpFactory> preconditioner;
    /// Used directly (overrides `preconditioner`).
    std::shared_ptr<const LinOp> generated_preconditioner;
    /// GMRES restart length (paper default: 30).
    size_type krylov_dim{30};
    /// Richardson relaxation factor.
    double relaxation_factor{1.0};
    /// Inner-stage working precision (mixed-precision IR).
    precision inner_precision{precision::full};
};


/// Fluent builder over iterative_parameters, terminated by .on(exec).
template <typename Solver>
class SolverFactory;

template <typename Solver>
class builder : public iterative_parameters {
public:
    builder& with_criteria(std::shared_ptr<const stop::CriterionFactory> c)
    {
        criteria.push_back(std::move(c));
        return *this;
    }
    builder& with_preconditioner(std::shared_ptr<const LinOpFactory> factory)
    {
        preconditioner = std::move(factory);
        return *this;
    }
    builder& with_generated_preconditioner(std::shared_ptr<const LinOp> op)
    {
        generated_preconditioner = std::move(op);
        return *this;
    }
    builder& with_krylov_dim(size_type dim)
    {
        krylov_dim = dim;
        return *this;
    }
    builder& with_relaxation_factor(double factor)
    {
        relaxation_factor = factor;
        return *this;
    }
    builder& with_inner_precision(precision p)
    {
        inner_precision = p;
        return *this;
    }

    std::shared_ptr<SolverFactory<Solver>> on(
        std::shared_ptr<const Executor> exec) const
    {
        return std::make_shared<SolverFactory<Solver>>(std::move(exec), *this);
    }
};


template <typename Solver>
class SolverFactory : public LinOpFactory {
public:
    SolverFactory(std::shared_ptr<const Executor> exec,
                  iterative_parameters params)
        : LinOpFactory{std::move(exec)}, params_{std::move(params)}
    {}

    const iterative_parameters& get_parameters() const { return params_; }

protected:
    std::unique_ptr<LinOp> generate_impl(
        std::shared_ptr<const LinOp> system) const override
    {
        return std::unique_ptr<LinOp>{
            new Solver{get_executor(), params_, std::move(system)}};
    }

private:
    iterative_parameters params_;
};


/// Common state and helpers of the iterative solvers.
template <typename ValueType>
class IterativeSolver : public LinOp {
public:
    using value_type = ValueType;

    std::shared_ptr<const LinOp> get_system_matrix() const { return system_; }
    std::shared_ptr<const LinOp> get_preconditioner() const
    {
        return precond_;
    }
    /// Diagnostics of the most recent apply (paper §3.5: apply returns a
    /// logger alongside the solution).
    std::shared_ptr<log::ConvergenceLogger> get_logger() const
    {
        return logger_;
    }
    const iterative_parameters& get_parameters() const { return params_; }

protected:
    IterativeSolver(std::shared_ptr<const Executor> exec,
                    iterative_parameters params,
                    std::shared_ptr<const LinOp> system)
        : LinOp{exec, system->get_size()},
          params_{std::move(params)},
          system_{std::move(system)},
          logger_{std::make_shared<log::ConvergenceLogger>()},
          workspace_{exec}
    {
        MGKO_ENSURE(system_->get_size().rows == system_->get_size().cols,
                    "iterative solvers require a square system");
        MGKO_ENSURE(!params_.criteria.empty(),
                    "solver requires at least one stopping criterion");
        if (params_.generated_preconditioner) {
            MGKO_ASSERT_EQUAL_DIMENSIONS(
                "preconditioner", params_.generated_preconditioner->get_size(),
                system_->get_size());
            precond_ = params_.generated_preconditioner;
        } else if (params_.preconditioner) {
            precond_ = params_.preconditioner->generate(system_);
        } else {
            precond_ = Identity::create(exec, system_->get_size().rows);
        }
    }

    /// Binds the configured criteria to this solve's baselines.
    std::unique_ptr<stop::Criterion> bind_criterion(
        double rhs_norm, double initial_resnorm) const
    {
        return stop::Combined{params_.criteria}.create(rhs_norm,
                                                       initial_resnorm);
    }

    /// Invokes `fn` on every event logger attached to this solver and to
    /// its executor — solver progress is visible from either attachment
    /// point.  One empty check per layer when nothing is attached.
    template <typename Fn>
    void broadcast_event(Fn&& fn) const
    {
        for (const auto& logger : this->get_loggers()) {
            fn(*logger);
        }
        for (const auto& logger : this->get_executor()->get_loggers()) {
            fn(*logger);
        }
    }

    /// Opens a span visible from both attachment points broadcast_event
    /// reaches (the solver and its executor); destruction closes it, so
    /// early returns keep the trace well nested.  Solvers bracket their
    /// apply ("solver.<name>.apply") and each iteration
    /// ("solver.<name>.iteration") with one of these.
    log::ScopedSpan make_span(const char* name) const
    {
        return log::ScopedSpan{this, this->get_executor().get(), name};
    }

    /// Records one iteration on the ConvergenceLogger and broadcasts it as
    /// an event.  Solvers call this (not logger_ directly) so both sinks
    /// stay consistent; the history convention is one entry per iteration
    /// with entry 0 the initial residual.
    void log_iteration(size_type iteration, double residual_norm) const
    {
        logger_->log_iteration(iteration, residual_norm);
        broadcast_event([&](log::EventLogger& l) {
            l.on_iteration_complete(this, iteration, residual_norm);
        });
    }

    /// Records the stop decision and broadcasts it as an event.
    void log_stop(size_type iteration, bool converged,
                  const std::string& reason) const
    {
        logger_->log_stop(iteration, converged, reason);
        broadcast_event([&](log::EventLogger& l) {
            l.on_solver_stop(this, iteration, converged, reason.c_str());
        });
    }

    /// Replaces the most recently logged residual with a later, more
    /// accurate value (GMRES overwrites the Givens estimate with the true
    /// norm it computes at the restart boundary).
    void update_last_residual(double residual_norm) const
    {
        logger_->update_last(residual_norm);
    }

    // Un-hide the two-argument overload so the advanced apply below can
    // dispatch to the concrete solver's implementation.
    using LinOp::apply_impl;

    /// Common advanced apply: x = alpha * solve(b) + beta * x.  The
    /// temporary solution is cached across calls (separately from the
    /// solver's workspace_, whose slots the nested apply_impl uses).
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override
    {
        auto dense_x = as_dense<ValueType>(x);
        auto* tmp = detail::ensure_vec(adv_tmp_, this->get_executor(),
                                       dense_x->get_size());
        tmp->copy_from(dense_x);
        this->apply_impl(b, tmp);
        dense_x->scale(as_dense<ValueType>(beta));
        dense_x->add_scaled(as_dense<ValueType>(alpha), tmp);
    }

    /// Krylov solvers here handle one right-hand side per apply.
    static void validate_single_column(const Dense<ValueType>* b)
    {
        if (b->get_size().cols != 1) {
            MGKO_NOT_SUPPORTED(
                "iterative solvers support a single right-hand side column");
        }
    }

    iterative_parameters params_;
    std::shared_ptr<const LinOp> system_;
    std::shared_ptr<const LinOp> precond_;
    std::shared_ptr<log::ConvergenceLogger> logger_;
    /// All Krylov temporaries live here, allocated on first apply() and
    /// reused by every subsequent one (resized only when the system
    /// dimension changes).  Mutable because apply() is logically const.
    mutable Workspace<ValueType> workspace_;
    /// Cached temporary of the advanced apply (x-sized; kept out of
    /// workspace_ because the nested plain apply uses the workspace slots).
    mutable std::unique_ptr<Dense<ValueType>> adv_tmp_;
};


}  // namespace mgko::solver
