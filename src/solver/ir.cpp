#include "solver/ir.hpp"

#include "core/math.hpp"
#include "solver/detail.hpp"

namespace mgko::solver {


template <typename ValueType>
void Ir<ValueType>::apply_impl(const LinOp* b, LinOp* x) const
{
    using detail::scalar;
    auto exec = this->get_executor();
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    this->validate_single_column(dense_b);
    this->logger_->reset();

    const auto n = this->get_size().rows;
    auto r = Dense<ValueType>::create(exec, dim2{n, 1});
    auto d = Dense<ValueType>::create(exec, dim2{n, 1});
    auto one_s = scalar<ValueType>(exec, 1.0);
    auto neg_one_s = scalar<ValueType>(exec, -1.0);
    auto omega_s =
        scalar<ValueType>(exec, this->params_.relaxation_factor);

    const double b_norm = dense_b->norm2_scalar();
    double r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                             dense_x, r.get(), one_s.get(),
                                             neg_one_s.get());
    auto criterion = this->bind_criterion(b_norm, r_norm);
    this->logger_->log_iteration(0, r_norm);

    size_type iter = 0;
    while (!criterion->is_satisfied(iter, r_norm)) {
        this->precond_->apply(r.get(), d.get());
        dense_x->add_scaled(omega_s.get(), d.get());
        r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                          dense_x, r.get(), one_s.get(),
                                          neg_one_s.get());
        ++iter;
        this->logger_->log_iteration(iter, r_norm);
    }
    this->logger_->log_stop(iter, criterion->indicates_convergence(),
                            criterion->reason());
}


#define MGKO_DECLARE_IR(ValueType) template class Ir<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_IR);


}  // namespace mgko::solver
