#include "solver/ir.hpp"

#include "core/math.hpp"
#include "solver/detail.hpp"

namespace mgko::solver {

namespace {
enum ir_slots : std::size_t {
    ws_r,
    ws_d,
    ws_reduce,
    ws_one,
    ws_neg_one,
    ws_omega,
};
}  // namespace


template <typename ValueType>
void Ir<ValueType>::apply_impl(const LinOp* b, LinOp* x) const
{
    auto apply_span = this->make_span("solver.ir.apply");
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    this->validate_single_column(dense_b);
    this->logger_->reset();

    const auto n = this->get_size().rows;
    auto& ws = this->workspace_;
    auto* r = ws.vec(ws_r, dim2{n, 1});
    auto* d = ws.vec(ws_d, dim2{n, 1});
    auto* reduce = ws.vec(ws_reduce, dim2{1, 1});
    auto* one_s = ws.scalar(ws_one, 1.0);
    auto* neg_one_s = ws.scalar(ws_neg_one, -1.0);
    auto* omega_s = ws.scalar(ws_omega, this->params_.relaxation_factor);

    const double b_norm = detail::norm2(dense_b, reduce);
    double r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                             dense_x, r, one_s, neg_one_s,
                                             reduce);
    auto criterion = this->bind_criterion(b_norm, r_norm);
    this->log_iteration(0, r_norm);

    size_type iter = 0;
    while (!criterion->is_satisfied(iter, r_norm)) {
        auto iteration_span = this->make_span("solver.ir.iteration");
        this->precond_->apply(r, d);
        dense_x->add_scaled(omega_s, d);
        r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                          dense_x, r, one_s, neg_one_s,
                                          reduce);
        ++iter;
        this->log_iteration(iter, r_norm);
    }
    this->log_stop(iter, criterion->indicates_convergence(),
                            criterion->reason());
}


#define MGKO_DECLARE_IR(ValueType) template class Ir<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_IR);


}  // namespace mgko::solver
