#include "solver/ir.hpp"

#include <algorithm>
#include <cmath>

#include "core/math.hpp"
#include "matrix/csr.hpp"
#include "preconditioner/jacobi.hpp"
#include "solver/detail.hpp"

namespace mgko::solver {

namespace {
enum ir_slots : std::size_t {
    ws_r,
    ws_d,
    ws_reduce,
    ws_one,
    ws_neg_one,
    ws_omega,
};


/// Reduced-precision inner correction solver: a persistent InnerV copy of
/// the system with a scalar-Jacobi preconditioner, driven by a fixed
/// number of Richardson sweeps per outer iteration.  All buffers are
/// allocated once here, so solve() is allocation-free.
template <typename V, typename InnerV, typename I>
class ir_inner_state : public detail::ir_inner_base<V> {
public:
    /// Enough sweeps to make the correction useful, few enough that the
    /// outer loop still dominates the residual trajectory.
    static constexpr size_type default_sweeps = 8;

    ir_inner_state(std::shared_ptr<const Executor> exec,
                   const Csr<V, I>* system, size_type sweeps = default_sweeps)
        : exec_{std::move(exec)}, sweeps_{sweeps}
    {
        a_ = Csr<InnerV, I>::create_from_data(
            exec_, system->to_data().template cast<InnerV, I>());
        precond_ = preconditioner::Jacobi<InnerV, I>::build()
                       .on(exec_)
                       ->generate(a_);
        const auto n = a_->get_size().rows;
        r_ = Dense<InnerV>::create(exec_, dim2{n, 1});
        d_ = Dense<InnerV>::create(exec_, dim2{n, 1});
        t_ = Dense<InnerV>::create(exec_, dim2{n, 1});
        u_ = Dense<InnerV>::create(exec_, dim2{n, 1});
        one_ = Dense<InnerV>::create_scalar(exec_, one<InnerV>());
        neg_one_ = Dense<InnerV>::create_scalar(exec_, -one<InnerV>());
    }

    void solve(const Dense<V>* r, Dense<V>* d) override
    {
        const auto n = a_->get_size().rows;
        // Scale the residual to O(1) before downcasting: late-stage IR
        // residuals sit far below the fp16 subnormal floor, and A d = r is
        // linear, so solving with r/s and multiplying the correction by s
        // costs nothing but saves every mantissa bit.
        const auto* src = r->get_const_values();
        double r_max = 0.0;
        for (size_type i = 0; i < n; ++i) {
            r_max = std::max(
                r_max, std::abs(static_cast<double>(to_float(src[i]))));
        }
        if (r_max == 0.0 || !std::isfinite(r_max)) {
            d->fill(zero<V>());
            return;
        }
        const double scale = 1.0 / r_max;
        // Downcast the scaled outer residual; the sim clock is charged for
        // the read+write traffic of the cast, like any other copy.
        auto* r_in = r_->get_values();
        for (size_type i = 0; i < n; ++i) {
            r_in[i] =
                static_cast<InnerV>(to_float(src[i]) * scale);
        }
        exec_->charge_copy(nullptr, n * (sizeof(V) + sizeof(InnerV)));

        // Jacobi-preconditioned Richardson on A_in d = r_in from d = 0:
        // d += D^{-1} (r - A d).  Every SpMV streams InnerV-width values —
        // the bandwidth saving that makes mixed-precision IR pay off.
        d_->fill(zero<InnerV>());
        for (size_type sweep = 0; sweep < sweeps_; ++sweep) {
            t_->copy_from(r_.get());
            if (sweep > 0) {
                a_->apply(neg_one_.get(), d_.get(), one_.get(), t_.get());
            }
            precond_->apply(t_.get(), u_.get());
            d_->add_scaled(one_.get(), u_.get());
        }

        // Upcast the correction back to the outer precision, undoing the
        // residual scaling.
        const auto* d_in = d_->get_const_values();
        auto* dst = d->get_values();
        for (size_type i = 0; i < n; ++i) {
            dst[i] = static_cast<V>(to_float(d_in[i]) * r_max);
        }
        exec_->charge_copy(nullptr, n * (sizeof(V) + sizeof(InnerV)));
    }

private:
    std::shared_ptr<const Executor> exec_;
    size_type sweeps_;
    std::shared_ptr<Csr<InnerV, I>> a_;
    std::shared_ptr<LinOp> precond_;
    std::unique_ptr<Dense<InnerV>> r_;
    std::unique_ptr<Dense<InnerV>> d_;
    std::unique_ptr<Dense<InnerV>> t_;
    std::unique_ptr<Dense<InnerV>> u_;
    std::unique_ptr<Dense<InnerV>> one_;
    std::unique_ptr<Dense<InnerV>> neg_one_;
};


/// Builds the inner state for the configured reduced precision, deducing
/// the system's index type at runtime.  Mixed-precision IR needs the
/// system as an honest sparse matrix to re-assemble it in InnerV.
template <typename V>
std::unique_ptr<detail::ir_inner_base<V>> make_inner(
    std::shared_ptr<const Executor> exec, const LinOp* system, precision p)
{
    auto build = [&](auto* csr) -> std::unique_ptr<detail::ir_inner_base<V>> {
        using I = typename std::remove_pointer_t<decltype(csr)>::index_type;
        if (p == precision::single) {
            return std::make_unique<ir_inner_state<V, float, I>>(
                std::move(exec), csr);
        }
        return std::make_unique<ir_inner_state<V, half, I>>(std::move(exec),
                                                            csr);
    };
    if (auto* csr32 = dynamic_cast<const Csr<V, int32>*>(system)) {
        return build(csr32);
    }
    if (auto* csr64 = dynamic_cast<const Csr<V, int64>*>(system)) {
        return build(csr64);
    }
    MGKO_NOT_SUPPORTED(
        "mixed-precision IR requires a CSR system matrix to build its "
        "reduced-precision copy");
}

}  // namespace


template <typename ValueType>
void Ir<ValueType>::apply_impl(const LinOp* b, LinOp* x) const
{
    auto apply_span = this->make_span("solver.ir.apply");
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    this->validate_single_column(dense_b);
    this->logger_->reset();

    const bool mixed = this->params_.inner_precision != precision::full;
    if (mixed && !inner_) {
        inner_ = make_inner<ValueType>(this->get_executor(),
                                       this->system_.get(),
                                       this->params_.inner_precision);
    }

    const auto n = this->get_size().rows;
    auto& ws = this->workspace_;
    auto* r = ws.vec(ws_r, dim2{n, 1});
    auto* d = ws.vec(ws_d, dim2{n, 1});
    auto* reduce = ws.vec(ws_reduce, dim2{1, 1});
    auto* one_s = ws.scalar(ws_one, 1.0);
    auto* neg_one_s = ws.scalar(ws_neg_one, -1.0);
    auto* omega_s = ws.scalar(ws_omega, this->params_.relaxation_factor);

    const double b_norm = detail::norm2(dense_b, reduce);
    double r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                             dense_x, r, one_s, neg_one_s,
                                             reduce);
    auto criterion = this->bind_criterion(b_norm, r_norm);
    this->log_iteration(0, r_norm);

    size_type iter = 0;
    while (!criterion->is_satisfied(iter, r_norm)) {
        auto iteration_span = this->make_span("solver.ir.iteration");
        if (mixed) {
            inner_->solve(r, d);
        } else {
            this->precond_->apply(r, d);
        }
        dense_x->add_scaled(omega_s, d);
        r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                          dense_x, r, one_s, neg_one_s,
                                          reduce);
        ++iter;
        this->log_iteration(iter, r_norm);
        if (!std::isfinite(r_norm)) {
            // Reduced-precision overflow/underflow can blow up the
            // correction; report the failure instead of spinning.
            this->log_stop(iter, false, "non-finite residual norm");
            return;
        }
    }
    this->log_stop(iter, criterion->indicates_convergence(),
                            criterion->reason());
}


#define MGKO_DECLARE_IR(ValueType) template class Ir<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_IR);


}  // namespace mgko::solver
