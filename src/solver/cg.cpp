#include "solver/cg.hpp"

#include "core/math.hpp"
#include "solver/detail.hpp"

namespace mgko::solver {

namespace {
// Workspace slots; allocated on the first apply, reused afterwards.
enum cg_slots : std::size_t {
    ws_r,
    ws_z,
    ws_p,
    ws_q,
    ws_reduce,
    ws_one,
    ws_neg_one,
    ws_alpha,
    ws_beta,
};
}  // namespace


template <typename ValueType>
void Cg<ValueType>::apply_impl(const LinOp* b, LinOp* x) const
{
    using detail::set_scalar;
    auto apply_span = this->make_span("solver.cg.apply");
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    this->validate_single_column(dense_b);
    this->logger_->reset();

    const auto n = this->get_size().rows;
    auto& ws = this->workspace_;
    auto* r = ws.vec(ws_r, dim2{n, 1});
    auto* z = ws.vec(ws_z, dim2{n, 1});
    auto* p = ws.vec(ws_p, dim2{n, 1});
    auto* q = ws.vec(ws_q, dim2{n, 1});
    auto* reduce = ws.vec(ws_reduce, dim2{1, 1});
    auto* one_s = ws.scalar(ws_one, 1.0);
    auto* neg_one_s = ws.scalar(ws_neg_one, -1.0);
    auto* alpha_s = ws.scalar(ws_alpha, 0.0);
    auto* beta_s = ws.scalar(ws_beta, 0.0);

    const double b_norm = detail::norm2(dense_b, reduce);
    double r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                             dense_x, r, one_s, neg_one_s,
                                             reduce);
    auto criterion = this->bind_criterion(b_norm, r_norm);
    this->log_iteration(0, r_norm);

    this->precond_->apply(r, z);
    p->copy_from(z);
    double rho = detail::dot(r, z, reduce);

    size_type iter = 0;
    while (!criterion->is_satisfied(iter, r_norm)) {
        auto iteration_span = this->make_span("solver.cg.iteration");
        this->system_->apply(p, q);
        const double pq = detail::dot(p, q, reduce);
        if (pq == 0.0 || !std::isfinite(pq)) {
            this->log_stop(iter, false, "breakdown: p'Ap == 0");
            return;
        }
        const double alpha = rho / pq;
        set_scalar(alpha_s, alpha);
        dense_x->add_scaled(alpha_s, p);
        r->sub_scaled(alpha_s, q);
        r_norm = detail::norm2(r, reduce);
        ++iter;
        this->log_iteration(iter, r_norm);
        if (criterion->is_satisfied(iter, r_norm)) {
            break;
        }
        this->precond_->apply(r, z);
        const double rho_new = detail::dot(r, z, reduce);
        set_scalar(beta_s, rho_new / rho);
        rho = rho_new;
        // p = z + beta * p
        p->scale(beta_s);
        p->add_scaled(one_s, z);
    }
    this->log_stop(iter, criterion->indicates_convergence(),
                            criterion->reason());
}


#define MGKO_DECLARE_CG(ValueType) template class Cg<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_CG);


}  // namespace mgko::solver
