// Direct solver (dense LU with partial pivoting) — one of the explicitly
// bound solvers in the paper's Figure 2 ("GMRES, the direct solver, and
// triangular solvers").
//
// The sparse system is densified and factorized at generate() time; each
// apply performs the permuted forward/backward substitution.  Intended for
// small/moderate systems (the factorization is O(n^3)); generation throws
// for n beyond a guard rail.
#pragma once

#include <memory>
#include <vector>

#include "core/lin_op.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"
#include "solver/workspace.hpp"

namespace mgko::solver {


template <typename ValueType = double, typename IndexType = int32>
class Direct : public LinOp {
public:
    using value_type = ValueType;
    using index_type = IndexType;

    class Factory : public LinOpFactory {
    public:
        explicit Factory(std::shared_ptr<const Executor> exec)
            : LinOpFactory{std::move(exec)}
        {}

    protected:
        std::unique_ptr<LinOp> generate_impl(
            std::shared_ptr<const LinOp> system) const override;
    };

    static std::shared_ptr<Factory> build_on(
        std::shared_ptr<const Executor> exec)
    {
        return std::make_shared<Factory>(std::move(exec));
    }

    /// Largest system the densifying direct solver accepts.
    static constexpr size_type max_dimension = 16384;

protected:
    friend class Factory;
    Direct(std::shared_ptr<const Executor> exec,
           std::shared_ptr<const Csr<ValueType, IndexType>> system);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    /// Packed LU factors (unit lower + upper) and the pivot permutation.
    std::unique_ptr<Dense<ValueType>> lu_;
    std::vector<size_type> pivots_;
    /// Cached temporary of the advanced apply, reused across calls.
    mutable std::unique_ptr<Dense<ValueType>> adv_tmp_;
};


}  // namespace mgko::solver
