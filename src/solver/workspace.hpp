// Persistent per-solver workspace (mirrors gko::solver::workspace).
//
// Every iterative solver owns one Workspace and draws all of its Krylov
// temporaries (r, z, p, q, the GMRES basis and Hessenberg/Givens storage,
// scalar coefficients) from it by slot id.  A slot is allocated on first
// use and reused verbatim by every later apply(); it is only reallocated
// when the requested dimensions change (i.e. the solver was pointed at a
// differently-sized system or right-hand side).  Together with the pooled
// executor allocator this makes steady-state solver iteration
// allocation-free: the second apply() on the same system performs zero new
// executor allocations (see DESIGN.md §"Persistent solver workspaces").
//
// Like Ginkgo's, an apply() that uses a workspace is not reentrant: two
// threads must not apply() the same solver instance concurrently (already
// the case before workspaces — the convergence logger is shared state).
#pragma once

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "matrix/dense.hpp"

namespace mgko::solver {


template <typename ValueType>
class Workspace {
public:
    explicit Workspace(std::shared_ptr<const Executor> exec)
        : exec_{std::move(exec)}
    {}

    /// The dense matrix in slot `id`, created (or recreated) only when the
    /// slot is empty or its dimensions differ from `size`.  Contents are
    /// unspecified on (re)creation and persist across apply() calls
    /// otherwise.
    Dense<ValueType>* vec(std::size_t id, dim2 size)
    {
        if (id >= vecs_.size()) {
            vecs_.resize(id + 1);
        }
        auto& slot = vecs_[id];
        if (!slot || slot->get_size() != size) {
            slot = Dense<ValueType>::create(exec_, size);
        }
        return slot.get();
    }

    /// A 1x1 coefficient in slot `id` with `value` written host-side (no
    /// fill kernel — solvers fold scalar updates into their vector kernels,
    /// as the real GPU kernels do).
    Dense<ValueType>* scalar(std::size_t id, double value)
    {
        auto* s = vec(id, dim2{1, 1});
        s->get_values()[0] = static_cast<ValueType>(value);
        return s;
    }

    /// A persistent host-side double buffer of exactly `size` elements
    /// (GMRES Hessenberg/Givens state).  Contents persist across calls
    /// when the size is unchanged; they are NOT zeroed — callers
    /// reinitialize what they read.  The returned reference stays valid
    /// across later host() calls (deque-backed: growing the slot table
    /// never relocates existing slots).
    std::vector<double>& host(std::size_t id, std::size_t size)
    {
        if (id >= host_.size()) {
            host_.resize(id + 1);
        }
        host_[id].resize(size);
        return host_[id];
    }

    std::shared_ptr<const Executor> get_executor() const { return exec_; }

private:
    std::shared_ptr<const Executor> exec_;
    std::vector<std::unique_ptr<Dense<ValueType>>> vecs_;
    std::deque<std::vector<double>> host_;
};


namespace detail {

/// Size-keyed single-slot cache for the advanced-apply temporary and the
/// preconditioner intermediates: reuses `slot` while the requested
/// dimensions match, reallocates otherwise.
template <typename ValueType>
Dense<ValueType>* ensure_vec(std::unique_ptr<Dense<ValueType>>& slot,
                             const std::shared_ptr<const Executor>& exec,
                             dim2 size)
{
    if (!slot || slot->get_size() != size) {
        slot = Dense<ValueType>::create(exec, size);
    }
    return slot.get();
}

}  // namespace detail


}  // namespace mgko::solver
