// Sparse triangular solvers (LowerTrs / UpperTrs), the building blocks of
// the ILU and IC preconditioners (paper Figure 2 lists triangular solvers
// among the explicitly bound solvers).
//
// The reference backend runs the sequential substitution sweep; parallel
// backends use level scheduling: rows are grouped into dependency levels,
// each level is one parallel kernel.  On the simulated devices every level
// costs a kernel launch, which models why sparse triangular solves are
// latency-bound on GPUs.
#pragma once

#include <memory>
#include <vector>

#include "core/lin_op.hpp"
#include "core/types.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"
#include "solver/workspace.hpp"

namespace mgko::solver {


struct triangular_parameters {
    /// Treat the diagonal as 1 (stored diagonal entries are ignored).
    bool unit_diagonal{false};
};


template <typename Trs>
class TrsFactory;

template <typename Trs>
class trs_builder : public triangular_parameters {
public:
    trs_builder& with_unit_diagonal(bool value)
    {
        unit_diagonal = value;
        return *this;
    }
    std::shared_ptr<TrsFactory<Trs>> on(
        std::shared_ptr<const Executor> exec) const
    {
        return std::make_shared<TrsFactory<Trs>>(std::move(exec), *this);
    }
};

template <typename Trs>
class TrsFactory : public LinOpFactory {
public:
    TrsFactory(std::shared_ptr<const Executor> exec,
               triangular_parameters params)
        : LinOpFactory{std::move(exec)}, params_{params}
    {}
    const triangular_parameters& get_parameters() const { return params_; }

protected:
    std::unique_ptr<LinOp> generate_impl(
        std::shared_ptr<const LinOp> system) const override
    {
        auto csr = std::dynamic_pointer_cast<
            const Csr<typename Trs::value_type, typename Trs::index_type>>(
            system);
        if (!csr) {
            MGKO_NOT_SUPPORTED(
                "triangular solvers require a Csr system matrix of matching "
                "value/index type");
        }
        return std::unique_ptr<LinOp>{
            new Trs{get_executor(), params_, std::move(csr)}};
    }

private:
    triangular_parameters params_;
};


/// Common state: the factor matrix plus its level schedule.
template <typename ValueType, typename IndexType, bool Lower>
class TriangularSolver : public LinOp {
public:
    using value_type = ValueType;
    using index_type = IndexType;

    std::shared_ptr<const Csr<ValueType, IndexType>> get_system_matrix() const
    {
        return matrix_;
    }
    size_type num_levels() const
    {
        return static_cast<size_type>(level_offsets_.size()) - 1;
    }
    bool unit_diagonal() const { return params_.unit_diagonal; }

protected:
    TriangularSolver(std::shared_ptr<const Executor> exec,
                     triangular_parameters params,
                     std::shared_ptr<const Csr<ValueType, IndexType>> matrix);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    void build_level_schedule();

    triangular_parameters params_;
    std::shared_ptr<const Csr<ValueType, IndexType>> matrix_;
    /// Rows permuted so each level is contiguous; level l spans
    /// [level_offsets_[l], level_offsets_[l+1]).
    std::vector<IndexType> level_rows_;
    std::vector<size_type> level_offsets_;
    /// Cached temporary of the advanced apply, reused across calls.
    mutable std::unique_ptr<Dense<ValueType>> adv_tmp_;
};


template <typename ValueType = double, typename IndexType = int32>
class LowerTrs final
    : public TriangularSolver<ValueType, IndexType, true> {
public:
    static trs_builder<LowerTrs> build() { return {}; }

protected:
    friend class TrsFactory<LowerTrs>;
    LowerTrs(std::shared_ptr<const Executor> exec,
             triangular_parameters params,
             std::shared_ptr<const Csr<ValueType, IndexType>> matrix)
        : TriangularSolver<ValueType, IndexType, true>{
              std::move(exec), params, std::move(matrix)}
    {}
};


template <typename ValueType = double, typename IndexType = int32>
class UpperTrs final
    : public TriangularSolver<ValueType, IndexType, false> {
public:
    static trs_builder<UpperTrs> build() { return {}; }

protected:
    friend class TrsFactory<UpperTrs>;
    UpperTrs(std::shared_ptr<const Executor> exec,
             triangular_parameters params,
             std::shared_ptr<const Csr<ValueType, IndexType>> matrix)
        : TriangularSolver<ValueType, IndexType, false>{
              std::move(exec), params, std::move(matrix)}
    {}
};


}  // namespace mgko::solver
