// Iterative Refinement (preconditioned Richardson iteration):
// x += relaxation * M(b - A x).
//
// With `with_inner_precision(precision::single | half_prec)` the
// correction solve M(b - A x) is replaced by a few Jacobi-preconditioned
// Richardson sweeps on a reduced-precision copy of A: the outer residual
// b - A x stays in ValueType (the accuracy of the final answer), while the
// bandwidth-heavy inner SpMVs stream half-width values — the classic
// mixed-precision IR trade.  The reduced-precision system, its
// preconditioner, and all cast buffers persist across applies, so
// steady-state applications allocate nothing.
#pragma once

#include "solver/solver_base.hpp"

namespace mgko::solver {


namespace detail {

/// Type-erased inner correction solver of mixed-precision IR; defined
/// here (not in ir.cpp) so Ir<V>'s unique_ptr member has a complete type
/// wherever Ir is instantiated.
template <typename ValueType>
class ir_inner_base {
public:
    virtual ~ir_inner_base() = default;
    /// Approximately solves A d = r in reduced precision; r and d are in
    /// the outer precision.
    virtual void solve(const Dense<ValueType>* r, Dense<ValueType>* d) = 0;
};

}  // namespace detail


template <typename ValueType = double>
class Ir : public IterativeSolver<ValueType> {
public:
    static builder<Ir> build() { return {}; }

protected:
    friend class SolverFactory<Ir>;
    Ir(std::shared_ptr<const Executor> exec, iterative_parameters params,
       std::shared_ptr<const LinOp> system)
        : IterativeSolver<ValueType>{std::move(exec), std::move(params),
                                     std::move(system)}
    {}

    void apply_impl(const LinOp* b, LinOp* x) const override;
    using IterativeSolver<ValueType>::apply_impl;

private:
    /// Built lazily on the first apply that requests reduced precision.
    mutable std::unique_ptr<detail::ir_inner_base<ValueType>> inner_;
};


}  // namespace mgko::solver
