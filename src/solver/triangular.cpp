#include "solver/triangular.hpp"

#include <algorithm>

#include "core/kernel_utils.hpp"
#include "core/math.hpp"
#include "matrix/dense.hpp"

namespace mgko::solver {


template <typename ValueType, typename IndexType, bool Lower>
TriangularSolver<ValueType, IndexType, Lower>::TriangularSolver(
    std::shared_ptr<const Executor> exec, triangular_parameters params,
    std::shared_ptr<const Csr<ValueType, IndexType>> matrix)
    : LinOp{std::move(exec), matrix->get_size()},
      params_{params},
      matrix_{std::move(matrix)}
{
    MGKO_ENSURE(matrix_->get_size().rows == matrix_->get_size().cols,
                "triangular solve requires a square matrix");
    MGKO_ENSURE(matrix_->is_sorted_by_column_index(),
                "triangular solve requires sorted column indices");
    build_level_schedule();
}


template <typename ValueType, typename IndexType, bool Lower>
void TriangularSolver<ValueType, IndexType, Lower>::build_level_schedule()
{
    const auto n = matrix_->get_size().rows;
    const auto* row_ptrs = matrix_->get_const_row_ptrs();
    const auto* col_idxs = matrix_->get_const_col_idxs();

    // level[row] = 1 + max(level[dependency]); dependencies are the strictly
    // lower (upper) entries of the row.
    std::vector<size_type> level(static_cast<std::size_t>(n), 0);
    size_type max_level = 0;
    auto visit = [&](size_type row) {
        size_type lvl = 0;
        for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            const auto col = static_cast<size_type>(col_idxs[k]);
            const bool is_dep = Lower ? col < row : col > row;
            if (is_dep) {
                lvl = std::max(lvl, level[static_cast<std::size_t>(col)] + 1);
            }
        }
        level[static_cast<std::size_t>(row)] = lvl;
        max_level = std::max(max_level, lvl);
    };
    if (Lower) {
        for (size_type row = 0; row < n; ++row) {
            visit(row);
        }
    } else {
        for (size_type row = n; row-- > 0;) {
            visit(row);
        }
    }

    // Bucket rows by level (counting sort keeps it O(n + nnz)).
    level_offsets_.assign(static_cast<std::size_t>(max_level) + 2, 0);
    for (size_type row = 0; row < n; ++row) {
        ++level_offsets_[static_cast<std::size_t>(
            level[static_cast<std::size_t>(row)] + 1)];
    }
    for (std::size_t l = 1; l < level_offsets_.size(); ++l) {
        level_offsets_[l] += level_offsets_[l - 1];
    }
    level_rows_.resize(static_cast<std::size_t>(n));
    std::vector<size_type> cursor(level_offsets_.begin(),
                                  level_offsets_.end() - 1);
    for (size_type row = 0; row < n; ++row) {
        auto& pos = cursor[static_cast<std::size_t>(
            level[static_cast<std::size_t>(row)])];
        level_rows_[static_cast<std::size_t>(pos++)] =
            static_cast<IndexType>(row);
    }
}


namespace trs_kernels {

template <typename V, typename I, bool Lower>
inline void solve_row(const V* values, const I* col_idxs, const I* row_ptrs,
                      const V* b, size_type b_stride, V* x,
                      size_type x_stride, size_type row, size_type vec_cols,
                      bool unit_diagonal)
{
    for (size_type c = 0; c < vec_cols; ++c) {
        using acc_t = accumulate_t<V>;
        acc_t acc = static_cast<acc_t>(b[row * b_stride + c]);
        V diag = one<V>();
        for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            const auto col = static_cast<size_type>(col_idxs[k]);
            if (col == row) {
                diag = values[k];
            } else if (Lower ? col < row : col > row) {
                acc -= static_cast<acc_t>(values[k]) *
                       static_cast<acc_t>(x[col * x_stride + c]);
            }
        }
        x[row * x_stride + c] =
            unit_diagonal ? V{acc} : V{acc} / diag;
    }
}

}  // namespace trs_kernels


template <typename ValueType, typename IndexType, bool Lower>
void TriangularSolver<ValueType, IndexType, Lower>::apply_impl(
    const LinOp* b, LinOp* x) const
{
    log::ScopedSpan apply_span{this, this->get_executor().get(),
                               "solver.trs.apply"};
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    const auto vec_cols = dense_b->get_size().cols;
    const auto* values = matrix_->get_const_values();
    const auto* col_idxs = matrix_->get_const_col_idxs();
    const auto* row_ptrs = matrix_->get_const_row_ptrs();
    const auto n = matrix_->get_size().rows;
    const auto nnz = matrix_->get_num_stored_elements();
    const bool unit = params_.unit_diagonal;

    auto serial_sweep = [&] {
        if (Lower) {
            for (size_type row = 0; row < n; ++row) {
                trs_kernels::solve_row<ValueType, IndexType, Lower>(
                    values, col_idxs, row_ptrs, dense_b->get_const_values(),
                    dense_b->get_stride(), dense_x->get_values(),
                    dense_x->get_stride(), row, vec_cols, unit);
            }
        } else {
            for (size_type row = n; row-- > 0;) {
                trs_kernels::solve_row<ValueType, IndexType, Lower>(
                    values, col_idxs, row_ptrs, dense_b->get_const_values(),
                    dense_b->get_stride(), dense_x->get_values(),
                    dense_x->get_stride(), row, vec_cols, unit);
            }
        }
    };

    auto level_sweep = [&](const Executor* e) {
        const int nt = mgko::kernels::exec_threads(e);
        const auto levels = num_levels();
        for (size_type l = 0; l < levels; ++l) {
            const auto begin = level_offsets_[static_cast<std::size_t>(l)];
            const auto end = level_offsets_[static_cast<std::size_t>(l + 1)];
#pragma omp parallel for num_threads(nt) if (nt > 1 && end - begin > 64)
            for (size_type i = begin; i < end; ++i) {
                trs_kernels::solve_row<ValueType, IndexType, Lower>(
                    values, col_idxs, row_ptrs, dense_b->get_const_values(),
                    dense_b->get_stride(), dense_x->get_values(),
                    dense_x->get_stride(),
                    static_cast<size_type>(
                        level_rows_[static_cast<std::size_t>(i)]),
                    vec_cols, unit);
            }
        }
        // Cost: stream the factor once, plus one launch per level beyond
        // the first (the latency wall of sparse triangular solves).
        auto profile = sim::profile_stream(
            static_cast<double>(nnz) *
                    (sizeof(ValueType) + sizeof(IndexType)) +
                static_cast<double>(2 * n * sizeof(ValueType)) *
                    static_cast<double>(vec_cols),
            2.0 * static_cast<double>(nnz) * static_cast<double>(vec_cols),
            0.6);
        profile.extra_launches = static_cast<int>(levels > 0 ? levels - 1 : 0);
        mgko::kernels::tick(e, profile);
    };

    get_executor()->run(make_operation(
        "trs_solve",
        [&](const ReferenceExecutor* e) {
            serial_sweep();
            mgko::kernels::tick(
                e, sim::profile_stream(
                       static_cast<double>(nnz) *
                               (sizeof(ValueType) + sizeof(IndexType)) +
                           static_cast<double>(2 * n * sizeof(ValueType)),
                       2.0 * static_cast<double>(nnz), 0.7));
        },
        [&](const OmpExecutor* e) { level_sweep(e); },
        [&](const CudaExecutor* e) { level_sweep(e); },
        [&](const HipExecutor* e) { level_sweep(e); }));
}


template <typename ValueType, typename IndexType, bool Lower>
void TriangularSolver<ValueType, IndexType, Lower>::apply_impl(
    const LinOp* alpha, const LinOp* b, const LinOp* beta, LinOp* x) const
{
    auto dense_x = as_dense<ValueType>(x);
    auto* tmp = detail::ensure_vec(adv_tmp_, get_executor(),
                                   dense_x->get_size());
    apply_impl(b, tmp);
    dense_x->scale(as_dense<ValueType>(beta));
    dense_x->add_scaled(as_dense<ValueType>(alpha), tmp);
}


#define MGKO_DECLARE_TRS(ValueType, IndexType)                        \
    template class TriangularSolver<ValueType, IndexType, true>;     \
    template class TriangularSolver<ValueType, IndexType, false>;    \
    template class LowerTrs<ValueType, IndexType>;                    \
    template class UpperTrs<ValueType, IndexType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_TRS);


}  // namespace mgko::solver
