// Internal helpers shared by the solver implementations.
#pragma once

#include <memory>

#include "core/math.hpp"
#include "matrix/dense.hpp"

namespace mgko::solver::detail {


/// A 1x1 scalar whose value is written host-side without a fill kernel:
/// solvers fold scalar updates into their vector kernels (as the real GPU
/// kernels do), so scalar writes carry no modeled launch.
template <typename V>
std::unique_ptr<Dense<V>> scalar(std::shared_ptr<const Executor> exec,
                                 double value)
{
    auto result = Dense<V>::create(std::move(exec), dim2{1, 1});
    result->get_values()[0] = static_cast<V>(value);
    return result;
}

template <typename V>
void set_scalar(Dense<V>* s, double value)
{
    s->get_values()[0] = static_cast<V>(value);
}


/// a . b written into the persistent 1x1 `reduce` buffer and read back on
/// the host.  Using a workspace slot instead of Dense::dot_scalar keeps the
/// solver inner loop free of allocation traffic entirely — not even pool
/// hits.
template <typename V>
double dot(const Dense<V>* a, const Dense<V>* b, Dense<V>* reduce)
{
    a->compute_dot(b, reduce);
    return to_float(reduce->at(0, 0));
}

/// ||a||_2 via the persistent 1x1 `reduce` buffer.
template <typename V>
double norm2(const Dense<V>* a, Dense<V>* reduce)
{
    a->compute_norm2(reduce);
    return to_float(reduce->at(0, 0));
}

/// r = b - A x; returns ||r||_2 via the persistent `reduce` buffer.
template <typename V>
double compute_residual(const LinOp* system, const Dense<V>* b,
                        const Dense<V>* x, Dense<V>* r, const Dense<V>* one_s,
                        const Dense<V>* neg_one_s, Dense<V>* reduce)
{
    r->copy_from(b);
    system->apply(neg_one_s, x, one_s, r);
    return norm2(r, reduce);
}


}  // namespace mgko::solver::detail
