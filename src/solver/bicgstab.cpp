#include "solver/bicgstab.hpp"

#include "core/math.hpp"
#include "solver/detail.hpp"

namespace mgko::solver {

namespace {
enum bicgstab_slots : std::size_t {
    ws_r,
    ws_r_tilde,
    ws_p,
    ws_p_hat,
    ws_v,
    ws_s,
    ws_s_hat,
    ws_t,
    ws_reduce,
    ws_one,
    ws_neg_one,
    ws_coeff,
};
}  // namespace


template <typename ValueType>
void Bicgstab<ValueType>::apply_impl(const LinOp* b, LinOp* x) const
{
    using detail::set_scalar;
    auto apply_span = this->make_span("solver.bicgstab.apply");
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    this->validate_single_column(dense_b);
    this->logger_->reset();

    const auto n = this->get_size().rows;
    auto& ws = this->workspace_;
    auto* r = ws.vec(ws_r, dim2{n, 1});
    auto* r_tilde = ws.vec(ws_r_tilde, dim2{n, 1});
    auto* p = ws.vec(ws_p, dim2{n, 1});
    auto* p_hat = ws.vec(ws_p_hat, dim2{n, 1});
    auto* v = ws.vec(ws_v, dim2{n, 1});
    auto* s = ws.vec(ws_s, dim2{n, 1});
    auto* s_hat = ws.vec(ws_s_hat, dim2{n, 1});
    auto* t = ws.vec(ws_t, dim2{n, 1});
    auto* reduce = ws.vec(ws_reduce, dim2{1, 1});
    auto* one_s = ws.scalar(ws_one, 1.0);
    auto* neg_one_s = ws.scalar(ws_neg_one, -1.0);
    auto* coeff_s = ws.scalar(ws_coeff, 0.0);

    const double b_norm = detail::norm2(dense_b, reduce);
    double r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                             dense_x, r, one_s, neg_one_s,
                                             reduce);
    auto criterion = this->bind_criterion(b_norm, r_norm);
    this->log_iteration(0, r_norm);
    r_tilde->copy_from(r);
    p->fill(zero<ValueType>());
    v->fill(zero<ValueType>());

    double rho_prev = 1.0, alpha = 1.0, omega = 1.0;
    size_type iter = 0;
    while (!criterion->is_satisfied(iter, r_norm)) {
        auto iteration_span = this->make_span("solver.bicgstab.iteration");
        const double rho = detail::dot(r_tilde, r, reduce);
        if (rho == 0.0 || !std::isfinite(rho)) {
            this->log_stop(iter, false, "breakdown: rho == 0");
            return;
        }
        const double beta = (rho / rho_prev) * (alpha / omega);
        // p = r + beta * (p - omega * v)
        set_scalar(coeff_s, omega);
        p->sub_scaled(coeff_s, v);
        set_scalar(coeff_s, beta);
        p->scale(coeff_s);
        p->add_scaled(one_s, r);

        this->precond_->apply(p, p_hat);
        this->system_->apply(p_hat, v);
        const double rv = detail::dot(r_tilde, v, reduce);
        if (rv == 0.0 || !std::isfinite(rv)) {
            this->log_stop(iter, false, "breakdown: r~'v == 0");
            return;
        }
        alpha = rho / rv;
        // s = r - alpha * v
        s->copy_from(r);
        set_scalar(coeff_s, alpha);
        s->sub_scaled(coeff_s, v);
        const double s_norm = detail::norm2(s, reduce);
        ++iter;
        if (criterion->is_satisfied(iter, s_norm)) {
            // Half-step convergence: x += alpha * p_hat.
            dense_x->add_scaled(coeff_s, p_hat);
            r_norm = s_norm;
            this->log_iteration(iter, r_norm);
            break;
        }
        this->precond_->apply(s, s_hat);
        this->system_->apply(s_hat, t);
        const double tt = detail::dot(t, t, reduce);
        if (tt == 0.0 || !std::isfinite(tt)) {
            // The half step already advanced the iteration count; accept
            // its update (coeff_s still holds alpha) and record its
            // residual so residual_history stays aligned with
            // num_iterations() — returning here without logging left the
            // history one entry short.
            dense_x->add_scaled(coeff_s, p_hat);
            r_norm = s_norm;
            this->log_iteration(iter, r_norm);
            this->log_stop(iter, false, "breakdown: t't == 0");
            return;
        }
        omega = detail::dot(t, s, reduce) / tt;
        // x += alpha * p_hat + omega * s_hat
        dense_x->add_scaled(coeff_s, p_hat);
        set_scalar(coeff_s, omega);
        dense_x->add_scaled(coeff_s, s_hat);
        // r = s - omega * t
        r->copy_from(s);
        r->sub_scaled(coeff_s, t);
        rho_prev = rho;
        r_norm = detail::norm2(r, reduce);
        this->log_iteration(iter, r_norm);
        if (omega == 0.0) {
            this->log_stop(iter, false, "breakdown: omega == 0");
            return;
        }
    }
    this->log_stop(iter, criterion->indicates_convergence(),
                            criterion->reason());
}


#define MGKO_DECLARE_BICGSTAB(ValueType) template class Bicgstab<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_BICGSTAB);


}  // namespace mgko::solver
