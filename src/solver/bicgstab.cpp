#include "solver/bicgstab.hpp"

#include "core/math.hpp"
#include "solver/detail.hpp"

namespace mgko::solver {


template <typename ValueType>
void Bicgstab<ValueType>::apply_impl(const LinOp* b, LinOp* x) const
{
    using detail::scalar;
    using detail::set_scalar;
    auto exec = this->get_executor();
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    this->validate_single_column(dense_b);
    this->logger_->reset();

    const auto n = this->get_size().rows;
    auto make_vec = [&] { return Dense<ValueType>::create(exec, dim2{n, 1}); };
    auto r = make_vec();
    auto r_tilde = make_vec();
    auto p = make_vec();
    auto p_hat = make_vec();
    auto v = make_vec();
    auto s = make_vec();
    auto s_hat = make_vec();
    auto t = make_vec();
    auto one_s = scalar<ValueType>(exec, 1.0);
    auto neg_one_s = scalar<ValueType>(exec, -1.0);
    auto coeff_s = scalar<ValueType>(exec, 0.0);

    const double b_norm = dense_b->norm2_scalar();
    double r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                             dense_x, r.get(), one_s.get(),
                                             neg_one_s.get());
    auto criterion = this->bind_criterion(b_norm, r_norm);
    this->logger_->log_iteration(0, r_norm);
    r_tilde->copy_from(r.get());
    p->fill(zero<ValueType>());
    v->fill(zero<ValueType>());

    double rho_prev = 1.0, alpha = 1.0, omega = 1.0;
    size_type iter = 0;
    while (!criterion->is_satisfied(iter, r_norm)) {
        const double rho = r_tilde->dot_scalar(r.get());
        if (rho == 0.0 || !std::isfinite(rho)) {
            this->logger_->log_stop(iter, false, "breakdown: rho == 0");
            return;
        }
        const double beta = (rho / rho_prev) * (alpha / omega);
        // p = r + beta * (p - omega * v)
        set_scalar(coeff_s.get(), omega);
        p->sub_scaled(coeff_s.get(), v.get());
        set_scalar(coeff_s.get(), beta);
        p->scale(coeff_s.get());
        p->add_scaled(one_s.get(), r.get());

        this->precond_->apply(p.get(), p_hat.get());
        this->system_->apply(p_hat.get(), v.get());
        const double rv = r_tilde->dot_scalar(v.get());
        if (rv == 0.0 || !std::isfinite(rv)) {
            this->logger_->log_stop(iter, false, "breakdown: r~'v == 0");
            return;
        }
        alpha = rho / rv;
        // s = r - alpha * v
        s->copy_from(r.get());
        set_scalar(coeff_s.get(), alpha);
        s->sub_scaled(coeff_s.get(), v.get());
        const double s_norm = s->norm2_scalar();
        ++iter;
        if (criterion->is_satisfied(iter, s_norm)) {
            // Half-step convergence: x += alpha * p_hat.
            dense_x->add_scaled(coeff_s.get(), p_hat.get());
            r_norm = s_norm;
            this->logger_->log_iteration(iter, r_norm);
            break;
        }
        this->precond_->apply(s.get(), s_hat.get());
        this->system_->apply(s_hat.get(), t.get());
        const double tt = t->dot_scalar(t.get());
        if (tt == 0.0 || !std::isfinite(tt)) {
            this->logger_->log_stop(iter, false, "breakdown: t't == 0");
            return;
        }
        omega = t->dot_scalar(s.get()) / tt;
        // x += alpha * p_hat + omega * s_hat
        dense_x->add_scaled(coeff_s.get(), p_hat.get());
        set_scalar(coeff_s.get(), omega);
        dense_x->add_scaled(coeff_s.get(), s_hat.get());
        // r = s - omega * t
        r->copy_from(s.get());
        r->sub_scaled(coeff_s.get(), t.get());
        rho_prev = rho;
        r_norm = r->norm2_scalar();
        this->logger_->log_iteration(iter, r_norm);
        if (omega == 0.0) {
            this->logger_->log_stop(iter, false, "breakdown: omega == 0");
            return;
        }
    }
    this->logger_->log_stop(iter, criterion->indicates_convergence(),
                            criterion->reason());
}


#define MGKO_DECLARE_BICGSTAB(ValueType) template class Bicgstab<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_BICGSTAB);


}  // namespace mgko::solver
