#include "solver/solver_base.hpp"

#include <cctype>

namespace mgko::solver {


std::string to_string(precision p)
{
    switch (p) {
    case precision::full:
        return "double";
    case precision::single:
        return "float";
    case precision::half_prec:
        return "half";
    }
    throw BadParameter(__FILE__, __LINE__, "invalid precision tag");
}


precision precision_from_string(const std::string& name)
{
    std::string lower;
    for (const auto ch : name) {
        lower.push_back(static_cast<char>(std::tolower(ch)));
    }
    if (lower == "double" || lower == "full" || lower == "fp64") {
        return precision::full;
    }
    if (lower == "float" || lower == "single" || lower == "fp32") {
        return precision::single;
    }
    if (lower == "half" || lower == "fp16") {
        return precision::half_prec;
    }
    throw BadParameter(__FILE__, __LINE__,
                       "unknown inner precision: " + name);
}


}  // namespace mgko::solver
