#include "solver/fcg.hpp"

#include "core/math.hpp"
#include "solver/detail.hpp"

namespace mgko::solver {


template <typename ValueType>
void Fcg<ValueType>::apply_impl(const LinOp* b, LinOp* x) const
{
    using detail::scalar;
    using detail::set_scalar;
    auto exec = this->get_executor();
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    this->validate_single_column(dense_b);
    this->logger_->reset();

    const auto n = this->get_size().rows;
    auto make_vec = [&] { return Dense<ValueType>::create(exec, dim2{n, 1}); };
    auto r = make_vec();
    auto r_old = make_vec();
    auto z = make_vec();
    auto p = make_vec();
    auto q = make_vec();
    auto t = make_vec();  // r - r_old (the "flexible" correction)
    auto one_s = scalar<ValueType>(exec, 1.0);
    auto neg_one_s = scalar<ValueType>(exec, -1.0);
    auto alpha_s = scalar<ValueType>(exec, 0.0);
    auto beta_s = scalar<ValueType>(exec, 0.0);

    const double b_norm = dense_b->norm2_scalar();
    double r_norm = detail::compute_residual(this->system_.get(), dense_b,
                                             dense_x, r.get(), one_s.get(),
                                             neg_one_s.get());
    auto criterion = this->bind_criterion(b_norm, r_norm);
    this->logger_->log_iteration(0, r_norm);

    this->precond_->apply(r.get(), z.get());
    p->copy_from(z.get());
    r_old->copy_from(r.get());
    double rho = r->dot_scalar(z.get());

    size_type iter = 0;
    while (!criterion->is_satisfied(iter, r_norm)) {
        this->system_->apply(p.get(), q.get());
        const double pq = p->dot_scalar(q.get());
        if (pq == 0.0 || !std::isfinite(pq)) {
            this->logger_->log_stop(iter, false, "breakdown: p'Ap == 0");
            return;
        }
        const double alpha = rho / pq;
        set_scalar(alpha_s.get(), alpha);
        dense_x->add_scaled(alpha_s.get(), p.get());
        r->sub_scaled(alpha_s.get(), q.get());
        r_norm = r->norm2_scalar();
        ++iter;
        this->logger_->log_iteration(iter, r_norm);
        if (criterion->is_satisfied(iter, r_norm)) {
            break;
        }
        this->precond_->apply(r.get(), z.get());
        // Polak-Ribiere: beta = z' (r - r_old) / rho_old — robust when the
        // preconditioner changes between iterations.
        t->copy_from(r.get());
        t->sub_scaled(one_s.get(), r_old.get());
        const double rho_t = z->dot_scalar(t.get());
        set_scalar(beta_s.get(), rho_t / rho);
        rho = r->dot_scalar(z.get());
        r_old->copy_from(r.get());
        p->scale(beta_s.get());
        p->add_scaled(one_s.get(), z.get());
    }
    this->logger_->log_stop(iter, criterion->indicates_convergence(),
                            criterion->reason());
}


#define MGKO_DECLARE_FCG(ValueType) template class Fcg<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_FCG);


}  // namespace mgko::solver
