// Restarted GMRES with Givens rotations.
//
// Mirrors the Ginkgo traits the paper highlights in §6.2.1: the Hessenberg
// least-squares problem is updated *on the device* via Givens rotations,
// the residual-norm estimate is checked after **every** Hessenberg update
// (restart-1 more checks than CuPy's restart-only check), and the computed
// rotations are reused to update the residual estimate cheaply.  The
// CuPy-like baseline implements the contrasting strategy (host-side
// least-squares, restart-only checks) for the Fig. 3c comparison.
#pragma once

#include "solver/solver_base.hpp"

namespace mgko::solver {


template <typename ValueType = double>
class Gmres : public IterativeSolver<ValueType> {
public:
    static builder<Gmres> build() { return {}; }

    /// When false, the residual estimate is only checked at restarts —
    /// the CuPy-style policy; exposed for the ablation bench.
    void set_check_every_update(bool value) { check_every_update_ = value; }
    bool check_every_update() const { return check_every_update_; }

protected:
    friend class SolverFactory<Gmres>;
    Gmres(std::shared_ptr<const Executor> exec, iterative_parameters params,
          std::shared_ptr<const LinOp> system)
        : IterativeSolver<ValueType>{std::move(exec), std::move(params),
                                     std::move(system)}
    {}

    void apply_impl(const LinOp* b, LinOp* x) const override;
    using IterativeSolver<ValueType>::apply_impl;

private:
    bool check_every_update_{true};
};


}  // namespace mgko::solver
