#include "core/types.hpp"

#include <ostream>

#include "core/exception.hpp"
#include "core/half.hpp"

namespace mgko {


std::ostream& operator<<(std::ostream& os, const dim2& d)
{
    return os << "[" << d.rows << " x " << d.cols << "]";
}


std::ostream& operator<<(std::ostream& os, half h)
{
    return os << static_cast<float>(h);
}


std::string to_string(dtype t)
{
    switch (t) {
    case dtype::f16:
        return "half";
    case dtype::f32:
        return "float";
    case dtype::f64:
        return "double";
    }
    return "unknown";
}


std::string to_string(itype t)
{
    switch (t) {
    case itype::i32:
        return "int32";
    case itype::i64:
        return "int64";
    }
    return "unknown";
}


dtype dtype_from_string(const std::string& name)
{
    if (name == "half" || name == "float16" || name == "f16") {
        return dtype::f16;
    }
    if (name == "float" || name == "float32" || name == "single" ||
        name == "f32") {
        return dtype::f32;
    }
    if (name == "double" || name == "float64" || name == "f64") {
        return dtype::f64;
    }
    throw BadParameter(__FILE__, __LINE__, "unknown value type: " + name);
}


std::string to_string(mat_format f)
{
    switch (f) {
    case mat_format::csr:
        return "csr";
    case mat_format::coo:
        return "coo";
    case mat_format::ell:
        return "ell";
    case mat_format::hybrid:
        return "hybrid";
    case mat_format::sellcs:
        return "sellcs";
    }
    return "unknown";
}


mat_format format_from_string(const std::string& name)
{
    if (name == "csr" || name == "Csr") {
        return mat_format::csr;
    }
    if (name == "coo" || name == "Coo") {
        return mat_format::coo;
    }
    if (name == "ell" || name == "Ell") {
        return mat_format::ell;
    }
    if (name == "hybrid" || name == "Hybrid" || name == "hyb") {
        return mat_format::hybrid;
    }
    if (name == "sellcs" || name == "Sellcs" || name == "sell" ||
        name == "sell-c-sigma" || name == "SellCs") {
        return mat_format::sellcs;
    }
    throw BadParameter(__FILE__, __LINE__,
                       "unknown matrix format: " + name);
}


itype itype_from_string(const std::string& name)
{
    if (name == "int32" || name == "i32" || name == "int") {
        return itype::i32;
    }
    if (name == "int64" || name == "i64" || name == "long") {
        return itype::i64;
    }
    throw BadParameter(__FILE__, __LINE__, "unknown index type: " + name);
}


size_type size_of(dtype t)
{
    switch (t) {
    case dtype::f16:
        return 2;
    case dtype::f32:
        return 4;
    case dtype::f64:
        return 8;
    }
    return 0;
}


size_type size_of(itype t)
{
    switch (t) {
    case itype::i32:
        return 4;
    case itype::i64:
        return 8;
    }
    return 0;
}


}  // namespace mgko
