// Fundamental scalar, index, and shape types used across the framework.
//
// The framework mirrors Ginkgo's type system as described in the pyGinkgo
// paper (Table 1): three value types (half / float / double) and two index
// types (int32 / int64).  Template instantiations over the cross product are
// generated via the MGKO_INSTANTIATE_* macros below, which is also the
// mechanism the binding layer relies on: every template combination is
// pre-instantiated in C++ and selected at run time by dtype string.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace mgko {


class half;  // defined in core/half.hpp

/// Signed size type used for all extents and loop bounds.
using size_type = std::int64_t;

/// Index types supported by sparse formats.
using int32 = std::int32_t;
using int64 = std::int64_t;


/// A two-dimensional extent (rows x columns).
struct dim2 {
    size_type rows{};
    size_type cols{};

    constexpr dim2() = default;
    constexpr dim2(size_type r, size_type c) : rows{r}, cols{c} {}
    /// Square dimension.
    constexpr explicit dim2(size_type n) : rows{n}, cols{n} {}

    constexpr size_type operator[](int i) const { return i == 0 ? rows : cols; }
    constexpr friend bool operator==(const dim2& a, const dim2& b)
    {
        return a.rows == b.rows && a.cols == b.cols;
    }
    constexpr friend bool operator!=(const dim2& a, const dim2& b)
    {
        return !(a == b);
    }
    /// Composition of operator dimensions: (m x k) * (k x n) = (m x n).
    constexpr friend dim2 operator*(const dim2& a, const dim2& b)
    {
        return {a.rows, b.cols};
    }
    constexpr dim2 transposed() const { return {cols, rows}; }
    constexpr size_type area() const { return rows * cols; }
};

std::ostream& operator<<(std::ostream& os, const dim2& d);


/// Run-time tag for value types; the currency of the binding layer's
/// string-based dispatch.
enum class dtype { f16, f32, f64 };

/// Run-time tag for index types.
enum class itype { i32, i64 };

/// Run-time tag for sparse storage formats; selected by config
/// ("format": "sellcs") and by the binding layer's format strings.
enum class mat_format { csr, coo, ell, hybrid, sellcs };

/// Canonical names ("half", "float", "double") as used in the paper's API.
std::string to_string(dtype t);
std::string to_string(itype t);
std::string to_string(mat_format f);
/// Parses dtype names; accepts aliases ("float16"/"half", "float32"/"float"/
/// "single", "float64"/"double").  Throws BadParameter for unknown names.
dtype dtype_from_string(const std::string& name);
itype itype_from_string(const std::string& name);
/// Parses format names; accepts aliases ("hyb", "sell", "sell-c-sigma").
mat_format format_from_string(const std::string& name);
/// Size in bytes of the runtime-tagged type (Table 1 of the paper).
size_type size_of(dtype t);
size_type size_of(itype t);

template <typename T>
struct dtype_of;  // undefined on purpose; specialized for value types
template <>
struct dtype_of<half> {
    static constexpr dtype value = dtype::f16;
};
template <>
struct dtype_of<float> {
    static constexpr dtype value = dtype::f32;
};
template <>
struct dtype_of<double> {
    static constexpr dtype value = dtype::f64;
};

template <typename T>
struct itype_of;
template <>
struct itype_of<int32> {
    static constexpr itype value = itype::i32;
};
template <>
struct itype_of<int64> {
    static constexpr itype value = itype::i64;
};


// Instantiation helpers.  `_macro` receives the template argument list.
#define MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(_macro) \
    _macro(::mgko::half);                            \
    _macro(float);                                   \
    _macro(double)

#define MGKO_INSTANTIATE_FOR_EACH_INDEX_TYPE(_macro) \
    _macro(::mgko::int32);                           \
    _macro(::mgko::int64)

#define MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(_macro) \
    _macro(::mgko::half, ::mgko::int32);                       \
    _macro(::mgko::half, ::mgko::int64);                       \
    _macro(float, ::mgko::int32);                              \
    _macro(float, ::mgko::int64);                              \
    _macro(double, ::mgko::int32);                             \
    _macro(double, ::mgko::int64)

// Array-like types additionally need plain index instantiations.
#define MGKO_INSTANTIATE_FOR_EACH_POD_TYPE(_macro) \
    _macro(::mgko::half);                          \
    _macro(float);                                 \
    _macro(double);                                \
    _macro(::mgko::int32);                         \
    _macro(::mgko::int64)


}  // namespace mgko
