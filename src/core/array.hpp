// Executor-bound typed buffer, modeled on gko::array.
//
// An array owns (or, for buffer-protocol views, borrows) a contiguous block
// in one executor's memory space.  Copy construction across executors moves
// the data explicitly, which is the only way bytes travel between spaces.
// The non-owning `view` constructor is the substrate of the binding layer's
// zero-copy NumPy interoperability (paper §5.2).
#pragma once

#include <algorithm>
#include <initializer_list>
#include <memory>
#include <utility>

#include "core/exception.hpp"
#include "core/executor.hpp"
#include "core/types.hpp"

namespace mgko {


template <typename T>
class array {
public:
    using value_type = T;

    array() = default;

    array(std::shared_ptr<const Executor> exec, size_type size = 0)
        : exec_{std::move(exec)}, size_{size}, capacity_{size}
    {
        MGKO_ENSURE(exec_ != nullptr, "array requires an executor");
        MGKO_ENSURE(size_ >= 0, "array size must be non-negative");
        if (size_ > 0) {
            data_ = exec_->alloc<T>(size_);
            owning_ = true;
        }
    }

    array(std::shared_ptr<const Executor> exec, std::initializer_list<T> init)
        : array{exec, static_cast<size_type>(init.size())}
    {
        std::copy(init.begin(), init.end(), data_);
    }

    /// Copies from a host iterator range into the executor's space.
    template <typename It>
    array(std::shared_ptr<const Executor> exec, It first, It last)
        : array{exec, static_cast<size_type>(std::distance(first, last))}
    {
        std::copy(first, last, data_);
    }

    /// Deep copy within the same executor.
    array(const array& other) : array{other.exec_, other.size_}
    {
        if (size_ > 0) {
            exec_->copy_from(other.exec_.get(), bytes(), other.data_, data_);
        }
    }

    /// Deep copy onto a (possibly different) executor.
    array(std::shared_ptr<const Executor> exec, const array& other)
        : array{std::move(exec), other.size_}
    {
        if (size_ > 0) {
            exec_->copy_from(other.exec_.get(), bytes(), other.data_, data_);
        }
    }

    array(array&& other) noexcept { swap(other); }

    array& operator=(const array& other)
    {
        if (this == &other) {
            return *this;
        }
        if (!exec_) {
            exec_ = other.exec_;
        }
        resize_and_reset(other.size_);
        if (size_ > 0) {
            exec_->copy_from(other.exec_.get(), bytes(), other.data_, data_);
        }
        return *this;
    }

    array& operator=(array&& other) noexcept
    {
        if (this != &other) {
            clear();
            swap(other);
        }
        return *this;
    }

    ~array() { clear(); }

    /// Non-owning view over externally managed memory (the buffer-protocol
    /// path: the caller keeps ownership and lifetime responsibility).
    static array view(std::shared_ptr<const Executor> exec, size_type size,
                      T* data)
    {
        array result;
        result.exec_ = std::move(exec);
        result.size_ = size;
        result.data_ = data;
        result.owning_ = false;
        return result;
    }

    bool is_view() const { return data_ != nullptr && !owning_; }

    void swap(array& other) noexcept
    {
        std::swap(exec_, other.exec_);
        std::swap(size_, other.size_);
        std::swap(capacity_, other.capacity_);
        std::swap(data_, other.data_);
        std::swap(owning_, other.owning_);
    }

    /// Drops current contents and resizes to `size` elements
    /// (uninitialized).  An owned allocation large enough for `size` is
    /// kept and reused; otherwise the old block goes back to the
    /// executor's pool and a fresh one is drawn.  A view is detached
    /// (becomes owning).
    void resize_and_reset(size_type size)
    {
        if (owning_ && size <= capacity_) {
            size_ = size;
            return;
        }
        MGKO_ENSURE(exec_ != nullptr, "array requires an executor");
        clear();
        size_ = size;
        capacity_ = size;
        if (size_ > 0) {
            data_ = exec_->alloc<T>(size_);
            owning_ = true;
        }
    }

    void fill(T value)
    {
        std::fill_n(data_, size_, value);
        if (exec_) {
            // Modeled as one streaming kernel writing the buffer.
            exec_->clock().tick(exec_->model().launch_latency_ns +
                                static_cast<double>(bytes()) /
                                    exec_->model().bandwidth_gbps);
        }
    }

    T* get_data() { return data_; }
    const T* get_const_data() const { return data_; }

    size_type size() const { return size_; }
    size_type bytes() const
    {
        return size_ * static_cast<size_type>(sizeof(T));
    }

    std::shared_ptr<const Executor> get_executor() const { return exec_; }

    /// Moves the array to another executor (no-op when already there).
    void set_executor(std::shared_ptr<const Executor> new_exec)
    {
        if (new_exec == exec_ || !exec_) {
            exec_ = std::move(new_exec);
            return;
        }
        array moved{new_exec, *this};
        *this = std::move(moved);
    }

    /// Element copy-out for tests and host-side logic; valid on host and on
    /// the simulated devices (whose memory is host-backed).
    T at(size_type i) const
    {
        if (i < 0 || i >= size_) {
            throw OutOfBounds(__FILE__, __LINE__, i, size_);
        }
        return data_[i];
    }

private:
    void clear() noexcept
    {
        if (owning_ && data_ != nullptr) {
            exec_->free_bytes(data_);
        }
        data_ = nullptr;
        size_ = 0;
        capacity_ = 0;
        owning_ = false;
    }

    std::shared_ptr<const Executor> exec_;
    size_type size_{0};
    /// Elements the owned allocation can hold (>= size_; shrinking keeps
    /// the block so later regrowth within capacity is allocation-free).
    size_type capacity_{0};
    T* data_{nullptr};
    bool owning_{false};
};


}  // namespace mgko
