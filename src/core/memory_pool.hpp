// Size-bucketed caching allocator — the backing store of every Executor's
// memory space (CUDA-memory-pool style, see DESIGN.md §"Pooled allocation").
//
// Freed blocks are returned to a per-size-class free list instead of the
// system, so steady-state alloc/free traffic (solver temporaries, dot/norm
// scratch) is served from the cache without touching the system allocator.
// Two lock domains keep the hot path cheap:
//
//   * one mutex per size-class bucket guards that bucket's free list,
//   * the live-pointer registry (needed for owns() / cross-space free
//     validation) is sharded 16 ways by pointer hash,
//
// so concurrent allocations of different sizes, and concurrent frees of
// unrelated pointers, never contend on a common lock.  `trim()` releases the
// cache back to the system; hit/miss/cached-bytes/high-watermark counters
// expose the pool next to the executor's existing instrumentation.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace mgko::detail {


class MemoryPool {
public:
    /// Cache lines on CPUs, coalescing sectors on GPUs.
    static constexpr std::size_t alignment = 64;

    MemoryPool() = default;
    ~MemoryPool();

    MemoryPool(const MemoryPool&) = delete;
    MemoryPool& operator=(const MemoryPool&) = delete;

    /// Returns a 64-byte aligned block of at least `bytes` bytes, from the
    /// cache when a block of the same size class is available, from the
    /// system otherwise (retrying once after a trim under memory pressure).
    /// Returns nullptr when the system is out of memory.  When `pool_hit`
    /// is non-null it is set to whether the request was served from the
    /// cache (the executor's event hooks report it without re-reading the
    /// racy hit/miss counters).
    void* allocate(size_type bytes, bool* pool_hit = nullptr);

    /// Returns the block to the pool's free list.  `false` when `ptr` is not
    /// a live allocation of this pool (the caller turns that into a
    /// MemorySpaceError).
    bool release(void* ptr);

    /// True if `ptr` is a live (allocated, not yet released) block.
    bool owns(const void* ptr) const;

    /// Frees every cached block back to the system; returns bytes released.
    size_type trim();

    // --- instrumentation ----------------------------------------------------
    /// Cumulative count of system allocations performed (== misses()).
    size_type total_system_allocations() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    /// Currently live (allocated, not released) blocks.
    size_type live_blocks() const;
    /// Sum of the *requested* sizes of live blocks.
    size_type bytes_in_use() const
    {
        return bytes_in_use_.load(std::memory_order_relaxed);
    }
    /// Allocations served from the cache.
    size_type hits() const { return hits_.load(std::memory_order_relaxed); }
    /// Allocations that had to go to the system.
    size_type misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    /// Bytes currently sitting in free lists.
    size_type bytes_cached() const
    {
        return bytes_cached_.load(std::memory_order_relaxed);
    }
    /// Peak of bytes_cached() over the pool's lifetime.
    size_type cache_high_watermark() const
    {
        return watermark_.load(std::memory_order_relaxed);
    }

    // Size classes: exact multiples of 64 bytes up to 4 KiB (buckets
    // 0..63), then powers of two 8 KiB..64 MiB (buckets 64..77).  Larger
    // requests use the oversize pseudo-bucket and bypass the cache —
    // multi-gigabyte system matrices are one-shot allocations whose
    // retention would pin unbounded memory for no reuse benefit.
    static constexpr std::size_t num_small = 64;
    static constexpr std::size_t small_limit = num_small * alignment;
    static constexpr std::size_t num_buckets = 78;
    static constexpr std::size_t oversize_bucket = num_buckets;

    struct size_class {
        std::size_t bucket;
        std::size_t class_bytes;
    };
    /// Maps a requested size to its bucket and backing class size.
    /// Requests too large to round up without wrapping (or larger than the
    /// biggest cached class) go to the oversize bucket untouched.  Pure
    /// and public so the overflow edge cases are unit-testable.
    static size_class classify(std::size_t requested);

private:
    static constexpr std::size_t num_shards = 16;

    struct Bucket {
        std::mutex mutex;
        std::vector<void*> free_list;
    };

    /// Live-allocation record: the caller-visible size and the size class
    /// actually backing it.
    struct block_info {
        size_type requested_bytes;
        std::size_t class_bytes;
        std::size_t bucket;
    };

    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<const void*, block_info> live;
    };

    static std::size_t shard_of(const void* ptr)
    {
        return (reinterpret_cast<std::uintptr_t>(ptr) / alignment) %
               num_shards;
    }

    void note_cached(std::size_t class_bytes);

    std::array<Bucket, num_buckets> buckets_;
    std::array<Shard, num_shards> shards_;
    std::atomic<size_type> hits_{0};
    std::atomic<size_type> misses_{0};
    std::atomic<size_type> bytes_in_use_{0};
    std::atomic<size_type> bytes_cached_{0};
    std::atomic<size_type> watermark_{0};
};


}  // namespace mgko::detail
