#include "core/lin_op.hpp"

#include "matrix/dense.hpp"

namespace mgko {


void Identity::apply_impl(const LinOp* b, LinOp* x) const
{
    copy_dense(b, x);
}


void Identity::apply_impl(const LinOp* alpha, const LinOp* b,
                          const LinOp* beta, LinOp* x) const
{
    // x = alpha * b + beta * x, dispatched over the dense value type.
    if (auto d = dynamic_cast<Dense<half>*>(x)) {
        d->scale(as_dense<half>(beta));
        d->add_scaled(as_dense<half>(alpha), as_dense<half>(b));
        return;
    }
    if (auto d = dynamic_cast<Dense<float>*>(x)) {
        d->scale(as_dense<float>(beta));
        d->add_scaled(as_dense<float>(alpha), as_dense<float>(b));
        return;
    }
    if (auto d = dynamic_cast<Dense<double>*>(x)) {
        d->scale(as_dense<double>(beta));
        d->add_scaled(as_dense<double>(alpha), as_dense<double>(b));
        return;
    }
    MGKO_NOT_SUPPORTED("Identity::apply on non-dense operands");
}


Composition::Composition(std::vector<std::shared_ptr<const LinOp>> operators)
    : LinOp{operators.front()->get_executor(),
            operators.front()->get_size() * operators.back()->get_size()},
      operators_{std::move(operators)}
{
    for (std::size_t i = 0; i + 1 < operators_.size(); ++i) {
        MGKO_ASSERT_CONFORMANT("Composition", operators_[i]->get_size(),
                               operators_[i + 1]->get_size());
    }
}


std::unique_ptr<Composition> Composition::create(
    std::vector<std::shared_ptr<const LinOp>> operators)
{
    MGKO_ENSURE(!operators.empty(), "Composition requires >= 1 operator");
    return std::unique_ptr<Composition>{new Composition{std::move(operators)}};
}


void Composition::apply_impl(const LinOp* b, LinOp* x) const
{
    if (operators_.size() == 1) {
        operators_.front()->apply(b, x);
        return;
    }
    // Apply right to left through temporaries typed like b.
    std::unique_ptr<LinOp> current;
    const LinOp* input = b;
    for (std::size_t i = operators_.size(); i-- > 1;) {
        auto output = create_dense_like(
            b, dim2{operators_[i]->get_size().rows, b->get_size().cols});
        operators_[i]->apply(input, output.get());
        current = std::move(output);
        input = current.get();
    }
    operators_.front()->apply(input, x);
}


void Composition::apply_impl(const LinOp* alpha, const LinOp* b,
                             const LinOp* beta, LinOp* x) const
{
    // x = alpha * C(b) + beta * x via a temporary for C(b).
    auto tmp = create_dense_like(b, dim2{get_size().rows, b->get_size().cols});
    apply_impl(b, tmp.get());
    Identity::create(get_executor(), get_size().rows)
        ->apply(alpha, tmp.get(), beta, x);
}


}  // namespace mgko
