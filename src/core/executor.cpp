#include "core/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include <omp.h>

#include "log/flight_recorder.hpp"
#include "log/hw_counters.hpp"
#include "log/metrics.hpp"
#include "log/sampling_profiler.hpp"
#include "log/trace.hpp"
#include "log/trace_context.hpp"
#include "log/work_model.hpp"
#include "serve/solve_server.hpp"
#include "serve/telemetry_server.hpp"

namespace mgko {

namespace {

double pcie_bandwidth_gbps()
{
    static const double bw = sim::env_override("MGKO_SIM_PCIE_BW_GBPS", 24.0);
    return bw;
}

double now_wall_ns()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Observability wiring for every factory-created executor.  The opt-in
/// tiers (MGKO_TRACE / MGKO_METRICS) attach the process-wide tracer and
/// metrics logger; the always-on tier attaches the flight recorder
/// unconditionally (opt out with MGKO_FLIGHT_RECORDER=0) and, when the
/// telemetry server is live, the shared metrics registry so /metrics has
/// executor-level series to serve.  MGKO_TELEMETRY_PORT and
/// MGKO_FLIGHT_POSTMORTEM take effect on the first executor creation.
/// add_logger deduplicates, so repeated attachment points are harmless.
template <typename ExecPtr>
ExecPtr with_env_observers(ExecPtr exec)
{
    log::install_crash_handler_from_env();
    log::sampling_from_env();
    log::hw_counters_from_env();
    serve::telemetry_from_env();
    serve::solve_server_from_env();
    exec->add_logger(log::tracer_from_env());
    exec->add_logger(log::metrics_from_env());
    exec->add_logger(log::flight_recorder_from_env());
    if (serve::telemetry_active()) {
        exec->add_logger(log::shared_metrics());
    }
    return exec;
}

}  // namespace


std::string to_string(exec_kind kind)
{
    switch (kind) {
    case exec_kind::reference:
        return "reference";
    case exec_kind::omp:
        return "omp";
    case exec_kind::cuda:
        return "cuda";
    case exec_kind::hip:
        return "hip";
    }
    return "unknown";
}


void Operation::run(const ReferenceExecutor*) const
{
    MGKO_NOT_SUPPORTED(std::string{name()} + " on reference executor");
}
void Operation::run(const OmpExecutor*) const
{
    MGKO_NOT_SUPPORTED(std::string{name()} + " on omp executor");
}
void Operation::run(const CudaExecutor*) const
{
    MGKO_NOT_SUPPORTED(std::string{name()} + " on cuda executor");
}
void Operation::run(const HipExecutor*) const
{
    MGKO_NOT_SUPPORTED(std::string{name()} + " on hip executor");
}


Executor::Executor(sim::MachineModel model,
                   std::shared_ptr<const Executor> master)
    : model_{std::move(model)}, name_{model_.name}, master_{std::move(master)}
{}


Executor::~Executor() = default;


void* Executor::alloc_bytes(size_type bytes) const
{
    bool pool_hit = false;
    void* ptr = pool_.allocate(bytes, &pool_hit);
    if (ptr == nullptr) {
        throw BadAlloc(__FILE__, __LINE__, bytes);
    }
    // Pool traffic is part of a request's cost whether or not loggers are
    // attached; the note is a thread-local pointer check when no sampled
    // request context is active.
    log::note_request_alloc(static_cast<double>(bytes));
    if (has_loggers()) {
        log_event([&](log::EventLogger& l) {
            if (pool_hit) {
                l.on_pool_hit(this, bytes);
            } else {
                l.on_pool_miss(this, bytes);
            }
            l.on_allocation_completed(this, bytes, ptr);
        });
    }
    return ptr;
}


void Executor::free_bytes(void* ptr) const
{
    if (ptr == nullptr) {
        return;
    }
    if (!pool_.release(ptr)) {
        throw MemorySpaceError(
            __FILE__, __LINE__,
            "freeing pointer not allocated on executor " + name_);
    }
    if (has_loggers()) {
        log_event(
            [&](log::EventLogger& l) { l.on_free_completed(this, ptr); });
    }
}


void Executor::copy_from(const Executor* src_exec, size_type bytes,
                         const void* src, void* dst) const
{
    if (bytes <= 0) {
        return;
    }
    MGKO_ENSURE(src != nullptr && dst != nullptr,
                "copy_from requires valid pointers");
    std::memcpy(dst, src, static_cast<std::size_t>(bytes));
    charge_copy(src_exec, bytes);
}


void Executor::charge_copy(const Executor* src_exec, size_type bytes) const
{
    // Same-space copies move at the space's own bandwidth; host<->device
    // crossings move over the interconnect and pay transfer latency on the
    // device side.
    const bool crossing =
        src_exec != nullptr && (src_exec->is_device() != is_device());
    if (crossing) {
        const Executor* device = is_device() ? this : src_exec;
        device->clock().tick(device->model().transfer_latency_ns +
                             static_cast<double>(bytes) /
                                 pcie_bandwidth_gbps());
    } else {
        clock().tick(static_cast<double>(bytes) / model_.bandwidth_gbps);
    }
    if (has_loggers()) {
        log_event([&](log::EventLogger& l) {
            l.on_copy_completed(src_exec, this, bytes);
        });
    }
}


void Executor::synchronize() const
{
    // Host executors: nothing outstanding in the simulation.
}


void Executor::run(const Operation& op) const
{
    const bool logged = has_loggers();
    if (logged) {
        log_event([&](log::EventLogger& l) {
            l.on_operation_launched(this, op.name());
        });
    }
    // Zero the thread's work accumulator for the duration of the dispatch
    // (keeping whatever an enclosing run accumulated), so the completion
    // event and the request-cost attribution report exactly this
    // operation's work.  Kernels tick their work unconditionally, so the
    // drain is correct with or without loggers attached — which is what
    // lets a sampled request's cost block work on servers that never
    // started telemetry.
    const log::op_work saved = log::exchange_work({});
    const double t0 = now_wall_ns();
    {
        // Measured tier (both no-ops costing one relaxed load when off):
        // the sampling profiler's frame stack gets the kernel tag for the
        // dispatch window, and the hardware-counter scope accumulates
        // measured cycles/instructions/LLC misses under the same tag the
        // work model attributes flops/bytes to — which is exactly the
        // join the --drift gate checks.
        log::SampleFrame sample_frame{op.name()};
        log::HwCounterScope hw_scope{op.name()};
        dispatch(op);
    }
    const double wall = now_wall_ns() - t0;
    kernel_wall_ns_.fetch_add(wall, std::memory_order_relaxed);
    launches_.fetch_add(1, std::memory_order_relaxed);
    clock_.tick(model_.launch_latency_ns);
    const log::op_work work = log::exchange_work(saved);
    // Attribute the drained work to the active request context.  The
    // kernels tick their work from the dispatching thread (even when the
    // dispatch fans out over an OpenMP parallel region), so the
    // thread-local context set by the request's scope guard is the right
    // owner here — no capture/restore is needed inside the parallel
    // region itself.
    log::note_request_kernel(op.name(), wall, work.flops, work.bytes);
    if (logged) {
        log_event([&](log::EventLogger& l) {
            l.on_operation_completed(this, op.name(), wall, work.flops,
                                     work.bytes);
        });
    }
}


std::shared_ptr<const Executor> Executor::get_master() const
{
    if (master_) {
        return master_;
    }
    return shared_from_this();
}


bool Executor::owns(const void* ptr) const { return pool_.owns(ptr); }


size_type Executor::num_allocations() const
{
    return pool_.total_system_allocations();
}


size_type Executor::num_live_allocations() const
{
    return pool_.live_blocks();
}


size_type Executor::bytes_in_use() const { return pool_.bytes_in_use(); }


size_type Executor::pool_hits() const { return pool_.hits(); }


size_type Executor::pool_misses() const { return pool_.misses(); }


size_type Executor::pool_bytes_cached() const
{
    return pool_.bytes_cached();
}


size_type Executor::pool_high_watermark() const
{
    return pool_.cache_high_watermark();
}


size_type Executor::trim_pool() const
{
    const size_type released = pool_.trim();
    if (has_loggers()) {
        log_event(
            [&](log::EventLogger& l) { l.on_pool_trim(this, released); });
    }
    return released;
}


// --- ReferenceExecutor ---------------------------------------------------

ReferenceExecutor::ReferenceExecutor()
    : Executor{sim::MachineModel::reference_cpu(), nullptr}
{}

std::shared_ptr<ReferenceExecutor> ReferenceExecutor::create()
{
    return with_env_observers(
        std::shared_ptr<ReferenceExecutor>{new ReferenceExecutor{}});
}


// --- OmpExecutor -----------------------------------------------------------

OmpExecutor::OmpExecutor(int num_threads)
    : Executor{sim::MachineModel::xeon8368(num_threads), nullptr},
      real_threads_{std::min(std::max(num_threads, 1), omp_get_max_threads())}
{}

std::shared_ptr<OmpExecutor> OmpExecutor::create(int num_threads)
{
    if (num_threads <= 0) {
        num_threads = omp_get_max_threads();
    }
    return with_env_observers(
        std::shared_ptr<OmpExecutor>{new OmpExecutor{num_threads}});
}


// --- CudaExecutor ----------------------------------------------------------

CudaExecutor::CudaExecutor(int device_id,
                           std::shared_ptr<const Executor> master)
    : Executor{sim::MachineModel::a100(), std::move(master)},
      device_id_{device_id}
{}

std::shared_ptr<CudaExecutor> CudaExecutor::create(
    int device_id, std::shared_ptr<const Executor> master)
{
    if (!master) {
        master = OmpExecutor::create();
    }
    return with_env_observers(std::shared_ptr<CudaExecutor>{
        new CudaExecutor{device_id, std::move(master)}});
}

void CudaExecutor::synchronize() const
{
    clock().tick(model().launch_latency_ns * 0.5);
}


// --- HipExecutor -----------------------------------------------------------

HipExecutor::HipExecutor(int device_id, std::shared_ptr<const Executor> master)
    : Executor{sim::MachineModel::mi100(), std::move(master)},
      device_id_{device_id}
{}

std::shared_ptr<HipExecutor> HipExecutor::create(
    int device_id, std::shared_ptr<const Executor> master)
{
    if (!master) {
        master = OmpExecutor::create();
    }
    return with_env_observers(std::shared_ptr<HipExecutor>{
        new HipExecutor{device_id, std::move(master)}});
}

void HipExecutor::synchronize() const
{
    clock().tick(model().launch_latency_ns * 0.5);
}


std::shared_ptr<Executor> create_executor(const std::string& name,
                                          int device_id)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name) {
        lower.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (lower == "reference" || lower == "ref") {
        return ReferenceExecutor::create();
    }
    if (lower == "omp" || lower == "openmp" || lower == "cpu") {
        return OmpExecutor::create();
    }
    if (lower == "cuda" || lower == "gpu") {
        return CudaExecutor::create(device_id);
    }
    if (lower == "hip" || lower == "rocm") {
        return HipExecutor::create(device_id);
    }
    throw BadParameter(__FILE__, __LINE__, "unknown executor name: " + name);
}


}  // namespace mgko
