// Host-side staging structure for assembling / converting sparse matrices,
// modeled on gko::matrix_data: an unordered list of (row, col, value)
// entries plus a dimension.  All formats can be constructed from and
// exported to matrix_data, which is also what the Matrix Market reader
// produces.
#pragma once

#include <algorithm>
#include <random>
#include <vector>

#include "core/exception.hpp"
#include "core/math.hpp"
#include "core/types.hpp"

namespace mgko {


template <typename ValueType = double, typename IndexType = int64>
struct matrix_data {
    using value_type = ValueType;
    using index_type = IndexType;

    struct entry {
        IndexType row;
        IndexType col;
        ValueType value;

        friend bool operator==(const entry& a, const entry& b)
        {
            return a.row == b.row && a.col == b.col && a.value == b.value;
        }
    };

    dim2 size{};
    std::vector<entry> entries;

    matrix_data() = default;
    explicit matrix_data(dim2 size_) : size{size_} {}

    size_type num_stored() const
    {
        return static_cast<size_type>(entries.size());
    }

    void add(IndexType row, IndexType col, ValueType value)
    {
        entries.push_back(entry{row, col, value});
    }

    /// Sorts entries row-major (row, then column); required by the CSR/ELL
    /// builders.
    void sort_row_major()
    {
        std::sort(entries.begin(), entries.end(),
                  [](const entry& a, const entry& b) {
                      return a.row != b.row ? a.row < b.row : a.col < b.col;
                  });
    }

    /// Merges duplicate (row, col) pairs by summation; entries must be
    /// sorted first.
    void sum_duplicates()
    {
        if (entries.empty()) {
            return;
        }
        std::size_t out = 0;
        for (std::size_t i = 1; i < entries.size(); ++i) {
            if (entries[i].row == entries[out].row &&
                entries[i].col == entries[out].col) {
                entries[out].value += entries[i].value;
            } else {
                entries[++out] = entries[i];
            }
        }
        entries.resize(out + 1);
    }

    void remove_zeros()
    {
        entries.erase(std::remove_if(entries.begin(), entries.end(),
                                     [](const entry& e) {
                                         return e.value == zero<ValueType>();
                                     }),
                      entries.end());
    }

    /// Checks all indices lie within `size`; throws OutOfBounds otherwise.
    void validate() const
    {
        for (const auto& e : entries) {
            if (e.row < 0 || static_cast<size_type>(e.row) >= size.rows) {
                throw OutOfBounds(__FILE__, __LINE__, e.row, size.rows);
            }
            if (e.col < 0 || static_cast<size_type>(e.col) >= size.cols) {
                throw OutOfBounds(__FILE__, __LINE__, e.col, size.cols);
            }
        }
    }

    bool is_symmetric() const
    {
        auto sorted = *this;
        sorted.sort_row_major();
        auto transposed = *this;
        for (auto& e : transposed.entries) {
            std::swap(e.row, e.col);
        }
        transposed.sort_row_major();
        return sorted.entries == transposed.entries;
    }

    /// Converts value / index types (the pre-instantiation dispatch in the
    /// binding layer funnels every dtype through this).
    template <typename V2, typename I2>
    matrix_data<V2, I2> cast() const
    {
        matrix_data<V2, I2> result{size};
        result.entries.reserve(entries.size());
        for (const auto& e : entries) {
            result.entries.push_back({static_cast<I2>(e.row),
                                      static_cast<I2>(e.col),
                                      static_cast<V2>(to_float(e.value))});
        }
        return result;
    }

    /// n x n diagonal matrix with the given values.
    static matrix_data diag(const std::vector<ValueType>& values)
    {
        matrix_data result{
            dim2{static_cast<size_type>(values.size())}};
        for (std::size_t i = 0; i < values.size(); ++i) {
            result.add(static_cast<IndexType>(i), static_cast<IndexType>(i),
                       values[i]);
        }
        return result;
    }

    /// Dense random matrix in [-1, 1] (deterministic for a given seed).
    static matrix_data random_dense(dim2 size_, std::uint64_t seed = 42)
    {
        std::mt19937_64 engine{seed};
        std::uniform_real_distribution<double> dist{-1.0, 1.0};
        matrix_data result{size_};
        for (size_type r = 0; r < size_.rows; ++r) {
            for (size_type c = 0; c < size_.cols; ++c) {
                result.add(static_cast<IndexType>(r),
                           static_cast<IndexType>(c),
                           static_cast<ValueType>(dist(engine)));
            }
        }
        return result;
    }
};


}  // namespace mgko
