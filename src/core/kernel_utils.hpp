// Shared helpers for kernel implementations: real thread counts for OpenMP
// regions and SimClock ticking.
#pragma once

#include <omp.h>

#include "core/executor.hpp"
#include "log/work_model.hpp"
#include "sim/cost_model.hpp"

namespace mgko::kernels {


/// Number of real threads a kernel should use on this machine.  The
/// performance model may assume more workers (e.g. a simulated A100); real
/// execution is capped by the hardware for correctness-only computation.
inline int exec_threads(const Executor* exec)
{
    if (auto omp = dynamic_cast<const OmpExecutor*>(exec)) {
        return omp->real_threads();
    }
    if (exec->is_device()) {
        return omp_get_max_threads();
    }
    return 1;
}


/// Charges a kernel's modeled cost onto the executor clock and notes the
/// profile's flop/byte work into the calling thread's accumulator, where
/// Executor::run() picks it up for on_operation_completed.  The launch
/// latency itself is charged by Executor::run().
inline void tick(const Executor* exec, const sim::kernel_profile& profile)
{
    log::note_work(profile.flops, profile.bytes);
    exec->clock().tick(profile.time_ns(exec->model()));
}


}  // namespace mgko::kernels
