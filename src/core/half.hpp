// Software IEEE 754 binary16 ("half") value type.
//
// Ginkgo supports half precision as a storage and compute type (paper,
// Table 1).  Since this reproduction targets plain CPUs, `half` stores the
// 16-bit pattern and performs arithmetic by converting through float, which
// matches the numerical behaviour of hardware half units with round-to-
// nearest-even on every operation.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <limits>

namespace mgko {


class half {
public:
    half() = default;
    half(float f) : bits_{float_to_bits(f)} {}
    half(double d) : half{static_cast<float>(d)} {}
    half(int i) : half{static_cast<float>(i)} {}
    half(long long i) : half{static_cast<float>(i)} {}

    operator float() const { return bits_to_float(bits_); }

    static half from_bits(std::uint16_t b)
    {
        half h;
        h.bits_ = b;
        return h;
    }
    std::uint16_t to_bits() const { return bits_; }

    half& operator+=(half o) { return *this = half{float{*this} + float{o}}; }
    half& operator-=(half o) { return *this = half{float{*this} - float{o}}; }
    half& operator*=(half o) { return *this = half{float{*this} * float{o}}; }
    half& operator/=(half o) { return *this = half{float{*this} / float{o}}; }

    friend half operator+(half a, half b) { return half{float{a} + float{b}}; }
    friend half operator-(half a, half b) { return half{float{a} - float{b}}; }
    friend half operator*(half a, half b) { return half{float{a} * float{b}}; }
    friend half operator/(half a, half b) { return half{float{a} / float{b}}; }
    friend half operator-(half a) { return half{-float{a}}; }

    friend bool operator==(half a, half b) { return float{a} == float{b}; }
    friend bool operator!=(half a, half b) { return float{a} != float{b}; }
    friend bool operator<(half a, half b) { return float{a} < float{b}; }
    friend bool operator<=(half a, half b) { return float{a} <= float{b}; }
    friend bool operator>(half a, half b) { return float{a} > float{b}; }
    friend bool operator>=(half a, half b) { return float{a} >= float{b}; }

private:
    static std::uint16_t float_to_bits(float f)
    {
        std::uint32_t x;
        std::memcpy(&x, &f, sizeof(x));
        const std::uint32_t sign = (x >> 16) & 0x8000u;
        const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xffu) - 127;
        std::uint32_t mant = x & 0x7fffffu;
        if (exp == 128) {  // inf or nan
            return static_cast<std::uint16_t>(sign | 0x7c00u |
                                              (mant ? 0x200u | (mant >> 13) : 0u));
        }
        if (exp > 15) {  // overflow -> inf
            return static_cast<std::uint16_t>(sign | 0x7c00u);
        }
        if (exp >= -14) {  // normal
            // round to nearest even on the 13 dropped bits
            std::uint32_t half_mant = mant >> 13;
            const std::uint32_t rest = mant & 0x1fffu;
            if (rest > 0x1000u || (rest == 0x1000u && (half_mant & 1u))) {
                ++half_mant;
            }
            std::uint32_t result =
                sign | ((static_cast<std::uint32_t>(exp + 15) << 10) + half_mant);
            return static_cast<std::uint16_t>(result);  // mantissa carry bumps exp
        }
        if (exp >= -25) {  // subnormal
            mant |= 0x800000u;
            const int shift = -exp - 14 + 13;
            std::uint32_t half_mant = mant >> shift;
            const std::uint32_t rest = mant & ((1u << shift) - 1);
            const std::uint32_t halfway = 1u << (shift - 1);
            if (rest > halfway || (rest == halfway && (half_mant & 1u))) {
                ++half_mant;
            }
            return static_cast<std::uint16_t>(sign | half_mant);
        }
        return static_cast<std::uint16_t>(sign);  // underflow -> signed zero
    }

    static float bits_to_float(std::uint16_t h)
    {
        const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
        const std::uint32_t exp = (h >> 10) & 0x1fu;
        std::uint32_t mant = h & 0x3ffu;
        std::uint32_t x;
        if (exp == 0x1f) {  // inf / nan
            x = sign | 0x7f800000u | (mant << 13);
        } else if (exp != 0) {  // normal
            x = sign | ((exp + 112) << 23) | (mant << 13);
        } else if (mant != 0) {  // subnormal: normalize
            int e = -1;
            do {
                ++e;
                mant <<= 1;
            } while ((mant & 0x400u) == 0);
            x = sign | (static_cast<std::uint32_t>(113 - e - 1) << 23) |
                ((mant & 0x3ffu) << 13);
        } else {  // zero
            x = sign;
        }
        float f;
        std::memcpy(&f, &x, sizeof(f));
        return f;
    }

    std::uint16_t bits_{};
};

std::ostream& operator<<(std::ostream& os, half h);


}  // namespace mgko


namespace std {

template <>
class numeric_limits<mgko::half> {
public:
    static constexpr bool is_specialized = true;
    static constexpr bool is_signed = true;
    static constexpr bool is_integer = false;
    static constexpr bool is_exact = false;
    static constexpr bool has_infinity = true;
    static constexpr bool has_quiet_NaN = true;
    static constexpr int digits = 11;
    static constexpr int digits10 = 3;
    static constexpr int max_exponent = 16;
    static constexpr int min_exponent = -13;

    static mgko::half min() { return mgko::half::from_bits(0x0400); }
    static mgko::half max() { return mgko::half::from_bits(0x7bff); }
    static mgko::half lowest() { return mgko::half::from_bits(0xfbff); }
    static mgko::half epsilon() { return mgko::half::from_bits(0x1400); }
    static mgko::half infinity() { return mgko::half::from_bits(0x7c00); }
    static mgko::half quiet_NaN() { return mgko::half::from_bits(0x7e00); }
    static mgko::half denorm_min() { return mgko::half::from_bits(0x0001); }
};

}  // namespace std
