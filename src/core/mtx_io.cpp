#include "core/mtx_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "core/exception.hpp"

namespace mgko {

namespace {

std::string to_lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

[[noreturn]] void fail(const std::string& path, const std::string& what)
{
    throw FileError(__FILE__, __LINE__, path, what);
}

struct header {
    bool coordinate = true;
    enum class field { real, integer, pattern } field_kind = field::real;
    enum class symmetry { general, symmetric, skew } symmetry_kind =
        symmetry::general;
};

header parse_header(const std::string& line, const std::string& path)
{
    std::istringstream is{line};
    std::string banner, object, format, field, symmetry;
    is >> banner >> object >> format >> field >> symmetry;
    if (banner != "%%MatrixMarket") {
        fail(path, "missing %%MatrixMarket banner");
    }
    if (to_lower(object) != "matrix") {
        fail(path, "unsupported object type: " + object);
    }
    header h;
    const auto fmt = to_lower(format);
    if (fmt == "coordinate") {
        h.coordinate = true;
    } else if (fmt == "array") {
        h.coordinate = false;
    } else {
        fail(path, "unsupported format: " + format);
    }
    const auto fld = to_lower(field);
    if (fld == "real" || fld == "double") {
        h.field_kind = header::field::real;
    } else if (fld == "integer") {
        h.field_kind = header::field::integer;
    } else if (fld == "pattern") {
        h.field_kind = header::field::pattern;
    } else {
        fail(path, "unsupported field: " + field);
    }
    const auto sym = to_lower(symmetry);
    if (sym == "general") {
        h.symmetry_kind = header::symmetry::general;
    } else if (sym == "symmetric") {
        h.symmetry_kind = header::symmetry::symmetric;
    } else if (sym == "skew-symmetric") {
        h.symmetry_kind = header::symmetry::skew;
    } else {
        fail(path, "unsupported symmetry: " + symmetry);
    }
    return h;
}

/// Files written on Windows end lines with \r\n; getline keeps the \r.
void strip_carriage_return(std::string& line)
{
    if (!line.empty() && line.back() == '\r') {
        line.pop_back();
    }
}

/// Reads the next line that is neither empty nor a comment.
bool next_content_line(std::istream& stream, std::string& line)
{
    while (std::getline(stream, line)) {
        strip_carriage_return(line);
        auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '%') {
            continue;
        }
        return true;
    }
    return false;
}

}  // namespace


matrix_data<double, int64> read_mtx(std::istream& stream,
                                    const std::string& path)
{
    std::string line;
    if (!std::getline(stream, line)) {
        fail(path, "empty file");
    }
    strip_carriage_return(line);
    const header h = parse_header(line, path);

    if (!next_content_line(stream, line)) {
        fail(path, "missing size line");
    }
    std::istringstream size_line{line};
    matrix_data<double, int64> data;
    int64 rows = 0, cols = 0, nnz = 0;
    if (h.coordinate) {
        if (!(size_line >> rows >> cols >> nnz)) {
            fail(path, "malformed coordinate size line: " + line);
        }
    } else {
        if (!(size_line >> rows >> cols)) {
            fail(path, "malformed array size line: " + line);
        }
        nnz = rows * cols;
    }
    if (rows < 0 || cols < 0 || nnz < 0) {
        fail(path, "negative dimensions");
    }
    data.size = dim2{rows, cols};
    data.entries.reserve(static_cast<std::size_t>(nnz));

    if (h.coordinate) {
        for (int64 i = 0; i < nnz; ++i) {
            if (!next_content_line(stream, line)) {
                fail(path, "unexpected end of file at entry " +
                               std::to_string(i) + " of " +
                               std::to_string(nnz));
            }
            std::istringstream entry_line{line};
            int64 r = 0, c = 0;
            double v = 1.0;
            if (!(entry_line >> r >> c)) {
                fail(path, "malformed entry: " + line);
            }
            if (h.field_kind != header::field::pattern &&
                !(entry_line >> v)) {
                fail(path, "missing value in entry: " + line);
            }
            // Matrix Market is 1-based.
            r -= 1;
            c -= 1;
            if (r < 0 || r >= rows || c < 0 || c >= cols) {
                fail(path, "entry index out of bounds: " + line);
            }
            // Symmetric storage keeps only the lower triangle; an
            // upper-triangle entry would silently duplicate after
            // mirroring, so it is a hard error, as is a diagonal entry in
            // a skew-symmetric file (which must be zero by definition).
            if (h.symmetry_kind != header::symmetry::general && c > r) {
                fail(path,
                     "entry above the diagonal in symmetric storage "
                     "(expected lower-triangle coordinates): " +
                         line);
            }
            if (h.symmetry_kind == header::symmetry::skew && r == c) {
                fail(path,
                     "diagonal entry in skew-symmetric storage (the "
                     "diagonal of a skew-symmetric matrix is zero): " +
                         line);
            }
            data.add(r, c, v);
            if (r != c) {
                if (h.symmetry_kind == header::symmetry::symmetric) {
                    data.add(c, r, v);
                } else if (h.symmetry_kind == header::symmetry::skew) {
                    data.add(c, r, -v);
                }
            }
        }
    } else {
        // Array format: column-major dense listing.
        for (int64 c = 0; c < cols; ++c) {
            const int64 row_begin =
                h.symmetry_kind == header::symmetry::general ? 0 : c;
            for (int64 r = row_begin; r < rows; ++r) {
                if (!next_content_line(stream, line)) {
                    fail(path, "unexpected end of dense data");
                }
                double v = 0.0;
                std::istringstream entry_line{line};
                if (!(entry_line >> v)) {
                    fail(path, "malformed dense value: " + line);
                }
                if (v != 0.0) {
                    data.add(r, c, v);
                    if (r != c &&
                        h.symmetry_kind == header::symmetry::symmetric) {
                        data.add(c, r, v);
                    }
                    if (r != c && h.symmetry_kind == header::symmetry::skew) {
                        data.add(c, r, -v);
                    }
                }
            }
        }
    }
    return data;
}


matrix_data<double, int64> read_mtx(const std::string& path)
{
    std::ifstream stream{path};
    if (!stream) {
        fail(path, "cannot open file");
    }
    return read_mtx(stream, path);
}


void write_mtx(std::ostream& stream, const matrix_data<double, int64>& data)
{
    stream << "%%MatrixMarket matrix coordinate real general\n";
    stream << data.size.rows << " " << data.size.cols << " "
           << data.num_stored() << "\n";
    stream.precision(17);
    for (const auto& e : data.entries) {
        stream << (e.row + 1) << " " << (e.col + 1) << " " << e.value << "\n";
    }
}


void write_mtx(const std::string& path, const matrix_data<double, int64>& data)
{
    std::ofstream stream{path};
    if (!stream) {
        fail(path, "cannot open file for writing");
    }
    write_mtx(stream, data);
}


}  // namespace mgko
