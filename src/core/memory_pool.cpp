#include "core/memory_pool.hpp"

#include <bit>
#include <cstdlib>
#include <limits>

namespace mgko::detail {


MemoryPool::size_class MemoryPool::classify(std::size_t requested)
{
    if (requested == 0) {
        requested = 1;
    }
    // The round-up below computes `requested + alignment - 1`; for
    // near-SIZE_MAX requests that wraps to a tiny value, which would hand
    // out a small-bucket block for a huge request (and index buckets_ out
    // of bounds).  Such requests can never be satisfied, let alone cached:
    // route them to the oversize bucket untouched and let the system
    // allocator report the failure.
    constexpr std::size_t max_roundable =
        std::numeric_limits<std::size_t>::max() - (alignment - 1);
    if (requested > max_roundable) {
        return {oversize_bucket, requested};
    }
    const std::size_t rounded = (requested + alignment - 1) / alignment *
                                alignment;
    if (rounded <= small_limit) {
        return {rounded / alignment - 1, rounded};
    }
    // small_limit is 2^12; the power-of-two buckets hold 2^13..2^26.
    // Anything above the largest cached class is oversize — deciding this
    // before bit_ceil also keeps bit_ceil away from values > 2^63, where
    // its result is not representable.
    constexpr std::size_t largest_class = std::size_t{1}
                                          << (13 + (num_buckets - num_small) -
                                              1);
    if (rounded > largest_class) {
        return {oversize_bucket, rounded};
    }
    const std::size_t pow2 = std::bit_ceil(rounded);
    const auto log2p = static_cast<std::size_t>(std::countr_zero(pow2));
    return {num_small + (log2p - 13), pow2};
}


void* MemoryPool::allocate(size_type bytes, bool* pool_hit)
{
    const auto cls = classify(static_cast<std::size_t>(bytes < 1 ? 1 : bytes));
    void* ptr = nullptr;
    if (cls.bucket != oversize_bucket) {
        auto& bucket = buckets_[cls.bucket];
        std::lock_guard<std::mutex> guard{bucket.mutex};
        if (!bucket.free_list.empty()) {
            ptr = bucket.free_list.back();
            bucket.free_list.pop_back();
        }
    }
    const bool from_cache = ptr != nullptr;
    if (pool_hit != nullptr) {
        *pool_hit = from_cache;
    }
    if (from_cache) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        bytes_cached_.fetch_sub(cls.class_bytes, std::memory_order_relaxed);
    } else {
        ptr = std::aligned_alloc(alignment, cls.class_bytes);
        if (ptr == nullptr) {
            // Memory pressure: give the cache back to the system and retry.
            trim();
            ptr = std::aligned_alloc(alignment, cls.class_bytes);
            if (ptr == nullptr) {
                return nullptr;
            }
        }
        misses_.fetch_add(1, std::memory_order_relaxed);
    }
    {
        auto& shard = shards_[shard_of(ptr)];
        std::lock_guard<std::mutex> guard{shard.mutex};
        shard.live.emplace(ptr,
                           block_info{bytes, cls.class_bytes, cls.bucket});
    }
    bytes_in_use_.fetch_add(bytes, std::memory_order_relaxed);
    return ptr;
}


bool MemoryPool::release(void* ptr)
{
    block_info info{};
    {
        auto& shard = shards_[shard_of(ptr)];
        std::lock_guard<std::mutex> guard{shard.mutex};
        auto it = shard.live.find(ptr);
        if (it == shard.live.end()) {
            return false;
        }
        info = it->second;
        shard.live.erase(it);
    }
    bytes_in_use_.fetch_sub(info.requested_bytes, std::memory_order_relaxed);
    if (info.bucket == oversize_bucket) {
        std::free(ptr);
        return true;
    }
    {
        auto& bucket = buckets_[info.bucket];
        std::lock_guard<std::mutex> guard{bucket.mutex};
        bucket.free_list.push_back(ptr);
    }
    note_cached(info.class_bytes);
    return true;
}


void MemoryPool::note_cached(std::size_t class_bytes)
{
    const auto cached =
        bytes_cached_.fetch_add(class_bytes, std::memory_order_relaxed) +
        class_bytes;
    auto peak = watermark_.load(std::memory_order_relaxed);
    while (cached > peak &&
           !watermark_.compare_exchange_weak(peak, cached,
                                             std::memory_order_relaxed)) {
    }
}


bool MemoryPool::owns(const void* ptr) const
{
    const auto& shard = shards_[shard_of(ptr)];
    std::lock_guard<std::mutex> guard{shard.mutex};
    return shard.live.count(ptr) > 0;
}


size_type MemoryPool::live_blocks() const
{
    size_type count = 0;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> guard{shard.mutex};
        count += static_cast<size_type>(shard.live.size());
    }
    return count;
}


size_type MemoryPool::trim()
{
    size_type released = 0;
    for (std::size_t b = 0; b < num_buckets; ++b) {
        const std::size_t class_bytes =
            b < num_small ? (b + 1) * alignment
                          : std::size_t{1} << (13 + (b - num_small));
        std::vector<void*> drained;
        {
            std::lock_guard<std::mutex> guard{buckets_[b].mutex};
            drained.swap(buckets_[b].free_list);
        }
        for (void* ptr : drained) {
            std::free(ptr);
            released += static_cast<size_type>(class_bytes);
        }
    }
    bytes_cached_.fetch_sub(released, std::memory_order_relaxed);
    return released;
}


MemoryPool::~MemoryPool()
{
    trim();
    // Live blocks at teardown are a leak in the framework, but throwing
    // from a destructor is worse; drop the records and free the memory.
    for (auto& shard : shards_) {
        std::lock_guard<std::mutex> guard{shard.mutex};
        for (auto& [ptr, info] : shard.live) {
            std::free(const_cast<void*>(ptr));
        }
        shard.live.clear();
    }
}


}  // namespace mgko::detail
