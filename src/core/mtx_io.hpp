// Matrix Market (.mtx) reader / writer.
//
// Supports the subset relevant to SuiteSparse matrices: `matrix` objects in
// `coordinate` or `array` layout, with `real`, `integer`, or `pattern`
// fields and `general`, `symmetric`, or `skew-symmetric` symmetry.  The
// paper's `pg.read(device=..., path='m1.mtx', ...)` entry point (Listing 1)
// funnels through this.
#pragma once

#include <iosfwd>
#include <string>

#include "core/matrix_data.hpp"
#include "core/types.hpp"

namespace mgko {


/// Parses a Matrix Market stream into staging data (entries unsorted, as in
/// the file; symmetric storage is expanded to general).  Throws FileError on
/// malformed input.
matrix_data<double, int64> read_mtx(std::istream& stream,
                                    const std::string& path_for_errors = "<stream>");

/// Reads from a file path.
matrix_data<double, int64> read_mtx(const std::string& path);

/// Writes coordinate/real/general Matrix Market output.
void write_mtx(std::ostream& stream, const matrix_data<double, int64>& data);
void write_mtx(const std::string& path, const matrix_data<double, int64>& data);


}  // namespace mgko
