// Executors: where memory lives and where kernels run.
//
// This mirrors Ginkgo's executor design as exposed by pyGinkgo's `device()`
// factory (paper §4.1): a program creates one or more executors, data
// structures are bound to an executor, and cross-executor data movement is
// explicit.  Four executors exist, as in the paper:
//
//   * ReferenceExecutor — sequential host execution (correctness baseline)
//   * OmpExecutor       — OpenMP-parallel host execution
//   * CudaExecutor      — simulated NVIDIA device (see DESIGN.md §2/2.1)
//   * HipExecutor       — simulated AMD device
//
// The simulated devices keep a *separate, tracked memory arena* (backed by
// host RAM): allocations are registered per executor, host<->device copies
// are explicit and charged with transfer cost, and every kernel launch is
// charged launch latency on the executor's SimClock.  Kernels are dispatched
// through the Operation visitor, exactly like Ginkgo's Operation mechanism.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

#include "core/exception.hpp"
#include "core/memory_pool.hpp"
#include "core/types.hpp"
#include "log/event_logger.hpp"
#include "sim/machine_model.hpp"
#include "sim/sim_clock.hpp"

namespace mgko {


class ReferenceExecutor;
class OmpExecutor;
class CudaExecutor;
class HipExecutor;

enum class exec_kind { reference, omp, cuda, hip };

std::string to_string(exec_kind kind);


/// A kernel made dispatchable across backends.  Concrete kernels override
/// the overloads for the backends they implement; unimplemented backends
/// throw NotSupported, as in Ginkgo.
class Operation {
public:
    virtual ~Operation() = default;
    virtual const char* name() const { return "operation"; }

    virtual void run(const ReferenceExecutor*) const;
    virtual void run(const OmpExecutor*) const;
    virtual void run(const CudaExecutor*) const;
    virtual void run(const HipExecutor*) const;
};


/// Executors expose a logger attachment point (log::EnableLogging):
/// attached EventLoggers observe every allocation/free/copy, the pool's
/// hit/miss/trim behaviour, and every kernel launch with its Operation tag
/// and real wall time.  With no logger attached each event site costs one
/// empty-vector check.
class Executor : public std::enable_shared_from_this<Executor>,
                 public log::EnableLogging {
public:
    virtual ~Executor();

    Executor(const Executor&) = delete;
    Executor& operator=(const Executor&) = delete;

    /// Allocates `bytes` bytes in this executor's memory space (64-byte
    /// aligned), served from the executor's caching pool when a block of
    /// the same size class was freed earlier.  Registered for cross-space
    /// validation.  Throws BadAlloc.
    void* alloc_bytes(size_type bytes) const;

    /// Returns memory previously allocated on this executor to the
    /// executor's pool (not the system; see trim_pool()).  Freeing a
    /// pointer from a different executor throws MemorySpaceError.
    void free_bytes(void* ptr) const;

    template <typename T>
    T* alloc(size_type num_elems) const
    {
        return static_cast<T*>(
            alloc_bytes(num_elems * static_cast<size_type>(sizeof(T))));
    }

    /// Copies `bytes` bytes from `src` (owned by `src_exec`) into `dst`
    /// (owned by this executor), charging transfer cost when the copy
    /// crosses the host/device boundary.
    void copy_from(const Executor* src_exec, size_type bytes, const void* src,
                   void* dst) const;

    /// Charges the modeled cost of moving `bytes` from `src_exec`'s space
    /// into this one without performing the copy (used by strided copies
    /// that move the payload themselves).
    void charge_copy(const Executor* src_exec, size_type bytes) const;

    /// Blocks until all outstanding simulated work completed.  On the
    /// simulated devices this also charges a synchronization latency.
    virtual void synchronize() const;

    /// Dispatches `op` to this backend's kernel, charging launch latency and
    /// counting the launch.
    void run(const Operation& op) const;

    virtual exec_kind kind() const = 0;
    /// True for the simulated device executors (memory not host-resident
    /// from the framework's point of view).
    virtual bool is_device() const { return false; }

    const std::string& name() const { return name_; }
    const sim::MachineModel& model() const { return model_; }
    sim::SimClock& clock() const { return clock_; }

    /// Number of parallel workers the performance model assumes; kernels use
    /// it for partitioning decisions (and, on real hardware, thread counts).
    int worker_count() const { return model_.workers; }

    /// The host executor backing this one; returns itself for host
    /// executors.
    std::shared_ptr<const Executor> get_master() const;

    /// True if `ptr` was allocated (and not yet freed) on this executor.
    bool owns(const void* ptr) const;

    // --- instrumentation ------------------------------------------------
    //
    // Allocation counters come in two flavours.  *System* counters describe
    // traffic that actually reached the system allocator: num_allocations()
    // is the cumulative count of fresh system allocations (== pool_misses()),
    // so a steady-state region whose requests are all pool hits leaves it
    // unchanged — the property the workspace tests assert.  *Live* counters
    // describe the registry: num_live_allocations() and bytes_in_use() track
    // blocks currently allocated and not yet freed, regardless of whether
    // their eventual free returns them to the pool or the system.
    size_type num_kernel_launches() const { return launches_.load(); }
    /// Cumulative system allocations performed by this executor (pool
    /// misses); unchanged while requests are served from the pool.
    size_type num_allocations() const;
    /// Blocks currently allocated and not yet freed.
    size_type num_live_allocations() const;
    /// Sum of the requested sizes of live blocks.
    size_type bytes_in_use() const;
    /// Pool allocations served from the cached free lists.
    size_type pool_hits() const;
    /// Pool allocations that had to go to the system allocator.
    size_type pool_misses() const;
    /// Bytes currently cached in the pool's free lists.
    size_type pool_bytes_cached() const;
    /// Peak of pool_bytes_cached() over the executor's lifetime.
    size_type pool_high_watermark() const;
    /// Releases all cached blocks back to the system; returns bytes freed.
    size_type trim_pool() const;
    /// Accumulated *real* wall time spent inside kernel bodies; benchmark
    /// harnesses subtract it to isolate host-side software overhead.
    double real_kernel_wall_ns() const { return kernel_wall_ns_.load(); }

protected:
    Executor(sim::MachineModel model, std::shared_ptr<const Executor> master);

    /// Calls op.run() with the concrete executor type.
    virtual void dispatch(const Operation& op) const = 0;

private:
    sim::MachineModel model_;
    std::string name_;
    std::shared_ptr<const Executor> master_;  // null for host executors
    mutable sim::SimClock clock_;
    mutable detail::MemoryPool pool_;
    mutable std::atomic<size_type> launches_{0};
    mutable std::atomic<double> kernel_wall_ns_{0.0};
};


/// Sequential host executor; the numerical ground truth for all kernels.
class ReferenceExecutor : public Executor {
public:
    static std::shared_ptr<ReferenceExecutor> create();
    exec_kind kind() const override { return exec_kind::reference; }

protected:
    ReferenceExecutor();
    void dispatch(const Operation& op) const override { op.run(this); }
};


/// OpenMP-parallel host executor.  `num_threads` configures both the
/// performance model and (capped by the hardware) the real thread count.
class OmpExecutor : public Executor {
public:
    static std::shared_ptr<OmpExecutor> create(int num_threads = 0);
    exec_kind kind() const override { return exec_kind::omp; }
    /// Threads assumed by the performance model.
    int num_threads() const { return worker_count(); }
    /// Threads actually used for execution on this machine.
    int real_threads() const { return real_threads_; }

protected:
    explicit OmpExecutor(int num_threads);
    void dispatch(const Operation& op) const override { op.run(this); }

private:
    int real_threads_;
};


/// Simulated NVIDIA device executor (A100 model).
class CudaExecutor : public Executor {
public:
    static std::shared_ptr<CudaExecutor> create(
        int device_id = 0, std::shared_ptr<const Executor> master = nullptr);
    exec_kind kind() const override { return exec_kind::cuda; }
    bool is_device() const override { return true; }
    int device_id() const { return device_id_; }
    void synchronize() const override;

protected:
    CudaExecutor(int device_id, std::shared_ptr<const Executor> master);
    void dispatch(const Operation& op) const override { op.run(this); }

private:
    int device_id_;
};


/// Simulated AMD device executor (MI100 model); its kernels use
/// wavefront-chunked variants where they differ from the CUDA path.
class HipExecutor : public Executor {
public:
    static std::shared_ptr<HipExecutor> create(
        int device_id = 0, std::shared_ptr<const Executor> master = nullptr);
    exec_kind kind() const override { return exec_kind::hip; }
    bool is_device() const override { return true; }
    int device_id() const { return device_id_; }
    void synchronize() const override;

protected:
    HipExecutor(int device_id, std::shared_ptr<const Executor> master);
    void dispatch(const Operation& op) const override { op.run(this); }

private:
    int device_id_;
};


namespace detail {

template <typename RefFn, typename OmpFn, typename CudaFn, typename HipFn>
class LambdaOperation final : public Operation {
public:
    LambdaOperation(const char* name, RefFn ref, OmpFn omp, CudaFn cuda,
                    HipFn hip)
        : name_{name},
          ref_{std::move(ref)},
          omp_{std::move(omp)},
          cuda_{std::move(cuda)},
          hip_{std::move(hip)}
    {}

    const char* name() const override { return name_; }
    void run(const ReferenceExecutor* e) const override { ref_(e); }
    void run(const OmpExecutor* e) const override { omp_(e); }
    void run(const CudaExecutor* e) const override { cuda_(e); }
    void run(const HipExecutor* e) const override { hip_(e); }

private:
    const char* name_;
    RefFn ref_;
    OmpFn omp_;
    CudaFn cuda_;
    HipFn hip_;
};

}  // namespace detail


/// Builds a dispatchable Operation from one lambda per backend.
template <typename RefFn, typename OmpFn, typename CudaFn, typename HipFn>
auto make_operation(const char* name, RefFn ref, OmpFn omp, CudaFn cuda,
                    HipFn hip)
{
    return detail::LambdaOperation<RefFn, OmpFn, CudaFn, HipFn>{
        name, std::move(ref), std::move(omp), std::move(cuda), std::move(hip)};
}


/// Convenience: creates the executor named by the paper's device strings
/// ("reference", "omp"/"cpu", "cuda", "hip"), case-insensitive.
std::shared_ptr<Executor> create_executor(const std::string& name,
                                          int device_id = 0);


}  // namespace mgko
