// Runtime -> compile-time type dispatch.
//
// This is the C++ half of the paper's §5.1 mechanism: all template
// combinations are pre-instantiated, and a runtime (dtype, itype) tag pair
// selects the instantiation.  The binding layer's string dispatch and the
// config-solver both funnel through these helpers.
#pragma once

#include <utility>

#include "core/exception.hpp"
#include "core/half.hpp"
#include "core/types.hpp"

namespace mgko {


template <typename T>
struct type_token {
    using type = T;
};


/// Invokes fn(type_token<V>{}) for the runtime value type tag.
template <typename Fn>
decltype(auto) dispatch_value_type(dtype t, Fn&& fn)
{
    switch (t) {
    case dtype::f16:
        return fn(type_token<half>{});
    case dtype::f32:
        return fn(type_token<float>{});
    case dtype::f64:
        return fn(type_token<double>{});
    }
    throw BadParameter(__FILE__, __LINE__, "invalid dtype tag");
}


/// Invokes fn(type_token<I>{}) for the runtime index type tag.
template <typename Fn>
decltype(auto) dispatch_index_type(itype t, Fn&& fn)
{
    switch (t) {
    case itype::i32:
        return fn(type_token<int32>{});
    case itype::i64:
        return fn(type_token<int64>{});
    }
    throw BadParameter(__FILE__, __LINE__, "invalid itype tag");
}


/// Invokes fn(type_token<V>{}, type_token<I>{}) over the cross product.
template <typename Fn>
decltype(auto) dispatch_value_index(dtype vt, itype it, Fn&& fn)
{
    return dispatch_value_type(vt, [&](auto v) -> decltype(auto) {
        return dispatch_index_type(it, [&](auto i) -> decltype(auto) {
            return fn(v, i);
        });
    });
}


template <typename ValueType, typename IndexType>
class Csr;
template <typename ValueType, typename IndexType>
class Coo;
template <typename ValueType, typename IndexType>
class Ell;
template <typename ValueType, typename IndexType>
class Hybrid;
template <typename ValueType, typename IndexType>
class SellCs;


/// Carries a sparse format class template; `type<V, I>` names the concrete
/// matrix class once value and index types are fixed.
template <template <typename, typename> class M>
struct format_token {
    template <typename V, typename I>
    using type = M<V, I>;
};


/// Invokes fn(format_token<M>{}) for the runtime format tag — the format
/// axis of the paper's pre-instantiated dispatch grid.
template <typename Fn>
decltype(auto) dispatch_format(mat_format f, Fn&& fn)
{
    switch (f) {
    case mat_format::csr:
        return fn(format_token<Csr>{});
    case mat_format::coo:
        return fn(format_token<Coo>{});
    case mat_format::ell:
        return fn(format_token<Ell>{});
    case mat_format::hybrid:
        return fn(format_token<Hybrid>{});
    case mat_format::sellcs:
        return fn(format_token<SellCs>{});
    }
    throw BadParameter(__FILE__, __LINE__, "invalid format tag");
}


}  // namespace mgko
