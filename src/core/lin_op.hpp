// The LinOp (linear operator) abstraction — the framework's central concept
// (paper §4.2): matrices, solvers, and preconditioners are all LinOps, and
// every object that models a linear operation is used through the same
// `apply` call.  Solver pipelines compose LinOps.
#pragma once

#include <memory>
#include <vector>

#include "core/exception.hpp"
#include "core/executor.hpp"
#include "core/types.hpp"
#include "log/event_logger.hpp"

namespace mgko {


/// LinOps expose a logger attachment point (log::EnableLogging); the
/// iterative solvers broadcast their iteration/stop events to loggers
/// attached here (and to the executor's), see solver/solver_base.hpp.
class LinOp : public std::enable_shared_from_this<LinOp>,
              public log::EnableLogging {
public:
    virtual ~LinOp() = default;

    LinOp(const LinOp&) = delete;
    LinOp& operator=(const LinOp&) = delete;

    /// Applies the operator: x = op(b).  For a matrix this is SpMV / GEMV,
    /// for a solver the solution of op * x = b (with x the initial guess),
    /// for a preconditioner the preconditioner application.
    void apply(const LinOp* b, LinOp* x) const
    {
        validate_application(b, x);
        apply_impl(b, x);
    }

    void apply(std::shared_ptr<const LinOp> b, std::shared_ptr<LinOp> x) const
    {
        apply(b.get(), x.get());
    }

    /// Advanced (BLAS-like) apply: x = alpha * op(b) + beta * x, with alpha
    /// and beta 1x1 Dense scalars.
    void apply(const LinOp* alpha, const LinOp* b, const LinOp* beta,
               LinOp* x) const
    {
        validate_application(b, x);
        MGKO_ENSURE(alpha->get_size() == dim2(1, 1),
                    "alpha must be a 1x1 scalar");
        MGKO_ENSURE(beta->get_size() == dim2(1, 1),
                    "beta must be a 1x1 scalar");
        apply_impl(alpha, b, beta, x);
    }

    const dim2& get_size() const { return size_; }

    std::shared_ptr<const Executor> get_executor() const { return exec_; }

protected:
    LinOp(std::shared_ptr<const Executor> exec, dim2 size)
        : exec_{std::move(exec)}, size_{size}
    {
        MGKO_ENSURE(exec_ != nullptr, "LinOp requires an executor");
    }

    virtual void apply_impl(const LinOp* b, LinOp* x) const = 0;
    virtual void apply_impl(const LinOp* alpha, const LinOp* b,
                            const LinOp* beta, LinOp* x) const = 0;

    void set_size(dim2 size) { size_ = size; }

    void validate_application(const LinOp* b, const LinOp* x) const
    {
        MGKO_ENSURE(b != nullptr && x != nullptr,
                    "apply requires non-null operands");
        MGKO_ASSERT_CONFORMANT("apply(op, b)", size_, b->get_size());
        if (size_.rows != x->get_size().rows ||
            b->get_size().cols != x->get_size().cols) {
            throw DimensionMismatch(__FILE__, __LINE__, "apply result",
                                    dim2{size_.rows, b->get_size().cols},
                                    x->get_size());
        }
    }

private:
    std::shared_ptr<const Executor> exec_;
    dim2 size_{};
};


/// Factory producing LinOps bound to a system operator — the pattern behind
/// solvers and preconditioners: `factory->generate(A)` returns the solver /
/// preconditioner for A.
class LinOpFactory {
public:
    virtual ~LinOpFactory() = default;

    std::unique_ptr<LinOp> generate(std::shared_ptr<const LinOp> system) const
    {
        MGKO_ENSURE(system != nullptr, "generate requires a system operator");
        return generate_impl(std::move(system));
    }

    std::shared_ptr<const Executor> get_executor() const { return exec_; }

protected:
    explicit LinOpFactory(std::shared_ptr<const Executor> exec)
        : exec_{std::move(exec)}
    {}

    virtual std::unique_ptr<LinOp> generate_impl(
        std::shared_ptr<const LinOp> system) const = 0;

private:
    std::shared_ptr<const Executor> exec_;
};


/// The identity operator (used as the default "no preconditioner").
class Identity : public LinOp {
public:
    static std::unique_ptr<Identity> create(
        std::shared_ptr<const Executor> exec, size_type n)
    {
        return std::unique_ptr<Identity>{new Identity{std::move(exec), n}};
    }

protected:
    Identity(std::shared_ptr<const Executor> exec, size_type n)
        : LinOp{std::move(exec), dim2{n}}
    {}

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;
};


/// Composition of operators: (A1 * A2 * ... * Ak) b, applied right to left.
/// ILU-style preconditioners are compositions of two triangular solves.
class Composition : public LinOp {
public:
    static std::unique_ptr<Composition> create(
        std::vector<std::shared_ptr<const LinOp>> operators);

    const std::vector<std::shared_ptr<const LinOp>>& get_operators() const
    {
        return operators_;
    }

protected:
    explicit Composition(std::vector<std::shared_ptr<const LinOp>> operators);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    std::vector<std::shared_ptr<const LinOp>> operators_;
};


}  // namespace mgko
