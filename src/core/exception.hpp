// Exception hierarchy.  Every error carries the throwing source location,
// mirroring Ginkgo's diagnostics style.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#include "core/types.hpp"

namespace mgko {


class Error : public std::runtime_error {
public:
    Error(const std::string& file, int line, const std::string& what)
        : std::runtime_error(file + ":" + std::to_string(line) + ": " + what)
    {}
};

/// Operator / vector shape mismatch in an apply or conversion.
class DimensionMismatch : public Error {
public:
    DimensionMismatch(const std::string& file, int line, const std::string& op,
                      dim2 first, dim2 second)
        : Error(file, line,
                op + ": incompatible dimensions [" + std::to_string(first.rows) +
                    " x " + std::to_string(first.cols) + "] vs [" +
                    std::to_string(second.rows) + " x " +
                    std::to_string(second.cols) + "]")
    {}
};

/// Requested combination (format / executor / operation) is not implemented.
class NotSupported : public Error {
public:
    NotSupported(const std::string& file, int line, const std::string& what)
        : Error(file, line, "not supported: " + what)
    {}
};

class BadAlloc : public Error {
public:
    BadAlloc(const std::string& file, int line, size_type bytes)
        : Error(file, line,
                "allocation of " + std::to_string(bytes) + " bytes failed")
    {}
};

/// Memory accessed through the wrong executor, freed twice, or unknown.
class MemorySpaceError : public Error {
public:
    MemorySpaceError(const std::string& file, int line, const std::string& what)
        : Error(file, line, "memory space violation: " + what)
    {}
};

class FileError : public Error {
public:
    FileError(const std::string& file, int line, const std::string& path,
              const std::string& what)
        : Error(file, line, path + ": " + what)
    {}
};

/// Malformed user input (dtype strings, config dictionaries, ...).
class BadParameter : public Error {
public:
    BadParameter(const std::string& file, int line, const std::string& what)
        : Error(file, line, "bad parameter: " + what)
    {}
};

class OutOfBounds : public Error {
public:
    OutOfBounds(const std::string& file, int line, size_type index,
                size_type bound)
        : Error(file, line,
                "index " + std::to_string(index) + " out of bounds [0, " +
                    std::to_string(bound) + ")")
    {}
};

/// Numerical breakdown inside a solver or factorization (e.g. zero pivot).
class NumericalError : public Error {
public:
    NumericalError(const std::string& file, int line, const std::string& what)
        : Error(file, line, "numerical error: " + what)
    {}
};


#define MGKO_NOT_SUPPORTED(_what) \
    throw ::mgko::NotSupported(__FILE__, __LINE__, _what)

#define MGKO_ENSURE(_cond, _what)                                 \
    do {                                                          \
        if (!(_cond)) {                                           \
            throw ::mgko::BadParameter(__FILE__, __LINE__,        \
                                       std::string{#_cond ": "} + \
                                           std::string{_what});   \
        }                                                         \
    } while (false)

#define MGKO_ASSERT_EQUAL_DIMENSIONS(_op, _a, _b)                         \
    do {                                                                  \
        if ((_a) != (_b)) {                                               \
            throw ::mgko::DimensionMismatch(__FILE__, __LINE__, _op, _a,  \
                                            _b);                          \
        }                                                                 \
    } while (false)

#define MGKO_ASSERT_CONFORMANT(_op, _mat, _vec)                              \
    do {                                                                     \
        if ((_mat).cols != (_vec).rows) {                                    \
            throw ::mgko::DimensionMismatch(__FILE__, __LINE__, _op, _mat,   \
                                            _vec);                           \
        }                                                                    \
    } while (false)


}  // namespace mgko
