// Scalar math helpers that work uniformly for half, float, and double.
//
// Kernels are written against these helpers instead of <cmath> directly so
// that the same template body instantiates for all value types in Table 1.
#pragma once

#include <cmath>
#include <limits>
#include <type_traits>

#include "core/half.hpp"
#include "core/types.hpp"

namespace mgko {


template <typename T>
constexpr T zero()
{
    return T{0.0f};
}

template <typename T>
constexpr T one()
{
    return T{1.0f};
}

/// Type used to accumulate reductions / norms of a value type.  Half
/// accumulates in float (as GPU half kernels do); everything else in itself.
template <typename T>
struct accumulator {
    using type = T;
};
template <>
struct accumulator<half> {
    using type = float;
};
template <typename T>
using accumulate_t = typename accumulator<T>::type;

/// Norms and residuals are always reported in double, independent of the
/// value type, which is what the stopping criteria consume.
using norm_type = double;

inline float to_float(half v) { return static_cast<float>(v); }
inline float to_float(float v) { return v; }
inline double to_float(double v) { return v; }

template <typename T>
T abs(T v)
{
    return v < zero<T>() ? -v : v;
}
inline float abs(float v) { return std::fabs(v); }
inline double abs(double v) { return std::fabs(v); }

template <typename T>
T sqrt(T v)
{
    return T{std::sqrt(static_cast<float>(v))};
}
inline float sqrt(float v) { return std::sqrt(v); }
inline double sqrt(double v) { return std::sqrt(v); }

template <typename T>
bool is_finite(T v)
{
    return std::isfinite(static_cast<double>(v));
}

template <typename T>
bool is_nan(T v)
{
    return std::isnan(static_cast<double>(v));
}

template <typename T>
T squared(T v)
{
    return v * v;
}

/// Safe division used by Jacobi-style preconditioners: returns 1/eps-scaled
/// fallback for (near-)zero pivots instead of producing inf.
template <typename T>
T safe_reciprocal(T v)
{
    const auto eps = static_cast<double>(std::numeric_limits<T>::epsilon());
    if (static_cast<double>(abs(v)) < eps) {
        return one<T>() / T{static_cast<float>(eps)};
    }
    return one<T>() / v;
}

constexpr size_type ceildiv(size_type num, size_type den)
{
    return (num + den - 1) / den;
}


}  // namespace mgko
