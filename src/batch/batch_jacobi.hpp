// Batched scalar-Jacobi preconditioner: one inverse diagonal per system,
// stored contiguously (num_systems x n) like every other batched value
// buffer, applied as one elementwise sweep across the active systems.
#pragma once

#include <memory>

#include "core/array.hpp"
#include "batch/batch_lin_op.hpp"
#include "batch/batch_strided_op.hpp"

namespace mgko::batch {


template <typename ValueType>
class Jacobi;

template <typename ValueType>
class JacobiFactory : public BatchLinOpFactory {
public:
    explicit JacobiFactory(std::shared_ptr<const Executor> exec)
        : BatchLinOpFactory{std::move(exec)}
    {}

protected:
    std::unique_ptr<BatchLinOp> generate_impl(
        std::shared_ptr<const BatchLinOp> system) const override;
};

template <typename ValueType>
class jacobi_builder {
public:
    std::shared_ptr<JacobiFactory<ValueType>> on(
        std::shared_ptr<const Executor> exec) const
    {
        return std::make_shared<JacobiFactory<ValueType>>(std::move(exec));
    }
};


template <typename ValueType>
class Jacobi : public BatchLinOp, public StridedBatchOp<ValueType> {
public:
    using value_type = ValueType;

    static jacobi_builder<ValueType> build() { return {}; }

    const ValueType* get_const_inverse_diagonal() const
    {
        return inv_diag_.get_const_data();
    }

    /// z[s] = inv_diag[s] ⊙ r[s] over the active systems.
    void apply_raw(const std::uint8_t* active, const ValueType* b,
                   ValueType* x) const override;
    /// r[s] = b[s] - diag[s] x[s]; only meaningful for testing — the
    /// preconditioner is applied, not solved against.
    void residual_raw(const std::uint8_t* active, const ValueType* b,
                      const ValueType* x, ValueType* r) const override;

protected:
    friend class JacobiFactory<ValueType>;
    /// Builds from the per-system inverse diagonals extracted by the
    /// factory (missing / zero diagonal entries invert to 1, matching the
    /// single-system scalar Jacobi's safe_reciprocal convention).
    Jacobi(std::shared_ptr<const Executor> exec, batch_dim size,
           array<ValueType> inv_diag);

    void apply_impl(const BatchLinOp* b, BatchLinOp* x) const override;

private:
    array<ValueType> inv_diag_;
};


}  // namespace mgko::batch
