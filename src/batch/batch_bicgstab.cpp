#include "batch/batch_bicgstab.hpp"

#include <cmath>

#include "batch/batch_dense.hpp"
#include "core/math.hpp"

namespace mgko::batch {

namespace {
enum bicgstab_slots : std::size_t {
    ws_r,
    ws_r_tilde,
    ws_p,
    ws_p_hat,
    ws_v,
    ws_s,
    ws_s_hat,
    ws_t,
};
enum bicgstab_host_slots : std::size_t {
    hs_b_norm,
    hs_r_norm,
    hs_s_norm,
    hs_rho,
    hs_rho_prev,
    hs_alpha,
    hs_omega,
    hs_coeff,
};
}  // namespace


template <typename ValueType>
void Bicgstab<ValueType>::apply_impl(const BatchLinOp* b, BatchLinOp* x) const
{
    auto apply_span = this->make_span("batch.bicgstab.apply");
    auto batch_b = as_batch_dense<ValueType>(b);
    auto batch_x = as_batch_dense<ValueType>(x);
    MGKO_ENSURE(
        batch_b->get_common_size().cols == 1 &&
            batch_x->get_common_size().cols == 1,
        "batched BiCGStab supports one right-hand-side column per system");

    const auto num = this->get_num_systems();
    const auto n = this->get_common_size().rows;
    const auto exec = this->get_executor();
    auto& ws = this->workspace_;
    auto* r_vec = ws.vec(ws_r, dim2{num * n, 1});
    auto* r = r_vec->get_values();
    auto* r_tilde = ws.vec(ws_r_tilde, dim2{num * n, 1})->get_values();
    auto* p_vec = ws.vec(ws_p, dim2{num * n, 1});
    auto* p = p_vec->get_values();
    auto* p_hat = ws.vec(ws_p_hat, dim2{num * n, 1})->get_values();
    auto* v_vec = ws.vec(ws_v, dim2{num * n, 1});
    auto* v = v_vec->get_values();
    auto* s = ws.vec(ws_s, dim2{num * n, 1})->get_values();
    auto* s_hat = ws.vec(ws_s_hat, dim2{num * n, 1})->get_values();
    auto* t = ws.vec(ws_t, dim2{num * n, 1})->get_values();
    auto& b_norm = ws.host(hs_b_norm, num);
    auto& r_norm = ws.host(hs_r_norm, num);
    auto& s_norm = ws.host(hs_s_norm, num);
    auto& rho = ws.host(hs_rho, num);
    auto& rho_prev = ws.host(hs_rho_prev, num);
    auto& alpha = ws.host(hs_alpha, num);
    auto& omega = ws.host(hs_omega, num);
    auto& coeff = ws.host(hs_coeff, num);

    auto& active = this->active_;
    active.assign(num, 1);
    half_.assign(num, 0);
    this->logger_->reset(num);

    const auto* b_vals = batch_b->get_const_values();
    auto* x_vals = batch_x->get_values();
    const double vb = static_cast<double>(n) * sizeof(ValueType);
    const double fn = static_cast<double>(n);

    detail::run_kernel(exec, "batch_norm2", num, vb, 2.0 * fn, [&](int nt) {
        kernels::batch::norm2(nt, num, nullptr, b_vals, n, b_norm.data());
    });
    this->system_ops_->residual_raw(nullptr, b_vals, x_vals, r);
    detail::run_kernel(exec, "batch_norm2", num, vb, 2.0 * fn, [&](int nt) {
        kernels::batch::norm2(nt, num, nullptr, r, n, r_norm.data());
    });
    auto criteria = this->bind_criteria(b_norm.data(), r_norm.data());
    for (size_type s_idx = 0; s_idx < num; ++s_idx) {
        this->logger_->log_iteration(s_idx, 0, r_norm[s_idx]);
        rho_prev[s_idx] = 1.0;
        alpha[s_idx] = 1.0;
        omega[s_idx] = 1.0;
    }
    detail::run_kernel(exec, "batch_copy", num, 2.0 * vb, 0.0, [&](int nt) {
        kernels::batch::copy(nt, num, nullptr, r, r_tilde, n);
    });
    p_vec->fill(zero<ValueType>());
    v_vec->fill(zero<ValueType>());

    size_type active_count = num;
    auto retire = [&](size_type s_idx, size_type iter, bool converged,
                      const std::string& reason) {
        active[s_idx] = 0;
        --active_count;
        this->logger_->log_stop(s_idx, iter, converged, reason);
    };
    auto sweep_converged = [&](size_type iter) {
        for (size_type s_idx = 0; s_idx < num; ++s_idx) {
            if (active[s_idx] &&
                criteria[s_idx]->is_satisfied(iter, r_norm[s_idx])) {
                retire(s_idx, iter, criteria[s_idx]->indicates_convergence(),
                       criteria[s_idx]->reason());
            }
        }
    };
    sweep_converged(0);

    size_type iter = 0;
    while (active_count > 0) {
        auto round_span = this->make_span("batch.bicgstab.round");
        detail::run_kernel(exec, "batch_dot", active_count, 2.0 * vb,
                           2.0 * fn, [&](int nt) {
                               kernels::batch::dot(nt, num, active.data(),
                                                   r_tilde, r, n, rho.data());
                           });
        for (size_type s_idx = 0; s_idx < num; ++s_idx) {
            if (active[s_idx] &&
                (rho[s_idx] == 0.0 || !std::isfinite(rho[s_idx]))) {
                retire(s_idx, iter, false, "breakdown: rho == 0");
            }
        }
        if (active_count == 0) {
            break;
        }
        // p = r + beta * (p - omega * v), beta = (rho/rho_prev)*(alpha/omega)
        detail::run_kernel(
            exec, "batch_add_scaled", active_count, 3.0 * vb, 2.0 * fn,
            [&](int nt) {
                kernels::batch::add_scaled(nt, num, active.data(),
                                           omega.data(), v, p, n, true);
            });
        for (size_type s_idx = 0; s_idx < num; ++s_idx) {
            if (active[s_idx]) {
                coeff[s_idx] = (rho[s_idx] / rho_prev[s_idx]) *
                               (alpha[s_idx] / omega[s_idx]);
            }
        }
        detail::run_kernel(
            exec, "batch_scale_add", active_count, 3.0 * vb, 2.0 * fn,
            [&](int nt) {
                kernels::batch::scale_add(nt, num, active.data(),
                                          coeff.data(), r, p, n);
            });

        this->apply_preconditioner(active.data(), p, p_hat, n);
        this->system_ops_->apply_raw(active.data(), p_hat, v);
        detail::run_kernel(exec, "batch_dot", active_count, 2.0 * vb,
                           2.0 * fn, [&](int nt) {
                               kernels::batch::dot(nt, num, active.data(),
                                                   r_tilde, v, n,
                                                   coeff.data());
                           });
        for (size_type s_idx = 0; s_idx < num; ++s_idx) {
            if (active[s_idx] &&
                (coeff[s_idx] == 0.0 || !std::isfinite(coeff[s_idx]))) {
                retire(s_idx, iter, false, "breakdown: r~'v == 0");
            }
        }
        if (active_count == 0) {
            break;
        }
        for (size_type s_idx = 0; s_idx < num; ++s_idx) {
            if (active[s_idx]) {
                alpha[s_idx] = rho[s_idx] / coeff[s_idx];
            }
        }
        // s = r - alpha * v
        detail::run_kernel(exec, "batch_copy", active_count, 2.0 * vb, 0.0,
                           [&](int nt) {
                               kernels::batch::copy(nt, num, active.data(), r,
                                                    s, n);
                           });
        detail::run_kernel(
            exec, "batch_add_scaled", active_count, 3.0 * vb, 2.0 * fn,
            [&](int nt) {
                kernels::batch::add_scaled(nt, num, active.data(),
                                           alpha.data(), v, s, n, true);
            });
        detail::run_kernel(exec, "batch_norm2", active_count, vb, 2.0 * fn,
                           [&](int nt) {
                               kernels::batch::norm2(nt, num, active.data(),
                                                     s, n, s_norm.data());
                           });
        ++iter;
        const auto advanced = active_count;
        double max_res = 0.0;

        // Half-step exits: systems already converged at the s-residual take
        // x += alpha * p_hat and retire; the rest complete the full step.
        size_type half_count = 0;
        std::fill(half_.begin(), half_.end(), 0);
        for (size_type s_idx = 0; s_idx < num; ++s_idx) {
            if (active[s_idx] &&
                criteria[s_idx]->is_satisfied(iter, s_norm[s_idx])) {
                half_[s_idx] = 1;
                ++half_count;
            }
        }
        if (half_count > 0) {
            detail::run_kernel(
                exec, "batch_add_scaled", half_count, 3.0 * vb, 2.0 * fn,
                [&](int nt) {
                    kernels::batch::add_scaled(nt, num, half_.data(),
                                               alpha.data(), p_hat, x_vals, n,
                                               false);
                });
            for (size_type s_idx = 0; s_idx < num; ++s_idx) {
                if (half_[s_idx]) {
                    r_norm[s_idx] = s_norm[s_idx];
                    max_res = std::max(max_res, r_norm[s_idx]);
                    this->logger_->log_iteration(s_idx, iter, r_norm[s_idx]);
                    retire(s_idx, iter,
                           criteria[s_idx]->indicates_convergence(),
                           criteria[s_idx]->reason());
                }
            }
        }
        if (active_count == 0) {
            this->log_batch_iteration(iter, advanced, max_res);
            break;
        }

        this->apply_preconditioner(active.data(), s, s_hat, n);
        this->system_ops_->apply_raw(active.data(), s_hat, t);
        detail::run_kernel(exec, "batch_dot", active_count, 2.0 * vb,
                           2.0 * fn, [&](int nt) {
                               kernels::batch::dot(nt, num, active.data(), t,
                                                   t, n, coeff.data());
                           });
        // t't breakdown: accept the half step for those systems and retire.
        size_type tt_breakdowns = 0;
        std::fill(half_.begin(), half_.end(), 0);
        for (size_type s_idx = 0; s_idx < num; ++s_idx) {
            if (active[s_idx] &&
                (coeff[s_idx] == 0.0 || !std::isfinite(coeff[s_idx]))) {
                half_[s_idx] = 1;
                ++tt_breakdowns;
            }
        }
        if (tt_breakdowns > 0) {
            detail::run_kernel(
                exec, "batch_add_scaled", tt_breakdowns, 3.0 * vb, 2.0 * fn,
                [&](int nt) {
                    kernels::batch::add_scaled(nt, num, half_.data(),
                                               alpha.data(), p_hat, x_vals, n,
                                               false);
                });
            for (size_type s_idx = 0; s_idx < num; ++s_idx) {
                if (half_[s_idx]) {
                    r_norm[s_idx] = s_norm[s_idx];
                    max_res = std::max(max_res, r_norm[s_idx]);
                    this->logger_->log_iteration(s_idx, iter, r_norm[s_idx]);
                    retire(s_idx, iter, false, "breakdown: t't == 0");
                }
            }
        }
        if (active_count == 0) {
            this->log_batch_iteration(iter, advanced, max_res);
            break;
        }

        // omega = t's / t't (coeff currently holds t't).
        auto& ts = rho_prev;  // rho_prev is rewritten below; reuse as scratch
        detail::run_kernel(exec, "batch_dot", active_count, 2.0 * vb,
                           2.0 * fn, [&](int nt) {
                               kernels::batch::dot(nt, num, active.data(), t,
                                                   s, n, ts.data());
                           });
        for (size_type s_idx = 0; s_idx < num; ++s_idx) {
            if (active[s_idx]) {
                omega[s_idx] = ts[s_idx] / coeff[s_idx];
            }
        }
        // x += alpha * p_hat + omega * s_hat
        detail::run_kernel(
            exec, "batch_add_scaled", active_count, 3.0 * vb, 2.0 * fn,
            [&](int nt) {
                kernels::batch::add_scaled(nt, num, active.data(),
                                           alpha.data(), p_hat, x_vals, n,
                                           false);
            });
        detail::run_kernel(
            exec, "batch_add_scaled", active_count, 3.0 * vb, 2.0 * fn,
            [&](int nt) {
                kernels::batch::add_scaled(nt, num, active.data(),
                                           omega.data(), s_hat, x_vals, n,
                                           false);
            });
        // r = s - omega * t
        detail::run_kernel(exec, "batch_copy", active_count, 2.0 * vb, 0.0,
                           [&](int nt) {
                               kernels::batch::copy(nt, num, active.data(), s,
                                                    r, n);
                           });
        detail::run_kernel(
            exec, "batch_add_scaled", active_count, 3.0 * vb, 2.0 * fn,
            [&](int nt) {
                kernels::batch::add_scaled(nt, num, active.data(),
                                           omega.data(), t, r, n, true);
            });
        detail::run_kernel(exec, "batch_norm2", active_count, vb, 2.0 * fn,
                           [&](int nt) {
                               kernels::batch::norm2(nt, num, active.data(),
                                                     r, n, r_norm.data());
                           });
        for (size_type s_idx = 0; s_idx < num; ++s_idx) {
            if (active[s_idx]) {
                rho_prev[s_idx] = rho[s_idx];
                this->logger_->log_iteration(s_idx, iter, r_norm[s_idx]);
                max_res = std::max(max_res, r_norm[s_idx]);
            }
        }
        this->log_batch_iteration(iter, advanced, max_res);
        for (size_type s_idx = 0; s_idx < num; ++s_idx) {
            if (active[s_idx] && omega[s_idx] == 0.0) {
                retire(s_idx, iter, false, "breakdown: omega == 0");
            }
        }
        sweep_converged(iter);
    }
    this->log_batch_stop();
}


#define MGKO_DECLARE_BATCH_BICGSTAB(ValueType) \
    template class Bicgstab<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_BATCH_BICGSTAB);


}  // namespace mgko::batch
