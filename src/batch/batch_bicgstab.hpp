// Batched (preconditioned) BiCGStab with per-system convergence tracking,
// including BiCGStab's half-step early exit: a system whose residual
// already passes its criterion after the s-vector update takes the
// half-step solution x += alpha p_hat and retires, while the rest of the
// batch completes the full step — all through per-system masks, without
// splitting the batch.
#pragma once

#include "batch/batch_solver.hpp"

namespace mgko::batch {


template <typename ValueType = double>
class Bicgstab : public BatchIterativeSolver<ValueType> {
public:
    static batch_builder<Bicgstab> build() { return {}; }

protected:
    friend class BatchSolverFactory<Bicgstab>;
    Bicgstab(std::shared_ptr<const Executor> exec, batch_parameters params,
             std::shared_ptr<const BatchLinOp> system)
        : BatchIterativeSolver<ValueType>{std::move(exec), std::move(params),
                                          std::move(system)}
    {}

    void apply_impl(const BatchLinOp* b, BatchLinOp* x) const override;

private:
    /// Scratch mask for the systems taking the half-step exit this
    /// iteration (persistent like active_, so steady state allocates
    /// nothing).
    mutable std::vector<std::uint8_t> half_;
};


}  // namespace mgko::batch
