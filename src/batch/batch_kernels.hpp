// Batched kernels: every kernel advances all (active) systems of a batch
// in one launch, parallelized *across* systems with OpenMP — the layout and
// schedule that turns many small solves into one throughput-bound sweep.
//
// Conventions shared by all kernels here:
//   * per-system data is contiguous: system s of an (n x 1) batch vector
//     starts at `v + s * n`; system s of a shared-pattern batch CSR starts
//     at `values + s * nnz`,
//   * `active` is an optional per-system mask (nullptr = all active):
//     converged systems drop out of the residual work while the batch keeps
//     running — their slice is simply skipped,
//   * per-system reduction results land in host-side double buffers
//     (solver::Workspace::host slots), matching the single-system solvers'
//     convention of double-precision norms.
//
// Header-only (like matrix/coo_kernels.hpp) so tests can drive the kernel
// bodies with forced thread counts.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/kernel_utils.hpp"
#include "core/math.hpp"
#include "sim/cost_model.hpp"

namespace mgko::kernels::batch {


/// Number of active systems (mask == nullptr means all).
inline size_type count_active(const std::uint8_t* active,
                              size_type num_systems)
{
    if (active == nullptr) {
        return num_systems;
    }
    size_type count = 0;
    for (size_type s = 0; s < num_systems; ++s) {
        count += active[s] ? 1 : 0;
    }
    return count;
}


/// Batched shared-pattern CSR SpMV: x[s] = A[s] b[s] for every active s.
/// The sparsity pattern (row_ptrs / col_idxs) is shared; values are strided
/// by nnz per system.
template <typename V, typename I>
void csr_spmv(int nt, size_type num_systems, const std::uint8_t* active,
              const I* row_ptrs, const I* col_idxs, const V* values,
              size_type rows, size_type nnz, const V* b, V* x)
{
#pragma omp parallel for collapse(2) num_threads(nt) if (nt > 1)
    for (size_type s = 0; s < num_systems; ++s) {
        for (size_type row = 0; row < rows; ++row) {
            if (active != nullptr && !active[s]) {
                continue;
            }
            const V* vals = values + s * nnz;
            const V* bs = b + s * rows;
            using acc_t = accumulate_t<V>;
            acc_t acc{};
            for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
                acc += static_cast<acc_t>(vals[k]) *
                       static_cast<acc_t>(bs[col_idxs[k]]);
            }
            x[s * rows + row] = V{acc};
        }
    }
}


/// Batched dense apply: x[s] = A[s] b[s], A[s] row-major (rows x cols),
/// b[s] (cols x vec_cols), x[s] (rows x vec_cols).
template <typename V>
void dense_apply(int nt, size_type num_systems, const std::uint8_t* active,
                 const V* a, size_type rows, size_type cols, const V* b,
                 size_type vec_cols, V* x)
{
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type s = 0; s < num_systems; ++s) {
        if (active != nullptr && !active[s]) {
            continue;
        }
        const V* as = a + s * rows * cols;
        const V* bs = b + s * cols * vec_cols;
        V* xs = x + s * rows * vec_cols;
        for (size_type r = 0; r < rows; ++r) {
            for (size_type c = 0; c < vec_cols; ++c) {
                using acc_t = accumulate_t<V>;
                acc_t acc{};
                for (size_type k = 0; k < cols; ++k) {
                    acc += static_cast<acc_t>(as[r * cols + k]) *
                           static_cast<acc_t>(bs[k * vec_cols + c]);
                }
                xs[r * vec_cols + c] = V{acc};
            }
        }
    }
}


/// x[s] = b[s] for active systems (`elems` elements per system).
template <typename V>
void copy(int nt, size_type num_systems, const std::uint8_t* active,
          const V* b, V* x, size_type elems)
{
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type s = 0; s < num_systems; ++s) {
        if (active != nullptr && !active[s]) {
            continue;
        }
        std::copy_n(b + s * elems, elems, x + s * elems);
    }
}


/// x[s] += alpha[s] * b[s] (subtract = true flips the sign); alpha is one
/// host-side double per system, folded into the vector kernel exactly like
/// the single-system solvers fold their 1x1 scalars.
template <typename V>
void add_scaled(int nt, size_type num_systems, const std::uint8_t* active,
                const double* alpha, const V* b, V* x, size_type elems,
                bool subtract)
{
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type s = 0; s < num_systems; ++s) {
        if (active != nullptr && !active[s]) {
            continue;
        }
        const V a = static_cast<V>(subtract ? -alpha[s] : alpha[s]);
        const V* bs = b + s * elems;
        V* xs = x + s * elems;
        for (size_type i = 0; i < elems; ++i) {
            xs[i] += a * bs[i];
        }
    }
}


/// x[s] = b[s] + beta[s] * x[s] — the p-update of CG, one kernel.
template <typename V>
void scale_add(int nt, size_type num_systems, const std::uint8_t* active,
               const double* beta, const V* b, V* x, size_type elems)
{
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type s = 0; s < num_systems; ++s) {
        if (active != nullptr && !active[s]) {
            continue;
        }
        const V bt = static_cast<V>(beta[s]);
        const V* bs = b + s * elems;
        V* xs = x + s * elems;
        for (size_type i = 0; i < elems; ++i) {
            xs[i] = bs[i] + bt * xs[i];
        }
    }
}


/// Per-system dot products: result[s] = a[s] . b[s], accumulated in double
/// (the convention of the single-system solvers' detail::dot).
template <typename V>
void dot(int nt, size_type num_systems, const std::uint8_t* active,
         const V* a, const V* b, size_type elems, double* result)
{
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type s = 0; s < num_systems; ++s) {
        if (active != nullptr && !active[s]) {
            continue;
        }
        const V* as = a + s * elems;
        const V* bs = b + s * elems;
        double acc = 0.0;
        for (size_type i = 0; i < elems; ++i) {
            acc += static_cast<double>(to_float(as[i])) *
                   static_cast<double>(to_float(bs[i]));
        }
        result[s] = acc;
    }
}


/// Per-system Euclidean norms: result[s] = ||a[s]||_2.
template <typename V>
void norm2(int nt, size_type num_systems, const std::uint8_t* active,
           const V* a, size_type elems, double* result)
{
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type s = 0; s < num_systems; ++s) {
        if (active != nullptr && !active[s]) {
            continue;
        }
        const V* as = a + s * elems;
        double acc = 0.0;
        for (size_type i = 0; i < elems; ++i) {
            const double v = to_float(as[i]);
            acc += v * v;
        }
        result[s] = std::sqrt(acc);
    }
}


/// Batched residual: r[s] = b[s] - A[s] x[s] (shared-pattern CSR).
template <typename V, typename I>
void csr_residual(int nt, size_type num_systems, const std::uint8_t* active,
                  const I* row_ptrs, const I* col_idxs, const V* values,
                  size_type rows, size_type nnz, const V* b, const V* x,
                  V* r)
{
#pragma omp parallel for collapse(2) num_threads(nt) if (nt > 1)
    for (size_type s = 0; s < num_systems; ++s) {
        for (size_type row = 0; row < rows; ++row) {
            if (active != nullptr && !active[s]) {
                continue;
            }
            const V* vals = values + s * nnz;
            const V* xs = x + s * rows;
            using acc_t = accumulate_t<V>;
            acc_t acc{};
            for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
                acc += static_cast<acc_t>(vals[k]) *
                       static_cast<acc_t>(xs[col_idxs[k]]);
            }
            r[s * rows + row] = b[s * rows + row] - V{acc};
        }
    }
}


/// Batched dense residual: r[s] = b[s] - A[s] x[s], A[s] row-major
/// (rows x rows, square systems).
template <typename V>
void dense_residual(int nt, size_type num_systems, const std::uint8_t* active,
                    const V* a, size_type rows, const V* b, const V* x, V* r)
{
#pragma omp parallel for collapse(2) num_threads(nt) if (nt > 1)
    for (size_type s = 0; s < num_systems; ++s) {
        for (size_type row = 0; row < rows; ++row) {
            if (active != nullptr && !active[s]) {
                continue;
            }
            const V* as = a + s * rows * rows;
            const V* xs = x + s * rows;
            using acc_t = accumulate_t<V>;
            acc_t acc{};
            for (size_type k = 0; k < rows; ++k) {
                acc += static_cast<acc_t>(as[row * rows + k]) *
                       static_cast<acc_t>(xs[k]);
            }
            r[s * rows + row] = b[s * rows + row] - V{acc};
        }
    }
}


/// Batched scalar-Jacobi application: x[s] = inv_diag[s] ⊙ b[s].
template <typename V>
void jacobi_apply(int nt, size_type num_systems, const std::uint8_t* active,
                  const V* inv_diag, const V* b, V* x, size_type elems)
{
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type s = 0; s < num_systems; ++s) {
        if (active != nullptr && !active[s]) {
            continue;
        }
        const V* ds = inv_diag + s * elems;
        const V* bs = b + s * elems;
        V* xs = x + s * elems;
        for (size_type i = 0; i < elems; ++i) {
            xs[i] = ds[i] * bs[i];
        }
    }
}


/// Modeled cost of one batched streaming kernel over the active slices.
inline sim::kernel_profile batch_stream_profile(size_type active_systems,
                                                double bytes_per_system,
                                                double flops_per_system)
{
    return sim::profile_stream(
        static_cast<double>(active_systems) * bytes_per_system,
        static_cast<double>(active_systems) * flops_per_system);
}


}  // namespace mgko::kernels::batch
