// Batched dense matrix / multi-vector, modeled on gko::batch::MultiVector.
//
// All systems' values live in one contiguous allocation, system after
// system (system s of an r x c batch starts at offset s * r * c, row-major
// within the system) — the cache/SIMD-friendly stride batched kernels rely
// on.  Right-hand sides, solutions, and residuals of the batched solvers
// are batch::Dense, exactly as their single-system counterparts are Dense.
#pragma once

#include <memory>

#include "core/array.hpp"
#include "core/matrix_data.hpp"
#include "batch/batch_lin_op.hpp"
#include "batch/batch_strided_op.hpp"

namespace mgko {

template <typename ValueType>
class Dense;

namespace batch {


template <typename ValueType>
class Dense : public BatchLinOp, public StridedBatchOp<ValueType> {
public:
    using value_type = ValueType;

    /// Creates an uninitialized batch of num_systems x (rows x cols).
    static std::unique_ptr<Dense> create(std::shared_ptr<const Executor> exec,
                                         batch_dim size = {});

    /// Creates a batch filled with `value` in every system.
    static std::unique_ptr<Dense> create_filled(
        std::shared_ptr<const Executor> exec, batch_dim size,
        ValueType value);

    /// Duplicates one system's staging data across the whole batch.
    static std::unique_ptr<Dense> create_duplicate(
        std::shared_ptr<const Executor> exec, size_type num_systems,
        const matrix_data<ValueType, int64>& data);

    ValueType* get_values() { return values_.get_data(); }
    const ValueType* get_const_values() const
    {
        return values_.get_const_data();
    }
    /// Start of system `s`'s values.
    ValueType* system_values(size_type s)
    {
        return values_.get_data() + s * stride();
    }
    const ValueType* system_const_values(size_type s) const
    {
        return values_.get_const_data() + s * stride();
    }
    /// Elements per system (rows * cols).
    size_type stride() const { return get_common_size().area(); }
    size_type get_num_stored_elements() const { return values_.size(); }

    /// Host-side element access into system `s` (bounds-checked).
    ValueType& at(size_type sys, size_type row, size_type col = 0);
    ValueType at(size_type sys, size_type row, size_type col = 0) const;

    void fill(ValueType value);
    void copy_from(const Dense* other);
    std::unique_ptr<Dense> clone() const;

    /// Copies system `s` out into a single-system Dense (and back in).
    std::unique_ptr<mgko::Dense<ValueType>> extract_system(size_type s) const;
    void assign_system(size_type s, const mgko::Dense<ValueType>* src);

    /// Raw strided apply / residual over the active systems (square
    /// operator batches only) — the interface the batched solvers iterate
    /// through (see batch_strided_op.hpp).
    void apply_raw(const std::uint8_t* active, const ValueType* b,
                   ValueType* x) const override;
    void residual_raw(const std::uint8_t* active, const ValueType* b,
                      const ValueType* x, ValueType* r) const override;

protected:
    Dense(std::shared_ptr<const Executor> exec, batch_dim size);

    /// Batched dense apply: x[s] = this[s] * b[s] for every system.
    void apply_impl(const BatchLinOp* b, BatchLinOp* x) const override;

private:
    array<ValueType> values_;
};


/// Downcasts a BatchLinOp to batch::Dense<V>, throwing NotSupported with a
/// helpful message when the dynamic type does not match.
template <typename ValueType>
Dense<ValueType>* as_batch_dense(BatchLinOp* op);
template <typename ValueType>
const Dense<ValueType>* as_batch_dense(const BatchLinOp* op);


}  // namespace batch
}  // namespace mgko
