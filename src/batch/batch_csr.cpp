#include "batch/batch_csr.hpp"

#include <algorithm>

#include "batch/batch_dense.hpp"
#include "batch/batch_kernels.hpp"
#include "core/kernel_utils.hpp"
#include "matrix/csr.hpp"

namespace mgko::batch {

namespace {

template <typename Fn>
void run_uniform(const Executor* exec, const char* name, Fn fn)
{
    exec->run(make_operation(
        name, [&](const ReferenceExecutor* e) { fn(e); },
        [&](const OmpExecutor* e) { fn(e); },
        [&](const CudaExecutor* e) { fn(e); },
        [&](const HipExecutor* e) { fn(e); }));
}

}  // namespace


template <typename ValueType, typename IndexType>
Csr<ValueType, IndexType>::Csr(std::shared_ptr<const Executor> exec,
                               batch_dim size, size_type nnz)
    : BatchLinOp{exec, size},
      values_{exec, size.num_systems * nnz},
      col_idxs_{exec, nnz},
      row_ptrs_{exec, size.common.rows + 1}
{}


template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>> Csr<ValueType, IndexType>::create(
    std::shared_ptr<const Executor> exec, batch_dim size, size_type nnz)
{
    return std::unique_ptr<Csr>{new Csr{std::move(exec), size, nnz}};
}


template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>>
Csr<ValueType, IndexType>::create_duplicate(
    std::shared_ptr<const Executor> exec, size_type num_systems,
    const matrix_data<ValueType, IndexType>& data)
{
    // The single-system builder owns the sort/merge logic; reuse it to
    // assemble the shared pattern, then fan the values out across systems.
    auto pattern = mgko::Csr<ValueType, IndexType>::create_from_data(exec, data);
    const auto nnz = pattern->get_num_stored_elements();
    auto result =
        create(exec, batch_dim{num_systems, data.size}, nnz);
    std::copy_n(pattern->get_const_row_ptrs(), data.size.rows + 1,
                result->get_row_ptrs());
    std::copy_n(pattern->get_const_col_idxs(), nnz, result->get_col_idxs());
    for (size_type s = 0; s < num_systems; ++s) {
        std::copy_n(pattern->get_const_values(), nnz,
                    result->system_values(s));
    }
    return result;
}


template <typename ValueType, typename IndexType>
std::unique_ptr<mgko::Csr<ValueType, IndexType>>
Csr<ValueType, IndexType>::extract_system(size_type s) const
{
    MGKO_ENSURE(s >= 0 && s < get_num_systems(),
                "system index out of bounds");
    const auto nnz = get_num_stored_elements_per_system();
    auto result = mgko::Csr<ValueType, IndexType>::create(
        get_executor(), get_common_size(), nnz);
    std::copy_n(get_const_row_ptrs(), get_common_size().rows + 1,
                result->get_row_ptrs());
    std::copy_n(get_const_col_idxs(), nnz, result->get_col_idxs());
    std::copy_n(system_const_values(s), nnz, result->get_values());
    return result;
}


template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>>
Csr<ValueType, IndexType>::clone() const
{
    const auto nnz = get_num_stored_elements_per_system();
    auto result = create(get_executor(), get_size(), nnz);
    std::copy_n(get_const_row_ptrs(), get_common_size().rows + 1,
                result->get_row_ptrs());
    std::copy_n(get_const_col_idxs(), nnz, result->get_col_idxs());
    std::copy_n(get_const_values(), get_num_stored_elements(),
                result->get_values());
    return result;
}


template <typename ValueType, typename IndexType>
void Csr<ValueType, IndexType>::apply_raw(const std::uint8_t* active,
                                          const ValueType* b,
                                          ValueType* x) const
{
    const auto rows = get_common_size().rows;
    const auto nnz = get_num_stored_elements_per_system();
    const auto active_systems =
        kernels::batch::count_active(active, get_num_systems());
    run_uniform(get_executor().get(), "batch_csr_spmv", [&](const Executor* e) {
        kernels::batch::csr_spmv(kernels::exec_threads(e), get_num_systems(),
                                 active, get_const_row_ptrs(),
                                 get_const_col_idxs(), get_const_values(),
                                 rows, nnz, b, x);
        kernels::tick(
            e, kernels::batch::batch_stream_profile(
                   active_systems,
                   static_cast<double>(nnz) *
                           (sizeof(ValueType) + sizeof(IndexType)) +
                       2.0 * static_cast<double>(rows) * sizeof(ValueType),
                   2.0 * static_cast<double>(nnz)));
    });
}


template <typename ValueType, typename IndexType>
void Csr<ValueType, IndexType>::residual_raw(const std::uint8_t* active,
                                             const ValueType* b,
                                             const ValueType* x,
                                             ValueType* r) const
{
    const auto rows = get_common_size().rows;
    const auto nnz = get_num_stored_elements_per_system();
    const auto active_systems =
        kernels::batch::count_active(active, get_num_systems());
    run_uniform(
        get_executor().get(), "batch_csr_residual", [&](const Executor* e) {
            kernels::batch::csr_residual(
                kernels::exec_threads(e), get_num_systems(), active,
                get_const_row_ptrs(), get_const_col_idxs(), get_const_values(),
                rows, nnz, b, x, r);
            kernels::tick(
                e,
                kernels::batch::batch_stream_profile(
                    active_systems,
                    static_cast<double>(nnz) *
                            (sizeof(ValueType) + sizeof(IndexType)) +
                        3.0 * static_cast<double>(rows) * sizeof(ValueType),
                    2.0 * static_cast<double>(nnz) +
                        static_cast<double>(rows)));
        });
}


template <typename ValueType, typename IndexType>
void Csr<ValueType, IndexType>::apply_impl(const BatchLinOp* b,
                                           BatchLinOp* x) const
{
    auto batch_b = as_batch_dense<ValueType>(b);
    auto batch_x = as_batch_dense<ValueType>(x);
    MGKO_ENSURE(batch_b->get_common_size().cols == 1 &&
                    batch_x->get_common_size().cols == 1,
                "batched SpMV supports single-column vectors");
    apply_raw(nullptr, batch_b->get_const_values(), batch_x->get_values());
}


template <typename ValueType, typename IndexType>
Csr<ValueType, IndexType>* as_batch_csr(BatchLinOp* op)
{
    auto result = dynamic_cast<Csr<ValueType, IndexType>*>(op);
    if (result == nullptr) {
        MGKO_NOT_SUPPORTED(
            "operand is not a batch::Csr of the expected value/index types");
    }
    return result;
}


template <typename ValueType, typename IndexType>
const Csr<ValueType, IndexType>* as_batch_csr(const BatchLinOp* op)
{
    return as_batch_csr<ValueType, IndexType>(const_cast<BatchLinOp*>(op));
}


#define MGKO_DECLARE_BATCH_CSR(ValueType, IndexType)                     \
    template class Csr<ValueType, IndexType>;                            \
    template Csr<ValueType, IndexType>*                                  \
    as_batch_csr<ValueType, IndexType>(BatchLinOp*);                     \
    template const Csr<ValueType, IndexType>*                            \
    as_batch_csr<ValueType, IndexType>(const BatchLinOp*)
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_BATCH_CSR);


}  // namespace mgko::batch
