// Batched CSR matrix with one shared sparsity pattern.
//
// All systems of the batch share one set of row pointers and column indices;
// the values of system s start at `values + s * nnz` — `num_systems x nnz`
// stored contiguously, the cache/SIMD-friendly stride the batched SpMV
// kernels sweep across systems.  This is the common case for batched
// workloads (same discretization, different coefficients); per-system
// patterns are represented by padding to the union pattern with explicit
// zeros when staging.
#pragma once

#include <memory>

#include "core/array.hpp"
#include "core/matrix_data.hpp"
#include "batch/batch_lin_op.hpp"
#include "batch/batch_strided_op.hpp"

namespace mgko {

template <typename ValueType, typename IndexType>
class Csr;

namespace batch {


template <typename ValueType, typename IndexType = int32>
class Csr : public BatchLinOp, public StridedBatchOp<ValueType> {
public:
    using value_type = ValueType;
    using index_type = IndexType;

    /// Creates an uninitialized batch: shared pattern of `nnz` entries,
    /// `size.num_systems` value slices.
    static std::unique_ptr<Csr> create(std::shared_ptr<const Executor> exec,
                                       batch_dim size = {},
                                       size_type nnz = 0);

    /// Builds the shared pattern from staging data (sorted, duplicates
    /// merged) and duplicates its values across all `num_systems` slices.
    /// Per-system coefficients are then edited via `system_values`.
    static std::unique_ptr<Csr> create_duplicate(
        std::shared_ptr<const Executor> exec, size_type num_systems,
        const matrix_data<ValueType, IndexType>& data);

    ValueType* get_values() { return values_.get_data(); }
    const ValueType* get_const_values() const
    {
        return values_.get_const_data();
    }
    /// Start of system `s`'s value slice.
    ValueType* system_values(size_type s)
    {
        return values_.get_data() + s * get_num_stored_elements_per_system();
    }
    const ValueType* system_const_values(size_type s) const
    {
        return values_.get_const_data() +
               s * get_num_stored_elements_per_system();
    }
    IndexType* get_col_idxs() { return col_idxs_.get_data(); }
    const IndexType* get_const_col_idxs() const
    {
        return col_idxs_.get_const_data();
    }
    IndexType* get_row_ptrs() { return row_ptrs_.get_data(); }
    const IndexType* get_const_row_ptrs() const
    {
        return row_ptrs_.get_const_data();
    }

    /// Nonzeros of the shared pattern (one system's slice).
    size_type get_num_stored_elements_per_system() const
    {
        return col_idxs_.size();
    }
    /// Total stored values across the batch (num_systems * nnz).
    size_type get_num_stored_elements() const { return values_.size(); }

    /// Copies system `s` out into a single-system Csr.
    std::unique_ptr<mgko::Csr<ValueType, IndexType>> extract_system(
        size_type s) const;

    std::unique_ptr<Csr> clone() const;

    /// Raw strided SpMV / residual over the active systems — the interface
    /// the batched solvers iterate through (see batch_strided_op.hpp).
    void apply_raw(const std::uint8_t* active, const ValueType* b,
                   ValueType* x) const override;
    void residual_raw(const std::uint8_t* active, const ValueType* b,
                      const ValueType* x, ValueType* r) const override;

protected:
    Csr(std::shared_ptr<const Executor> exec, batch_dim size, size_type nnz);

    /// Batched SpMV: x[s] = A[s] b[s], one launch across all systems.
    void apply_impl(const BatchLinOp* b, BatchLinOp* x) const override;

private:
    array<ValueType> values_;
    array<IndexType> col_idxs_;
    array<IndexType> row_ptrs_;
};


/// Downcasts a BatchLinOp to batch::Csr<V, I>, throwing NotSupported with a
/// helpful message when the dynamic type does not match.
template <typename ValueType, typename IndexType>
Csr<ValueType, IndexType>* as_batch_csr(BatchLinOp* op);
template <typename ValueType, typename IndexType>
const Csr<ValueType, IndexType>* as_batch_csr(const BatchLinOp* op);


}  // namespace batch
}  // namespace mgko
