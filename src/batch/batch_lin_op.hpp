// The BatchLinOp abstraction — the batched mirror of LinOp (core/lin_op.hpp).
//
// A BatchLinOp models `num_systems` independent linear operators of one
// common dimension, applied in a single call: batched matrices, batched
// solvers, and batched preconditioners all share this interface, exactly as
// their single-system counterparts share LinOp.  The batched direction is
// the one Ginkgo itself grew into for many-small-systems workloads; here it
// turns the single-system engine the paper describes into a throughput
// engine (see DESIGN.md §10).
#pragma once

#include <memory>

#include "core/exception.hpp"
#include "core/executor.hpp"
#include "core/types.hpp"
#include "log/event_logger.hpp"

namespace mgko::batch {


/// Dimensions of a batch of equally-sized operators: `num_systems`
/// independent systems, each of extent `common`.
struct batch_dim {
    size_type num_systems{};
    dim2 common{};

    constexpr batch_dim() = default;
    constexpr batch_dim(size_type n, dim2 c) : num_systems{n}, common{c} {}

    constexpr friend bool operator==(const batch_dim& a, const batch_dim& b)
    {
        return a.num_systems == b.num_systems && a.common == b.common;
    }
    constexpr friend bool operator!=(const batch_dim& a, const batch_dim& b)
    {
        return !(a == b);
    }
};


/// Batched linear operator: one `apply` advances all systems of the batch.
/// Mirrors LinOp, including the logger attachment point — batched solvers
/// broadcast per-batch iteration/stop events to loggers attached here and
/// to the executor's (see batch/batch_solver.hpp).
class BatchLinOp : public std::enable_shared_from_this<BatchLinOp>,
                   public log::EnableLogging {
public:
    virtual ~BatchLinOp() = default;

    BatchLinOp(const BatchLinOp&) = delete;
    BatchLinOp& operator=(const BatchLinOp&) = delete;

    /// Applies the operator batch: x[s] = op[s](b[s]) for every system s.
    void apply(const BatchLinOp* b, BatchLinOp* x) const
    {
        validate_application(b, x);
        apply_impl(b, x);
    }

    void apply(std::shared_ptr<const BatchLinOp> b,
               std::shared_ptr<BatchLinOp> x) const
    {
        apply(b.get(), x.get());
    }

    const batch_dim& get_size() const { return size_; }
    size_type get_num_systems() const { return size_.num_systems; }
    const dim2& get_common_size() const { return size_.common; }

    std::shared_ptr<const Executor> get_executor() const { return exec_; }

protected:
    BatchLinOp(std::shared_ptr<const Executor> exec, batch_dim size)
        : exec_{std::move(exec)}, size_{size}
    {
        MGKO_ENSURE(exec_ != nullptr, "BatchLinOp requires an executor");
        MGKO_ENSURE(size_.num_systems >= 0,
                    "batch size must be non-negative");
    }

    virtual void apply_impl(const BatchLinOp* b, BatchLinOp* x) const = 0;

    void set_size(batch_dim size) { size_ = size; }

    void validate_application(const BatchLinOp* b, const BatchLinOp* x) const
    {
        MGKO_ENSURE(b != nullptr && x != nullptr,
                    "batch apply requires non-null operands");
        MGKO_ENSURE(b->get_num_systems() == size_.num_systems &&
                        x->get_num_systems() == size_.num_systems,
                    "batch apply requires matching batch sizes");
        MGKO_ASSERT_CONFORMANT("batch apply(op, b)", size_.common,
                               b->get_common_size());
        if (size_.common.rows != x->get_common_size().rows ||
            b->get_common_size().cols != x->get_common_size().cols) {
            throw DimensionMismatch(
                __FILE__, __LINE__, "batch apply result",
                dim2{size_.common.rows, b->get_common_size().cols},
                x->get_common_size());
        }
    }

private:
    std::shared_ptr<const Executor> exec_;
    batch_dim size_{};
};


/// Factory producing BatchLinOps bound to a batch system operator — the
/// batched mirror of LinOpFactory: `factory->generate(A)` returns the
/// batched solver / preconditioner for the batch A.
class BatchLinOpFactory {
public:
    virtual ~BatchLinOpFactory() = default;

    std::unique_ptr<BatchLinOp> generate(
        std::shared_ptr<const BatchLinOp> system) const
    {
        MGKO_ENSURE(system != nullptr,
                    "generate requires a batch system operator");
        return generate_impl(std::move(system));
    }

    std::shared_ptr<const Executor> get_executor() const { return exec_; }

protected:
    explicit BatchLinOpFactory(std::shared_ptr<const Executor> exec)
        : exec_{std::move(exec)}
    {}

    virtual std::unique_ptr<BatchLinOp> generate_impl(
        std::shared_ptr<const BatchLinOp> system) const = 0;

private:
    std::shared_ptr<const Executor> exec_;
};


}  // namespace mgko::batch
