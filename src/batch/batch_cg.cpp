#include "batch/batch_cg.hpp"

#include <cmath>

#include "batch/batch_dense.hpp"
#include "core/math.hpp"

namespace mgko::batch {

namespace {
// Workspace slots; allocated on the first apply, reused afterwards.
enum cg_slots : std::size_t {
    ws_r,
    ws_z,
    ws_p,
    ws_q,
};
// Host-side per-system buffers (solver::Workspace::host slots).
enum cg_host_slots : std::size_t {
    hs_b_norm,
    hs_r_norm,
    hs_rho,
    hs_coeff,
};
}  // namespace


template <typename ValueType>
void Cg<ValueType>::apply_impl(const BatchLinOp* b, BatchLinOp* x) const
{
    auto apply_span = this->make_span("batch.cg.apply");
    auto batch_b = as_batch_dense<ValueType>(b);
    auto batch_x = as_batch_dense<ValueType>(x);
    MGKO_ENSURE(batch_b->get_common_size().cols == 1 &&
                    batch_x->get_common_size().cols == 1,
                "batched CG supports one right-hand-side column per system");

    const auto num = this->get_num_systems();
    const auto n = this->get_common_size().rows;
    const auto exec = this->get_executor();
    auto& ws = this->workspace_;
    auto* r = ws.vec(ws_r, dim2{num * n, 1})->get_values();
    auto* z = ws.vec(ws_z, dim2{num * n, 1})->get_values();
    auto* p = ws.vec(ws_p, dim2{num * n, 1})->get_values();
    auto* q = ws.vec(ws_q, dim2{num * n, 1})->get_values();
    auto& b_norm = ws.host(hs_b_norm, num);
    auto& r_norm = ws.host(hs_r_norm, num);
    auto& rho = ws.host(hs_rho, num);
    auto& coeff = ws.host(hs_coeff, num);

    auto& active = this->active_;
    active.assign(num, 1);
    this->logger_->reset(num);

    const auto* b_vals = batch_b->get_const_values();
    auto* x_vals = batch_x->get_values();
    const double vb = static_cast<double>(n) * sizeof(ValueType);
    const double fn = static_cast<double>(n);

    detail::run_kernel(exec, "batch_norm2", num, vb, 2.0 * fn, [&](int nt) {
        kernels::batch::norm2(nt, num, nullptr, b_vals, n, b_norm.data());
    });
    this->system_ops_->residual_raw(nullptr, b_vals, x_vals, r);
    detail::run_kernel(exec, "batch_norm2", num, vb, 2.0 * fn, [&](int nt) {
        kernels::batch::norm2(nt, num, nullptr, r, n, r_norm.data());
    });
    auto criteria = this->bind_criteria(b_norm.data(), r_norm.data());
    for (size_type s = 0; s < num; ++s) {
        this->logger_->log_iteration(s, 0, r_norm[s]);
    }

    size_type active_count = num;
    auto retire = [&](size_type s, size_type iter, bool converged,
                      const std::string& reason) {
        active[s] = 0;
        --active_count;
        this->logger_->log_stop(s, iter, converged, reason);
    };
    auto sweep_converged = [&](size_type iter) {
        for (size_type s = 0; s < num; ++s) {
            if (active[s] && criteria[s]->is_satisfied(iter, r_norm[s])) {
                retire(s, iter, criteria[s]->indicates_convergence(),
                       criteria[s]->reason());
            }
        }
    };
    sweep_converged(0);

    if (active_count > 0) {
        this->apply_preconditioner(active.data(), r, z, n);
        detail::run_kernel(exec, "batch_copy", active_count, 2.0 * vb, 0.0,
                           [&](int nt) {
                               kernels::batch::copy(nt, num, active.data(), z,
                                                    p, n);
                           });
        detail::run_kernel(exec, "batch_dot", active_count, 2.0 * vb, 2.0 * fn,
                           [&](int nt) {
                               kernels::batch::dot(nt, num, active.data(), r,
                                                   z, n, rho.data());
                           });
    }

    size_type iter = 0;
    while (active_count > 0) {
        auto round_span = this->make_span("batch.cg.round");
        this->system_ops_->apply_raw(active.data(), p, q);
        detail::run_kernel(exec, "batch_dot", active_count, 2.0 * vb, 2.0 * fn,
                           [&](int nt) {
                               kernels::batch::dot(nt, num, active.data(), p,
                                                   q, n, coeff.data());
                           });
        for (size_type s = 0; s < num; ++s) {
            if (active[s] && (coeff[s] == 0.0 || !std::isfinite(coeff[s]))) {
                retire(s, iter, false, "breakdown: p'Ap == 0");
            }
        }
        if (active_count == 0) {
            break;
        }
        for (size_type s = 0; s < num; ++s) {
            if (active[s]) {
                coeff[s] = rho[s] / coeff[s];  // alpha
            }
        }
        detail::run_kernel(
            exec, "batch_add_scaled", active_count, 3.0 * vb, 2.0 * fn,
            [&](int nt) {
                kernels::batch::add_scaled(nt, num, active.data(),
                                           coeff.data(), p, x_vals, n, false);
            });
        detail::run_kernel(
            exec, "batch_add_scaled", active_count, 3.0 * vb, 2.0 * fn,
            [&](int nt) {
                kernels::batch::add_scaled(nt, num, active.data(),
                                           coeff.data(), q, r, n, true);
            });
        detail::run_kernel(exec, "batch_norm2", active_count, vb, 2.0 * fn,
                           [&](int nt) {
                               kernels::batch::norm2(nt, num, active.data(),
                                                     r, n, r_norm.data());
                           });
        ++iter;
        double max_res = 0.0;
        for (size_type s = 0; s < num; ++s) {
            if (active[s]) {
                this->logger_->log_iteration(s, iter, r_norm[s]);
                max_res = std::max(max_res, r_norm[s]);
            }
        }
        this->log_batch_iteration(iter, active_count, max_res);
        sweep_converged(iter);
        if (active_count == 0) {
            break;
        }
        this->apply_preconditioner(active.data(), r, z, n);
        detail::run_kernel(exec, "batch_dot", active_count, 2.0 * vb, 2.0 * fn,
                           [&](int nt) {
                               kernels::batch::dot(nt, num, active.data(), r,
                                                   z, n, coeff.data());
                           });
        for (size_type s = 0; s < num; ++s) {
            if (active[s]) {
                const double rho_new = coeff[s];
                coeff[s] = rho_new / rho[s];  // beta
                rho[s] = rho_new;
            }
        }
        // p = z + beta * p, one kernel across the batch.
        detail::run_kernel(
            exec, "batch_scale_add", active_count, 3.0 * vb, 2.0 * fn,
            [&](int nt) {
                kernels::batch::scale_add(nt, num, active.data(),
                                          coeff.data(), z, p, n);
            });
    }
    this->log_batch_stop();
}


#define MGKO_DECLARE_BATCH_CG(ValueType) template class Cg<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_BATCH_CG);


}  // namespace mgko::batch
