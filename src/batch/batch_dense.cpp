#include "batch/batch_dense.hpp"

#include <algorithm>

#include "batch/batch_kernels.hpp"
#include "core/kernel_utils.hpp"
#include "matrix/dense.hpp"

namespace mgko::batch {

namespace {

template <typename Fn>
void run_uniform(const Executor* exec, const char* name, Fn fn)
{
    exec->run(make_operation(
        name, [&](const ReferenceExecutor* e) { fn(e); },
        [&](const OmpExecutor* e) { fn(e); },
        [&](const CudaExecutor* e) { fn(e); },
        [&](const HipExecutor* e) { fn(e); }));
}

}  // namespace


template <typename ValueType>
Dense<ValueType>::Dense(std::shared_ptr<const Executor> exec, batch_dim size)
    : BatchLinOp{exec, size},
      values_{exec, size.num_systems * size.common.area()}
{}


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::create(
    std::shared_ptr<const Executor> exec, batch_dim size)
{
    return std::unique_ptr<Dense>{new Dense{std::move(exec), size}};
}


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::create_filled(
    std::shared_ptr<const Executor> exec, batch_dim size, ValueType value)
{
    auto result = create(std::move(exec), size);
    result->fill(value);
    return result;
}


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::create_duplicate(
    std::shared_ptr<const Executor> exec, size_type num_systems,
    const matrix_data<ValueType, int64>& data)
{
    data.validate();
    auto result =
        create(std::move(exec), batch_dim{num_systems, data.size});
    result->fill(zero<ValueType>());
    const auto elems = result->stride();
    auto* values = result->get_values();
    for (const auto& e : data.entries) {
        values[e.row * data.size.cols + e.col] = e.value;
    }
    for (size_type s = 1; s < num_systems; ++s) {
        std::copy_n(values, elems, values + s * elems);
    }
    return result;
}


template <typename ValueType>
ValueType& Dense<ValueType>::at(size_type sys, size_type row, size_type col)
{
    if (sys < 0 || sys >= get_num_systems()) {
        throw OutOfBounds(__FILE__, __LINE__, sys, get_num_systems());
    }
    if (row < 0 || row >= get_common_size().rows) {
        throw OutOfBounds(__FILE__, __LINE__, row, get_common_size().rows);
    }
    if (col < 0 || col >= get_common_size().cols) {
        throw OutOfBounds(__FILE__, __LINE__, col, get_common_size().cols);
    }
    return values_.get_data()[sys * stride() + row * get_common_size().cols +
                              col];
}


template <typename ValueType>
ValueType Dense<ValueType>::at(size_type sys, size_type row,
                               size_type col) const
{
    return const_cast<Dense*>(this)->at(sys, row, col);
}


template <typename ValueType>
void Dense<ValueType>::fill(ValueType value)
{
    values_.fill(value);
}


template <typename ValueType>
void Dense<ValueType>::copy_from(const Dense* other)
{
    MGKO_ENSURE(other != nullptr, "copy_from requires a source");
    MGKO_ASSERT_EQUAL_DIMENSIONS("batch copy_from", get_common_size(),
                                 other->get_common_size());
    MGKO_ENSURE(get_num_systems() == other->get_num_systems(),
                "batch copy_from requires matching batch sizes");
    get_executor()->copy_from(other->get_executor().get(), values_.bytes(),
                              other->get_const_values(), get_values());
}


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::clone() const
{
    auto result = create(get_executor(), get_size());
    result->copy_from(this);
    return result;
}


template <typename ValueType>
std::unique_ptr<mgko::Dense<ValueType>> Dense<ValueType>::extract_system(
    size_type s) const
{
    MGKO_ENSURE(s >= 0 && s < get_num_systems(),
                "system index out of bounds");
    auto result = mgko::Dense<ValueType>::create(get_executor(),
                                                 get_common_size());
    std::copy_n(system_const_values(s), stride(), result->get_values());
    return result;
}


template <typename ValueType>
void Dense<ValueType>::assign_system(size_type s,
                                     const mgko::Dense<ValueType>* src)
{
    MGKO_ENSURE(s >= 0 && s < get_num_systems(),
                "system index out of bounds");
    MGKO_ASSERT_EQUAL_DIMENSIONS("batch assign_system", get_common_size(),
                                 src->get_size());
    std::copy_n(src->get_const_values(), stride(), system_values(s));
}


template <typename ValueType>
void Dense<ValueType>::apply_impl(const BatchLinOp* b, BatchLinOp* x) const
{
    auto batch_b = as_batch_dense<ValueType>(b);
    auto batch_x = as_batch_dense<ValueType>(x);
    const auto rows = get_common_size().rows;
    const auto cols = get_common_size().cols;
    const auto vec_cols = batch_b->get_common_size().cols;
    run_uniform(
        get_executor().get(), "batch_dense_apply", [&](const Executor* e) {
            kernels::batch::dense_apply(
                kernels::exec_threads(e), get_num_systems(), nullptr,
                get_const_values(), rows, cols, batch_b->get_const_values(),
                vec_cols, batch_x->get_values());
            kernels::tick(
                e, kernels::batch::batch_stream_profile(
                       get_num_systems(),
                       static_cast<double>(
                           (rows * cols + cols * vec_cols + rows * vec_cols) *
                           sizeof(ValueType)),
                       2.0 * static_cast<double>(rows * cols * vec_cols)));
        });
}


template <typename ValueType>
void Dense<ValueType>::apply_raw(const std::uint8_t* active,
                                 const ValueType* b, ValueType* x) const
{
    MGKO_ENSURE(get_common_size().rows == get_common_size().cols,
                "raw strided apply requires square operator batches");
    const auto rows = get_common_size().rows;
    const auto active_systems =
        kernels::batch::count_active(active, get_num_systems());
    run_uniform(
        get_executor().get(), "batch_dense_apply", [&](const Executor* e) {
            kernels::batch::dense_apply(kernels::exec_threads(e),
                                        get_num_systems(), active,
                                        get_const_values(), rows, rows, b,
                                        size_type{1}, x);
            kernels::tick(
                e, kernels::batch::batch_stream_profile(
                       active_systems,
                       static_cast<double>((rows * rows + 2 * rows) *
                                           sizeof(ValueType)),
                       2.0 * static_cast<double>(rows * rows)));
        });
}


template <typename ValueType>
void Dense<ValueType>::residual_raw(const std::uint8_t* active,
                                    const ValueType* b, const ValueType* x,
                                    ValueType* r) const
{
    MGKO_ENSURE(get_common_size().rows == get_common_size().cols,
                "raw strided residual requires square operator batches");
    const auto rows = get_common_size().rows;
    const auto active_systems =
        kernels::batch::count_active(active, get_num_systems());
    run_uniform(
        get_executor().get(), "batch_dense_residual", [&](const Executor* e) {
            kernels::batch::dense_residual(kernels::exec_threads(e),
                                           get_num_systems(), active,
                                           get_const_values(), rows, b, x, r);
            kernels::tick(
                e, kernels::batch::batch_stream_profile(
                       active_systems,
                       static_cast<double>((rows * rows + 3 * rows) *
                                           sizeof(ValueType)),
                       2.0 * static_cast<double>(rows * rows) +
                           static_cast<double>(rows)));
        });
}


template <typename ValueType>
Dense<ValueType>* as_batch_dense(BatchLinOp* op)
{
    auto result = dynamic_cast<Dense<ValueType>*>(op);
    if (result == nullptr) {
        MGKO_NOT_SUPPORTED(
            "operand is not a batch::Dense of the expected value type");
    }
    return result;
}


template <typename ValueType>
const Dense<ValueType>* as_batch_dense(const BatchLinOp* op)
{
    return as_batch_dense<ValueType>(const_cast<BatchLinOp*>(op));
}


#define MGKO_DECLARE_BATCH_DENSE(ValueType)                                 \
    template class Dense<ValueType>;                                        \
    template Dense<ValueType>* as_batch_dense<ValueType>(BatchLinOp*);      \
    template const Dense<ValueType>* as_batch_dense<ValueType>(             \
        const BatchLinOp*)
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_BATCH_DENSE);


}  // namespace mgko::batch
