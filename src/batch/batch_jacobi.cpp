#include "batch/batch_jacobi.hpp"

#include <utility>

#include "batch/batch_csr.hpp"
#include "batch/batch_dense.hpp"
#include "batch/batch_kernels.hpp"
#include "core/kernel_utils.hpp"
#include "core/math.hpp"

namespace mgko::batch {

namespace {

template <typename Fn>
void run_uniform(const Executor* exec, const char* name, Fn fn)
{
    exec->run(make_operation(
        name, [&](const ReferenceExecutor* e) { fn(e); },
        [&](const OmpExecutor* e) { fn(e); },
        [&](const CudaExecutor* e) { fn(e); },
        [&](const HipExecutor* e) { fn(e); }));
}


/// Extracts the inverted per-system diagonals of a shared-pattern batch CSR.
template <typename V, typename I>
bool extract_inv_diag_csr(const BatchLinOp* system, array<V>& inv_diag)
{
    auto csr = dynamic_cast<const Csr<V, I>*>(system);
    if (csr == nullptr) {
        return false;
    }
    const auto n = csr->get_common_size().rows;
    const auto nnz = csr->get_num_stored_elements_per_system();
    const auto* row_ptrs = csr->get_const_row_ptrs();
    const auto* col_idxs = csr->get_const_col_idxs();
    auto* out = inv_diag.get_data();
    for (size_type s = 0; s < csr->get_num_systems(); ++s) {
        const auto* values = csr->get_const_values() + s * nnz;
        for (size_type row = 0; row < n; ++row) {
            V diag = zero<V>();
            for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
                if (static_cast<size_type>(col_idxs[k]) == row) {
                    diag = values[k];
                }
            }
            out[s * n + row] = safe_reciprocal(diag);
        }
    }
    return true;
}


template <typename V>
bool extract_inv_diag_dense(const BatchLinOp* system, array<V>& inv_diag)
{
    auto dense = dynamic_cast<const Dense<V>*>(system);
    if (dense == nullptr) {
        return false;
    }
    const auto n = dense->get_common_size().rows;
    auto* out = inv_diag.get_data();
    for (size_type s = 0; s < dense->get_num_systems(); ++s) {
        for (size_type row = 0; row < n; ++row) {
            out[s * n + row] = safe_reciprocal(dense->at(s, row, row));
        }
    }
    return true;
}

}  // namespace


template <typename ValueType>
Jacobi<ValueType>::Jacobi(std::shared_ptr<const Executor> exec,
                          batch_dim size, array<ValueType> inv_diag)
    : BatchLinOp{std::move(exec), size}, inv_diag_{std::move(inv_diag)}
{}


template <typename ValueType>
void Jacobi<ValueType>::apply_raw(const std::uint8_t* active,
                                  const ValueType* b, ValueType* x) const
{
    const auto n = get_common_size().rows;
    const auto active_systems =
        kernels::batch::count_active(active, get_num_systems());
    run_uniform(
        get_executor().get(), "batch_jacobi_apply", [&](const Executor* e) {
            kernels::batch::jacobi_apply(kernels::exec_threads(e),
                                         get_num_systems(), active,
                                         inv_diag_.get_const_data(), b, x, n);
            kernels::tick(e, kernels::batch::batch_stream_profile(
                                 active_systems,
                                 3.0 * static_cast<double>(n) *
                                     sizeof(ValueType),
                                 static_cast<double>(n)));
        });
}


template <typename ValueType>
void Jacobi<ValueType>::residual_raw(const std::uint8_t* active,
                                     const ValueType* b, const ValueType* x,
                                     ValueType* r) const
{
    const auto n = get_common_size().rows;
    const auto num = get_num_systems();
    run_uniform(
        get_executor().get(), "batch_jacobi_residual", [&](const Executor* e) {
            const auto nt = kernels::exec_threads(e);
            const auto* inv_diag = inv_diag_.get_const_data();
#pragma omp parallel for num_threads(nt) if (nt > 1)
            for (size_type s = 0; s < num; ++s) {
                if (active != nullptr && !active[s]) {
                    continue;
                }
                for (size_type i = 0; i < n; ++i) {
                    const auto idx = s * n + i;
                    // The stored data is the inverse diagonal, so the
                    // operator's diagonal entry is its reciprocal.
                    r[idx] = b[idx] -
                             safe_reciprocal(inv_diag[idx]) * x[idx];
                }
            }
            kernels::tick(
                e, kernels::batch::batch_stream_profile(
                       kernels::batch::count_active(active, num),
                       4.0 * static_cast<double>(n) * sizeof(ValueType),
                       2.0 * static_cast<double>(n)));
        });
}


template <typename ValueType>
void Jacobi<ValueType>::apply_impl(const BatchLinOp* b, BatchLinOp* x) const
{
    auto batch_b = as_batch_dense<ValueType>(b);
    auto batch_x = as_batch_dense<ValueType>(x);
    MGKO_ENSURE(batch_b->get_common_size().cols == 1 &&
                    batch_x->get_common_size().cols == 1,
                "batched Jacobi supports single-column vectors");
    apply_raw(nullptr, batch_b->get_const_values(), batch_x->get_values());
}


template <typename ValueType>
std::unique_ptr<BatchLinOp> JacobiFactory<ValueType>::generate_impl(
    std::shared_ptr<const BatchLinOp> system) const
{
    MGKO_ENSURE(
        system->get_common_size().rows == system->get_common_size().cols,
        "batched Jacobi requires square systems");
    const auto size = system->get_size();
    array<ValueType> inv_diag{get_executor(),
                              size.num_systems * size.common.rows};
    if (!extract_inv_diag_csr<ValueType, int32>(system.get(), inv_diag) &&
        !extract_inv_diag_csr<ValueType, int64>(system.get(), inv_diag) &&
        !extract_inv_diag_dense<ValueType>(system.get(), inv_diag)) {
        MGKO_NOT_SUPPORTED(
            "batched Jacobi requires a batch::Csr or batch::Dense system "
            "of the preconditioner's value type");
    }
    // Generate-time cost: one sweep over the batch diagonal.
    get_executor()->clock().tick(
        static_cast<double>(inv_diag.bytes()) /
        get_executor()->model().bandwidth_gbps);
    return std::unique_ptr<BatchLinOp>{new Jacobi<ValueType>{
        get_executor(), batch_dim{size.num_systems, size.common},
        std::move(inv_diag)}};
}


#define MGKO_DECLARE_BATCH_JACOBI(ValueType)      \
    template class Jacobi<ValueType>;             \
    template class JacobiFactory<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_BATCH_JACOBI);


}  // namespace mgko::batch
