// Shared machinery of the batched iterative solvers: the parameter/builder
// pattern, the factory template, and the common solver state — the batched
// mirror of solver/solver_base.hpp.
//
//   auto solver = mgko::batch::Cg<double>::build()
//                     .with_criteria(stop::iteration(200))
//                     .with_criteria(stop::residual_norm(1e-8))
//                     .with_preconditioner(batch::Jacobi<double>::build()
//                                              .on(exec))
//                     .on(exec)
//                     ->generate(A);          // A: batch::Csr / batch::Dense
//   solver->apply(b, x);                      // advances ALL systems
//   auto logger = solver->get_batch_logger(); // per-system diagnostics
//
// The same stop::CriterionFactory objects the single-system solvers take
// are bound once *per system* at the start of every batched apply, each to
// its own right-hand-side norm and initial residual — per-system
// convergence falls out of per-system criteria.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "batch/batch_kernels.hpp"
#include "batch/batch_lin_op.hpp"
#include "batch/batch_log.hpp"
#include "batch/batch_strided_op.hpp"
#include "core/kernel_utils.hpp"
#include "solver/workspace.hpp"
#include "stop/criterion.hpp"

namespace mgko::batch {


/// Parameters shared by the batched iterative solvers.
struct batch_parameters {
    std::vector<std::shared_ptr<const stop::CriterionFactory>> criteria;
    /// Generated per batch system matrix at generate() time.
    std::shared_ptr<const BatchLinOpFactory> preconditioner;
    /// When non-zero, generate() rejects systems whose batch size differs —
    /// the `"batch": N` key of config::solve lands here.
    size_type expected_batch{0};
};


template <typename Solver>
class BatchSolverFactory;

/// Fluent builder over batch_parameters, terminated by .on(exec).
template <typename Solver>
class batch_builder : public batch_parameters {
public:
    batch_builder& with_criteria(
        std::shared_ptr<const stop::CriterionFactory> c)
    {
        criteria.push_back(std::move(c));
        return *this;
    }
    batch_builder& with_preconditioner(
        std::shared_ptr<const BatchLinOpFactory> factory)
    {
        preconditioner = std::move(factory);
        return *this;
    }
    batch_builder& with_batch_size(size_type num_systems)
    {
        expected_batch = num_systems;
        return *this;
    }

    std::shared_ptr<BatchSolverFactory<Solver>> on(
        std::shared_ptr<const Executor> exec) const
    {
        return std::make_shared<BatchSolverFactory<Solver>>(std::move(exec),
                                                            *this);
    }
};


template <typename Solver>
class BatchSolverFactory : public BatchLinOpFactory {
public:
    BatchSolverFactory(std::shared_ptr<const Executor> exec,
                       batch_parameters params)
        : BatchLinOpFactory{std::move(exec)}, params_{std::move(params)}
    {}

    const batch_parameters& get_parameters() const { return params_; }

protected:
    std::unique_ptr<BatchLinOp> generate_impl(
        std::shared_ptr<const BatchLinOp> system) const override
    {
        return std::unique_ptr<BatchLinOp>{
            new Solver{get_executor(), params_, std::move(system)}};
    }

private:
    batch_parameters params_;
};


namespace detail {

/// Runs `fn(nt)` as a named executor operation and charges one batched
/// streaming kernel over `active_systems` systems onto the SimClock — the
/// batched solvers' analogue of the Dense kernels' dispatch + tick.
template <typename Fn>
void run_kernel(const std::shared_ptr<const Executor>& exec, const char* name,
                size_type active_systems, double bytes_per_system,
                double flops_per_system, Fn&& fn)
{
    auto body = [&](const Executor* e) {
        fn(kernels::exec_threads(e));
        kernels::tick(e,
                      kernels::batch::batch_stream_profile(
                          active_systems, bytes_per_system, flops_per_system));
    };
    exec->run(make_operation(
        name, [&](const ReferenceExecutor* e) { body(e); },
        [&](const OmpExecutor* e) { body(e); },
        [&](const CudaExecutor* e) { body(e); },
        [&](const HipExecutor* e) { body(e); }));
}

}  // namespace detail


/// Common state and helpers of the batched iterative solvers.
template <typename ValueType>
class BatchIterativeSolver : public BatchLinOp {
public:
    using value_type = ValueType;

    std::shared_ptr<const BatchLinOp> get_system_matrix() const
    {
        return system_;
    }
    std::shared_ptr<const BatchLinOp> get_preconditioner() const
    {
        return precond_;
    }
    /// Per-system diagnostics of the most recent apply.
    std::shared_ptr<BatchConvergenceLogger> get_batch_logger() const
    {
        return logger_;
    }
    const batch_parameters& get_parameters() const { return params_; }

protected:
    BatchIterativeSolver(std::shared_ptr<const Executor> exec,
                         batch_parameters params,
                         std::shared_ptr<const BatchLinOp> system)
        : BatchLinOp{exec, system->get_size()},
          params_{std::move(params)},
          system_{std::move(system)},
          logger_{std::make_shared<BatchConvergenceLogger>()},
          workspace_{exec}
    {
        MGKO_ENSURE(
            system_->get_common_size().rows == system_->get_common_size().cols,
            "batched iterative solvers require square systems");
        MGKO_ENSURE(!params_.criteria.empty(),
                    "batched solver requires at least one stopping criterion");
        MGKO_ENSURE(params_.expected_batch == 0 ||
                        params_.expected_batch == system_->get_num_systems(),
                    "system batch size does not match the configured one");
        system_ops_ =
            dynamic_cast<const StridedBatchOp<ValueType>*>(system_.get());
        if (system_ops_ == nullptr) {
            MGKO_NOT_SUPPORTED(
                "batched solvers require a batch::Csr or batch::Dense "
                "system of the solver's value type");
        }
        if (params_.preconditioner) {
            precond_ = params_.preconditioner->generate(system_);
            precond_ops_ =
                dynamic_cast<const StridedBatchOp<ValueType>*>(precond_.get());
            if (precond_ops_ == nullptr) {
                MGKO_NOT_SUPPORTED(
                    "batched solvers require a strided batched "
                    "preconditioner (batch::Jacobi) of the solver's "
                    "value type");
            }
        }
    }

    /// Binds the configured criteria once per system: system s stops
    /// against its own right-hand-side norm and initial residual.
    std::vector<std::unique_ptr<stop::Criterion>> bind_criteria(
        const double* rhs_norms, const double* initial_resnorms) const
    {
        const auto num = this->get_num_systems();
        std::vector<std::unique_ptr<stop::Criterion>> result;
        result.reserve(num);
        for (size_type s = 0; s < num; ++s) {
            result.push_back(stop::Combined{params_.criteria}.create(
                rhs_norms[s], initial_resnorms[s]));
        }
        return result;
    }

    /// z = M^{-1} r over the active systems; identity (copy) when no
    /// preconditioner is configured.
    void apply_preconditioner(const std::uint8_t* active, const ValueType* r,
                              ValueType* z, size_type n) const
    {
        if (precond_ops_ != nullptr) {
            precond_ops_->apply_raw(active, r, z);
        } else {
            const auto num = this->get_num_systems();
            detail::run_kernel(
                this->get_executor(), "batch_identity_apply",
                kernels::batch::count_active(active, num),
                2.0 * static_cast<double>(n) * sizeof(ValueType), 0.0,
                [&](int nt) {
                    kernels::batch::copy(nt, num, active, r, z, n);
                });
        }
    }

    /// Invokes `fn` on every event logger attached to this solver and to
    /// its executor, mirroring the single-system broadcast.
    template <typename Fn>
    void broadcast_event(Fn&& fn) const
    {
        for (const auto& logger : this->get_loggers()) {
            fn(*logger);
        }
        for (const auto& logger : this->get_executor()->get_loggers()) {
            fn(*logger);
        }
    }

    /// Opens a span visible from both attachment points broadcast_event
    /// reaches; the batched solvers bracket their apply
    /// ("batch.<name>.apply") and each round ("batch.<name>.round").
    log::ScopedSpan make_span(const char* name) const
    {
        return log::ScopedSpan{this, this->get_executor().get(), name};
    }

    /// Broadcasts one batch iteration: `active_systems` systems advanced
    /// through `iteration`, the worst of them at `max_residual_norm`.
    void log_batch_iteration(size_type iteration, size_type active_systems,
                             double max_residual_norm) const
    {
        broadcast_event([&](log::EventLogger& l) {
            l.on_batch_iteration_complete(this, iteration, active_systems,
                                          max_residual_norm);
        });
    }

    /// Broadcasts the end of a batched apply, handing loggers the
    /// per-system convergence log so they can label the batch with its
    /// stop reasons.
    void log_batch_stop() const
    {
        broadcast_event([&](log::EventLogger& l) {
            l.on_batch_solver_stop(this, this->get_num_systems(),
                                   logger_->num_converged(),
                                   logger_->max_iterations(), logger_.get());
        });
    }

    batch_parameters params_;
    std::shared_ptr<const BatchLinOp> system_;
    std::shared_ptr<const BatchLinOp> precond_;
    /// The system / preconditioner seen through the raw strided interface
    /// the iteration kernels need (resolved once at generate time).
    const StridedBatchOp<ValueType>* system_ops_{nullptr};
    const StridedBatchOp<ValueType>* precond_ops_{nullptr};
    std::shared_ptr<BatchConvergenceLogger> logger_;
    /// All batched Krylov temporaries live here as flat slots
    /// (num_systems * n values each), allocated on the first apply and
    /// reused by every later one — steady-state batched applies perform
    /// zero executor allocations, exactly like the single-system solvers.
    mutable solver::Workspace<ValueType> workspace_;
    /// Per-system active mask: 1 while a system is still iterating, 0 once
    /// it converged or broke down (host-side, persistent across applies).
    mutable std::vector<std::uint8_t> active_;
};


}  // namespace mgko::batch
