// The raw strided interface batched solvers drive their operands through.
//
// A batched Krylov iteration works on flat workspace slots (one contiguous
// buffer of num_systems x n values per vector, drawn from
// solver::Workspace) plus an active-system mask, not on batch::Dense
// objects — that is what lets converged systems drop out of every kernel
// while the batch keeps running, with zero per-iteration allocation.
// Batched matrices (batch::Csr, batch::Dense) and batched preconditioners
// (batch::Jacobi) implement this interface alongside BatchLinOp::apply.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace mgko::batch {


template <typename ValueType>
class StridedBatchOp {
public:
    virtual ~StridedBatchOp() = default;

    /// x[s] = op[s] b[s] over the active systems; b and x hold one n-sized
    /// slice per system, back to back.
    virtual void apply_raw(const std::uint8_t* active, const ValueType* b,
                           ValueType* x) const = 0;

    /// r[s] = b[s] - op[s] x[s] over the active systems.
    virtual void residual_raw(const std::uint8_t* active, const ValueType* b,
                              const ValueType* x, ValueType* r) const = 0;
};


}  // namespace mgko::batch
