// Batched (preconditioned) Conjugate Gradient: one CG iteration advances
// every still-active system of the batch in lockstep, each kernel launched
// once across the batch.  Per-system criteria retire systems individually —
// a converged (or broken-down) system drops out of every subsequent kernel
// via the active mask while the batch keeps running.
#pragma once

#include "batch/batch_solver.hpp"

namespace mgko::batch {


template <typename ValueType = double>
class Cg : public BatchIterativeSolver<ValueType> {
public:
    static batch_builder<Cg> build() { return {}; }

protected:
    friend class BatchSolverFactory<Cg>;
    Cg(std::shared_ptr<const Executor> exec, batch_parameters params,
       std::shared_ptr<const BatchLinOp> system)
        : BatchIterativeSolver<ValueType>{std::move(exec), std::move(params),
                                          std::move(system)}
    {}

    void apply_impl(const BatchLinOp* b, BatchLinOp* x) const override;
};


}  // namespace mgko::batch
