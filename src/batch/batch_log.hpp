// Per-system convergence diagnostics of a batched solve — the batched
// analogue of log::ConvergenceLogger: one iteration count, final residual
// norm, converged flag, and stop reason per system, because the whole point
// of per-system convergence tracking is that the systems finish at
// different times.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/exception.hpp"
#include "core/types.hpp"

namespace mgko::batch {


class BatchConvergenceLogger {
public:
    void reset(size_type num_systems)
    {
        iterations_.assign(num_systems, 0);
        residual_norm_.assign(num_systems,
                              std::numeric_limits<double>::quiet_NaN());
        converged_.assign(num_systems, 0);
        reason_.assign(num_systems, {});
    }

    /// Records system `s` finishing iteration `iteration` with
    /// `residual_norm` (only the latest entry per system is kept; the
    /// batched solvers do not store per-iteration history for every
    /// system).
    void log_iteration(size_type s, size_type iteration, double residual_norm)
    {
        check(s);
        iterations_[s] = iteration;
        residual_norm_[s] = residual_norm;
    }

    /// Records the stop decision of system `s`.
    void log_stop(size_type s, size_type iteration, bool converged,
                  const std::string& reason)
    {
        check(s);
        iterations_[s] = iteration;
        converged_[s] = converged ? 1 : 0;
        reason_[s] = reason;
    }

    size_type num_systems() const
    {
        return static_cast<size_type>(iterations_.size());
    }
    size_type num_iterations(size_type s) const
    {
        check(s);
        return iterations_[s];
    }
    double final_residual_norm(size_type s) const
    {
        check(s);
        return residual_norm_[s];
    }
    bool has_converged(size_type s) const
    {
        check(s);
        return converged_[s] != 0;
    }
    const std::string& stop_reason(size_type s) const
    {
        check(s);
        return reason_[s];
    }

    size_type num_converged() const
    {
        size_type count = 0;
        for (auto c : converged_) {
            count += c ? 1 : 0;
        }
        return count;
    }
    bool all_converged() const
    {
        return num_converged() == num_systems();
    }
    /// Largest per-system iteration count — the batch's critical path.
    size_type max_iterations() const
    {
        size_type result = 0;
        for (auto it : iterations_) {
            result = std::max(result, it);
        }
        return result;
    }

private:
    void check(size_type s) const
    {
        if (s < 0 || s >= num_systems()) {
            throw OutOfBounds(__FILE__, __LINE__, s, num_systems());
        }
    }

    std::vector<size_type> iterations_;
    std::vector<double> residual_norm_;
    std::vector<std::uint8_t> converged_;
    std::vector<std::string> reason_;
};


}  // namespace mgko::batch
