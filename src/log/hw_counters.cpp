#include "log/hw_counters.hpp"

#include <sys/resource.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#endif

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>

namespace mgko::log {

namespace {

enum class rung { off, perf_event, rusage };

std::atomic<rung> active_rung{rung::off};

struct hw_registry {
    std::mutex mutex;
    std::map<std::string, hw_totals> totals;
};

hw_registry& registry()
{
    // Leaked for the same reason as the profiler registry: scopes on
    // server worker threads can close during process teardown.
    static hw_registry* instance = new hw_registry;
    return *instance;
}

double steady_now_ns()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

double thread_cpu_ns()
{
    // Prefer the per-thread CPU clock: nanosecond resolution, where
    // getrusage advances in scheduler-tick quanta (~1-4 ms) — far too
    // coarse to attribute the microsecond-scale scopes around individual
    // kernel dispatches.
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<double>(ts.tv_sec) * 1e9 +
               static_cast<double>(ts.tv_nsec);
    }
#endif
    rusage usage{};
#if defined(RUSAGE_THREAD)
    if (::getrusage(RUSAGE_THREAD, &usage) != 0) {
        return 0.0;
    }
#else
    if (::getrusage(RUSAGE_SELF, &usage) != 0) {
        return 0.0;
    }
#endif
    const auto to_ns = [](const timeval& tv) {
        return static_cast<double>(tv.tv_sec) * 1e9 +
               static_cast<double>(tv.tv_usec) * 1e3;
    };
    return to_ns(usage.ru_utime) + to_ns(usage.ru_stime);
}


#if defined(__linux__)

long perf_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
               unsigned long flags)
{
    return ::syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

perf_event_attr hw_attr(std::uint64_t config, bool leader)
{
    perf_event_attr attr{};
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    // The group leader starts disabled and is enabled (with its siblings)
    // in one ioctl, so all three counters cover the same window.
    attr.disabled = leader ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP;
    return attr;
}

/// The calling thread's counter group: cycles (leader), instructions,
/// LLC misses.  Opened lazily per thread; closed by the TLS holder when
/// the thread exits.
struct perf_group {
    int leader{-1};
    int instructions{-1};
    int cache_misses{-1};
    bool tried{false};

    bool open()
    {
        tried = true;
        auto leader_attr = hw_attr(PERF_COUNT_HW_CPU_CYCLES, true);
        const long fd = perf_open(&leader_attr, 0, -1, -1, 0);
        if (fd < 0) {
            return false;
        }
        leader = static_cast<int>(fd);
        auto instr_attr = hw_attr(PERF_COUNT_HW_INSTRUCTIONS, false);
        instructions =
            static_cast<int>(perf_open(&instr_attr, 0, -1, leader, 0));
        auto miss_attr = hw_attr(PERF_COUNT_HW_CACHE_MISSES, false);
        cache_misses =
            static_cast<int>(perf_open(&miss_attr, 0, -1, leader, 0));
        ::ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        ::ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
        return true;
    }

    void close()
    {
        for (int fd : {leader, instructions, cache_misses}) {
            if (fd >= 0) {
                ::close(fd);
            }
        }
        leader = instructions = cache_misses = -1;
        tried = false;
    }

    ~perf_group() { close(); }

    /// Fills the event counts from one group read; counters that failed
    /// to open read as zero (the group layout skips them).
    void read_into(hw_sample& sample)
    {
        if (leader < 0) {
            return;
        }
        // PERF_FORMAT_GROUP layout: u64 nr, then one u64 per member in
        // open order.
        std::uint64_t buffer[4] = {0, 0, 0, 0};
        if (::read(leader, buffer, sizeof(buffer)) < 0) {
            return;
        }
        const std::uint64_t nr = buffer[0];
        std::size_t next = 1;
        if (nr >= 1) {
            sample.cycles = static_cast<double>(buffer[next++]);
        }
        if (nr >= 2 && instructions >= 0) {
            sample.instructions = static_cast<double>(buffer[next++]);
        }
        if (nr >= 3 && cache_misses >= 0) {
            sample.llc_misses = static_cast<double>(buffer[next++]);
        }
    }
};

thread_local perf_group tl_perf_group;

bool probe_perf_event()
{
    auto attr = hw_attr(PERF_COUNT_HW_CPU_CYCLES, true);
    const long fd = perf_open(&attr, 0, -1, -1, 0);
    if (fd < 0) {
        // Any refusal — ENOENT/ENOSYS (no PMU or syscall), EPERM/EACCES
        // (perf_event_paranoid), EINVAL (no hardware events) — demotes to
        // the rusage rung rather than failing the tier.
        return false;
    }
    ::close(static_cast<int>(fd));
    return true;
}

void thread_perf_read(hw_sample& sample)
{
    if (!tl_perf_group.tried) {
        tl_perf_group.open();
    }
    tl_perf_group.read_into(sample);
}

#else  // !__linux__

bool probe_perf_event() { return false; }
void thread_perf_read(hw_sample&) {}

#endif

std::string json_number(double value)
{
    if (!std::isfinite(value)) {
        return "0";
    }
    std::ostringstream out;
    out.precision(15);
    out << value;
    return out.str();
}

void hw_counters_from_env_impl()
{
    const char* value = std::getenv("MGKO_HW_COUNTERS");
    if (value == nullptr || *value == '\0' || std::strcmp(value, "0") == 0 ||
        std::strcmp(value, "off") == 0 || std::strcmp(value, "OFF") == 0) {
        return;
    }
    hw_counters_enable(value);
}

}  // namespace


// --- readings and scopes ---------------------------------------------------

hw_sample hw_read_now()
{
    hw_sample sample{};
    sample.wall_ns = steady_now_ns();
    sample.cpu_ns = thread_cpu_ns();
    if (active_rung.load(std::memory_order_relaxed) == rung::perf_event) {
        thread_perf_read(sample);
    }
    return sample;
}


HwCounterScope::HwCounterScope(const char* tag)
{
    if (active_rung.load(std::memory_order_relaxed) == rung::off) {
        return;
    }
    tag_ = tag != nullptr ? tag : "<null>";
    begin_ = hw_read_now();
}


HwCounterScope::~HwCounterScope()
{
    if (tag_ == nullptr) {
        return;
    }
    if (active_rung.load(std::memory_order_relaxed) == rung::off) {
        return;  // disabled mid-scope: drop the partial measurement
    }
    const hw_sample delta = hw_read_now() - begin_;
    auto& reg = registry();
    std::lock_guard<std::mutex> guard{reg.mutex};
    auto& totals = reg.totals[tag_];
    totals.cycles += std::max(delta.cycles, 0.0);
    totals.instructions += std::max(delta.instructions, 0.0);
    totals.llc_misses += std::max(delta.llc_misses, 0.0);
    totals.cpu_ns += std::max(delta.cpu_ns, 0.0);
    totals.wall_ns += std::max(delta.wall_ns, 0.0);
    ++totals.count;
}


// --- process-wide control --------------------------------------------------

bool hw_counters_enable(const std::string& mode)
{
    if (mode == "rusage") {
        active_rung.store(rung::rusage, std::memory_order_release);
        return true;
    }
    active_rung.store(probe_perf_event() ? rung::perf_event : rung::rusage,
                      std::memory_order_release);
    return true;
}


void hw_counters_disable()
{
    active_rung.store(rung::off, std::memory_order_release);
}


bool hw_counters_active()
{
    return active_rung.load(std::memory_order_acquire) != rung::off;
}


const char* hw_counters_source()
{
    switch (active_rung.load(std::memory_order_acquire)) {
    case rung::perf_event:
        return "perf_event";
    case rung::rusage:
        return "rusage";
    case rung::off:
        break;
    }
    return "off";
}


std::map<std::string, hw_totals> hw_counters_snapshot()
{
    auto& reg = registry();
    std::lock_guard<std::mutex> guard{reg.mutex};
    return reg.totals;
}


void hw_counters_reset()
{
    auto& reg = registry();
    std::lock_guard<std::mutex> guard{reg.mutex};
    reg.totals.clear();
}


// --- exports ---------------------------------------------------------------

std::string hw_counters_json()
{
    const auto totals = hw_counters_snapshot();
    std::ostringstream out;
    out << "{\"source\": \"" << hw_counters_source()
        << "\", \"active\": " << (hw_counters_active() ? "true" : "false")
        << ", \"tags\": {";
    bool first = true;
    for (const auto& [tag, t] : totals) {
        const double gips =
            t.cpu_ns > 0.0 ? t.instructions / t.cpu_ns : 0.0;
        const double llc_gbps =
            t.cpu_ns > 0.0 ? t.llc_misses * 64.0 / t.cpu_ns : 0.0;
        out << (first ? "" : ", ") << "\"" << tag
            << "\": {\"count\": " << t.count
            << ", \"cycles\": " << json_number(t.cycles)
            << ", \"instructions\": " << json_number(t.instructions)
            << ", \"llc_misses\": " << json_number(t.llc_misses)
            << ", \"cpu_ns\": " << json_number(t.cpu_ns)
            << ", \"wall_ns\": " << json_number(t.wall_ns)
            << ", \"gips_proxy\": " << json_number(gips)
            << ", \"llc_gbps_proxy\": " << json_number(llc_gbps) << "}";
        first = false;
    }
    out << "}}";
    return out.str();
}


std::string hw_counters_prometheus()
{
    std::ostringstream out;
    out << "# TYPE mgko_hw_active gauge\n";
    out << "mgko_hw_active " << (hw_counters_active() ? 1 : 0) << "\n";
    out << "# TYPE mgko_hw_source gauge\n";
    out << "mgko_hw_source{source=\"" << hw_counters_source() << "\"} 1\n";
    const auto totals = hw_counters_snapshot();
    if (totals.empty()) {
        return out.str();
    }
    const auto emit = [&](const char* series, auto value_of) {
        out << "# TYPE " << series << " counter\n";
        for (const auto& [tag, t] : totals) {
            out << series << "{kernel=\"" << tag
                << "\"} " << json_number(value_of(t)) << "\n";
        }
    };
    emit("mgko_hw_cycles_total",
         [](const hw_totals& t) { return t.cycles; });
    emit("mgko_hw_instructions_total",
         [](const hw_totals& t) { return t.instructions; });
    emit("mgko_hw_llc_misses_total",
         [](const hw_totals& t) { return t.llc_misses; });
    emit("mgko_hw_cpu_ns_total",
         [](const hw_totals& t) { return t.cpu_ns; });
    emit("mgko_hw_wall_ns_total",
         [](const hw_totals& t) { return t.wall_ns; });
    emit("mgko_hw_scopes_total", [](const hw_totals& t) {
        return static_cast<double>(t.count);
    });
    return out.str();
}


void hw_counters_from_env()
{
    static std::once_flag once;
    std::call_once(once, hw_counters_from_env_impl);
}


}  // namespace mgko::log
