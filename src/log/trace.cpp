#include "log/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "batch/batch_log.hpp"
#include "log/dump_path.hpp"
#include "log/work_model.hpp"

namespace mgko::log {

namespace {

double steady_now_ns()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Compact per-thread track id: threads get 0, 1, 2, ... in first-emission
/// order, which keeps Perfetto's track list readable.
int current_tid()
{
    static std::atomic<int> counter{0};
    thread_local const int tid = counter.fetch_add(1);
    return tid;
}

std::string json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string json_number(double value)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(1);
    out << value;
    return out.str();
}

}  // namespace


TraceLogger::TraceLogger() : origin_ns_{steady_now_ns()} {}


double TraceLogger::now_ns() const { return steady_now_ns() - origin_ns_; }


void TraceLogger::begin_span(const char* name, const char* cat)
{
    const int tid = current_tid();
    const double ts = now_ns();
    std::lock_guard<std::mutex> guard{mutex_};
    const size_type id = next_span_id_++;
    auto* stack = [&]() -> std::vector<std::pair<std::string, size_type>>* {
        for (auto& [t, s] : open_) {
            if (t == tid) {
                return &s;
            }
        }
        open_.emplace_back(tid,
                           std::vector<std::pair<std::string, size_type>>{});
        return &open_.back().second;
    }();
    stack->emplace_back(name, id);
    events_.push_back({name, cat, 'B', ts, 0.0, tid, id, {}});
}


void TraceLogger::end_span(const char* name, const char* cat,
                           std::string args)
{
    const int tid = current_tid();
    const double ts = now_ns();
    std::lock_guard<std::mutex> guard{mutex_};
    size_type id = 0;
    for (auto& [t, stack] : open_) {
        if (t == tid && !stack.empty() && stack.back().first == name) {
            id = stack.back().second;
            stack.pop_back();
            break;
        }
    }
    events_.push_back({name, cat, 'E', ts, 0.0, tid, id, std::move(args)});
}


void TraceLogger::instant(const char* name, const char* cat, std::string args)
{
    const int tid = current_tid();
    const double ts = now_ns();
    std::lock_guard<std::mutex> guard{mutex_};
    events_.push_back({name, cat, 'i', ts, 0.0, tid, 0, std::move(args)});
}


void TraceLogger::complete(const char* name, const char* cat, double ts_ns,
                           double dur_ns, std::string args)
{
    const int tid = current_tid();
    std::lock_guard<std::mutex> guard{mutex_};
    events_.push_back(
        {name, cat, 'X', ts_ns, dur_ns, tid, 0, std::move(args)});
}


std::vector<TraceLogger::trace_event> TraceLogger::events() const
{
    std::lock_guard<std::mutex> guard{mutex_};
    return events_;
}


bool TraceLogger::well_nested() const
{
    const auto snapshot = events();
    std::map<int, std::vector<std::string>> stacks;
    for (const auto& e : snapshot) {
        if (e.phase == 'B') {
            stacks[e.tid].push_back(e.name);
        } else if (e.phase == 'E') {
            auto& stack = stacks[e.tid];
            if (stack.empty() || stack.back() != e.name) {
                return false;
            }
            stack.pop_back();
        }
    }
    for (const auto& [tid, stack] : stacks) {
        if (!stack.empty()) {
            return false;
        }
    }
    return true;
}


std::string TraceLogger::to_json() const
{
    const auto snapshot = events();
    std::ostringstream out;
    out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
    bool first = true;
    for (const auto& e : snapshot) {
        if (!first) {
            out << ", ";
        }
        first = false;
        out << "{\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
            << json_escape(e.cat) << "\", \"ph\": \"" << e.phase
            << "\", \"ts\": " << json_number(e.ts_ns / 1000.0)
            << ", \"pid\": 1, \"tid\": " << e.tid;
        if (e.phase == 'X') {
            out << ", \"dur\": " << json_number(e.dur_ns / 1000.0);
        }
        if (e.phase == 'i') {
            out << ", \"s\": \"t\"";
        }
        // args: the span id (pairing B with E) plus any event payload.
        if (e.span_id != 0 || !e.args.empty()) {
            out << ", \"args\": {";
            bool first_arg = true;
            if (e.span_id != 0) {
                out << "\"span\": " << e.span_id;
                first_arg = false;
            }
            if (!e.args.empty()) {
                out << (first_arg ? "" : ", ") << e.args;
            }
            out << "}";
        }
        out << "}";
    }
    out << "]}";
    return out.str();
}


void TraceLogger::reset()
{
    std::lock_guard<std::mutex> guard{mutex_};
    events_.clear();
    open_.clear();
    next_span_id_ = 1;
    origin_ns_ = steady_now_ns();
}


// --- hooks -----------------------------------------------------------------

void TraceLogger::on_span_begin(const char* name)
{
    begin_span(name, "span");
}

void TraceLogger::on_span_end(const char* name)
{
    end_span(name, "span", {});
}

void TraceLogger::on_operation_launched(const Executor*, const char* op_name)
{
    begin_span(op_name, "op");
}

void TraceLogger::on_operation_completed(const Executor*, const char* op_name,
                                         double wall_ns, double flops,
                                         double bytes)
{
    std::ostringstream args;
    args << "\"wall_ns\": " << json_number(wall_ns)
         << ", \"flops\": " << json_number(flops)
         << ", \"bytes\": " << json_number(bytes)
         << ", \"gflops\": " << json_number(achieved_gflops(flops, wall_ns))
         << ", \"gbps\": " << json_number(achieved_gbps(bytes, wall_ns));
    end_span(op_name, "op", args.str());
}

void TraceLogger::on_allocation_completed(const Executor*, size_type bytes,
                                          const void*)
{
    instant("mem.alloc", "mem", "\"bytes\": " + std::to_string(bytes));
}

void TraceLogger::on_free_completed(const Executor*, const void*)
{
    instant("mem.free", "mem", {});
}

void TraceLogger::on_copy_completed(const Executor*, const Executor*,
                                    size_type bytes)
{
    instant("mem.copy", "mem", "\"bytes\": " + std::to_string(bytes));
}

void TraceLogger::on_pool_hit(const Executor*, size_type bytes)
{
    instant("pool.hit", "pool", "\"bytes\": " + std::to_string(bytes));
}

void TraceLogger::on_pool_miss(const Executor*, size_type bytes)
{
    instant("pool.miss", "pool", "\"bytes\": " + std::to_string(bytes));
}

void TraceLogger::on_pool_trim(const Executor*, size_type bytes_released)
{
    instant("pool.trim", "pool",
            "\"bytes\": " + std::to_string(bytes_released));
}

void TraceLogger::on_iteration_complete(const LinOp*, size_type iteration,
                                        double residual_norm)
{
    std::ostringstream args;
    args << "\"iteration\": " << iteration
         << ", \"residual_norm\": " << residual_norm;
    instant("solver.iteration", "solver", args.str());
}

void TraceLogger::on_solver_stop(const LinOp*, size_type iterations,
                                 bool converged, const char* reason)
{
    std::ostringstream args;
    args << "\"iterations\": " << iterations
         << ", \"converged\": " << (converged ? "true" : "false")
         << ", \"reason\": \"" << json_escape(reason ? reason : "") << "\"";
    instant("solver.stop", "solver", args.str());
}

void TraceLogger::on_batch_iteration_complete(const batch::BatchLinOp*,
                                              size_type iteration,
                                              size_type active_systems,
                                              double max_residual_norm)
{
    std::ostringstream args;
    args << "\"iteration\": " << iteration
         << ", \"active_systems\": " << active_systems
         << ", \"max_residual_norm\": " << max_residual_norm;
    instant("batch.iteration", "batch", args.str());
}

void TraceLogger::on_batch_solver_stop(
    const batch::BatchLinOp*, size_type num_systems,
    size_type converged_systems, size_type max_iterations,
    const batch::BatchConvergenceLogger* per_system)
{
    std::ostringstream args;
    args << "\"num_systems\": " << num_systems
         << ", \"converged_systems\": " << converged_systems
         << ", \"max_iterations\": " << max_iterations;
    if (per_system != nullptr) {
        // Label the batch with its convergence outcomes: one count per
        // distinct stop reason.
        std::map<std::string, size_type> reasons;
        for (size_type s = 0; s < per_system->num_systems(); ++s) {
            ++reasons[per_system->stop_reason(s)];
        }
        args << ", \"stop_reasons\": {";
        bool first = true;
        for (const auto& [reason, count] : reasons) {
            args << (first ? "" : ", ") << "\"" << json_escape(reason)
                 << "\": " << count;
            first = false;
        }
        args << "}";
    }
    instant("batch.stop", "batch", args.str());
}

void TraceLogger::on_binding_call_completed(const char* name, double wall_ns,
                                            double gil_wait_ns,
                                            double lookup_ns,
                                            double boxing_ns,
                                            double interpreter_ns)
{
    // The breakdown arrives at completion; reconstruct the call slice and
    // its sequential children (gil wait, then lookup, then boxing, then
    // the modeled interpreter frame) from the measured durations.
    const double end = now_ns();
    const double start = end - wall_ns;
    std::ostringstream args;
    args << "\"gil_wait_ns\": " << json_number(gil_wait_ns)
         << ", \"lookup_ns\": " << json_number(lookup_ns)
         << ", \"boxing_ns\": " << json_number(boxing_ns)
         << ", \"interpreter_ns\": " << json_number(interpreter_ns);
    complete(name, "bind", start, wall_ns, args.str());
    double child_ts = start;
    const std::pair<const char*, double> children[] = {
        {"bind.gil_wait", gil_wait_ns},
        {"bind.lookup", lookup_ns},
        {"bind.boxing", boxing_ns},
        {"bind.interpreter", interpreter_ns},
    };
    for (const auto& [child, dur] : children) {
        if (dur > 0.0) {
            complete(child, "bind", child_ts, dur, {});
            child_ts += dur;
        }
    }
}


// --- MGKO_TRACE switch -----------------------------------------------------

std::shared_ptr<TraceLogger> shared_tracer()
{
    static std::shared_ptr<TraceLogger> tracer = TraceLogger::create();
    return tracer;
}


std::shared_ptr<TraceLogger> tracer_from_env()
{
    const char* value = std::getenv("MGKO_TRACE");
    if (value == nullptr || *value == '\0') {
        return nullptr;
    }
    return shared_tracer();
}


void dump_trace(const TraceLogger& tracer, const std::string& name)
{
    const char* value = std::getenv("MGKO_TRACE");
    if (value == nullptr || *value == '\0') {
        return;
    }
    const std::string dest{value};
    const auto json = tracer.to_json();
    if (dump_to_stdout(dest)) {
        std::cout << "=== mgko trace [" << name << "] ===\n"
                  << json << std::endl;
        return;
    }
    const auto path = resolve_dump_path(dest, "trace", name, ".json");
    std::ofstream out{path};
    if (out) {
        out << json << "\n";
    } else {
        std::cerr << "mgko: cannot write trace to '" << path << "'\n";
    }
}


}  // namespace mgko::log
