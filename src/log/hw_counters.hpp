// Hardware-counter scopes: measured cycles / instructions / LLC misses
// per kernel tag, the counterpart to the analytic work model.
//
// The work model (work_model.hpp) computes what a kernel *should* move and
// execute; nothing in the stack checked what it actually did.  This module
// wraps a measurement scope around each Executor::run dispatch (and the
// solver drivers' apply paths): counters are read before and after the
// region on the dispatching thread, and the delta is accumulated under the
// kernel's tag.  Joining these totals against the per-tag modeled
// flops/bytes in the metrics registry is what the `--drift` bench gate
// does — the model becomes a tested artifact instead of an assumption.
//
// Counter fallback ladder (DESIGN.md §18):
//   1. perf_event_open(2), one per-thread counter group (CPU cycles,
//      instructions, LLC misses; user-space only).  The syscall has no
//      libc wrapper and is commonly denied in CI containers —
//      ENOENT/ENOSYS (no PMU / no syscall), EPERM/EACCES
//      (perf_event_paranoid), EINVAL (no hardware events) all demote to:
//   2. getrusage(RUSAGE_THREAD) CPU time + steady-clock wall time.  No
//      event counts, but the measured cpu_ns/wall_ns pair still validates
//      the measurement plumbing and feeds the time-based drift checks.
// The active rung is decided once at enable time by probing the syscall
// (or forced to rung 2 with mode "rusage" so CI can exercise the fallback
// deterministically) and exposed as hw_counters_source().
//
// Everything is opt-in: when disabled, HwCounterScope costs one relaxed
// atomic load, so it can sit on the dispatch path unconditionally.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace mgko::log {


/// One cumulative reading for the calling thread.  cpu_ns and wall_ns are
/// always measured; the event counts are nonzero only on the perf rung.
struct hw_sample {
    double cycles{0.0};
    double instructions{0.0};
    double llc_misses{0.0};
    double cpu_ns{0.0};
    double wall_ns{0.0};

    hw_sample operator-(const hw_sample& other) const
    {
        return {cycles - other.cycles, instructions - other.instructions,
                llc_misses - other.llc_misses, cpu_ns - other.cpu_ns,
                wall_ns - other.wall_ns};
    }
};


/// Accumulated measurements for one kernel tag.
struct hw_totals {
    double cycles{0.0};
    double instructions{0.0};
    double llc_misses{0.0};
    double cpu_ns{0.0};
    double wall_ns{0.0};
    std::uint64_t count{0};
};


/// RAII measurement scope: reads counters at construction and
/// destruction, accumulating the delta under `tag` (which must outlive
/// the scope; kernel tags are string literals).  A no-op costing one
/// relaxed load while the tier is disabled.
class HwCounterScope {
public:
    explicit HwCounterScope(const char* tag);
    ~HwCounterScope();

    HwCounterScope(const HwCounterScope&) = delete;
    HwCounterScope& operator=(const HwCounterScope&) = delete;

private:
    const char* tag_{nullptr};
    hw_sample begin_{};
};


/// Enables the measured tier.  mode "auto" (default) probes
/// perf_event_open and demotes to the rusage rung when the kernel refuses;
/// mode "rusage" forces the fallback rung (CI determinism); mode "perf"
/// behaves like "auto".  Returns true — the rusage rung always works.
bool hw_counters_enable(const std::string& mode = "auto");

/// Disables the tier (accumulated totals stay readable).
void hw_counters_disable();

/// True while scopes are measuring.
bool hw_counters_active();

/// "perf_event", "rusage", or "off".
const char* hw_counters_source();

/// Cumulative readings for the calling thread right now; callers diff two
/// readings for a region-level measurement (the solve server's
/// per-request "measured" block).  cpu_ns/wall_ns are filled even when
/// the tier is disabled.
hw_sample hw_read_now();

/// Per-tag accumulated totals since enable/reset.
std::map<std::string, hw_totals> hw_counters_snapshot();

/// Clears the accumulated totals.
void hw_counters_reset();

/// {"source": ..., "active": ..., "tags": {tag: {count, cycles,
/// instructions, llc_misses, cpu_ns, wall_ns, gips_proxy,
/// llc_gbps_proxy}}} — the proxies are measured instruction throughput
/// (instructions per cpu-ns) and LLC-miss traffic (64-byte lines per
/// cpu-ns), zero on the rusage rung.
std::string hw_counters_json();

/// The mgko_hw_* Prometheus series (active flag, source info series, and
/// per-kernel *_total counters), appended to /metrics by both servers.
std::string hw_counters_prometheus();

/// Reads MGKO_HW_COUNTERS once per process: "1"/"on"/"auto"/"perf"
/// enable with the probe, "rusage" forces the fallback rung, unset /
/// "0" / "off" leave the tier disabled.
void hw_counters_from_env();


}  // namespace mgko::log
