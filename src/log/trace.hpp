// Hierarchical tracing: TraceLogger turns the event stream into nested
// spans with span-ids on per-thread tracks and exports them in the Chrome
// Trace Event Format, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Span sources:
//   * solver/batch phase spans  — on_span_begin/on_span_end pairs emitted
//     by the solver loops (solver.cg.apply → solver.cg.iteration, ...),
//   * kernel spans              — on_operation_launched opens a slice that
//     on_operation_completed closes, annotated with wall time and the
//     captured flop/byte work,
//   * binding slices            — on_binding_call_completed synthesizes a
//     complete ("X") slice per bound call plus child slices for the
//     gil-wait / lookup / boxing / interpreter breakdown,
//   * instants ("i")            — allocations, pool hit/miss/trim, copies,
//     solver iterations/stops, batch rounds/stops.
//
// Begin/end pairs are guaranteed well nested per thread track because the
// emitting layers are themselves properly nested (RAII spans, launch/
// complete bracketing dispatch); well_nested() verifies the invariant and
// the concurrency stress tests assert it under contention.
//
// Enabled two ways, mirroring MGKO_PROFILE:
//   * environment — MGKO_TRACE=<dest> makes tracer_from_env() return the
//     process-wide shared_tracer(), which executor factories auto-attach
//     to every new executor; dump_trace() writes the JSON to <dest>
//     ("-"/"1"/"stdout" print to stdout, anything else is a file path),
//   * config — a `"trace": true` key in a solver config attaches
//     shared_tracer() to the generated solver (config/config_solver.cpp).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "log/event_logger.hpp"

namespace mgko::log {


class TraceLogger final : public EventLogger {
public:
    /// One Chrome Trace Event.  `phase` is 'B' (span begin), 'E' (span
    /// end), 'X' (complete slice with duration), or 'i' (instant).
    struct trace_event {
        std::string name;
        std::string cat;
        char phase{'i'};
        double ts_ns{0.0};
        double dur_ns{0.0};     ///< 'X' only
        int tid{0};
        size_type span_id{0};   ///< pairs 'B' with its 'E'; 0 for X/i
        std::string args;       ///< preformatted JSON members, may be empty
    };

    TraceLogger();

    static std::shared_ptr<TraceLogger> create()
    {
        return std::make_shared<TraceLogger>();
    }

    /// Snapshot of the recorded events in emission order (per-thread
    /// chronological; threads interleave at mutex acquisition order).
    std::vector<trace_event> events() const;

    /// True when every 'E' closes the innermost open 'B' of the same name
    /// on its thread track and no track ends with an open span.
    bool well_nested() const;

    /// The trace in Chrome Trace Event Format:
    /// {"displayTimeUnit": "ns", "traceEvents": [...]}, timestamps in
    /// microseconds as the format requires.  Parseable by config/json.hpp.
    std::string to_json() const;

    void reset();

    // --- EventLogger hooks ----------------------------------------------
    void on_span_begin(const char* name) override;
    void on_span_end(const char* name) override;
    void on_operation_launched(const Executor* exec,
                               const char* op_name) override;
    void on_operation_completed(const Executor* exec, const char* op_name,
                                double wall_ns, double flops,
                                double bytes) override;
    void on_allocation_completed(const Executor* exec, size_type bytes,
                                 const void* ptr) override;
    void on_free_completed(const Executor* exec, const void* ptr) override;
    void on_copy_completed(const Executor* src, const Executor* dst,
                           size_type bytes) override;
    void on_pool_hit(const Executor* exec, size_type bytes) override;
    void on_pool_miss(const Executor* exec, size_type bytes) override;
    void on_pool_trim(const Executor* exec, size_type bytes_released) override;
    void on_iteration_complete(const LinOp* solver, size_type iteration,
                               double residual_norm) override;
    void on_solver_stop(const LinOp* solver, size_type iterations,
                        bool converged, const char* reason) override;
    void on_batch_iteration_complete(const batch::BatchLinOp* solver,
                                     size_type iteration,
                                     size_type active_systems,
                                     double max_residual_norm) override;
    void on_batch_solver_stop(
        const batch::BatchLinOp* solver, size_type num_systems,
        size_type converged_systems, size_type max_iterations,
        const batch::BatchConvergenceLogger* per_system) override;
    void on_binding_call_completed(const char* name, double wall_ns,
                                   double gil_wait_ns, double lookup_ns,
                                   double boxing_ns,
                                   double interpreter_ns) override;

private:
    void begin_span(const char* name, const char* cat);
    void end_span(const char* name, const char* cat, std::string args);
    void instant(const char* name, const char* cat, std::string args);
    void complete(const char* name, const char* cat, double ts_ns,
                  double dur_ns, std::string args);

    double now_ns() const;

    mutable std::mutex mutex_;
    std::vector<trace_event> events_;
    /// Open (name, span-id) stack per thread track, for id pairing.
    std::vector<std::pair<int, std::vector<std::pair<std::string, size_type>>>>
        open_;
    size_type next_span_id_{1};
    double origin_ns_{0.0};
};


/// The process-wide tracer the MGKO_TRACE switch and the `"trace"` config
/// key attach; also what the `trace_dump` binding exports.
std::shared_ptr<TraceLogger> shared_tracer();

/// Returns shared_tracer() when the MGKO_TRACE environment variable is set
/// (to anything non-empty), nullptr otherwise.  Executor factories attach
/// the result to every new executor, so MGKO_TRACE=1 traces a run with no
/// code changes.
std::shared_ptr<TraceLogger> tracer_from_env();

/// Writes `tracer`'s Chrome Trace JSON where MGKO_TRACE points: "-", "1"
/// or "stdout" print it under a "=== mgko trace [<name>] ===" banner; any
/// other value is used as a file path (overwritten).
void dump_trace(const TraceLogger& tracer, const std::string& name);


}  // namespace mgko::log
