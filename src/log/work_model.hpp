// Per-kernel work model: FLOP and byte accounting for roofline-style
// attribution (achieved GFLOP/s, GB/s, and arithmetic intensity per tag).
//
// Two halves:
//
//   * a *captured* work channel — every kernel already assembles a
//     sim::kernel_profile carrying the exact flops/bytes it processed;
//     kernels::tick() notes those amounts into a thread-local accumulator,
//     and Executor::run() drains the accumulator around each dispatch so
//     on_operation_completed can report the operation's real work next to
//     its real wall time.  No kernel changes its signature for this.
//
//   * an *analytic* table — closed-form flop/byte formulas per operation
//     family (spmv per storage format, dense BLAS-1, preconditioner
//     apply), used by tests and the bench harness to validate that the
//     captured counts match what the math says the kernel must do.  The
//     analytic byte counts are compulsory-traffic lower bounds: they
//     exclude the locality-dependent gather-miss term the cost model adds
//     on top (bounded by one extra value read per nonzero), so
//     captured_bytes ∈ [analytic.bytes, analytic.bytes + nnz * value_bytes
//     * vec_cols] for the sparse formats.
#pragma once

#include "core/types.hpp"

namespace mgko::log {


/// Work performed by one operation: floating-point operations and bytes
/// moved through the memory system.
struct op_work {
    double flops{0.0};
    double bytes{0.0};
};


/// Adds work to the calling thread's accumulator.  Called by
/// kernels::tick() with the profile every kernel already computes; cheap
/// enough to stay unconditional (two thread-local adds).
void note_work(double flops, double bytes);

/// Swaps the calling thread's accumulator for `next` and returns the
/// previous contents.  Executor::run() exchanges in a zeroed accumulator
/// before dispatch and exchanges the old one back afterwards, so nested
/// runs and unlogged stretches never leak work into the wrong operation.
op_work exchange_work(op_work next);


// --- analytic per-kernel formulas ---------------------------------------
//
// vb/ib are sizeof(value)/sizeof(index); k is the number of right-hand-side
// columns (1 for SpMV).  All byte counts are compulsory traffic: matrix
// storage read once, vectors streamed once, result written once.

/// CSR SpMV: y = A x.  values + column indices + row pointers + result.
inline op_work csr_spmv_work(size_type rows, size_type nnz, size_type vb,
                             size_type ib, size_type k = 1)
{
    const double n = static_cast<double>(nnz);
    const double r = static_cast<double>(rows);
    return {2.0 * n * static_cast<double>(k),
            n * static_cast<double>(vb + ib) +
                (r + 1.0) * static_cast<double>(ib) +
                r * static_cast<double>(vb * k)};
}

/// COO SpMV: explicit row *and* column index per nonzero.
inline op_work coo_spmv_work(size_type rows, size_type nnz, size_type vb,
                             size_type ib, size_type k = 1)
{
    const double n = static_cast<double>(nnz);
    const double r = static_cast<double>(rows);
    return {2.0 * n * static_cast<double>(k),
            n * static_cast<double>(vb + 2 * ib) +
                r * static_cast<double>(vb * k)};
}

/// ELL SpMV: the padded slab is streamed, so bytes scale with rows*width
/// while flops still scale with the true nnz.
inline op_work ell_spmv_work(size_type rows, size_type width, size_type nnz,
                             size_type vb, size_type ib, size_type k = 1)
{
    const double r = static_cast<double>(rows);
    return {2.0 * static_cast<double>(nnz) * static_cast<double>(k),
            r * static_cast<double>(width) * static_cast<double>(vb + ib) +
                r * static_cast<double>(vb * k)};
}

/// SELL-C-σ SpMV: the padded per-slice slabs plus the slice offsets are
/// streamed; on irregular-row matrices `padded_elems` is far below ELL's
/// rows * max_width, which is the format's entire bandwidth argument.
inline op_work sellcs_spmv_work(size_type rows, size_type padded_elems,
                                size_type nnz, size_type vb, size_type ib,
                                size_type k = 1)
{
    const double r = static_cast<double>(rows);
    return {2.0 * static_cast<double>(nnz) * static_cast<double>(k),
            static_cast<double>(padded_elems) * static_cast<double>(vb + ib) +
                r * static_cast<double>(ib) + r * static_cast<double>(vb * k)};
}

/// Dense BLAS-1: y += alpha * x (axpy / add_scaled): read x, read+write y.
inline op_work axpy_work(size_type n, size_type vb)
{
    const double nd = static_cast<double>(n);
    return {2.0 * nd, 3.0 * nd * static_cast<double>(vb)};
}

/// Dense BLAS-1: x *= alpha.
inline op_work scale_work(size_type n, size_type vb)
{
    const double nd = static_cast<double>(n);
    return {nd, 2.0 * nd * static_cast<double>(vb)};
}

/// Dense BLAS-1: dot(x, y).
inline op_work dot_work(size_type n, size_type vb)
{
    const double nd = static_cast<double>(n);
    return {2.0 * nd, 2.0 * nd * static_cast<double>(vb)};
}

/// Dense BLAS-1: ||x||_2 (square + add per element).
inline op_work norm2_work(size_type n, size_type vb)
{
    const double nd = static_cast<double>(n);
    return {2.0 * nd, nd * static_cast<double>(vb)};
}

/// Scalar-Jacobi preconditioner apply: z = D^{-1} r (read diag, read r,
/// write z).
inline op_work jacobi_apply_work(size_type n, size_type vb)
{
    const double nd = static_cast<double>(n);
    return {nd, 3.0 * nd * static_cast<double>(vb)};
}

/// SpGEMM C = A * B (Gustavson row-merge): both operands streamed, the
/// result written, with a 1.5x factor for the accumulator/touched-list
/// traffic of the merge.  `products` is the number of scalar a_ik * b_kj
/// terms (sum over A's nonzeros of the matching B-row length) — data
/// dependent, so callers count it while merging; each term is one multiply
/// plus one add.
inline op_work spgemm_work(size_type a_nnz, size_type b_nnz, size_type c_nnz,
                           double products, size_type vb, size_type ib)
{
    return {2.0 * products,
            static_cast<double>(a_nnz + b_nnz + c_nnz) *
                static_cast<double>(vb + ib) * 1.5};
}


// --- roofline derivations -----------------------------------------------

/// flops per nanosecond == GFLOP/s.
inline double achieved_gflops(double flops, double wall_ns)
{
    return wall_ns > 0.0 ? flops / wall_ns : 0.0;
}

/// bytes per nanosecond == GB/s.
inline double achieved_gbps(double bytes, double wall_ns)
{
    return wall_ns > 0.0 ? bytes / wall_ns : 0.0;
}

/// Arithmetic intensity [flop/byte]; the roofline x-axis.
inline double arithmetic_intensity(double flops, double bytes)
{
    return bytes > 0.0 ? flops / bytes : 0.0;
}


}  // namespace mgko::log
