#include "log/sampling_profiler.hpp"

#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace mgko::log {

namespace {

constexpr size_type max_stack_depth = 28;
constexpr size_type ring_capacity = 1024;  // samples per thread, power of two
// One sample slot: word 0 is the recorded depth, words 1..7 pack up to 28
// frame ids at four 16-bit ids per word.
constexpr size_type words_per_sample = 8;

constexpr std::uint16_t overflow_tag = 0xFFFF;
constexpr size_type tag_capacity = 512;  // power of two


// Everything the SIGPROF handler touches is either this thread-local
// pointer (zero-initialized, so reading it never runs a TLS constructor)
// or plain namespace-scope atomics.
struct thread_state {
    // Frame stack: written only by the owning thread, read by the handler
    // interrupting that same thread.  Push stores the frame id before the
    // depth (ordered by a signal fence), pop only shrinks depth, so
    // frames[0..depth-1] are valid at every interruption point.
    std::atomic<std::uint32_t> depth{0};
    std::atomic<std::uint16_t> frames[max_stack_depth] = {};

    // Sample ring: the handler is the only writer (it runs on the owning
    // thread), exporters read with the same over-read + head re-check
    // discipline as the flight recorder.
    std::atomic<std::uint64_t> head{0};
    std::atomic<std::uint64_t> slots[ring_capacity * words_per_sample] = {};
};

thread_local thread_state* tl_state = nullptr;

std::atomic<bool> profiler_on{false};
std::atomic<int> active_hz{0};
std::atomic<std::uint64_t> total_samples{0};
std::atomic<std::uint64_t> unregistered_drops{0};

// Interned tag table, FNV-1a + linear probing over a fixed table (the
// flight recorder's design).  Lookups from the export path are lock-free;
// first-insert synchronizes on the mutex.
std::atomic<const char*> tag_table[tag_capacity] = {};

struct profiler_registry {
    std::mutex mutex;
    std::vector<std::unique_ptr<thread_state>> states;
    std::vector<thread_state*> free_states;
    std::vector<std::unique_ptr<char[]>> tag_storage;
};

profiler_registry& registry()
{
    // Intentionally leaked (see tid_pool in flight_recorder.cpp): TLS
    // destructors of late-exiting threads return states to the free list
    // after function-local statics would have been destroyed.
    static profiler_registry* instance = new profiler_registry;
    return *instance;
}

std::uint16_t intern_string(const char* name)
{
    if (name == nullptr) {
        name = "<null>";
    }
    std::uint64_t hash = 1469598103934665603ull;
    for (const char* c = name; *c != '\0'; ++c) {
        hash ^= static_cast<unsigned char>(*c);
        hash *= 1099511628211ull;
    }
    const size_type mask = tag_capacity - 1;
    size_type slot = static_cast<size_type>(hash) & mask;
    for (size_type probe = 0; probe < tag_capacity;
         ++probe, slot = (slot + 1) & mask) {
        const char* current = tag_table[slot].load(std::memory_order_acquire);
        if (current == nullptr) {
            auto& reg = registry();
            std::lock_guard<std::mutex> guard{reg.mutex};
            current = tag_table[slot].load(std::memory_order_acquire);
            if (current == nullptr) {
                const std::size_t len = std::strlen(name);
                auto copy = std::make_unique<char[]>(len + 1);
                std::memcpy(copy.get(), name, len + 1);
                tag_table[slot].store(copy.get(), std::memory_order_release);
                reg.tag_storage.push_back(std::move(copy));
                return static_cast<std::uint16_t>(slot);
            }
        }
        if (std::strcmp(current, name) == 0) {
            return static_cast<std::uint16_t>(slot);
        }
    }
    return overflow_tag;
}

const char* tag_name(std::uint16_t id)
{
    if (id == overflow_tag) {
        return "<overflow>";
    }
    if (static_cast<size_type>(id) >= tag_capacity) {
        return "<unknown>";
    }
    const char* tag = tag_table[id].load(std::memory_order_acquire);
    return tag != nullptr ? tag : "<unknown>";
}

// Pointer-keyed id cache in front of intern_string: SampleFrame names are
// string literals (static storage duration is a documented requirement),
// so pointer identity is a valid key and the hot push path pays one probe
// instead of an FNV hash per dispatch.
struct name_cache_entry {
    std::atomic<const char*> key{nullptr};
    std::atomic<std::uint16_t> id{0};
};

constexpr size_type name_cache_capacity = 256;  // power of two
name_cache_entry name_cache[name_cache_capacity];

std::uint16_t intern_cached(const char* name)
{
    const auto bits = reinterpret_cast<std::uintptr_t>(name);
    size_type slot = static_cast<size_type>(
                         (bits >> 4) * 0x9E3779B97F4A7C15ull >> 32) &
                     (name_cache_capacity - 1);
    for (size_type probe = 0; probe < 8;
         ++probe, slot = (slot + 1) & (name_cache_capacity - 1)) {
        auto& entry = name_cache[slot];
        const char* key = entry.key.load(std::memory_order_acquire);
        if (key == name) {
            const std::uint16_t id = entry.id.load(std::memory_order_relaxed);
            // Verify against the interned copy: if a caller violated the
            // static-lifetime contract and the address was reused for a
            // different name, fall through to a correct slow-path intern
            // instead of mislabeling frames.
            if (std::strcmp(tag_name(id), name) == 0) {
                return id;
            }
            return intern_string(name);
        }
        if (key == nullptr) {
            const std::uint16_t id = intern_string(name);
            entry.id.store(id, std::memory_order_relaxed);
            const char* expected = nullptr;
            if (entry.key.compare_exchange_strong(
                    expected, name, std::memory_order_release,
                    std::memory_order_acquire)) {
                return id;
            }
            if (expected == name) {
                return entry.id.load(std::memory_order_relaxed);
            }
            // Another name claimed the slot first; id is still correct.
            return id;
        }
    }
    return intern_string(name);
}

thread_state* ensure_thread_state()
{
    if (tl_state != nullptr) {
        return tl_state;
    }
    auto& reg = registry();
    thread_state* state = nullptr;
    {
        std::lock_guard<std::mutex> guard{reg.mutex};
        if (!reg.free_states.empty()) {
            // A recycled state keeps its previous owner's samples (same
            // policy as recycled flight-recorder rings) but must not keep
            // its frame stack: the new thread starts with no open scopes.
            state = reg.free_states.back();
            reg.free_states.pop_back();
            state->depth.store(0, std::memory_order_relaxed);
        } else {
            reg.states.push_back(std::make_unique<thread_state>());
            state = reg.states.back().get();
        }
    }
    // The holder's destructor returns the state on thread exit; after that
    // point no SIGPROF handler can run on this thread, so recycling is
    // race-free with respect to the handler.
    struct state_holder {
        thread_state* state;
        ~state_holder()
        {
            auto& reg = registry();
            std::lock_guard<std::mutex> guard{reg.mutex};
            reg.free_states.push_back(state);
        }
    };
    thread_local state_holder holder{state};
    tl_state = holder.state;
    return tl_state;
}

// Async-signal-safe by construction: plain TLS read, relaxed atomics on
// preallocated memory, one signal fence.  No allocation, locks, syscalls,
// errno, or formatting.
void sigprof_handler(int)
{
    if (!profiler_on.load(std::memory_order_relaxed)) {
        return;
    }
    thread_state* s = tl_state;
    if (s == nullptr) {
        unregistered_drops.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    std::atomic_signal_fence(std::memory_order_acquire);
    const std::uint32_t depth = std::min<std::uint32_t>(
        s->depth.load(std::memory_order_relaxed), max_stack_depth);
    const std::uint64_t seq = s->head.load(std::memory_order_relaxed);
    auto* w = s->slots + words_per_sample * (seq & (ring_capacity - 1));
    w[0].store(depth, std::memory_order_relaxed);
    std::uint64_t packed = 0;
    for (std::uint32_t i = 0; i < depth; ++i) {
        packed |= static_cast<std::uint64_t>(
                      s->frames[i].load(std::memory_order_relaxed))
                  << ((i % 4) * 16);
        if ((i % 4) == 3 || i + 1 == depth) {
            w[1 + i / 4].store(packed, std::memory_order_relaxed);
            packed = 0;
        }
    }
    s->head.store(seq + 1, std::memory_order_release);
    total_samples.fetch_add(1, std::memory_order_relaxed);
}

std::mutex& control_mutex()
{
    static std::mutex* instance = new std::mutex;
    return *instance;
}

struct folded_stack {
    std::uint32_t depth;
    std::uint16_t frames[max_stack_depth];

    bool operator<(const folded_stack& other) const
    {
        if (depth != other.depth) {
            return depth < other.depth;
        }
        return std::lexicographical_compare(frames, frames + depth,
                                            other.frames,
                                            other.frames + other.depth);
    }
};

/// Drains every thread's sample ring into {stack -> count}, discarding
/// slots a handler overwrote mid-read (head re-check, as in
/// FlightRecorder::visit_records).
std::map<folded_stack, std::uint64_t> aggregate_samples()
{
    std::map<folded_stack, std::uint64_t> counts;
    auto& reg = registry();
    std::lock_guard<std::mutex> guard{reg.mutex};
    for (const auto& owned : reg.states) {
        const thread_state* s = owned.get();
        const std::uint64_t h1 = s->head.load(std::memory_order_acquire);
        const std::uint64_t begin =
            h1 > ring_capacity ? h1 - ring_capacity + 1 : 0;
        for (std::uint64_t seq = begin; seq < h1; ++seq) {
            const auto* w =
                s->slots + words_per_sample * (seq & (ring_capacity - 1));
            folded_stack stack{};
            stack.depth = std::min<std::uint32_t>(
                static_cast<std::uint32_t>(
                    w[0].load(std::memory_order_relaxed)),
                max_stack_depth);
            for (std::uint32_t i = 0; i < stack.depth; ++i) {
                stack.frames[i] = static_cast<std::uint16_t>(
                    (w[1 + i / 4].load(std::memory_order_relaxed) >>
                     ((i % 4) * 16)) &
                    0xFFFF);
            }
            const std::uint64_t h2 = s->head.load(std::memory_order_acquire);
            const std::uint64_t valid_begin =
                h2 > ring_capacity ? h2 - ring_capacity + 1 : 0;
            if (seq < valid_begin) {
                continue;
            }
            ++counts[stack];
        }
    }
    return counts;
}

/// Tag names can in principle contain folded-stack metacharacters; keep
/// the exported grammar (frames split on ';', count after the last space)
/// airtight by mapping them away.
std::string frame_text(std::uint16_t id)
{
    std::string out = tag_name(id);
    for (char& c : out) {
        if (c == ';' || c == ' ' || c == '\n') {
            c = '_';
        }
    }
    return out.empty() ? std::string{"_"} : out;
}

std::string json_escape(const std::string& text)
{
    std::string out;
    for (char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

void sampling_from_env_impl()
{
    const char* value = std::getenv("MGKO_SAMPLING_HZ");
    if (value == nullptr || *value == '\0') {
        return;
    }
    const long hz = std::strtol(value, nullptr, 10);
    if (hz > 0) {
        sampling_start(static_cast<int>(hz));
    }
}

}  // namespace


// --- frame marker ----------------------------------------------------------

SampleFrame::SampleFrame(const char* name)
{
    if (!profiler_on.load(std::memory_order_relaxed)) {
        return;
    }
    thread_state* s = ensure_thread_state();
    if (s == nullptr) {
        return;
    }
    const std::uint32_t d = s->depth.load(std::memory_order_relaxed);
    if (d < max_stack_depth) {
        s->frames[d].store(intern_cached(name), std::memory_order_relaxed);
    }
    // The frame id must be visible to a SIGPROF handler that observes the
    // new depth; a signal fence orders the stores against interruption on
    // this same thread without any cross-thread cost.
    std::atomic_signal_fence(std::memory_order_release);
    s->depth.store(d + 1, std::memory_order_relaxed);
    pushed_ = true;
}


SampleFrame::~SampleFrame()
{
    if (!pushed_) {
        return;
    }
    thread_state* s = tl_state;
    const std::uint32_t d = s->depth.load(std::memory_order_relaxed);
    if (d > 0) {
        // Shrinking the stack is safe unfenced: a handler firing between
        // these two statements sees either the old or new depth, and the
        // frames below both are intact.
        s->depth.store(d - 1, std::memory_order_relaxed);
    }
}


// --- process-wide control --------------------------------------------------

bool sampling_start(int hz)
{
    hz = std::clamp(hz, 1, 1000);
    std::lock_guard<std::mutex> guard{control_mutex()};
    struct sigaction action{};
    action.sa_handler = sigprof_handler;
    sigemptyset(&action.sa_mask);
    // SA_RESTART: a sampling storm must not surface as spurious EINTR in
    // every slow syscall — in particular the crash handler's write(2)
    // loop, which has to finish a postmortem while SIGPROF keeps firing.
    action.sa_flags = SA_RESTART;
    if (::sigaction(SIGPROF, &action, nullptr) != 0) {
        return false;
    }
    profiler_on.store(true, std::memory_order_release);
    const long interval_us = std::max(1000000L / hz, 1L);
    itimerval timer{};
    timer.it_interval.tv_sec = interval_us / 1000000;
    timer.it_interval.tv_usec = interval_us % 1000000;
    timer.it_value = timer.it_interval;
    if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
        profiler_on.store(false, std::memory_order_release);
        return false;
    }
    active_hz.store(hz, std::memory_order_release);
    return true;
}


void sampling_stop()
{
    std::lock_guard<std::mutex> guard{control_mutex()};
    itimerval disarm{};
    ::setitimer(ITIMER_PROF, &disarm, nullptr);
    profiler_on.store(false, std::memory_order_release);
    active_hz.store(0, std::memory_order_release);
}


int sampling_hz() { return active_hz.load(std::memory_order_acquire); }


bool sampling_active()
{
    return profiler_on.load(std::memory_order_acquire);
}


std::uint64_t sampling_samples()
{
    return total_samples.load(std::memory_order_relaxed);
}


std::uint64_t sampling_dropped()
{
    std::uint64_t dropped = unregistered_drops.load(std::memory_order_relaxed);
    auto& reg = registry();
    std::lock_guard<std::mutex> guard{reg.mutex};
    for (const auto& owned : reg.states) {
        const std::uint64_t head =
            owned->head.load(std::memory_order_acquire);
        if (head > ring_capacity) {
            dropped += head - ring_capacity;
        }
    }
    return dropped;
}


void sampling_reset()
{
    total_samples.store(0, std::memory_order_relaxed);
    unregistered_drops.store(0, std::memory_order_relaxed);
    auto& reg = registry();
    std::lock_guard<std::mutex> guard{reg.mutex};
    for (auto& owned : reg.states) {
        owned->head.store(0, std::memory_order_release);
    }
}


// --- exports ---------------------------------------------------------------

std::string sampling_folded()
{
    const auto counts = aggregate_samples();
    std::ostringstream out;
    for (const auto& [stack, count] : counts) {
        out << "mgko";
        if (stack.depth == 0) {
            out << ";<untracked>";
        }
        for (std::uint32_t i = 0; i < stack.depth; ++i) {
            out << ";" << frame_text(stack.frames[i]);
        }
        out << " " << count << "\n";
    }
    return out.str();
}


std::string sampling_profile_json()
{
    const auto counts = aggregate_samples();
    std::vector<std::pair<folded_stack, std::uint64_t>> sorted{
        counts.begin(), counts.end()};
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) {
                         return a.second > b.second;
                     });
    std::ostringstream out;
    out << "{\"profile\": \"cpu_samples\", \"hz\": " << sampling_hz()
        << ", \"samples\": " << sampling_samples()
        << ", \"dropped\": " << sampling_dropped() << ", \"stacks\": [";
    bool first = true;
    for (const auto& [stack, count] : sorted) {
        out << (first ? "" : ", ") << "{\"frames\": [";
        if (stack.depth == 0) {
            out << "\"<untracked>\"";
        }
        for (std::uint32_t i = 0; i < stack.depth; ++i) {
            out << (i == 0 ? "" : ", ") << "\""
                << json_escape(frame_text(stack.frames[i])) << "\"";
        }
        out << "], \"count\": " << count << "}";
        first = false;
    }
    out << "]}";
    return out.str();
}


void sampling_from_env()
{
    static std::once_flag once;
    std::call_once(once, sampling_from_env_impl);
}


}  // namespace mgko::log
