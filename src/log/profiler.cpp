#include "log/profiler.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "batch/batch_log.hpp"
#include "log/dump_path.hpp"

namespace mgko::log {

namespace {

/// JSON-formats a double without locale surprises; wall times are ns, so
/// fixed-point with one fractional digit loses nothing meaningful.  Rates
/// (GFLOP/s, GB/s) pass a higher precision since they live near 1.0.
std::string json_number(double value, int precision = 1)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(precision);
    out << value;
    return out.str();
}

}  // namespace


// --- ProfilerLogger --------------------------------------------------------

void ProfilerLogger::record(const std::string& tag, double wall_ns,
                            size_type bytes, double flops, double work_bytes)
{
    std::lock_guard<std::mutex> guard{mutex_};
    auto& entry = stats_[tag];
    entry.count += 1;
    entry.wall_ns += wall_ns;
    entry.bytes += bytes;
    entry.flops += flops;
    entry.work_bytes += work_bytes;
}


std::map<std::string, ProfilerLogger::tag_stats> ProfilerLogger::summary()
    const
{
    std::lock_guard<std::mutex> guard{mutex_};
    return stats_;
}


ProfilerLogger::tag_stats ProfilerLogger::stats(const std::string& tag) const
{
    std::lock_guard<std::mutex> guard{mutex_};
    auto it = stats_.find(tag);
    return it == stats_.end() ? tag_stats{} : it->second;
}


std::string ProfilerLogger::to_json() const
{
    const auto snapshot = summary();
    std::ostringstream out;
    out << "{\"tags\": {";
    bool first = true;
    for (const auto& [tag, s] : snapshot) {
        if (!first) {
            out << ", ";
        }
        first = false;
        out << "\"" << tag << "\": {\"count\": " << s.count
            << ", \"wall_ns\": " << json_number(s.wall_ns)
            << ", \"bytes\": " << s.bytes
            << ", \"flops\": " << json_number(s.flops)
            << ", \"work_bytes\": " << json_number(s.work_bytes)
            << ", \"gflops\": " << json_number(s.gflops(), 6)
            << ", \"gbps\": " << json_number(s.gbps(), 6) << "}";
    }
    out << "}}";
    return out.str();
}


void ProfilerLogger::reset()
{
    std::lock_guard<std::mutex> guard{mutex_};
    stats_.clear();
}


void ProfilerLogger::on_allocation_completed(const Executor*, size_type bytes,
                                             const void*)
{
    record("mem.alloc", 0.0, bytes);
}

void ProfilerLogger::on_free_completed(const Executor*, const void*)
{
    record("mem.free", 0.0, 0);
}

void ProfilerLogger::on_copy_completed(const Executor*, const Executor*,
                                       size_type bytes)
{
    record("mem.copy", 0.0, bytes);
}

void ProfilerLogger::on_pool_hit(const Executor*, size_type bytes)
{
    record("pool.hit", 0.0, bytes);
}

void ProfilerLogger::on_pool_miss(const Executor*, size_type bytes)
{
    record("pool.miss", 0.0, bytes);
}

void ProfilerLogger::on_pool_trim(const Executor*, size_type bytes_released)
{
    record("pool.trim", 0.0, bytes_released);
}

void ProfilerLogger::on_operation_launched(const Executor*, const char*)
{
    // Aggregated on completion, where the wall time is known.
}

void ProfilerLogger::on_operation_completed(const Executor*,
                                            const char* op_name,
                                            double wall_ns, double flops,
                                            double bytes)
{
    record(std::string{"op."} + op_name, wall_ns, 0, flops, bytes);
}

void ProfilerLogger::on_iteration_complete(const LinOp*, size_type, double)
{
    record("solver.iteration", 0.0, 0);
}

void ProfilerLogger::on_solver_stop(const LinOp*, size_type, bool,
                                    const char*)
{
    record("solver.stop", 0.0, 0);
}

void ProfilerLogger::on_batch_iteration_complete(const batch::BatchLinOp*,
                                                 size_type,
                                                 size_type active_systems,
                                                 double)
{
    record("batch.iteration", 0.0, active_systems);
}

void ProfilerLogger::on_batch_solver_stop(
    const batch::BatchLinOp*, size_type, size_type converged_systems,
    size_type, const batch::BatchConvergenceLogger* per_system)
{
    record("batch.stop", 0.0, converged_systems);
    if (per_system != nullptr) {
        // One sub-tag per convergence outcome, counting affected systems.
        for (size_type s = 0; s < per_system->num_systems(); ++s) {
            record(std::string{"batch.stop."} + per_system->stop_reason(s),
                   0.0, 1);
        }
    }
}

void ProfilerLogger::on_binding_call_completed(const char* name,
                                               double wall_ns,
                                               double gil_wait_ns,
                                               double lookup_ns,
                                               double boxing_ns,
                                               double interpreter_ns)
{
    record(std::string{"bind."} + name, wall_ns, 0);
    record("bind.gil_wait", gil_wait_ns, 0);
    record("bind.lookup", lookup_ns, 0);
    record("bind.boxing", boxing_ns, 0);
    record("bind.interpreter", interpreter_ns, 0);
}


// --- RecordLogger ----------------------------------------------------------

void RecordLogger::push(record r)
{
    std::lock_guard<std::mutex> guard{mutex_};
    records_.push_back(std::move(r));
}


std::vector<RecordLogger::record> RecordLogger::records() const
{
    std::lock_guard<std::mutex> guard{mutex_};
    return records_;
}


size_type RecordLogger::count(const std::string& kind) const
{
    std::lock_guard<std::mutex> guard{mutex_};
    size_type result = 0;
    for (const auto& r : records_) {
        if (r.kind == kind) {
            ++result;
        }
    }
    return result;
}


void RecordLogger::reset()
{
    std::lock_guard<std::mutex> guard{mutex_};
    records_.clear();
}


void RecordLogger::on_allocation_completed(const Executor*, size_type bytes,
                                           const void*)
{
    push({"allocation", "", bytes, 0.0});
}

void RecordLogger::on_free_completed(const Executor*, const void*)
{
    push({"free", "", 0, 0.0});
}

void RecordLogger::on_copy_completed(const Executor*, const Executor*,
                                     size_type bytes)
{
    push({"copy", "", bytes, 0.0});
}

void RecordLogger::on_pool_hit(const Executor*, size_type bytes)
{
    push({"pool_hit", "", bytes, 0.0});
}

void RecordLogger::on_pool_miss(const Executor*, size_type bytes)
{
    push({"pool_miss", "", bytes, 0.0});
}

void RecordLogger::on_pool_trim(const Executor*, size_type bytes_released)
{
    push({"pool_trim", "", bytes_released, 0.0});
}

void RecordLogger::on_operation_launched(const Executor*, const char* op_name)
{
    push({"operation_launched", op_name, 0, 0.0});
}

void RecordLogger::on_operation_completed(const Executor*,
                                          const char* op_name,
                                          double wall_ns, double flops,
                                          double bytes)
{
    push({"operation_completed", op_name, static_cast<size_type>(bytes),
          wall_ns});
    if (flops > 0.0) {
        push({"operation_work", op_name, static_cast<size_type>(bytes),
              flops});
    }
}

void RecordLogger::on_iteration_complete(const LinOp*, size_type iteration,
                                         double residual_norm)
{
    push({"iteration", "", iteration, residual_norm});
}

void RecordLogger::on_solver_stop(const LinOp*, size_type iterations,
                                  bool converged, const char* reason)
{
    push({"solver_stop", reason, iterations, converged ? 1.0 : 0.0});
}

void RecordLogger::on_batch_iteration_complete(const batch::BatchLinOp*,
                                               size_type iteration,
                                               size_type active_systems,
                                               double max_residual_norm)
{
    push({"batch_iteration", std::to_string(iteration), active_systems,
          max_residual_norm});
}

void RecordLogger::on_batch_solver_stop(
    const batch::BatchLinOp*, size_type num_systems,
    size_type converged_systems, size_type max_iterations,
    const batch::BatchConvergenceLogger* per_system)
{
    push({"batch_solver_stop", std::to_string(max_iterations),
          converged_systems, static_cast<double>(num_systems)});
    if (per_system != nullptr) {
        for (size_type s = 0; s < per_system->num_systems(); ++s) {
            push({"batch_stop_reason", per_system->stop_reason(s), s,
                  static_cast<double>(per_system->num_iterations(s))});
        }
    }
}

void RecordLogger::on_binding_call_completed(const char* name, double wall_ns,
                                             double, double, double, double)
{
    push({"binding_call", name, 0, wall_ns});
}


// --- MGKO_PROFILE switch ---------------------------------------------------

std::shared_ptr<ProfilerLogger> profiler_from_env()
{
    const char* value = std::getenv("MGKO_PROFILE");
    if (value == nullptr || *value == '\0') {
        return nullptr;
    }
    return ProfilerLogger::create();
}


void dump_profile(const ProfilerLogger& profiler, const std::string& name)
{
    const char* value = std::getenv("MGKO_PROFILE");
    if (value == nullptr || *value == '\0') {
        return;
    }
    const std::string dest{value};
    const auto json = profiler.to_json();
    if (dump_to_stdout(dest)) {
        std::cout << "=== mgko profile [" << name << "] ===\n"
                  << json << std::endl;
        return;
    }
    const auto path = resolve_dump_path(dest, "profile", name, ".json");
    std::ofstream out{path};
    if (out) {
        out << json << "\n";
    } else {
        std::cerr << "mgko: cannot write profile to '" << path << "'\n";
    }
}


}  // namespace mgko::log
