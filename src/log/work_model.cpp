#include "log/work_model.hpp"

namespace mgko::log {

namespace {

// One accumulator per thread: kernels note work from the thread that runs
// them (OpenMP kernel bodies tick from the dispatching thread, after the
// parallel region), and Executor::run drains it on that same thread.
thread_local op_work tl_work{};

}  // namespace


void note_work(double flops, double bytes)
{
    tl_work.flops += flops;
    tl_work.bytes += bytes;
}


op_work exchange_work(op_work next)
{
    const op_work prev = tl_work;
    tl_work = next;
    return prev;
}


}  // namespace mgko::log
