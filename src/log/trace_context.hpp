// Request-scoped trace context: the propagation layer that stitches the
// three observability tiers together per *request* instead of per thread.
//
// The profiler/trace/metrics loggers and the FlightRecorder can say what
// happened on each thread, but once serve::SolveServer hands a request to
// a worker-pool thread the spans, kernel work-model ticks, and pool
// allocations it triggers are indistinguishable from every other
// concurrent request.  A TraceContext — W3C Trace Context compatible
// 128-bit trace id, 64-bit span id, sampled flag — travels with the
// request instead of the thread:
//
//   * a thread-local *current context* with RAII scope guards
//     (TraceContextScope): pushing a scope makes every FlightRecorder
//     record, metric exemplar, and cost attribution on that thread carry
//     the context's trace id until the scope unwinds;
//   * explicit capture/restore across handoffs: current_trace_context()
//     is copyable, so the value captured on one thread (SolveServer's
//     acceptor, a future task-graph scheduler) can be re-entered with a
//     scope guard on the thread that picks the work up;
//   * per-request cost attribution: a sampled context carries a
//     RequestCost accumulator; Executor::run and the pooled allocator
//     feed it through note_request_kernel / note_request_alloc, so a
//     /v1/solve response can answer "what did *this* request cost" with
//     flops, bytes, kernel launches, pool-allocation bytes, and a
//     per-kernel breakdown;
//   * sampling: MGKO_TRACE_SAMPLE (or the "trace_sample" config key)
//     sets the probability that a *minted* context is sampled; a caller
//     supplied traceparent's sampled flag is adopted as-is, per W3C.
//
// The wire format is the W3C `traceparent` header
// (00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>); serve/http.hpp
// carries the parse/emit helpers so servers adopt a caller's trace id,
// mint one when absent, and echo it on every response (DESIGN.md §17).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace mgko::log {


struct RequestCost;


/// One request's identity: 128-bit trace id (split high/low), 64-bit span
/// id, and the sampled flag.  A zero trace id means "no context".
struct TraceContext {
    std::uint64_t trace_high{0};
    std::uint64_t trace_low{0};
    std::uint64_t span_id{0};
    bool sampled{false};
    /// Sampled contexts may carry a cost accumulator; not owned.  The
    /// pointer never crosses the lifetime of the scope that set it.
    RequestCost* cost{nullptr};

    bool valid() const { return (trace_high | trace_low) != 0; }
    /// 32 lowercase hex characters.
    std::string trace_id_hex() const;
    /// 16 lowercase hex characters.
    std::string span_id_hex() const;
    /// The W3C header value: "00-<trace>-<span>-<flags>".
    std::string traceparent() const;
};


/// Per-kernel slice of a request's cost.
struct kernel_cost {
    std::uint64_t count{0};
    double wall_ns{0.0};
    double flops{0.0};
    double bytes{0.0};
};


/// Everything one sampled request consumed.  Deliberately unsynchronized:
/// only the thread whose current context carries the `cost` pointer ever
/// feeds it (note_request_kernel / note_request_alloc are no-ops
/// everywhere else, and kernels tick their work from the dispatching
/// thread even across OpenMP regions), and handoffs between threads are
/// sequenced by the queue that moves the context.  A future executor that
/// fans ONE request across dispatching threads concurrently must add its
/// own aggregation.
///
/// note_kernel sits on the kernel-dispatch hot path, so the per-kernel
/// breakdown is keyed by the name *pointer* (Operation::name() returns
/// string literals) in a fixed slot array — no string construction, no
/// tree walk — and only folded into a string-keyed map at snapshot()
/// time, where distinct literals with equal text merge.
struct RequestCost {
    /// Inline: runs once per kernel dispatch on sampled requests; a call
    /// through a translation-unit boundary is measurable at that rate.
    void note_kernel(const char* name, double wall_ns, double flops,
                     double bytes)
    {
        flops_ += flops;
        bytes_ += bytes;
        ++kernels_;
        // Pointer-identity scan over the few distinct kernels a request
        // runs; Operation::name() returns string literals, so the same
        // kernel hits the same slot every dispatch without touching the
        // characters.
        kernel_cost* slice = &overflow_;
        for (std::size_t i = 0; i < used_; ++i) {
            if (slots_[i].name == name) {
                slice = &slots_[i].cost;
                break;
            }
        }
        if (slice == &overflow_ && used_ < max_slots) {
            slots_[used_].name = name;
            slice = &slots_[used_].cost;
            ++used_;
        }
        ++slice->count;
        slice->wall_ns += wall_ns;
        slice->flops += flops;
        slice->bytes += bytes;
    }

    void note_alloc(double bytes) { alloc_bytes_ += bytes; }

    struct totals {
        double flops{0.0};
        double bytes{0.0};
        double alloc_bytes{0.0};
        std::uint64_t kernels{0};
        std::map<std::string, kernel_cost> per_kernel;
    };
    /// Point-in-time copy of the accumulated cost.
    totals snapshot() const;

    /// The four scalar totals without materializing the per-kernel map —
    /// for per-request summaries that don't need the breakdown.
    struct scalar_totals {
        double flops{0.0};
        double bytes{0.0};
        double alloc_bytes{0.0};
        std::uint64_t kernels{0};
    };
    scalar_totals quick_totals() const
    {
        return {flops_, bytes_, alloc_bytes_, kernels_};
    }

private:
    struct slot {
        const char* name{nullptr};
        kernel_cost cost{};
    };
    /// Distinct kernel names per request; a solve touches ~a dozen.
    /// Overflow beyond this lands in the "<other>" breakdown row.
    static constexpr std::size_t max_slots = 64;

    double flops_{0.0};
    double bytes_{0.0};
    double alloc_bytes_{0.0};
    std::uint64_t kernels_{0};
    std::array<slot, max_slots> slots_{};
    std::size_t used_{0};
    kernel_cost overflow_{};
};


namespace detail {
/// The thread's active context.  Inline thread_local so the per-kernel
/// accessors below compile to a TLS load at every call site instead of a
/// function call.  TraceContextScope saves the previous value on the C++
/// stack, so nesting behaves like a stack without this being one.
inline thread_local TraceContext tl_context{};
}  // namespace detail


/// The calling thread's active context; a zero context when none is in
/// scope.
inline TraceContext current_trace_context() { return detail::tl_context; }

/// RAII guard that makes `ctx` the calling thread's current context for
/// its lifetime, restoring the previous one on unwind.  Scopes nest (the
/// saved context lives on the C++ stack), which is exactly the
/// "thread-local stack" the propagation rules need; handoffs capture
/// current_trace_context() on one thread and re-enter it with a scope on
/// another.
class TraceContextScope {
public:
    explicit TraceContextScope(const TraceContext& ctx)
        : previous_{detail::tl_context}
    {
        detail::tl_context = ctx;
    }
    ~TraceContextScope() { detail::tl_context = previous_; }

    TraceContextScope(const TraceContextScope&) = delete;
    TraceContextScope& operator=(const TraceContextScope&) = delete;

private:
    TraceContext previous_;
};


/// Mints a fresh context: random nonzero trace and span ids, sampled with
/// probability trace_sample_rate().
TraceContext make_trace_context();

/// A random nonzero span id — used when adopting a caller's trace id but
/// starting our own span under it.
std::uint64_t mint_span_id();

/// The probability ([0, 1]) that make_trace_context() returns a sampled
/// context.  Defaults to MGKO_TRACE_SAMPLE (1.0 when unset).
double trace_sample_rate();
/// Overrides the sample rate (clamped to [0, 1]); the "trace_sample"
/// config key and the trace_sample binding land here.
void set_trace_sample_rate(double rate);

/// The low 64 bits of the calling thread's *sampled* context's trace id,
/// 0 when no sampled context is active.  FlightRecorder stamps every
/// record with this word so /trace.json?trace_id= can filter one request.
inline std::uint64_t current_trace_word()
{
    return detail::tl_context.sampled ? detail::tl_context.trace_low : 0;
}

/// Attributes one completed kernel dispatch to the active context's cost
/// accumulator (no-op without one).  Called by Executor::run next to
/// on_operation_completed.
inline void note_request_kernel(const char* name, double wall_ns,
                                double flops, double bytes)
{
    if (detail::tl_context.cost != nullptr) {
        detail::tl_context.cost->note_kernel(name, wall_ns, flops, bytes);
    }
}
/// Attributes a pool allocation's bytes the same way; called by
/// Executor::alloc_bytes.
inline void note_request_alloc(double bytes)
{
    if (detail::tl_context.cost != nullptr) {
        detail::tl_context.cost->note_alloc(bytes);
    }
}


}  // namespace mgko::log
