// Event logging — the framework's observability spine, modeled on Ginkgo's
// gko::log::Logger (Anzt et al., "Ginkgo: A Modern Linear Operator Algebra
// Framework for HPC").
//
// An EventLogger receives framework events; concrete loggers (see
// log/profiler.hpp) aggregate or record them.  Loggers attach at three
// layers, mirroring where mgko does attributable work:
//
//   * Executor  — memory traffic (allocation/free/copy), pool behaviour
//                 (hit/miss/trim), and every kernel launch with its
//                 Operation tag and real wall time,
//   * LinOp     — solver progress (iteration / stop events),
//   * bind::    — binding dispatch (GIL wait + lookup + boxing + modeled
//                 interpreter constant per bound call; see
//                 bindings/registry.hpp).
//
// Every hook has an empty default body, so a logger overrides only the
// events it cares about.  The emitting layers guard each emission with
// has_loggers(): with no logger attached the cost of the subsystem is one
// empty-vector check per event site — no allocation, no virtual call (the
// solver zero-allocation assertions in tests/test_workspace.cpp hold with
// the hooks in place).
//
// Thread safety: event *emission* may happen concurrently from many
// threads, and concrete loggers must tolerate that (ProfilerLogger and
// RecordLogger lock internally).  Attaching/removing loggers concurrently
// with emission is not synchronized — attach before the instrumented work
// starts, as Ginkgo does.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "core/types.hpp"

namespace mgko {

class Executor;
class LinOp;

namespace batch {
class BatchLinOp;
class BatchConvergenceLogger;
}

namespace log {


/// Receiver interface for framework events.  All hooks default to no-ops.
class EventLogger {
public:
    virtual ~EventLogger() = default;

    // --- memory events (Executor layer) --------------------------------
    /// A block of `bytes` was allocated on `exec` at `ptr`.
    virtual void on_allocation_completed(const Executor*, size_type /*bytes*/,
                                         const void* /*ptr*/)
    {}
    /// `ptr` was returned to `exec` (to its pool or the system).
    virtual void on_free_completed(const Executor*, const void* /*ptr*/) {}
    /// `bytes` moved from `src` into `dst`'s memory space.
    virtual void on_copy_completed(const Executor* /*src*/,
                                   const Executor* /*dst*/,
                                   size_type /*bytes*/)
    {}

    // --- pool events (Executor layer) -----------------------------------
    /// An allocation request of `bytes` was served from the cached lists.
    virtual void on_pool_hit(const Executor*, size_type /*bytes*/) {}
    /// An allocation request of `bytes` went to the system allocator.
    virtual void on_pool_miss(const Executor*, size_type /*bytes*/) {}
    /// trim released `bytes_released` of cached blocks to the system.
    virtual void on_pool_trim(const Executor*, size_type /*bytes_released*/)
    {}

    // --- operation events (Executor layer) ------------------------------
    /// `op_name` is about to be dispatched on `exec`.
    virtual void on_operation_launched(const Executor*,
                                       const char* /*op_name*/)
    {}
    /// `op_name` finished; `wall_ns` is the real wall time of its body,
    /// `flops`/`bytes` the work its kernel reported through the cost-model
    /// profile (zero for operations whose kernels bypass kernels::tick).
    virtual void on_operation_completed(const Executor*,
                                        const char* /*op_name*/,
                                        double /*wall_ns*/, double /*flops*/,
                                        double /*bytes*/)
    {}

    // --- span events (any layer) -----------------------------------------
    /// A nested phase named `name` opened on the calling thread.  Emitting
    /// layers guarantee begin/end pairs are well nested per thread
    /// (solver apply → iteration, batch apply → round); TraceLogger turns
    /// them into Chrome Trace duration slices.
    virtual void on_span_begin(const char* /*name*/) {}
    /// The innermost open span named `name` closed on the calling thread.
    virtual void on_span_end(const char* /*name*/) {}

    // --- solver events (LinOp layer) -------------------------------------
    /// `solver` completed iteration `iteration` with `residual_norm` (an
    /// estimate for GMRES inner iterations, a true norm elsewhere).
    virtual void on_iteration_complete(const LinOp* /*solver*/,
                                       size_type /*iteration*/,
                                       double /*residual_norm*/)
    {}
    /// `solver` stopped after `iterations` iterations.
    virtual void on_solver_stop(const LinOp* /*solver*/,
                                size_type /*iterations*/, bool /*converged*/,
                                const char* /*reason*/)
    {}

    // --- batched solver events (batch::BatchLinOp layer) ------------------
    /// `solver` completed batch iteration `iteration` with `active_systems`
    /// systems still iterating; `max_residual_norm` is the largest residual
    /// norm across the systems that were active this iteration.
    virtual void on_batch_iteration_complete(
        const batch::BatchLinOp* /*solver*/, size_type /*iteration*/,
        size_type /*active_systems*/, double /*max_residual_norm*/)
    {}
    /// `solver` finished a batched apply: `converged_systems` of
    /// `num_systems` converged; `max_iterations` is the largest per-system
    /// iteration count.  `per_system` (may be null) exposes the per-system
    /// iteration counts, residual norms, and stop reasons, so loggers can
    /// label the batch with its convergence outcomes instead of bare
    /// counts.
    virtual void on_batch_solver_stop(
        const batch::BatchLinOp* /*solver*/, size_type /*num_systems*/,
        size_type /*converged_systems*/, size_type /*max_iterations*/,
        const batch::BatchConvergenceLogger* /*per_system*/)
    {}

    // --- binding events (bind:: layer) -----------------------------------
    /// One bound call through the registry finished.  `wall_ns` is the
    /// call's total real wall time; `gil_wait_ns` the time spent acquiring
    /// the GIL; `lookup_ns` the mangled-name hash lookup; `boxing_ns` the
    /// remaining measured host-side overhead (argument boxing + dispatch
    /// glue); `interpreter_ns` the modeled CPython frame constant.
    virtual void on_binding_call_completed(const char* /*name*/,
                                           double /*wall_ns*/,
                                           double /*gil_wait_ns*/,
                                           double /*lookup_ns*/,
                                           double /*boxing_ns*/,
                                           double /*interpreter_ns*/)
    {}
};


/// Mixin giving a class an attachment point for EventLoggers (the analogue
/// of Ginkgo's gko::log::EnableLogging).  Executor and LinOp inherit it.
class EnableLogging {
public:
    /// Attaches `logger`; a logger already attached here is not attached a
    /// second time (a duplicate would double-count every event).
    void add_logger(std::shared_ptr<EventLogger> logger)
    {
        if (!logger) {
            return;
        }
        for (const auto& existing : loggers_) {
            if (existing.get() == logger.get()) {
                return;
            }
        }
        loggers_.push_back(std::move(logger));
    }

    /// Removes every occurrence of a previously attached logger (by
    /// identity); unknown loggers are ignored.
    void remove_logger(const EventLogger* logger)
    {
        loggers_.erase(
            std::remove_if(loggers_.begin(), loggers_.end(),
                           [&](const std::shared_ptr<EventLogger>& l) {
                               return l.get() == logger;
                           }),
            loggers_.end());
    }

    const std::vector<std::shared_ptr<EventLogger>>& get_loggers() const
    {
        return loggers_;
    }

    bool has_loggers() const { return !loggers_.empty(); }

protected:
    /// Invokes `fn(logger)` on every attached logger.  Emitting layers
    /// check has_loggers() first so the detached fast path stays a single
    /// branch.
    template <typename Fn>
    void log_event(Fn&& fn) const
    {
        for (const auto& logger : loggers_) {
            fn(*logger);
        }
    }

private:
    std::vector<std::shared_ptr<EventLogger>> loggers_;
};


/// RAII span broadcast to up to two logger attachment points (typically a
/// LinOp and its executor): emits on_span_begin on construction and the
/// matching on_span_end on destruction, so early returns and breaks keep
/// spans well nested.  When the same logger is attached to both points it
/// receives the span twice, matching broadcast_event's event semantics.
class ScopedSpan {
public:
    ScopedSpan(const EnableLogging* primary, const EnableLogging* secondary,
               const char* name)
        : primary_{primary}, secondary_{secondary}, name_{name}
    {
        emit([&](EventLogger& l) { l.on_span_begin(name_); });
    }

    ~ScopedSpan()
    {
        emit([&](EventLogger& l) { l.on_span_end(name_); });
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    template <typename Fn>
    void emit(Fn&& fn) const
    {
        if (primary_ != nullptr) {
            for (const auto& logger : primary_->get_loggers()) {
                fn(*logger);
            }
        }
        if (secondary_ != nullptr && secondary_ != primary_) {
            for (const auto& logger : secondary_->get_loggers()) {
                fn(*logger);
            }
        }
    }

    const EnableLogging* primary_;
    const EnableLogging* secondary_;
    const char* name_;
};


}  // namespace log
}  // namespace mgko
