#include "log/flight_recorder.hpp"

#include "log/trace_context.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <sstream>

namespace mgko::log {

namespace {

std::uint64_t steady_now_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

size_type round_up_pow2(size_type value)
{
    size_type p = 1;
    while (p < value) {
        p *= 2;
    }
    return p;
}

// Per-thread slot index shared by every FlightRecorder instance.  Slots
// are recycled through a free list when a thread exits, so thread churn
// does not exhaust max_threads; handing a slot (and thus a ring) from a
// dead writer to a new one is synchronized by the free-list mutex.
struct tid_free_list {
    std::mutex mutex;
    std::vector<int> free;
    int next = 0;
};

tid_free_list& tid_pool()
{
    // Intentionally leaked: ~tid_holder runs from thread TLS destructors,
    // and env-started server workers can still be exiting while
    // function-local statics are torn down at process exit.  A destroyed
    // pool would hand those late destructors a dangling vector, so the
    // pool must outlive every thread.
    static tid_free_list* pool = new tid_free_list;
    return *pool;
}

int acquire_flight_tid()
{
    auto& pool = tid_pool();
    std::lock_guard<std::mutex> guard{pool.mutex};
    if (!pool.free.empty()) {
        const int tid = pool.free.back();
        pool.free.pop_back();
        return tid;
    }
    return pool.next++;
}

void release_flight_tid(int tid)
{
    auto& pool = tid_pool();
    std::lock_guard<std::mutex> guard{pool.mutex};
    pool.free.push_back(tid);
}

struct tid_holder {
    int tid{acquire_flight_tid()};
    ~tid_holder() { release_flight_tid(tid); }
};

int flight_thread_index()
{
    thread_local tid_holder holder;
    return holder.tid;
}


constexpr std::uint8_t max_kind =
    static_cast<std::uint8_t>(FlightRecorder::event_kind::binding);

const char* kind_name(FlightRecorder::event_kind kind)
{
    switch (kind) {
    case FlightRecorder::event_kind::operation:
        return "op";
    case FlightRecorder::event_kind::alloc:
        return "alloc";
    case FlightRecorder::event_kind::free_mem:
        return "free";
    case FlightRecorder::event_kind::copy:
        return "copy";
    case FlightRecorder::event_kind::pool_hit:
        return "pool_hit";
    case FlightRecorder::event_kind::pool_miss:
        return "pool_miss";
    case FlightRecorder::event_kind::pool_trim:
        return "pool_trim";
    case FlightRecorder::event_kind::span_begin:
        return "span_begin";
    case FlightRecorder::event_kind::span_end:
        return "span_end";
    case FlightRecorder::event_kind::iteration:
        return "iteration";
    case FlightRecorder::event_kind::solver_stop:
        return "solver_stop";
    case FlightRecorder::event_kind::batch_iteration:
        return "batch_iteration";
    case FlightRecorder::event_kind::batch_stop:
        return "batch_stop";
    case FlightRecorder::event_kind::binding:
        return "binding";
    }
    return "?";
}

const char* kind_category(FlightRecorder::event_kind kind)
{
    switch (kind) {
    case FlightRecorder::event_kind::operation:
        return "op";
    case FlightRecorder::event_kind::binding:
        return "bind";
    case FlightRecorder::event_kind::span_begin:
    case FlightRecorder::event_kind::span_end:
        return "span";
    case FlightRecorder::event_kind::alloc:
    case FlightRecorder::event_kind::free_mem:
    case FlightRecorder::event_kind::copy:
        return "mem";
    case FlightRecorder::event_kind::pool_hit:
    case FlightRecorder::event_kind::pool_miss:
    case FlightRecorder::event_kind::pool_trim:
        return "pool";
    case FlightRecorder::event_kind::iteration:
    case FlightRecorder::event_kind::solver_stop:
        return "solver";
    case FlightRecorder::event_kind::batch_iteration:
    case FlightRecorder::event_kind::batch_stop:
        return "batch";
    }
    return "?";
}

std::string json_escape(const char* text)
{
    std::string out;
    for (const char* c = text; *c != '\0'; ++c) {
        if (*c == '"' || *c == '\\') {
            out += '\\';
        }
        if (*c == '\n') {
            out += "\\n";
            continue;
        }
        out += *c;
    }
    return out;
}

std::string json_number(double value)
{
    if (!std::isfinite(value)) {
        return "0";
    }
    std::ostringstream out;
    out.precision(15);
    out << value;
    return out.str();
}

/// 16 lowercase hex digits — the textual form of a record's trace word,
/// matching the tail of the 32-hex W3C trace id it was stamped from.
std::string trace_hex(std::uint64_t value)
{
    std::string out;
    out.reserve(16);
    for (int shift = 60; shift >= 0; shift -= 4) {
        const auto nibble = (value >> shift) & 0xF;
        out += static_cast<char>(nibble < 10 ? '0' + nibble
                                             : 'a' + (nibble - 10));
    }
    return out;
}

}  // namespace


// --- recording -------------------------------------------------------------

FlightRecorder::FlightRecorder(size_type capacity_per_thread)
    : capacity_{round_up_pow2(std::max<size_type>(capacity_per_thread, 2))},
      origin_ns_{steady_now_ns()}
{}


FlightRecorder::ring* FlightRecorder::thread_ring()
{
    const int tid = flight_thread_index();
    if (tid < 0 || static_cast<size_type>(tid) >= max_threads) {
        return nullptr;
    }
    ring* r = rings_[tid].load(std::memory_order_acquire);
    if (r == nullptr) {
        auto fresh = std::make_unique<ring>(capacity_);
        std::lock_guard<std::mutex> guard{ring_mutex_};
        r = rings_[tid].load(std::memory_order_acquire);
        if (r == nullptr) {
            // First writer on this tid slot: publish the fresh ring.  A
            // recycled slot keeps its previous owner's ring (and events).
            r = fresh.get();
            owned_rings_.push_back(std::move(fresh));
            rings_[tid].store(r, std::memory_order_release);
        }
    }
    return r;
}


void FlightRecorder::emit(event_kind kind, const char* tag, double a, double b)
{
    ring* r = thread_ring();
    if (r == nullptr) {
        overflow_drops_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const std::uint16_t id = intern(tag);
    const std::uint64_t ts = steady_now_ns() - origin_ns_;
    const std::uint64_t seq = r->head.load(std::memory_order_relaxed);
    auto* w =
        r->words.get() + ring::words_per_slot * (seq & (r->capacity - 1));
    w[0].store(ts, std::memory_order_relaxed);
    w[1].store(static_cast<std::uint64_t>(kind) | (std::uint64_t{id} << 8),
               std::memory_order_relaxed);
    w[2].store(std::bit_cast<std::uint64_t>(a), std::memory_order_relaxed);
    w[3].store(std::bit_cast<std::uint64_t>(b), std::memory_order_relaxed);
    w[4].store(current_trace_word(), std::memory_order_relaxed);
    r->head.store(seq + 1, std::memory_order_release);
}


std::uint16_t FlightRecorder::intern(const char* name)
{
    if (name == nullptr) {
        name = "<null>";
    }
    // FNV-1a over the tag, then linear probing in the fixed table.
    std::uint64_t hash = 1469598103934665603ull;
    for (const char* c = name; *c != '\0'; ++c) {
        hash ^= static_cast<unsigned char>(*c);
        hash *= 1099511628211ull;
    }
    const size_type mask = tag_capacity - 1;
    size_type slot = static_cast<size_type>(hash) & mask;
    for (size_type probe = 0; probe < tag_capacity;
         ++probe, slot = (slot + 1) & mask) {
        const char* current = tags_[slot].load(std::memory_order_acquire);
        if (current == nullptr) {
            std::lock_guard<std::mutex> guard{intern_mutex_};
            current = tags_[slot].load(std::memory_order_acquire);
            if (current == nullptr) {
                const std::size_t len = std::strlen(name);
                auto copy = std::make_unique<char[]>(len + 1);
                std::memcpy(copy.get(), name, len + 1);
                tags_[slot].store(copy.get(), std::memory_order_release);
                tag_storage_.push_back(std::move(copy));
                return static_cast<std::uint16_t>(slot);
            }
            // Lost the race for this slot: fall through and compare.
        }
        if (std::strcmp(current, name) == 0) {
            return static_cast<std::uint16_t>(slot);
        }
    }
    return overflow_tag;
}


const char* FlightRecorder::tag_name(std::uint16_t id) const
{
    if (id == overflow_tag) {
        return "<overflow>";
    }
    if (static_cast<size_type>(id) >= tag_capacity) {
        return "<unknown>";
    }
    const char* tag = tags_[id].load(std::memory_order_acquire);
    return tag != nullptr ? tag : "<unknown>";
}


void FlightRecorder::reset()
{
    std::lock_guard<std::mutex> guard{ring_mutex_};
    for (auto& owned : owned_rings_) {
        owned->head.store(0, std::memory_order_release);
    }
    overflow_drops_.store(0, std::memory_order_relaxed);
    torn_drops_.store(0, std::memory_order_relaxed);
}


// --- snapshots -------------------------------------------------------------

std::uint64_t FlightRecorder::recorded() const
{
    std::uint64_t total = 0;
    for (size_type tid = 0; tid < max_threads; ++tid) {
        const ring* r = rings_[tid].load(std::memory_order_acquire);
        if (r != nullptr) {
            total += r->head.load(std::memory_order_acquire);
        }
    }
    return total;
}


std::uint64_t FlightRecorder::dropped() const
{
    std::uint64_t total = overflow_drops_.load(std::memory_order_relaxed) +
                          torn_drops_.load(std::memory_order_relaxed);
    for (size_type tid = 0; tid < max_threads; ++tid) {
        const ring* r = rings_[tid].load(std::memory_order_acquire);
        if (r != nullptr) {
            const std::uint64_t head = r->head.load(std::memory_order_acquire);
            if (head > r->capacity) {
                total += head - r->capacity;
            }
        }
    }
    return total;
}


template <typename Visitor>
void FlightRecorder::visit_records(Visitor&& visit) const
{
    for (size_type tid = 0; tid < max_threads; ++tid) {
        const ring* r = rings_[tid].load(std::memory_order_acquire);
        if (r == nullptr) {
            continue;
        }
        const std::uint64_t h1 = r->head.load(std::memory_order_acquire);
        // The oldest slot may be mid-overwrite while we read, so start one
        // past it; the h2 re-check below catches writers that lapped us
        // during the copy.
        const std::uint64_t begin =
            h1 > r->capacity ? h1 - r->capacity + 1 : 0;
        for (std::uint64_t seq = begin; seq < h1; ++seq) {
            const auto* w = r->words.get() +
                            ring::words_per_slot * (seq & (r->capacity - 1));
            record rec{};
            rec.seq = seq;
            rec.ts_ns = w[0].load(std::memory_order_relaxed);
            const std::uint64_t packed =
                w[1].load(std::memory_order_relaxed);
            const std::uint8_t raw_kind =
                static_cast<std::uint8_t>(packed & 0xFF);
            rec.a = std::bit_cast<double>(
                w[2].load(std::memory_order_relaxed));
            rec.b = std::bit_cast<double>(
                w[3].load(std::memory_order_relaxed));
            rec.trace = w[4].load(std::memory_order_relaxed);
            rec.tid = static_cast<int>(tid);
            const std::uint64_t h2 = r->head.load(std::memory_order_acquire);
            const std::uint64_t valid_begin =
                h2 > r->capacity ? h2 - r->capacity + 1 : 0;
            if (seq < valid_begin || raw_kind > max_kind) {
                // A writer reused this slot while we read it (or the slot
                // held a half-written record): drop, don't misreport.
                torn_drops_.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            rec.kind = static_cast<event_kind>(raw_kind);
            rec.tag_id = static_cast<std::uint16_t>((packed >> 8) & 0xFFFF);
            rec.tag = tag_name(rec.tag_id);
            visit(rec);
        }
    }
}


std::vector<FlightRecorder::record> FlightRecorder::snapshot() const
{
    std::vector<record> out;
    visit_records([&](const record& rec) { out.push_back(rec); });
    return out;
}


std::string FlightRecorder::to_chrome_trace_json(
    std::uint64_t trace_filter) const
{
    auto snap = snapshot();
    if (trace_filter != 0) {
        // One request's records only: the span-repair pass below then
        // yields just that request's well-nested spans per thread.
        std::erase_if(snap, [trace_filter](const record& rec) {
            return rec.trace != trace_filter;
        });
    }
    std::ostringstream out;
    out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
    bool first = true;
    auto emit_event = [&](const char* name, const char* cat, char phase,
                          double ts_ns, double dur_ns, int tid,
                          const std::string& args) {
        out << (first ? "" : ", ") << "{\"name\": \"" << json_escape(name)
            << "\", \"cat\": \"" << cat << "\", \"ph\": \"" << phase
            << "\", \"ts\": " << json_number(ts_ns / 1000.0)
            << ", \"pid\": 1, \"tid\": " << tid;
        if (phase == 'X') {
            out << ", \"dur\": " << json_number(dur_ns / 1000.0);
        }
        if (phase == 'i') {
            out << ", \"s\": \"t\"";
        }
        if (!args.empty()) {
            out << ", \"args\": {" << args << "}";
        }
        out << "}";
        first = false;
    };
    // Attributed records carry their trace word so a trace id found in a
    // metric exemplar or a /v1/requests summary resolves to concrete
    // slices here.
    auto with_trace = [](std::string args, const record& rec) {
        if (rec.trace != 0) {
            if (!args.empty()) {
                args += ", ";
            }
            args += "\"trace_id\": \"" + trace_hex(rec.trace) + "\"";
        }
        return args;
    };
    // Records arrive grouped per tid in ring order; convert each thread's
    // run and repair span pairing at its boundaries (the ring may have
    // dropped a span_begin to wraparound, or hold a still-open span).
    std::size_t i = 0;
    while (i < snap.size()) {
        const int tid = snap[i].tid;
        std::vector<const record*> open_spans;
        std::uint64_t last_ts = 0;
        for (; i < snap.size() && snap[i].tid == tid; ++i) {
            const record& rec = snap[i];
            last_ts = std::max(last_ts, rec.ts_ns);
            switch (rec.kind) {
            case event_kind::operation: {
                const double wall = std::max(rec.a, 0.0);
                const double start =
                    static_cast<double>(rec.ts_ns) - wall;
                emit_event(rec.tag, "op", 'X', std::max(start, 0.0), wall,
                           tid,
                           with_trace("\"wall_ns\": " + json_number(rec.a) +
                                          ", \"flops\": " +
                                          json_number(rec.b),
                                      rec));
                break;
            }
            case event_kind::binding: {
                const double wall = std::max(rec.a, 0.0);
                const double start =
                    static_cast<double>(rec.ts_ns) - wall;
                emit_event(rec.tag, "bind", 'X', std::max(start, 0.0), wall,
                           tid,
                           with_trace("\"wall_ns\": " + json_number(rec.a) +
                                          ", \"gil_wait_ns\": " +
                                          json_number(rec.b),
                                      rec));
                break;
            }
            case event_kind::span_begin:
                open_spans.push_back(&rec);
                emit_event(rec.tag, "span", 'B',
                           static_cast<double>(rec.ts_ns), 0, tid,
                           with_trace("", rec));
                break;
            case event_kind::span_end:
                // An end without a surviving begin means the begin was
                // overwritten: skip it to keep the track well nested.
                if (!open_spans.empty() &&
                    std::strcmp(open_spans.back()->tag, rec.tag) == 0) {
                    open_spans.pop_back();
                    emit_event(rec.tag, "span", 'E',
                               static_cast<double>(rec.ts_ns), 0, tid, "");
                }
                break;
            default:
                emit_event(rec.tag, kind_category(rec.kind), 'i',
                           static_cast<double>(rec.ts_ns), 0, tid,
                           with_trace("\"a\": " + json_number(rec.a) +
                                          ", \"b\": " + json_number(rec.b),
                                      rec));
                break;
            }
        }
        // Close spans still open at the snapshot edge.
        while (!open_spans.empty()) {
            emit_event(open_spans.back()->tag, "span", 'E',
                       static_cast<double>(last_ts), 0, tid, "");
            open_spans.pop_back();
        }
    }
    out << "]}";
    return out.str();
}


std::string FlightRecorder::to_profile_json() const
{
    struct tag_stats {
        std::uint64_t count{0};
        double wall_ns{0.0};
    };
    std::map<std::string, tag_stats> tags;
    visit_records([&](const record& rec) {
        // Instant records already carry qualified tags (mem.alloc,
        // pool.hit, ...); operations, bindings, and spans carry bare
        // names and get the profiler's prefix here.
        std::string tag;
        switch (rec.kind) {
        case event_kind::operation:
            tag = std::string{"op."} + rec.tag;
            break;
        case event_kind::binding:
            tag = std::string{"bind."} + rec.tag;
            break;
        case event_kind::span_begin:
        case event_kind::span_end:
            tag = std::string{"span."} + rec.tag;
            break;
        default:
            tag = rec.tag;
            break;
        }
        auto& stats = tags[tag];
        ++stats.count;
        if (rec.kind == event_kind::operation ||
            rec.kind == event_kind::binding) {
            stats.wall_ns += rec.a;
        }
    });
    std::ostringstream out;
    out << "{\"tags\": {";
    bool first = true;
    for (const auto& [tag, stats] : tags) {
        out << (first ? "" : ", ") << "\"" << json_escape(tag.c_str())
            << "\": {\"count\": " << stats.count
            << ", \"wall_ns\": " << json_number(stats.wall_ns) << "}";
        first = false;
    }
    out << "}}";
    return out.str();
}


// --- async-signal-safe postmortem writer -----------------------------------

namespace {

void write_all(int fd, const char* data, std::size_t size)
{
    while (size > 0) {
        const ssize_t written = ::write(fd, data, size);
        if (written <= 0) {
            return;
        }
        data += written;
        size -= static_cast<std::size_t>(written);
    }
}

void write_str(int fd, const char* text)
{
    write_all(fd, text, std::strlen(text));
}

// Formats `value` in decimal into `buffer` (must hold >= 21 chars).
void write_u64(int fd, std::uint64_t value)
{
    char buffer[21];
    char* end = buffer + sizeof(buffer);
    char* p = end;
    do {
        *--p = static_cast<char>('0' + value % 10);
        value /= 10;
    } while (value > 0);
    write_all(fd, p, static_cast<std::size_t>(end - p));
}

// Doubles are written as clamped integers — enough for the byte counts,
// wall times, and iteration numbers records carry, and printable without
// any non-signal-safe formatting machinery.
void write_double_as_int(int fd, double value)
{
    if (std::isnan(value)) {
        write_str(fd, "nan");
        return;
    }
    if (value < 0) {
        write_str(fd, "-");
        value = -value;
    }
    if (value > 9.2e18) {
        write_str(fd, "inf");
        return;
    }
    write_u64(fd, static_cast<std::uint64_t>(value));
}

}  // namespace


void FlightRecorder::write_postmortem(int fd, const char* reason) const
{
    write_str(fd, "# mgko flight recorder postmortem\n");
    if (reason != nullptr && *reason != '\0') {
        write_str(fd, "# reason: ");
        write_str(fd, reason);
        write_str(fd, "\n");
    }
    write_str(fd, "# columns: tid seq ts_ns kind tag a b trace\n");
    // Same traversal as visit_records, but with no allocation: only
    // atomic loads, stack formatting, and write(2).
    for (size_type tid = 0; tid < max_threads; ++tid) {
        const ring* r = rings_[tid].load(std::memory_order_acquire);
        if (r == nullptr) {
            continue;
        }
        const std::uint64_t head = r->head.load(std::memory_order_acquire);
        const std::uint64_t begin =
            head > r->capacity ? head - r->capacity + 1 : 0;
        for (std::uint64_t seq = begin; seq < head; ++seq) {
            const auto* w = r->words.get() +
                            ring::words_per_slot * (seq & (r->capacity - 1));
            const std::uint64_t ts = w[0].load(std::memory_order_relaxed);
            const std::uint64_t packed =
                w[1].load(std::memory_order_relaxed);
            const std::uint8_t raw_kind =
                static_cast<std::uint8_t>(packed & 0xFF);
            if (raw_kind > max_kind) {
                continue;
            }
            write_u64(fd, static_cast<std::uint64_t>(tid));
            write_str(fd, " ");
            write_u64(fd, seq);
            write_str(fd, " ");
            write_u64(fd, ts);
            write_str(fd, " ");
            write_str(fd, kind_name(static_cast<event_kind>(raw_kind)));
            write_str(fd, " ");
            write_str(fd, tag_name(static_cast<std::uint16_t>(
                              (packed >> 8) & 0xFFFF)));
            write_str(fd, " ");
            write_double_as_int(
                fd,
                std::bit_cast<double>(w[2].load(std::memory_order_relaxed)));
            write_str(fd, " ");
            write_double_as_int(
                fd,
                std::bit_cast<double>(w[3].load(std::memory_order_relaxed)));
            write_str(fd, " ");
            write_u64(fd, w[4].load(std::memory_order_relaxed));
            write_str(fd, "\n");
        }
    }
    write_str(fd, "# end postmortem\n");
}


// --- EventLogger hooks -----------------------------------------------------

void FlightRecorder::on_allocation_completed(const Executor*, size_type bytes,
                                             const void*)
{
    emit(event_kind::alloc, "mem.alloc", static_cast<double>(bytes), 0);
}

void FlightRecorder::on_free_completed(const Executor*, const void*)
{
    emit(event_kind::free_mem, "mem.free", 0, 0);
}

void FlightRecorder::on_copy_completed(const Executor*, const Executor*,
                                       size_type bytes)
{
    emit(event_kind::copy, "mem.copy", static_cast<double>(bytes), 0);
}

void FlightRecorder::on_pool_hit(const Executor*, size_type bytes)
{
    emit(event_kind::pool_hit, "pool.hit", static_cast<double>(bytes), 0);
}

void FlightRecorder::on_pool_miss(const Executor*, size_type bytes)
{
    emit(event_kind::pool_miss, "pool.miss", static_cast<double>(bytes), 0);
}

void FlightRecorder::on_pool_trim(const Executor*, size_type bytes_released)
{
    emit(event_kind::pool_trim, "pool.trim",
         static_cast<double>(bytes_released), 0);
}

void FlightRecorder::on_operation_completed(const Executor*,
                                            const char* op_name,
                                            double wall_ns, double flops,
                                            double)
{
    emit(event_kind::operation, op_name, wall_ns, flops);
}

void FlightRecorder::on_span_begin(const char* name)
{
    emit(event_kind::span_begin, name, 0, 0);
}

void FlightRecorder::on_span_end(const char* name)
{
    emit(event_kind::span_end, name, 0, 0);
}

void FlightRecorder::on_iteration_complete(const LinOp*, size_type iteration,
                                           double residual_norm)
{
    emit(event_kind::iteration, "solver.iteration",
         static_cast<double>(iteration), residual_norm);
}

void FlightRecorder::on_solver_stop(const LinOp*, size_type iterations,
                                    bool converged, const char*)
{
    emit(event_kind::solver_stop, "solver.stop",
         static_cast<double>(iterations), converged ? 1.0 : 0.0);
}

void FlightRecorder::on_batch_iteration_complete(const batch::BatchLinOp*,
                                                 size_type iteration, size_type,
                                                 double max_residual_norm)
{
    emit(event_kind::batch_iteration, "batch.iteration",
         static_cast<double>(iteration), max_residual_norm);
}

void FlightRecorder::on_batch_solver_stop(const batch::BatchLinOp*,
                                          size_type num_systems,
                                          size_type converged_systems,
                                          size_type,
                                          const batch::BatchConvergenceLogger*)
{
    emit(event_kind::batch_stop, "batch.stop",
         static_cast<double>(converged_systems),
         static_cast<double>(num_systems));
}

void FlightRecorder::on_binding_call_completed(const char* name,
                                               double wall_ns,
                                               double gil_wait_ns, double,
                                               double, double)
{
    emit(event_kind::binding, name, wall_ns, gil_wait_ns);
}


// --- process-wide instance and crash hook ----------------------------------

std::shared_ptr<FlightRecorder> shared_flight_recorder()
{
    static std::shared_ptr<FlightRecorder> recorder = [] {
        size_type capacity = FlightRecorder::default_capacity;
        if (const char* value = std::getenv("MGKO_FLIGHT_CAPACITY")) {
            const long parsed = std::strtol(value, nullptr, 10);
            if (parsed > 1) {
                capacity = static_cast<size_type>(parsed);
            }
        }
        return FlightRecorder::create(capacity);
    }();
    return recorder;
}


std::shared_ptr<FlightRecorder> flight_recorder_from_env()
{
    const char* value = std::getenv("MGKO_FLIGHT_RECORDER");
    if (value != nullptr &&
        (std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
         std::strcmp(value, "OFF") == 0)) {
        return nullptr;
    }
    return shared_flight_recorder();
}


namespace {

// Everything the handlers touch lives in plain globals: no allocation, no
// magic-static initialization inside a signal handler.
char postmortem_path[1024] = {0};
FlightRecorder* crash_recorder = nullptr;
std::atomic<bool> handlers_installed{false};
std::atomic<bool> postmortem_written{false};
std::terminate_handler previous_terminate = nullptr;

void write_postmortem_file(const char* reason)
{
    if (postmortem_path[0] == '\0' || crash_recorder == nullptr) {
        return;
    }
    // One dump per crash: the terminate handler's abort() re-enters via
    // the SIGABRT handler, which must not clobber the richer exception
    // reason already on disk.
    if (postmortem_written.exchange(true)) {
        return;
    }
    const int fd =
        ::open(postmortem_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        return;
    }
    crash_recorder->write_postmortem(fd, reason);
    ::close(fd);
}

void crash_signal_handler(int sig)
{
    write_postmortem_file(sig == SIGSEGV ? "SIGSEGV" : "SIGABRT");
    // Restore default disposition and re-raise so exit status, core
    // dumps, and outer handlers behave exactly as without the recorder.
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

void crash_terminate_handler()
{
    char reason[256] = "terminate";
    if (auto current = std::current_exception()) {
        try {
            std::rethrow_exception(current);
        } catch (const std::exception& e) {
            std::strncpy(reason, e.what(), sizeof(reason) - 1);
            reason[sizeof(reason) - 1] = '\0';
        } catch (...) {
            std::strncpy(reason, "unknown exception", sizeof(reason) - 1);
        }
    }
    write_postmortem_file(reason);
    if (previous_terminate != nullptr) {
        previous_terminate();
    }
    std::abort();
}

}  // namespace


void install_crash_handler(const std::string& path)
{
    std::strncpy(postmortem_path, path.c_str(), sizeof(postmortem_path) - 1);
    postmortem_path[sizeof(postmortem_path) - 1] = '\0';
    postmortem_written.store(false, std::memory_order_release);
    crash_recorder = shared_flight_recorder().get();
    if (handlers_installed.exchange(true)) {
        return;  // already installed: only the path was retargeted
    }
    struct sigaction action{};
    action.sa_handler = crash_signal_handler;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGSEGV, &action, nullptr);
    ::sigaction(SIGABRT, &action, nullptr);
    previous_terminate = std::set_terminate(crash_terminate_handler);
}


void install_crash_handler_from_env()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char* value = std::getenv("MGKO_FLIGHT_POSTMORTEM");
        if (value != nullptr && *value != '\0') {
            install_crash_handler(value);
        }
    });
}


bool crash_handler_installed()
{
    return handlers_installed.load(std::memory_order_acquire);
}


}  // namespace mgko::log
