#include "log/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "batch/batch_log.hpp"
#include "log/dump_path.hpp"
#include "log/trace_context.hpp"

namespace mgko::log {

namespace {

std::string format_value(double value)
{
    const bool integral =
        value > -1e15 && value < 1e15 &&
        value == static_cast<double>(static_cast<std::int64_t>(value));
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(integral ? 0 : 3);
    out << value;
    return out.str();
}

/// Upper bound of log2 bucket `i` as a label; the last bucket is +Inf.
std::string bucket_bound(size_type i)
{
    if (i + 1 >= MetricsRegistry::num_buckets) {
        return "+Inf";
    }
    return std::to_string(std::uint64_t{1} << i);
}

size_type bucket_index(double value)
{
    size_type i = 0;
    double bound = 1.0;
    while (i + 1 < MetricsRegistry::num_buckets && value > bound) {
        bound *= 2.0;
        ++i;
    }
    return i;
}

std::string label_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

}  // namespace


std::string MetricsRegistry::exemplar::trace_id_hex() const
{
    std::string out;
    out.reserve(32);
    for (const std::uint64_t word : {trace_high, trace_low}) {
        for (int shift = 60; shift >= 0; shift -= 4) {
            const auto nibble = (word >> shift) & 0xF;
            out += static_cast<char>(nibble < 10 ? '0' + nibble
                                                 : 'a' + (nibble - 10));
        }
    }
    return out;
}


double MetricsRegistry::histogram::quantile(double q) const
{
    if (count == 0) {
        return 0.0;
    }
    q = std::min(std::max(q, 0.0), 1.0);
    const double target = q * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (size_type i = 0; i < num_buckets; ++i) {
        if (buckets[i] == 0) {
            continue;
        }
        const double below = static_cast<double>(cumulative);
        cumulative += buckets[i];
        if (static_cast<double>(cumulative) < target) {
            continue;
        }
        // Rank `target` falls inside bucket i, which covers
        // (2^(i-1), 2^i] (bucket 0 covers [0, 1], the last bucket is
        // +Inf and capped at twice its lower bound for interpolation).
        const double lower =
            i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
        const double upper = std::ldexp(1.0, static_cast<int>(i));
        // The continue above guarantees buckets[i] > 0, but keep the
        // interpolation division explicitly guarded: a zero divisor here
        // would turn a scrape into NaN text for every quantile series.
        const double fraction =
            buckets[i] > 0
                ? (target - below) / static_cast<double>(buckets[i])
                : 0.0;
        return lower + fraction * (upper - lower);
    }
    return std::ldexp(1.0, static_cast<int>(num_buckets));
}


// --- MetricsRegistry -------------------------------------------------------

void MetricsRegistry::inc_counter(const std::string& name,
                                  const std::string& tag, double delta)
{
    std::lock_guard<std::mutex> guard{mutex_};
    counters_[name][tag] += delta;
}


void MetricsRegistry::set_gauge(const std::string& name,
                                const std::string& tag, double value)
{
    std::lock_guard<std::mutex> guard{mutex_};
    gauges_[name][tag] = value;
}


void MetricsRegistry::add_gauge(const std::string& name,
                                const std::string& tag, double delta)
{
    std::lock_guard<std::mutex> guard{mutex_};
    gauges_[name][tag] += delta;
}


void MetricsRegistry::observe(const std::string& name, const std::string& tag,
                              double value)
{
    std::lock_guard<std::mutex> guard{mutex_};
    auto& h = histograms_[name][tag];
    const size_type bucket = bucket_index(value);
    ++h.buckets[bucket];
    ++h.count;
    h.sum += value;
    // Last-observation-wins exemplar per bucket, written under the same
    // mutex every scrape and reset takes: an exemplar's trace id can
    // never tear across a concurrent prometheus_text().
    const auto ctx = current_trace_context();
    if (ctx.sampled && ctx.valid()) {
        h.exemplars[bucket] = {ctx.trace_high, ctx.trace_low, value};
    }
}


void MetricsRegistry::declare_histogram(const std::string& name,
                                        const std::string& tag)
{
    std::lock_guard<std::mutex> guard{mutex_};
    histograms_[name][tag];
}


double MetricsRegistry::counter_value(const std::string& name,
                                      const std::string& tag) const
{
    std::lock_guard<std::mutex> guard{mutex_};
    auto family = counters_.find(name);
    if (family == counters_.end()) {
        return 0.0;
    }
    auto it = family->second.find(tag);
    return it == family->second.end() ? 0.0 : it->second;
}


double MetricsRegistry::gauge_value(const std::string& name,
                                    const std::string& tag) const
{
    std::lock_guard<std::mutex> guard{mutex_};
    auto family = gauges_.find(name);
    if (family == gauges_.end()) {
        return 0.0;
    }
    auto it = family->second.find(tag);
    return it == family->second.end() ? 0.0 : it->second;
}


MetricsRegistry::histogram MetricsRegistry::histogram_snapshot(
    const std::string& name, const std::string& tag) const
{
    std::lock_guard<std::mutex> guard{mutex_};
    auto family = histograms_.find(name);
    if (family == histograms_.end()) {
        return {};
    }
    auto it = family->second.find(tag);
    return it == family->second.end() ? histogram{} : it->second;
}


std::string MetricsRegistry::prometheus_text() const
{
    std::lock_guard<std::mutex> guard{mutex_};
    std::ostringstream out;
    for (const auto& [name, tags] : counters_) {
        out << "# TYPE " << name << " counter\n";
        for (const auto& [tag, value] : tags) {
            out << name << "{tag=\"" << label_escape(tag)
                << "\"} " << format_value(value) << "\n";
        }
    }
    for (const auto& [name, tags] : gauges_) {
        out << "# TYPE " << name << " gauge\n";
        for (const auto& [tag, value] : tags) {
            out << name << "{tag=\"" << label_escape(tag)
                << "\"} " << format_value(value) << "\n";
        }
    }
    for (const auto& [name, tags] : histograms_) {
        out << "# TYPE " << name << " histogram\n";
        for (const auto& [tag, h] : tags) {
            const auto label = label_escape(tag);
            std::uint64_t cumulative = 0;
            for (size_type i = 0; i < num_buckets; ++i) {
                cumulative += h.buckets[i];
                // Prometheus buckets are cumulative; skip interior empties
                // to keep the exposition readable but always emit +Inf.
                // A zero-observation histogram (declared but never
                // observed) emits its full bucket ladder instead: an
                // exposition with only {le="+Inf"} 0 breaks
                // histogram_quantile() and recording rules that expect a
                // stable bucket set from first scrape.
                if (h.count > 0 && h.buckets[i] == 0 &&
                    i + 1 < num_buckets) {
                    continue;
                }
                out << name << "_bucket{tag=\"" << label << "\",le=\""
                    << bucket_bound(i) << "\"} " << cumulative;
                // OpenMetrics exemplar: the last sampled request that
                // landed in this bucket, as a navigable trace id.
                if (h.exemplars[i].valid()) {
                    out << " # {trace_id=\""
                        << h.exemplars[i].trace_id_hex() << "\"} "
                        << format_value(h.exemplars[i].value);
                }
                out << "\n";
            }
            out << name << "_sum{tag=\"" << label << "\"} "
                << format_value(h.sum) << "\n";
            out << name << "_count{tag=\"" << label << "\"} " << h.count
                << "\n";
            // Summary-style quantile estimates alongside the buckets, so
            // dashboards can plot p99 without a histogram_quantile().
            static constexpr const char* quantile_labels[] = {"0.5", "0.95",
                                                              "0.99"};
            static constexpr double quantile_values[] = {0.5, 0.95, 0.99};
            for (int qi = 0; qi < 3; ++qi) {
                out << name << "{tag=\"" << label << "\",quantile=\""
                    << quantile_labels[qi] << "\"} "
                    << format_value(h.quantile(quantile_values[qi])) << "\n";
            }
        }
    }
    return out.str();
}


std::string MetricsRegistry::to_json() const
{
    std::lock_guard<std::mutex> guard{mutex_};
    std::ostringstream out;
    auto dump_families = [&](const std::map<std::string, tag_map>& families) {
        bool first_family = true;
        out << "{";
        for (const auto& [name, tags] : families) {
            out << (first_family ? "" : ", ") << "\"" << name << "\": {";
            first_family = false;
            bool first_tag = true;
            for (const auto& [tag, value] : tags) {
                out << (first_tag ? "" : ", ") << "\"" << tag
                    << "\": " << format_value(value);
                first_tag = false;
            }
            out << "}";
        }
        out << "}";
    };
    out << "{\"counters\": ";
    dump_families(counters_);
    out << ", \"gauges\": ";
    dump_families(gauges_);
    out << ", \"histograms\": {";
    bool first_family = true;
    for (const auto& [name, tags] : histograms_) {
        out << (first_family ? "" : ", ") << "\"" << name << "\": {";
        first_family = false;
        bool first_tag = true;
        for (const auto& [tag, h] : tags) {
            out << (first_tag ? "" : ", ") << "\"" << tag
                << "\": {\"count\": " << h.count
                << ", \"sum\": " << format_value(h.sum)
                << ", \"p50\": " << format_value(h.quantile(0.5))
                << ", \"p95\": " << format_value(h.quantile(0.95))
                << ", \"p99\": " << format_value(h.quantile(0.99))
                << ", \"buckets\": {";
            first_tag = false;
            bool first_bucket = true;
            for (size_type i = 0; i < num_buckets; ++i) {
                if (h.buckets[i] == 0) {
                    continue;
                }
                out << (first_bucket ? "" : ", ") << "\"" << bucket_bound(i)
                    << "\": " << h.buckets[i];
                first_bucket = false;
            }
            out << "}}";
        }
        out << "}";
    }
    out << "}}";
    return out.str();
}


void MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> guard{mutex_};
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}


// --- MetricsLogger ---------------------------------------------------------

void MetricsLogger::on_allocation_completed(const Executor*, size_type bytes,
                                            const void*)
{
    registry_.inc_counter("mgko_events_total", "mem.alloc");
    registry_.inc_counter("mgko_bytes_total", "mem.alloc",
                          static_cast<double>(bytes));
    registry_.add_gauge("mgko_outstanding_allocs", "mem", 1.0);
}

void MetricsLogger::on_free_completed(const Executor*, const void*)
{
    registry_.inc_counter("mgko_events_total", "mem.free");
    registry_.add_gauge("mgko_outstanding_allocs", "mem", -1.0);
}

void MetricsLogger::on_copy_completed(const Executor*, const Executor*,
                                      size_type bytes)
{
    registry_.inc_counter("mgko_events_total", "mem.copy");
    registry_.inc_counter("mgko_bytes_total", "mem.copy",
                          static_cast<double>(bytes));
}

void MetricsLogger::on_pool_hit(const Executor*, size_type bytes)
{
    registry_.inc_counter("mgko_events_total", "pool.hit");
    registry_.inc_counter("mgko_bytes_total", "pool.hit",
                          static_cast<double>(bytes));
}

void MetricsLogger::on_pool_miss(const Executor*, size_type bytes)
{
    registry_.inc_counter("mgko_events_total", "pool.miss");
    registry_.inc_counter("mgko_bytes_total", "pool.miss",
                          static_cast<double>(bytes));
}

void MetricsLogger::on_pool_trim(const Executor*, size_type bytes_released)
{
    registry_.inc_counter("mgko_events_total", "pool.trim");
    registry_.inc_counter("mgko_bytes_total", "pool.trim",
                          static_cast<double>(bytes_released));
}

void MetricsLogger::on_operation_completed(const Executor*,
                                           const char* op_name,
                                           double wall_ns, double flops,
                                           double bytes)
{
    const std::string tag = std::string{"op."} + op_name;
    registry_.inc_counter("mgko_events_total", tag);
    registry_.inc_counter("mgko_flops_total", tag, flops);
    registry_.inc_counter("mgko_work_bytes_total", tag, bytes);
    registry_.observe("mgko_latency_ns", tag, wall_ns);
}

void MetricsLogger::on_span_begin(const char* name)
{
    registry_.inc_counter("mgko_events_total",
                          std::string{"span."} + name);
    registry_.add_gauge("mgko_open_spans", name, 1.0);
}

void MetricsLogger::on_span_end(const char* name)
{
    registry_.add_gauge("mgko_open_spans", name, -1.0);
}

void MetricsLogger::on_iteration_complete(const LinOp*, size_type,
                                          double residual_norm)
{
    registry_.inc_counter("mgko_events_total", "solver.iteration");
    registry_.set_gauge("mgko_residual_norm", "solver", residual_norm);
}

void MetricsLogger::on_solver_stop(const LinOp*, size_type iterations,
                                   bool converged, const char*)
{
    registry_.inc_counter("mgko_events_total", "solver.stop");
    registry_.inc_counter(
        "mgko_events_total",
        converged ? "solver.stop.converged" : "solver.stop.unconverged");
    registry_.observe("mgko_solver_iterations", "solver",
                      static_cast<double>(iterations));
}

void MetricsLogger::on_batch_iteration_complete(const batch::BatchLinOp*,
                                                size_type,
                                                size_type active_systems,
                                                double max_residual_norm)
{
    registry_.inc_counter("mgko_events_total", "batch.iteration");
    registry_.set_gauge("mgko_residual_norm", "batch", max_residual_norm);
    registry_.set_gauge("mgko_active_systems", "batch",
                        static_cast<double>(active_systems));
}

void MetricsLogger::on_batch_solver_stop(
    const batch::BatchLinOp*, size_type num_systems,
    size_type converged_systems, size_type,
    const batch::BatchConvergenceLogger* per_system)
{
    registry_.inc_counter("mgko_events_total", "batch.stop");
    registry_.inc_counter("mgko_batch_systems_total", "batch.stop",
                          static_cast<double>(num_systems));
    registry_.inc_counter("mgko_batch_systems_total", "batch.stop.converged",
                          static_cast<double>(converged_systems));
    if (per_system != nullptr) {
        for (size_type s = 0; s < per_system->num_systems(); ++s) {
            registry_.inc_counter(
                "mgko_batch_systems_total",
                std::string{"batch.stop."} + per_system->stop_reason(s));
        }
    }
}

void MetricsLogger::on_binding_call_completed(const char* name,
                                              double wall_ns,
                                              double gil_wait_ns,
                                              double lookup_ns,
                                              double boxing_ns,
                                              double interpreter_ns)
{
    const std::string tag = std::string{"bind."} + name;
    registry_.inc_counter("mgko_events_total", tag);
    registry_.observe("mgko_latency_ns", tag, wall_ns);
    registry_.inc_counter("mgko_binding_overhead_ns_total", "bind.gil_wait",
                          gil_wait_ns);
    registry_.inc_counter("mgko_binding_overhead_ns_total", "bind.lookup",
                          lookup_ns);
    registry_.inc_counter("mgko_binding_overhead_ns_total", "bind.boxing",
                          boxing_ns);
    registry_.inc_counter("mgko_binding_overhead_ns_total",
                          "bind.interpreter", interpreter_ns);
}


// --- MGKO_METRICS switch ---------------------------------------------------

std::shared_ptr<MetricsLogger> shared_metrics()
{
    static std::shared_ptr<MetricsLogger> metrics = MetricsLogger::create();
    return metrics;
}


std::shared_ptr<MetricsLogger> metrics_from_env()
{
    const char* value = std::getenv("MGKO_METRICS");
    if (value == nullptr || *value == '\0') {
        return nullptr;
    }
    return shared_metrics();
}


void dump_metrics(const MetricsLogger& metrics, const std::string& name)
{
    const char* value = std::getenv("MGKO_METRICS");
    if (value == nullptr || *value == '\0') {
        return;
    }
    const std::string dest{value};
    const auto text = metrics.registry().prometheus_text();
    if (dump_to_stdout(dest)) {
        std::cout << "=== mgko metrics [" << name << "] ===\n" << text;
        return;
    }
    const auto path = resolve_dump_path(dest, "metrics", name, ".txt");
    std::ofstream out{path};
    if (out) {
        out << text;
    } else {
        std::cerr << "mgko: cannot write metrics to '" << path << "'\n";
    }
}


}  // namespace mgko::log
