// SIGPROF sampling profiler: the measured half of the observability stack.
//
// The flight recorder (flight_recorder.hpp) answers "what did the process
// *say* it was doing" — every event is emitted by instrumented code.  The
// sampling profiler answers "where did the CPU time actually go": a POSIX
// profiling timer (ITIMER_PROF) delivers SIGPROF to whichever thread is
// burning CPU, proportionally to its consumption, and the handler snapshots
// that thread's current *frame stack* into a lock-free per-thread sample
// ring.  Aggregating the ring off-line yields flamegraph.pl-compatible
// folded stacks and a pprof-like JSON profile, without any per-sample
// allocation, locking, or formatting on the hot path.
//
// Frames are not raw program-counter values: unwinding and symbolizing a
// native backtrace from inside a signal handler is not async-signal-safe
// (glibc's unwinder can take loader locks), and a stripped static binary
// symbolizes to useless hex anyway.  Instead, instrumented scopes —
// Executor::run around each kernel dispatch, the solve server around each
// request, solver drivers around apply() — push an interned tag id onto a
// thread-local frame stack via SampleFrame, and the handler copies the id
// stack with plain loads.  Interning (string -> id, FNV-1a over a fixed
// open-addressed table, same design as the flight recorder's) happens at
// push time in normal context; the handler and the exporters only ever map
// ids, so symbolization stays off the signal path entirely.
//
// Signal-safety rules the implementation follows (DESIGN.md §18):
//   * the handler touches only: zero-initialized thread-locals, the
//     thread's own frame stack (relaxed atomics ordered by signal fences),
//     and the thread's preallocated sample ring — no malloc, no locks, no
//     formatting, no syscalls;
//   * a thread is sampled only after its first SampleFrame push registered
//     it (tl_registered); an unregistered thread's samples are counted as
//     dropped rather than risking TLS construction inside the handler;
//   * SA_RESTART keeps the storm of SIGPROFs from turning every slow
//     syscall in the serve layer into a spurious EINTR failure, and lets
//     the crash handler's write(2) loop finish a postmortem mid-storm.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace mgko::log {


/// RAII frame marker for the sampling profiler.  Push cost when the
/// profiler is inactive is one relaxed atomic load; when active it is a
/// pointer-keyed cache lookup (string literals make pointer identity a
/// valid cache key) plus two relaxed stores.  Safe to nest up to
/// max_stack_depth; deeper frames are counted but not recorded.
class SampleFrame {
public:
    explicit SampleFrame(const char* name);
    ~SampleFrame();

    SampleFrame(const SampleFrame&) = delete;
    SampleFrame& operator=(const SampleFrame&) = delete;

private:
    bool pushed_{false};
};


/// Starts (or retunes) process-wide sampling at `hz` samples per second of
/// consumed CPU time.  Installs the SIGPROF handler and arms ITIMER_PROF;
/// idempotent, and a second call with a different rate re-arms the timer.
/// `hz` is clamped to [1, 1000].  Returns false (and leaves sampling off)
/// only if the kernel refuses the timer.
bool sampling_start(int hz);

/// Disarms the timer and deactivates sampling.  Collected samples remain
/// readable until sampling_reset().
void sampling_stop();

/// The active sampling rate in Hz, or 0 when sampling is off.
int sampling_hz();

/// True while the SIGPROF timer is armed.
bool sampling_active();

/// Total samples captured / samples dropped (ring not yet registered or
/// overwritten before export) since the last reset.
std::uint64_t sampling_samples();
std::uint64_t sampling_dropped();

/// Clears all captured samples and the counters (sampling stays in
/// whatever state it was).
void sampling_reset();

/// Folded-stack export: one line per distinct stack,
/// "root;frame;frame count\n", directly consumable by flamegraph.pl.
/// Samples on registered threads that carried no frames fold to the
/// single frame "<untracked>".
std::string sampling_folded();

/// pprof-like JSON profile: {"profile": "cpu_samples", "hz": ...,
/// "samples": N, "dropped": D, "stacks": [{"frames": [...],
/// "count": n}, ...]} with stacks sorted by descending count.
std::string sampling_profile_json();

/// Reads MGKO_SAMPLING_HZ once per process: a positive integer starts
/// sampling at that rate (clamped); unset, 0, or garbage leaves sampling
/// off.  Called from the executor factory path next to the other
/// *_from_env attach points.
void sampling_from_env();


}  // namespace mgko::log
