#include "log/trace_context.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>

namespace mgko::log {

namespace {

char hex_digit(std::uint64_t nibble)
{
    return static_cast<char>(nibble < 10 ? '0' + nibble
                                         : 'a' + (nibble - 10));
}

void append_hex64(std::string& out, std::uint64_t value)
{
    for (int shift = 60; shift >= 0; shift -= 4) {
        out += hex_digit((value >> shift) & 0xF);
    }
}

std::mt19937_64& thread_rng()
{
    thread_local std::mt19937_64 rng = [] {
        std::random_device device;
        std::seed_seq seed{
            static_cast<std::uint64_t>(device()),
            static_cast<std::uint64_t>(device()),
            static_cast<std::uint64_t>(
                std::chrono::steady_clock::now().time_since_epoch().count()),
            static_cast<std::uint64_t>(
                reinterpret_cast<std::uintptr_t>(&detail::tl_context))};
        return std::mt19937_64{seed};
    }();
    return rng;
}

std::uint64_t random_nonzero()
{
    std::uint64_t value = 0;
    while (value == 0) {
        value = thread_rng()();
    }
    return value;
}

/// Sample rate is read on every minted context, written rarely; a packed
/// atomic (rate scaled to parts-per-million) keeps reads lock-free.
std::atomic<std::uint32_t>& sample_rate_ppm()
{
    static std::atomic<std::uint32_t> ppm = [] {
        double rate = 1.0;
        if (const char* value = std::getenv("MGKO_TRACE_SAMPLE")) {
            char* end = nullptr;
            const double parsed = std::strtod(value, &end);
            if (end != value) {
                rate = parsed;
            }
        }
        rate = std::clamp(rate, 0.0, 1.0);
        return std::atomic<std::uint32_t>{
            static_cast<std::uint32_t>(rate * 1e6)};
    }();
    return ppm;
}

}  // namespace


std::string TraceContext::trace_id_hex() const
{
    std::string out;
    out.reserve(32);
    append_hex64(out, trace_high);
    append_hex64(out, trace_low);
    return out;
}


std::string TraceContext::span_id_hex() const
{
    std::string out;
    out.reserve(16);
    append_hex64(out, span_id);
    return out;
}


std::string TraceContext::traceparent() const
{
    std::string out;
    out.reserve(55);
    out += "00-";
    out += trace_id_hex();
    out += '-';
    out += span_id_hex();
    out += sampled ? "-01" : "-00";
    return out;
}


// --- RequestCost ---------------------------------------------------------

RequestCost::totals RequestCost::snapshot() const
{
    totals out;
    out.flops = flops_;
    out.bytes = bytes_;
    out.alloc_bytes = alloc_bytes_;
    out.kernels = kernels_;
    for (std::size_t i = 0; i < used_; ++i) {
        // Distinct literals with equal text (e.g. the same kernel compiled
        // into two translation units) merge here.
        auto& slice =
            out.per_kernel[slots_[i].name != nullptr ? slots_[i].name
                                                     : "<null>"];
        slice.count += slots_[i].cost.count;
        slice.wall_ns += slots_[i].cost.wall_ns;
        slice.flops += slots_[i].cost.flops;
        slice.bytes += slots_[i].cost.bytes;
    }
    if (overflow_.count != 0) {
        out.per_kernel["<other>"] = overflow_;
    }
    return out;
}


// --- thread-local propagation ----------------------------------------------

TraceContext make_trace_context()
{
    TraceContext ctx;
    ctx.trace_high = random_nonzero();
    ctx.trace_low = random_nonzero();
    ctx.span_id = random_nonzero();
    const std::uint32_t ppm =
        sample_rate_ppm().load(std::memory_order_relaxed);
    if (ppm >= 1000000u) {
        ctx.sampled = true;
    } else if (ppm == 0u) {
        ctx.sampled = false;
    } else {
        std::uniform_int_distribution<std::uint32_t> dist{0, 999999u};
        ctx.sampled = dist(thread_rng()) < ppm;
    }
    return ctx;
}


std::uint64_t mint_span_id() { return random_nonzero(); }


double trace_sample_rate()
{
    return static_cast<double>(
               sample_rate_ppm().load(std::memory_order_relaxed)) /
           1e6;
}


void set_trace_sample_rate(double rate)
{
    rate = std::clamp(rate, 0.0, 1.0);
    sample_rate_ppm().store(static_cast<std::uint32_t>(rate * 1e6),
                            std::memory_order_relaxed);
}


}  // namespace mgko::log
