// Shared destination resolution for the MGKO_PROFILE / MGKO_TRACE /
// MGKO_METRICS dump switches (and the flight recorder's MGKO_FLIGHT_*
// variables).  Historically a non-"1" value was taken verbatim as a file
// path, which made two benches in one pipeline overwrite each other's
// artifacts; now the value can also name a directory or a path prefix and
// each dump derives a per-run file name from it:
//
//   "-" / "1" / "stdout"   print to stdout (dump_to_stdout)
//   "out/" or existing dir "out/mgko-<kind>-<name>.<ext>"
//   "out/run3"             "out/run3-<name>.<ext>"   (path prefix)
//   "out/run3.json"        "out/run3-<name>.json"    (extension re-applied)
//
// so MGKO_TRACE=/tmp/obs/ keeps fig5a and fig5b traces side by side while
// MGKO_TRACE=trace.json still lands next to the old behaviour, minus the
// collision.
#pragma once

#include <string>

namespace mgko::log {


/// True when `dest` selects stdout ("-", "1", or "stdout").
bool dump_to_stdout(const std::string& dest);

/// Resolves a dump destination to a concrete file path.  `kind` is the
/// artifact family ("profile", "trace", "metrics", "flight"), `name` the
/// per-run label (the bench figure id), `ext` the extension including the
/// dot (".json", ".txt").  See the table above for the rules; `dest` is
/// treated as a directory when it exists as one or ends with '/'.
std::string resolve_dump_path(const std::string& dest, const std::string& kind,
                              const std::string& name, const std::string& ext);


}  // namespace mgko::log
