// Concrete event loggers: ProfilerLogger (per-tag aggregation, JSON
// export) and RecordLogger (verbatim event capture for tests), plus the
// MGKO_PROFILE env switch the benches use to dump profiler JSON next to
// their counters.
//
// ProfilerLogger keys every event under a category-prefixed tag:
//
//   op.<name>       kernel launches (wall time from Executor::run)
//   mem.alloc/free  allocation traffic (bytes = requested sizes)
//   mem.copy        cross/same-space copies (bytes moved)
//   pool.hit/miss   where allocation requests were served
//   pool.trim       cache released to the system (bytes)
//   solver.iteration / solver.stop
//   batch.iteration / batch.stop
//                   batched solver progress (bytes = active/converged
//                   system counts, so throughput per tag is recoverable)
//   bind.<name>     bound calls (wall time per mangled name)
//   bind.gil_wait / bind.lookup / bind.boxing / bind.interpreter
//                   the binding-overhead breakdown (Fig. 5b/5c, at runtime)
//
// so a CG solve attributes its time to op.csr_spmv / op.dense_dot /
// op.dense_add_scaled / op.jacobi_apply, and a binding call shows where
// its overhead went.  Both loggers lock internally: events may arrive
// concurrently from OpenMP worker threads and bound calls.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "log/event_logger.hpp"

namespace mgko::log {


/// Aggregates events into per-tag {count, wall_ns, bytes, flops,
/// work_bytes} summaries with roofline derivations.
class ProfilerLogger final : public EventLogger {
public:
    struct tag_stats {
        size_type count{0};
        double wall_ns{0.0};
        size_type bytes{0};
        /// Work reported by the tag's kernels through the cost-model
        /// profiles (log/work_model.hpp); zero for operations whose
        /// kernels bypass kernels::tick.
        double flops{0.0};
        double work_bytes{0.0};

        /// Achieved GFLOP/s over the tag's accumulated wall time.
        double gflops() const
        {
            return wall_ns > 0.0 ? flops / wall_ns : 0.0;
        }
        /// Achieved GB/s of kernel-reported traffic.
        double gbps() const
        {
            return wall_ns > 0.0 ? work_bytes / wall_ns : 0.0;
        }
        /// Arithmetic intensity [flop/byte]; the roofline x-axis.
        double intensity() const
        {
            return work_bytes > 0.0 ? flops / work_bytes : 0.0;
        }
    };

    static std::shared_ptr<ProfilerLogger> create()
    {
        return std::make_shared<ProfilerLogger>();
    }

    /// Snapshot of the per-tag summaries (ordered for stable output).
    std::map<std::string, tag_stats> summary() const;

    /// Stats for one tag; zeros when the tag was never seen.
    tag_stats stats(const std::string& tag) const;

    /// The summary as a JSON object: {"tags": {tag: {"count": n,
    /// "wall_ns": t, "bytes": b, "flops": f, "work_bytes": w,
    /// "gflops": g, "gbps": s}, ...}} — parseable by config/json.hpp.
    std::string to_json() const;

    void reset();

    // --- EventLogger hooks ----------------------------------------------
    void on_allocation_completed(const Executor* exec, size_type bytes,
                                 const void* ptr) override;
    void on_free_completed(const Executor* exec, const void* ptr) override;
    void on_copy_completed(const Executor* src, const Executor* dst,
                           size_type bytes) override;
    void on_pool_hit(const Executor* exec, size_type bytes) override;
    void on_pool_miss(const Executor* exec, size_type bytes) override;
    void on_pool_trim(const Executor* exec, size_type bytes_released) override;
    void on_operation_launched(const Executor* exec,
                               const char* op_name) override;
    void on_operation_completed(const Executor* exec, const char* op_name,
                                double wall_ns, double flops,
                                double bytes) override;
    void on_iteration_complete(const LinOp* solver, size_type iteration,
                               double residual_norm) override;
    void on_solver_stop(const LinOp* solver, size_type iterations,
                        bool converged, const char* reason) override;
    void on_batch_iteration_complete(const batch::BatchLinOp* solver,
                                     size_type iteration,
                                     size_type active_systems,
                                     double max_residual_norm) override;
    void on_batch_solver_stop(
        const batch::BatchLinOp* solver, size_type num_systems,
        size_type converged_systems, size_type max_iterations,
        const batch::BatchConvergenceLogger* per_system) override;
    void on_binding_call_completed(const char* name, double wall_ns,
                                   double gil_wait_ns, double lookup_ns,
                                   double boxing_ns,
                                   double interpreter_ns) override;

private:
    void record(const std::string& tag, double wall_ns, size_type bytes,
                double flops = 0.0, double work_bytes = 0.0);

    mutable std::mutex mutex_;
    std::map<std::string, tag_stats> stats_;
};


/// Records every event verbatim — the test observer.
class RecordLogger final : public EventLogger {
public:
    struct record {
        std::string kind;  ///< "allocation", "pool_hit", "operation", ...
        std::string name;  ///< op/binding tag when the event carries one
        size_type bytes{0};
        double value{0.0};  ///< wall_ns / residual norm, event-dependent
    };

    static std::shared_ptr<RecordLogger> create()
    {
        return std::make_shared<RecordLogger>();
    }

    std::vector<record> records() const;
    size_type count(const std::string& kind) const;
    void reset();

    // --- EventLogger hooks ----------------------------------------------
    void on_allocation_completed(const Executor* exec, size_type bytes,
                                 const void* ptr) override;
    void on_free_completed(const Executor* exec, const void* ptr) override;
    void on_copy_completed(const Executor* src, const Executor* dst,
                           size_type bytes) override;
    void on_pool_hit(const Executor* exec, size_type bytes) override;
    void on_pool_miss(const Executor* exec, size_type bytes) override;
    void on_pool_trim(const Executor* exec, size_type bytes_released) override;
    void on_operation_launched(const Executor* exec,
                               const char* op_name) override;
    void on_operation_completed(const Executor* exec, const char* op_name,
                                double wall_ns, double flops,
                                double bytes) override;
    void on_iteration_complete(const LinOp* solver, size_type iteration,
                               double residual_norm) override;
    void on_solver_stop(const LinOp* solver, size_type iterations,
                        bool converged, const char* reason) override;
    void on_batch_iteration_complete(const batch::BatchLinOp* solver,
                                     size_type iteration,
                                     size_type active_systems,
                                     double max_residual_norm) override;
    void on_batch_solver_stop(
        const batch::BatchLinOp* solver, size_type num_systems,
        size_type converged_systems, size_type max_iterations,
        const batch::BatchConvergenceLogger* per_system) override;
    void on_binding_call_completed(const char* name, double wall_ns,
                                   double gil_wait_ns, double lookup_ns,
                                   double boxing_ns,
                                   double interpreter_ns) override;

private:
    void push(record r);

    mutable std::mutex mutex_;
    std::vector<record> records_;
};


/// The benches' opt-in profiling switch: returns a fresh ProfilerLogger
/// when the MGKO_PROFILE environment variable is set (to anything
/// non-empty), nullptr otherwise.  The caller attaches it to executors
/// and/or the binding layer and hands it to dump_profile() at the end.
std::shared_ptr<ProfilerLogger> profiler_from_env();

/// Writes `profiler`'s JSON where MGKO_PROFILE points: "-", "1" or
/// "stdout" print it to stdout under a "=== mgko profile [<name>] ==="
/// banner; any other value is used as a file path (overwritten).
void dump_profile(const ProfilerLogger& profiler, const std::string& name);


}  // namespace mgko::log
