#include "log/dump_path.hpp"

#include <sys/stat.h>

namespace mgko::log {

namespace {

bool is_directory(const std::string& path)
{
    struct stat info{};
    return ::stat(path.c_str(), &info) == 0 && S_ISDIR(info.st_mode);
}

bool ends_with(const std::string& text, const std::string& suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

}  // namespace


bool dump_to_stdout(const std::string& dest)
{
    return dest == "-" || dest == "1" || dest == "stdout";
}


std::string resolve_dump_path(const std::string& dest, const std::string& kind,
                              const std::string& name, const std::string& ext)
{
    if (dest.empty()) {
        return "mgko-" + kind + "-" + name + ext;
    }
    if (ends_with(dest, "/") || is_directory(dest)) {
        std::string dir = dest;
        if (!ends_with(dir, "/")) {
            dir += '/';
        }
        return dir + "mgko-" + kind + "-" + name + ext;
    }
    std::string prefix = dest;
    if (ends_with(prefix, ext)) {
        prefix.resize(prefix.size() - ext.size());
    }
    return prefix + "-" + name + ext;
}


}  // namespace mgko::log
