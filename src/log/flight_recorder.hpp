// Flight recorder — the always-on third observability tier.
//
// Where ProfilerLogger aggregates and TraceLogger keeps an unbounded
// timeline (both opt-in, both taking a lock per event), FlightRecorder is
// built to stay attached in production: every event becomes one 40-byte
// binary record in a lock-free per-thread ring buffer, so steady state
// costs a few relaxed atomic stores and never allocates, locks, or copies
// a string.  The ring keeps the last `capacity_per_thread` events per
// thread — a black box, not an archive.
//
//   * Tag interning: event names (operation tags, span names, binding
//     names) are interned once into a fixed open-addressing table of
//     `std::atomic<const char*>`; records carry a 16-bit id.  Lookups of
//     already-interned tags are lock-free; the first occurrence of a tag
//     takes a mutex and copies the string (emitters pass string literals
//     or long-lived cache entries, but the recorder does not rely on it).
//   * Snapshots: snapshot() reads the rings concurrently with writers
//     using an over-read + sequence-window discard, so a scrape never
//     stops the instrumented threads.  to_chrome_trace_json() converts a
//     snapshot to the same Chrome Trace Event JSON shape TraceLogger
//     emits (operations and binding calls as complete 'X' slices, spans
//     as 'B'/'E' pairs repaired to stay well nested across wraparound,
//     everything else as 'i' instants); to_profile_json() aggregates to
//     the ProfilerLogger {"tags": ...} schema.
//   * Crash hook: install_crash_handler() registers SIGSEGV/SIGABRT and
//     std::terminate handlers that dump the last events as text through
//     write_postmortem(), which is async-signal-safe (write(2) only, no
//     allocation, no locks, integer formatting on the stack).
//
// The executor factories and the binding layer attach the process-wide
// instance behind shared_flight_recorder() unconditionally (opt out with
// MGKO_FLIGHT_RECORDER=0); bench_micro_overhead measures the cost of
// leaving it on and CI fails if it exceeds the 5% budget (DESIGN.md §13).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "log/event_logger.hpp"

namespace mgko::log {


class FlightRecorder final : public EventLogger {
public:
    /// Ring slots per thread; the black box keeps this many trailing
    /// events per thread (rounded up to a power of two).
    static constexpr size_type default_capacity = 4096;
    /// Concurrently live instrumented threads (slots are recycled when a
    /// thread exits); events from threads beyond this are counted in
    /// dropped() instead of recorded.
    static constexpr size_type max_threads = 128;
    /// Distinct tag strings; later tags fall back to "<overflow>".
    static constexpr size_type tag_capacity = 512;
    /// tag_id of records whose name did not fit the intern table.
    static constexpr std::uint16_t overflow_tag = 0xFFFF;

    enum class event_kind : std::uint8_t {
        operation = 0,   // a = wall_ns, b = flops
        alloc,           // a = bytes
        free_mem,        //
        copy,            // a = bytes
        pool_hit,        // a = bytes
        pool_miss,       // a = bytes
        pool_trim,       // a = bytes released
        span_begin,      //
        span_end,        //
        iteration,       // a = iteration, b = residual_norm
        solver_stop,     // a = iterations, b = converged (0/1)
        batch_iteration, // a = iteration, b = max_residual_norm
        batch_stop,      // a = converged_systems, b = num_systems
        binding,         // a = wall_ns, b = gil_wait_ns
    };

    /// Decoded ring entry, oldest first within a thread.
    struct record {
        std::uint64_t seq;    // per-thread sequence number
        std::uint64_t ts_ns;  // steady-clock ns since recorder construction
        event_kind kind;
        std::uint16_t tag_id;
        const char* tag;  // interned; lives as long as the recorder
        double a;
        double b;
        int tid;
        /// Low 64 bits of the sampled request context active when the
        /// event was emitted; 0 for unattributed events (see
        /// log/trace_context.hpp).
        std::uint64_t trace;
    };

    explicit FlightRecorder(size_type capacity_per_thread = default_capacity);

    static std::shared_ptr<FlightRecorder> create(
        size_type capacity_per_thread = default_capacity)
    {
        return std::make_shared<FlightRecorder>(capacity_per_thread);
    }

    size_type capacity_per_thread() const { return capacity_; }

    /// Total events ever written (monotone; includes overwritten ones).
    std::uint64_t recorded() const;
    /// Events lost: overwritten in a ring, beyond max_threads, or (rare)
    /// discarded by a snapshot as possibly torn.
    std::uint64_t dropped() const;

    /// Point-in-time copy of every ring, safe concurrently with writers.
    /// Records come grouped per thread in sequence order.  Guaranteed to
    /// hold at least the capacity-1 newest records of a quiescent thread;
    /// entries a writer may have been overwriting mid-read are discarded
    /// (and counted in dropped()).
    std::vector<record> snapshot() const;

    /// Chrome Trace Event JSON of snapshot() — same document shape as
    /// TraceLogger::to_json(), loadable in Perfetto / chrome://tracing,
    /// with B/E span events repaired to stay well nested even when the
    /// ring wrapped mid-span.  A nonzero `trace_filter` keeps only the
    /// records stamped with that trace word (the low 64 bits of a request
    /// trace id), which is what /trace.json?trace_id=<id> serves; events
    /// with a trace word carry it as a "trace_id" arg either way.
    std::string to_chrome_trace_json(std::uint64_t trace_filter = 0) const;

    /// snapshot() aggregated per tag to ProfilerLogger's JSON schema:
    /// {"tags": {tag: {"count": n, "wall_ns": w}}}.
    std::string to_profile_json() const;

    /// Async-signal-safe text dump of the rings to an open descriptor:
    /// header lines ("# ..."), then one "tid seq ts_ns kind tag a b
    /// trace" line per record (trace in decimal, 0 when unattributed).
    /// Uses only write(2) and stack buffers.
    void write_postmortem(int fd, const char* reason) const;

    /// Interns `name` and returns its id (or overflow_tag).  Exposed for
    /// tests; emission paths call it internally.
    std::uint16_t intern(const char* name);
    /// The interned string for `id`; "<overflow>"/"<unknown>" sentinels
    /// for overflow_tag and unused slots.
    const char* tag_name(std::uint16_t id) const;

    /// Drops all recorded events (tags stay interned).  Not synchronized
    /// with writers: call only while no instrumented work is running
    /// (tests, between bench phases).
    void reset();

    // --- EventLogger hooks -------------------------------------------------
    void on_allocation_completed(const Executor* exec, size_type bytes,
                                 const void* ptr) override;
    void on_free_completed(const Executor* exec, const void* ptr) override;
    void on_copy_completed(const Executor* src, const Executor* dst,
                           size_type bytes) override;
    void on_pool_hit(const Executor* exec, size_type bytes) override;
    void on_pool_miss(const Executor* exec, size_type bytes) override;
    void on_pool_trim(const Executor* exec, size_type bytes_released) override;
    void on_operation_completed(const Executor* exec, const char* op_name,
                                double wall_ns, double flops,
                                double bytes) override;
    void on_span_begin(const char* name) override;
    void on_span_end(const char* name) override;
    void on_iteration_complete(const LinOp* solver, size_type iteration,
                               double residual_norm) override;
    void on_solver_stop(const LinOp* solver, size_type iterations,
                        bool converged, const char* reason) override;
    void on_batch_iteration_complete(const batch::BatchLinOp* solver,
                                     size_type iteration,
                                     size_type active_systems,
                                     double max_residual_norm) override;
    void on_batch_solver_stop(
        const batch::BatchLinOp* solver, size_type num_systems,
        size_type converged_systems, size_type max_iterations,
        const batch::BatchConvergenceLogger* per_system) override;
    void on_binding_call_completed(const char* name, double wall_ns,
                                   double gil_wait_ns, double lookup_ns,
                                   double boxing_ns,
                                   double interpreter_ns) override;

private:
    // One single-writer ring: 5 atomic 64-bit words per slot
    // (ts | kind+tag | a | b | trace), head counts records ever written.
    // The writer publishes with a release store of head; readers re-check
    // head after copying to discard slots the writer may have reused.
    struct ring {
        static constexpr std::uint64_t words_per_slot = 5;
        explicit ring(size_type capacity)
            : capacity{static_cast<std::uint64_t>(capacity)},
              words{new std::atomic<std::uint64_t>[words_per_slot * capacity]{}}
        {}
        const std::uint64_t capacity;
        std::atomic<std::uint64_t> head{0};
        std::unique_ptr<std::atomic<std::uint64_t>[]> words;
    };

    void emit(event_kind kind, const char* tag, double a, double b);
    ring* thread_ring();
    template <typename Visitor>
    void visit_records(Visitor&& visit) const;

    size_type capacity_;
    std::uint64_t origin_ns_;
    std::array<std::atomic<ring*>, max_threads> rings_{};
    std::array<std::atomic<const char*>, tag_capacity> tags_{};
    mutable std::mutex ring_mutex_;    // guards owned_rings_
    mutable std::mutex intern_mutex_;  // guards first-insert of a tag
    std::vector<std::unique_ptr<ring>> owned_rings_;
    std::vector<std::unique_ptr<char[]>> tag_storage_;
    std::atomic<std::uint64_t> overflow_drops_{0};
    mutable std::atomic<std::uint64_t> torn_drops_{0};
};


/// The process-wide always-on recorder the executor factories and the
/// binding layer attach (capacity overridable once via
/// MGKO_FLIGHT_CAPACITY).
std::shared_ptr<FlightRecorder> shared_flight_recorder();

/// shared_flight_recorder(), or nullptr when the user opted out with
/// MGKO_FLIGHT_RECORDER=0/off.
std::shared_ptr<FlightRecorder> flight_recorder_from_env();

/// Registers SIGSEGV/SIGABRT and std::terminate handlers that write the
/// shared recorder's black box to `path` before the process dies, then
/// re-raise so exit status and core dumps are unchanged.  Idempotent;
/// calling again just retargets the output path.
void install_crash_handler(const std::string& path);

/// install_crash_handler($MGKO_FLIGHT_POSTMORTEM) when that variable is a
/// non-empty path; runs at most once per process.
void install_crash_handler_from_env();

/// True once install_crash_handler() has run.
bool crash_handler_installed();


}  // namespace mgko::log
