// Metrics registry: the cumulative counterpart to the trace tier.  Where
// TraceLogger keeps the full timeline, MetricsRegistry keeps running
// counters, gauges, and log2-bucketed latency histograms keyed by the
// existing tag scheme (op.<name>, mem.*, pool.*, solver.*, batch.*,
// bind.*), cheap enough to stay attached for a process lifetime and
// scrapeable at any point.
//
// Exporters:
//   * prometheus_text() — Prometheus text exposition format, tags carried
//     as a `tag` label (mgko_events_total{tag="op.csr_spmv"} 42),
//   * to_json()         — the same data as a JSON object parseable by
//     config/json.hpp.
//
// MetricsLogger adapts the EventLogger hook stream onto a registry; the
// process-wide instance behind shared_metrics() is what the MGKO_METRICS
// environment switch auto-attaches and the `metrics_text` / `metrics_json`
// bindings export.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/types.hpp"
#include "log/event_logger.hpp"

namespace mgko::log {


/// Thread-safe store of counters, gauges, and log2 histograms, each keyed
/// (metric name, tag).  Metric names must already be exposition-safe
/// ([a-zA-Z_][a-zA-Z0-9_]*); tags are free-form label values.
class MetricsRegistry {
public:
    /// Log2-bucketed histogram: bucket i counts observations with
    /// value <= 2^i, the last bucket is +Inf.  Covers 1 ns .. ~9 minutes
    /// when fed nanosecond latencies.
    static constexpr size_type num_buckets = 40;

    /// The last sampled request context observed into a bucket — the
    /// metrics→trace navigation hook.  prometheus_text() emits these as
    /// OpenMetrics exemplars ("# {trace_id=\"...\"} value") so a p99
    /// spike in a latency histogram resolves to a concrete trace id,
    /// which /trace.json?trace_id= turns into that request's spans.
    struct exemplar {
        std::uint64_t trace_high{0};
        std::uint64_t trace_low{0};
        double value{0.0};

        bool valid() const { return (trace_high | trace_low) != 0; }
        /// The 32-lowercase-hex trace id.
        std::string trace_id_hex() const;
    };

    struct histogram {
        std::array<std::uint64_t, num_buckets> buckets{};
        std::array<exemplar, num_buckets> exemplars{};
        std::uint64_t count{0};
        double sum{0.0};

        /// Quantile estimate from the log2 buckets: finds the bucket the
        /// rank q*count falls into and interpolates linearly between its
        /// bounds, so the estimate is exact to within one bucket (a factor
        /// of 2 in value).  Returns 0 for an empty histogram.  Exposed in
        /// both exporters as p50/p95/p99.
        double quantile(double q) const;
    };

    void inc_counter(const std::string& name, const std::string& tag,
                     double delta = 1.0);
    void set_gauge(const std::string& name, const std::string& tag,
                   double value);
    void add_gauge(const std::string& name, const std::string& tag,
                   double delta);
    /// Records `value` (a latency in ns, typically) into the histogram.
    /// When the calling thread has a sampled trace context active, the
    /// bucket's exemplar is updated to that context's trace id (under the
    /// registry mutex, so a concurrent scrape or reset never sees a torn
    /// id).
    void observe(const std::string& name, const std::string& tag,
                 double value);

    /// Registers a histogram series before its first observation, so
    /// scrapes show the zeroed _count/_sum and the full bucket ladder
    /// from the start (dashboards and recording rules then see a stable
    /// series set instead of one that appears on first traffic).
    /// Idempotent; an existing histogram is left untouched.
    void declare_histogram(const std::string& name, const std::string& tag);

    /// Current counter value; 0 when never incremented.
    double counter_value(const std::string& name,
                         const std::string& tag) const;
    /// Current gauge value; 0 when never set.
    double gauge_value(const std::string& name, const std::string& tag) const;
    /// Snapshot of one histogram; zeroed when never observed.
    histogram histogram_snapshot(const std::string& name,
                                 const std::string& tag) const;

    /// Prometheus text exposition format: one # TYPE line per metric
    /// family, then one sample per tag (histograms expand into _bucket/
    /// _sum/_count series with cumulative `le` labels; buckets that hold
    /// an exemplar append it in OpenMetrics form).
    std::string prometheus_text() const;

    /// The same data as JSON: {"counters": {name: {tag: v}}, "gauges":
    /// {...}, "histograms": {name: {tag: {"count": n, "sum": s,
    /// "buckets": {"<le>": c, ...}}}}} — parseable by config/json.hpp.
    std::string to_json() const;

    void reset();

private:
    using tag_map = std::map<std::string, double>;

    mutable std::mutex mutex_;
    std::map<std::string, tag_map> counters_;
    std::map<std::string, tag_map> gauges_;
    std::map<std::string, std::map<std::string, histogram>> histograms_;
};


/// EventLogger that feeds a MetricsRegistry:
///
///   mgko_events_total{tag}      one count per event, every emission site
///   mgko_bytes_total{tag}       bytes moved/allocated/pooled per tag
///   mgko_flops_total{tag}       kernel-reported flops per op.<name>
///   mgko_work_bytes_total{tag}  kernel-reported traffic per op.<name>
///   mgko_latency_ns{tag}        histogram of op.<name> / bind.<name> wall
///                               times and the binding breakdown channels
///   mgko_residual_norm{tag}     gauge: latest solver/batch residual
///   mgko_open_spans{tag}        gauge: currently open spans per name
class MetricsLogger final : public EventLogger {
public:
    static std::shared_ptr<MetricsLogger> create()
    {
        return std::make_shared<MetricsLogger>();
    }

    MetricsRegistry& registry() { return registry_; }
    const MetricsRegistry& registry() const { return registry_; }

    // --- EventLogger hooks ----------------------------------------------
    void on_allocation_completed(const Executor* exec, size_type bytes,
                                 const void* ptr) override;
    void on_free_completed(const Executor* exec, const void* ptr) override;
    void on_copy_completed(const Executor* src, const Executor* dst,
                           size_type bytes) override;
    void on_pool_hit(const Executor* exec, size_type bytes) override;
    void on_pool_miss(const Executor* exec, size_type bytes) override;
    void on_pool_trim(const Executor* exec, size_type bytes_released) override;
    void on_operation_completed(const Executor* exec, const char* op_name,
                                double wall_ns, double flops,
                                double bytes) override;
    void on_span_begin(const char* name) override;
    void on_span_end(const char* name) override;
    void on_iteration_complete(const LinOp* solver, size_type iteration,
                               double residual_norm) override;
    void on_solver_stop(const LinOp* solver, size_type iterations,
                        bool converged, const char* reason) override;
    void on_batch_iteration_complete(const batch::BatchLinOp* solver,
                                     size_type iteration,
                                     size_type active_systems,
                                     double max_residual_norm) override;
    void on_batch_solver_stop(
        const batch::BatchLinOp* solver, size_type num_systems,
        size_type converged_systems, size_type max_iterations,
        const batch::BatchConvergenceLogger* per_system) override;
    void on_binding_call_completed(const char* name, double wall_ns,
                                   double gil_wait_ns, double lookup_ns,
                                   double boxing_ns,
                                   double interpreter_ns) override;

private:
    MetricsRegistry registry_;
};


/// The process-wide metrics logger the MGKO_METRICS switch attaches; also
/// what the `metrics_text` / `metrics_json` bindings export.
std::shared_ptr<MetricsLogger> shared_metrics();

/// Returns shared_metrics() when the MGKO_METRICS environment variable is
/// set (to anything non-empty), nullptr otherwise.  Executor factories
/// attach the result to every new executor.
std::shared_ptr<MetricsLogger> metrics_from_env();

/// Writes the registry's Prometheus text where MGKO_METRICS points: "-",
/// "1" or "stdout" print it under a banner; a directory or path prefix
/// derives a per-run file name from `name` (see log/dump_path.hpp).
void dump_metrics(const MetricsLogger& metrics, const std::string& name);


}  // namespace mgko::log
