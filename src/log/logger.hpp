// Solver convergence logging.
//
// pyGinkgo's `solver.apply(b, x)` returns "a logger, which provides
// diagnostic information about convergence and iteration progress, and the
// solution vector" (paper §3.5).  ConvergenceLogger is that object.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace mgko::log {


class ConvergenceLogger {
public:
    void reset()
    {
        residual_history_.clear();
        iterations_ = 0;
        converged_ = false;
        stop_reason_.clear();
    }

    void log_iteration(size_type iteration, double residual_norm)
    {
        iterations_ = iteration;
        residual_history_.push_back(residual_norm);
    }

    void log_stop(size_type iteration, bool converged,
                  const std::string& reason)
    {
        iterations_ = iteration;
        converged_ = converged;
        stop_reason_ = reason;
    }

    size_type num_iterations() const { return iterations_; }
    bool has_converged() const { return converged_; }
    const std::string& stop_reason() const { return stop_reason_; }
    /// Residual norm after each iteration (estimates for GMRES inner
    /// iterations, true norms elsewhere).
    const std::vector<double>& residual_history() const
    {
        return residual_history_;
    }
    double final_residual_norm() const
    {
        return residual_history_.empty() ? 0.0 : residual_history_.back();
    }

private:
    std::vector<double> residual_history_;
    size_type iterations_{0};
    bool converged_{false};
    std::string stop_reason_;
};


}  // namespace mgko::log
