// Solver convergence logging.
//
// pyGinkgo's `solver.apply(b, x)` returns "a logger, which provides
// diagnostic information about convergence and iteration progress, and the
// solution vector" (paper §3.5).  ConvergenceLogger is that object.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace mgko::log {


class ConvergenceLogger {
public:
    void reset()
    {
        residual_history_.clear();
        iterations_ = 0;
        converged_ = false;
        stop_reason_.clear();
    }

    /// Records the residual after `iteration` iterations.  Solvers log
    /// iteration 0 with the initial residual and exactly one entry per
    /// subsequent iteration, so residual_history().size() is always
    /// num_iterations() + 1 (asserted in tests/test_solvers.cpp).
    void log_iteration(size_type iteration, double residual_norm)
    {
        iterations_ = iteration;
        residual_history_.push_back(residual_norm);
    }

    /// Replaces the most recent history entry — GMRES logs the Givens
    /// residual estimate per inner iteration and overwrites the last one
    /// with the true residual norm it computes at the restart boundary.
    /// No-op on an empty history.
    void update_last(double residual_norm)
    {
        if (!residual_history_.empty()) {
            residual_history_.back() = residual_norm;
        }
    }

    void log_stop(size_type iteration, bool converged,
                  const std::string& reason)
    {
        iterations_ = iteration;
        converged_ = converged;
        stop_reason_ = reason;
    }

    size_type num_iterations() const { return iterations_; }
    bool has_converged() const { return converged_; }
    const std::string& stop_reason() const { return stop_reason_; }
    /// Residual norm after each iteration: entry 0 is the initial residual
    /// and entry k the residual after iteration k (estimates for GMRES
    /// inner iterations, replaced by true norms at restart boundaries).
    const std::vector<double>& residual_history() const
    {
        return residual_history_;
    }
    /// The last recorded residual norm; quiet NaN when nothing was logged
    /// (a 0.0 sentinel would be indistinguishable from exact convergence).
    double final_residual_norm() const
    {
        return residual_history_.empty()
                   ? std::numeric_limits<double>::quiet_NaN()
                   : residual_history_.back();
    }

private:
    std::vector<double> residual_history_;
    size_type iterations_{0};
    bool converged_{false};
    std::string stop_reason_;
};


}  // namespace mgko::log
