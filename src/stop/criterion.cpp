#include "stop/criterion.hpp"

#include <algorithm>
#include <cstdio>

#include "core/exception.hpp"

namespace mgko::stop {

namespace {

class IterationCriterion final : public Criterion {
public:
    explicit IterationCriterion(size_type max_iterations)
        : max_iterations_{max_iterations}
    {}

    bool is_satisfied(size_type iteration, double) override
    {
        return iteration >= max_iterations_;
    }

    std::string reason() const override
    {
        return "reached maximum of " + std::to_string(max_iterations_) +
               " iterations";
    }

    bool indicates_convergence() const override { return false; }

private:
    size_type max_iterations_;
};


class ResidualNormCriterion final : public Criterion {
public:
    ResidualNormCriterion(double threshold, double factor, baseline mode)
        : threshold_{threshold}, factor_{factor}, mode_{mode}
    {}

    bool is_satisfied(size_type, double residual_norm) override
    {
        return residual_norm <= threshold_;
    }

    std::string reason() const override
    {
        const char* base = mode_ == baseline::rhs_norm ? "||b||"
                           : mode_ == baseline::initial_resnorm
                               ? "||r0||"
                               : "1";
        char factor[32];
        std::snprintf(factor, sizeof(factor), "%.2e", factor_);
        return std::string{"residual norm below "} + factor + " * " + base;
    }

    bool indicates_convergence() const override { return true; }

private:
    double threshold_;
    double factor_;
    baseline mode_;
};


class CombinedCriterion final : public Criterion {
public:
    explicit CombinedCriterion(std::vector<std::unique_ptr<Criterion>> subs)
        : subs_{std::move(subs)}
    {}

    bool is_satisfied(size_type iteration, double residual_norm) override
    {
        for (auto& sub : subs_) {
            if (sub->is_satisfied(iteration, residual_norm)) {
                fired_ = sub.get();
                return true;
            }
        }
        return false;
    }

    std::string reason() const override
    {
        return fired_ != nullptr ? fired_->reason() : "not stopped";
    }

    bool indicates_convergence() const override
    {
        return fired_ != nullptr && fired_->indicates_convergence();
    }

private:
    std::vector<std::unique_ptr<Criterion>> subs_;
    const Criterion* fired_{nullptr};
};

}  // namespace


Iteration::Iteration(size_type max_iterations)
    : max_iterations_{max_iterations}
{
    MGKO_ENSURE(max_iterations >= 0, "max_iterations must be >= 0");
}

std::unique_ptr<Criterion> Iteration::create(double, double) const
{
    return std::make_unique<IterationCriterion>(max_iterations_);
}


ResidualNorm::ResidualNorm(double reduction_factor, baseline mode)
    : reduction_factor_{reduction_factor}, mode_{mode}
{
    MGKO_ENSURE(reduction_factor > 0.0, "reduction factor must be positive");
}

std::unique_ptr<Criterion> ResidualNorm::create(double rhs_norm,
                                                double initial_resnorm) const
{
    double base = 1.0;
    switch (mode_) {
    case baseline::rhs_norm:
        base = rhs_norm;
        break;
    case baseline::initial_resnorm:
        base = initial_resnorm;
        break;
    case baseline::absolute:
        base = 1.0;
        break;
    }
    return std::make_unique<ResidualNormCriterion>(reduction_factor_ * base,
                                                   reduction_factor_, mode_);
}


Combined::Combined(
    std::vector<std::shared_ptr<const CriterionFactory>> factories)
    : factories_{std::move(factories)}
{
    MGKO_ENSURE(!factories_.empty(), "Combined requires >= 1 criterion");
}

std::unique_ptr<Criterion> Combined::create(double rhs_norm,
                                            double initial_resnorm) const
{
    std::vector<std::unique_ptr<Criterion>> subs;
    subs.reserve(factories_.size());
    for (const auto& f : factories_) {
        subs.push_back(f->create(rhs_norm, initial_resnorm));
    }
    return std::make_unique<CombinedCriterion>(std::move(subs));
}


std::shared_ptr<const CriterionFactory> iteration(size_type max_iterations)
{
    return std::make_shared<Iteration>(max_iterations);
}

std::shared_ptr<const CriterionFactory> residual_norm(double reduction_factor,
                                                      baseline mode)
{
    return std::make_shared<ResidualNorm>(reduction_factor, mode);
}

std::shared_ptr<const CriterionFactory> combine(
    std::vector<std::shared_ptr<const CriterionFactory>> factories)
{
    return std::make_shared<Combined>(std::move(factories));
}


}  // namespace mgko::stop
