// Stopping criteria, modeled on gko::stop.
//
// The paper's Listing 1 configures GMRES to "stop based on a maximum of
// 1000 iterations or a relative residual reduction factor of 1e-6" — i.e.
// a Combined(Iteration, ResidualNorm) criterion.  A CriterionFactory is
// attached to a solver factory; at the start of each solve it is bound to
// the concrete right-hand side (its norm) and initial residual.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace mgko::stop {


/// Reference value against which ResidualNorm reductions are measured.
enum class baseline { rhs_norm, initial_resnorm, absolute };


/// A criterion bound to one running solve.
class Criterion {
public:
    virtual ~Criterion() = default;

    /// True when the solver should stop.  `residual_norm` may be an
    /// estimate (GMRES) or the true norm, in double precision.
    virtual bool is_satisfied(size_type iteration, double residual_norm) = 0;

    /// Human-readable reason; valid after is_satisfied returned true.
    virtual std::string reason() const = 0;

    /// True when the criterion that fired indicates convergence (as opposed
    /// to an iteration/time budget running out).
    virtual bool indicates_convergence() const = 0;
};


/// Creates per-solve Criterion instances.
class CriterionFactory {
public:
    virtual ~CriterionFactory() = default;

    virtual std::unique_ptr<Criterion> create(double rhs_norm,
                                              double initial_resnorm) const = 0;
};


/// Stops after a fixed number of iterations.
class Iteration : public CriterionFactory {
public:
    explicit Iteration(size_type max_iterations);
    std::unique_ptr<Criterion> create(double rhs_norm,
                                      double initial_resnorm) const override;
    size_type max_iterations() const { return max_iterations_; }

private:
    size_type max_iterations_;
};


/// Stops when the residual norm drops below
/// `reduction_factor * baseline_value` (or below the absolute factor).
class ResidualNorm : public CriterionFactory {
public:
    explicit ResidualNorm(double reduction_factor,
                          baseline mode = baseline::rhs_norm);
    std::unique_ptr<Criterion> create(double rhs_norm,
                                      double initial_resnorm) const override;
    double reduction_factor() const { return reduction_factor_; }
    baseline mode() const { return mode_; }

private:
    double reduction_factor_;
    baseline mode_;
};


/// Fires when any sub-criterion fires.
class Combined : public CriterionFactory {
public:
    explicit Combined(
        std::vector<std::shared_ptr<const CriterionFactory>> factories);
    std::unique_ptr<Criterion> create(double rhs_norm,
                                      double initial_resnorm) const override;

private:
    std::vector<std::shared_ptr<const CriterionFactory>> factories_;
};


/// Convenience constructors used by solver parameter lists.
std::shared_ptr<const CriterionFactory> iteration(size_type max_iterations);
std::shared_ptr<const CriterionFactory> residual_norm(
    double reduction_factor, baseline mode = baseline::rhs_norm);
std::shared_ptr<const CriterionFactory> combine(
    std::vector<std::shared_ptr<const CriterionFactory>> factories);


}  // namespace mgko::stop
