// Compressed Sparse Row matrix, modeled on gko::matrix::Csr.
//
// CSR is the primary format of the paper's evaluation.  Each backend runs a
// different SpMV kernel, mirroring Ginkgo's strategy system:
//   reference: textbook serial row loop
//   omp:       nnz-balanced row partition across threads (or classical
//              equal-rows blocks when the strategy says so)
//   cuda(sim): load-balanced nnz split (the Ginkgo "load-balancing SpMV"
//              the paper cites)
//   hip(sim):  wavefront-chunked variant (64-row chunks)
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "core/array.hpp"
#include "core/lin_op.hpp"
#include "core/matrix_data.hpp"
#include "core/types.hpp"
#include "sim/cost_model.hpp"

namespace mgko {


template <typename ValueType>
class Dense;
template <typename ValueType, typename IndexType>
class Coo;
template <typename ValueType, typename IndexType>
class Ell;
template <typename ValueType, typename IndexType>
class SellCs;


template <typename ValueType = double, typename IndexType = int32>
class Csr : public LinOp {
public:
    using value_type = ValueType;
    using index_type = IndexType;

    /// SpMV strategy selector (paper: Ginkgo picks load-balanced kernels;
    /// the ablation bench compares against the classical row split).
    enum class strategy { automatic, classical, load_balanced };

    static std::unique_ptr<Csr> create(std::shared_ptr<const Executor> exec,
                                       dim2 size = {}, size_type nnz = 0);

    static std::unique_ptr<Csr> create_from_data(
        std::shared_ptr<const Executor> exec,
        const matrix_data<ValueType, IndexType>& data);

    /// Fills from staging data (copies, sorts, merges duplicates).
    void read(const matrix_data<ValueType, IndexType>& data);
    matrix_data<ValueType, IndexType> to_data() const;

    ValueType* get_values() { return values_.get_data(); }
    const ValueType* get_const_values() const
    {
        return values_.get_const_data();
    }
    IndexType* get_col_idxs() { return col_idxs_.get_data(); }
    const IndexType* get_const_col_idxs() const
    {
        return col_idxs_.get_const_data();
    }
    IndexType* get_row_ptrs() { return row_ptrs_.get_data(); }
    const IndexType* get_const_row_ptrs() const
    {
        return row_ptrs_.get_const_data();
    }

    size_type get_num_stored_elements() const { return values_.size(); }

    void set_strategy(strategy s) { strategy_ = s; }
    strategy get_strategy() const { return strategy_; }

    std::unique_ptr<Csr> transpose() const;
    std::unique_ptr<Csr> clone_to(std::shared_ptr<const Executor> exec) const;
    std::unique_ptr<Csr> clone() const { return clone_to(get_executor()); }

    /// Sorts the column indices within each row (required by the ILU/IC
    /// factorizations and the triangular solvers).
    void sort_by_column_index();
    bool is_sorted_by_column_index() const;

    /// Extracts the main diagonal into an n x 1 Dense (missing entries as
    /// zero), used by the Jacobi preconditioner.
    std::unique_ptr<Dense<ValueType>> extract_diagonal() const;

    void convert_to(Dense<ValueType>* result) const;
    void convert_to(Coo<ValueType, IndexType>* result) const;
    void convert_to(Ell<ValueType, IndexType>* result) const;
    void convert_to(SellCs<ValueType, IndexType>* result) const;

    /// Structural statistics feeding the SimClock cost profile; cached and
    /// invalidated when the structure changes.
    sim::kernel_profile spmv_profile(sim::spmv_strategy s,
                                     const sim::MachineModel& m,
                                     size_type vec_cols, bool advanced) const;

protected:
    Csr(std::shared_ptr<const Executor> exec, dim2 size, size_type nnz);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

    void invalidate_profile_cache() const
    {
        miss_rate_ = -1.0;
        imbalance_cache_.clear();
    }

private:
    template <typename V2, typename I2>
    friend class Csr;

    array<ValueType> values_;
    array<IndexType> col_idxs_;
    array<IndexType> row_ptrs_;
    strategy strategy_{strategy::automatic};

    mutable double miss_rate_{-1.0};
    mutable std::map<std::pair<int, int>, double> imbalance_cache_;
};


}  // namespace mgko
