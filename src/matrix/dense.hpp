// Row-major dense matrix / multi-vector, modeled on gko::matrix::Dense.
//
// Dense serves as the vector type of the framework: right-hand sides,
// solutions, Krylov bases, dot/norm results, and 1x1 scalars for the
// advanced apply are all Dense.  pyGinkgo's `as_tensor` (paper §3.5, §5.2)
// produces these, optionally as zero-copy views over NumPy buffers.
#pragma once

#include <memory>

#include "core/array.hpp"
#include "core/lin_op.hpp"
#include "core/matrix_data.hpp"
#include "core/math.hpp"
#include "core/types.hpp"

namespace mgko {


template <typename ValueType>
class Dense : public LinOp {
public:
    using value_type = ValueType;

    /// Creates an uninitialized rows x cols matrix.
    static std::unique_ptr<Dense> create(std::shared_ptr<const Executor> exec,
                                         dim2 size = {}, size_type stride = 0);

    /// Creates a matrix filled with `value`.
    static std::unique_ptr<Dense> create_filled(
        std::shared_ptr<const Executor> exec, dim2 size, ValueType value);

    /// Creates a 1x1 scalar (for advanced applies).
    static std::unique_ptr<Dense> create_scalar(
        std::shared_ptr<const Executor> exec, ValueType value);

    /// Wraps an existing buffer without copying (buffer protocol); the
    /// caller retains ownership of the memory.
    static std::unique_ptr<Dense> create_view(
        std::shared_ptr<const Executor> exec, dim2 size, ValueType* data,
        size_type stride = 0);

    /// Builds from staging data.
    static std::unique_ptr<Dense> create_from_data(
        std::shared_ptr<const Executor> exec,
        const matrix_data<ValueType, int64>& data);

    /// Fills from staging data (resizes).
    void read(const matrix_data<ValueType, int64>& data);
    matrix_data<ValueType, int64> to_data() const;

    ValueType* get_values() { return values_.get_data(); }
    const ValueType* get_const_values() const
    {
        return values_.get_const_data();
    }
    size_type get_stride() const { return stride_; }
    size_type get_num_stored_elements() const { return values_.size(); }

    /// Host-side element access (valid for the host-backed simulated
    /// devices as well; bounds-checked).
    ValueType& at(size_type row, size_type col = 0);
    ValueType at(size_type row, size_type col = 0) const;

    void fill(ValueType value);

    /// this *= alpha (alpha is 1x1 or 1 x cols for per-column scaling).
    void scale(const Dense* alpha);
    /// this += alpha * b
    void add_scaled(const Dense* alpha, const Dense* b);
    /// this -= alpha * b
    void sub_scaled(const Dense* alpha, const Dense* b);
    /// Column-wise dot products into a 1 x cols result.
    void compute_dot(const Dense* b, Dense* result) const;
    /// Column-wise Euclidean norms into a 1 x cols result.
    void compute_norm2(Dense* result) const;
    /// Convenience: single-column dot / norm returned as double on the host.
    double dot_scalar(const Dense* b) const;
    double norm2_scalar() const;

    /// x = thisᵀ * b as a single fused kernel (no materialized transpose);
    /// the projection step of block Gram-Schmidt / Rayleigh-Ritz.
    void transpose_apply(const Dense* b, Dense* x) const;

    std::unique_ptr<Dense> transpose() const;
    std::unique_ptr<Dense> clone() const;
    std::unique_ptr<Dense> clone_to(std::shared_ptr<const Executor> exec) const;
    void copy_from(const Dense* other);

    /// View of a single column (shares memory with this matrix; keep the
    /// parent alive while using the view).
    std::unique_ptr<Dense> column_view(size_type col);
    std::unique_ptr<const Dense> column_view(size_type col) const;
    /// View of a contiguous row block [begin, end).
    std::unique_ptr<Dense> row_block_view(size_type begin, size_type end);

protected:
    Dense(std::shared_ptr<const Executor> exec, dim2 size, size_type stride);
    Dense(std::shared_ptr<const Executor> exec, dim2 size, array<ValueType> values,
          size_type stride);

    /// Dense GEMM: x = this * b.
    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    array<ValueType> values_;
    size_type stride_;
};


/// Downcasts a LinOp to Dense<V>, throwing NotSupported with a helpful
/// message when the dynamic type does not match.
template <typename ValueType>
Dense<ValueType>* as_dense(LinOp* op);
template <typename ValueType>
const Dense<ValueType>* as_dense(const LinOp* op);

/// Creates an uninitialized Dense with the same value type as `proto` (used
/// by type-agnostic operators such as Composition).
std::unique_ptr<LinOp> create_dense_like(const LinOp* proto, dim2 size);
/// Copies dense contents between LinOps of the same dense value type.
void copy_dense(const LinOp* src, LinOp* dst);


}  // namespace mgko
