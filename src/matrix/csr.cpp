#include "matrix/csr.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/kernel_utils.hpp"
#include "core/math.hpp"
#include "matrix/coo.hpp"
#include "matrix/dense.hpp"
#include "matrix/ell.hpp"
#include "matrix/sellcs.hpp"

namespace mgko {

namespace kernels::csr {

/// Computes one row of y = [alpha *] A * b [+ beta * y] for all b columns.
template <typename V, typename I>
inline void spmv_row(const V* values, const I* col_idxs, const I* row_ptrs,
                     const V* b, size_type b_stride, V* x, size_type x_stride,
                     size_type row, size_type vec_cols, bool advanced, V alpha,
                     V beta)
{
    using acc_t = accumulate_t<V>;
    for (size_type c = 0; c < vec_cols; ++c) {
        acc_t acc{};
        for (I k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            acc += static_cast<acc_t>(values[k]) *
                   static_cast<acc_t>(b[static_cast<size_type>(col_idxs[k]) *
                                            b_stride +
                                        c]);
        }
        auto& out = x[row * x_stride + c];
        // beta == 0 must not read `out` (may be uninitialized).
        out = !advanced           ? V{acc}
              : beta == zero<V>() ? alpha * V{acc}
                                  : alpha * V{acc} + beta * out;
    }
}


/// Textbook serial kernel (reference executor ground truth).
template <typename V, typename I>
void spmv_serial(const V* values, const I* col_idxs, const I* row_ptrs,
                 const V* b, size_type b_stride, V* x, size_type x_stride,
                 size_type rows, size_type vec_cols, bool advanced, V alpha,
                 V beta)
{
    for (size_type row = 0; row < rows; ++row) {
        spmv_row(values, col_idxs, row_ptrs, b, b_stride, x, x_stride, row,
                 vec_cols, advanced, alpha, beta);
    }
}


/// Classical parallel kernel: contiguous equal-count row blocks per thread.
template <typename V, typename I>
void spmv_classical(int nt, const V* values, const I* col_idxs,
                    const I* row_ptrs, const V* b, size_type b_stride, V* x,
                    size_type x_stride, size_type rows, size_type vec_cols,
                    bool advanced, V alpha, V beta)
{
#pragma omp parallel for num_threads(nt) if (nt > 1) schedule(static)
    for (size_type row = 0; row < rows; ++row) {
        spmv_row(values, col_idxs, row_ptrs, b, b_stride, x, x_stride, row,
                 vec_cols, advanced, alpha, beta);
    }
}


/// Load-balanced kernel: rows are split so that every thread owns (nearly)
/// the same number of nonzeros — Ginkgo's balancing strategy for
/// irregular matrices.  Row boundaries are found by binary search in the
/// row-pointer array.
template <typename V, typename I>
void spmv_balanced(int nt, const V* values, const I* col_idxs,
                   const I* row_ptrs, const V* b, size_type b_stride, V* x,
                   size_type x_stride, size_type rows, size_type vec_cols,
                   bool advanced, V alpha, V beta)
{
    const auto nnz = static_cast<size_type>(row_ptrs[rows]);
#pragma omp parallel num_threads(nt) if (nt > 1)
    {
#ifdef _OPENMP
        const int tid = omp_get_thread_num();
        const int threads = omp_get_num_threads();
#else
        const int tid = 0;
        const int threads = 1;
#endif
        const auto target_begin = nnz * tid / threads;
        const auto target_end = nnz * (tid + 1) / threads;
        // Thread t owns the rows whose start offset falls in
        // [target_begin, target_end); boundaries are consistent across
        // threads because both ends use the same search.
        const auto row_begin = static_cast<size_type>(
            std::lower_bound(row_ptrs, row_ptrs + rows,
                             static_cast<I>(target_begin)) -
            row_ptrs);
        const auto row_end =
            tid == threads - 1
                ? rows
                : static_cast<size_type>(
                      std::lower_bound(row_ptrs, row_ptrs + rows,
                                       static_cast<I>(target_end)) -
                      row_ptrs);
        for (size_type row = row_begin; row < row_end; ++row) {
            spmv_row(values, col_idxs, row_ptrs, b, b_stride, x, x_stride,
                     row, vec_cols, advanced, alpha, beta);
        }
    }
}


/// Wavefront kernel (HIP path): rows processed in chunks of 64, chunks
/// distributed round-robin.
template <typename V, typename I>
void spmv_wavefront(int nt, const V* values, const I* col_idxs,
                    const I* row_ptrs, const V* b, size_type b_stride, V* x,
                    size_type x_stride, size_type rows, size_type vec_cols,
                    bool advanced, V alpha, V beta)
{
    const size_type chunk = 64;
    const size_type num_chunks = ceildiv(rows, chunk);
#pragma omp parallel for num_threads(nt) if (nt > 1) schedule(static, 1)
    for (size_type c = 0; c < num_chunks; ++c) {
        const size_type begin = c * chunk;
        const size_type end = std::min(rows, begin + chunk);
        for (size_type row = begin; row < end; ++row) {
            spmv_row(values, col_idxs, row_ptrs, b, b_stride, x, x_stride,
                     row, vec_cols, advanced, alpha, beta);
        }
    }
}

}  // namespace kernels::csr


template <typename ValueType, typename IndexType>
Csr<ValueType, IndexType>::Csr(std::shared_ptr<const Executor> exec, dim2 size,
                               size_type nnz)
    : LinOp{exec, size},
      values_{exec, nnz},
      col_idxs_{exec, nnz},
      row_ptrs_{exec, size.rows + 1}
{
    std::fill_n(row_ptrs_.get_data(), size.rows + 1, IndexType{});
}


template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>> Csr<ValueType, IndexType>::create(
    std::shared_ptr<const Executor> exec, dim2 size, size_type nnz)
{
    return std::unique_ptr<Csr>{new Csr{std::move(exec), size, nnz}};
}


template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>>
Csr<ValueType, IndexType>::create_from_data(
    std::shared_ptr<const Executor> exec,
    const matrix_data<ValueType, IndexType>& data)
{
    auto result = create(std::move(exec), data.size);
    result->read(data);
    return result;
}


template <typename ValueType, typename IndexType>
void Csr<ValueType, IndexType>::read(
    const matrix_data<ValueType, IndexType>& data)
{
    data.validate();
    auto sorted = data;
    sorted.sort_row_major();
    sorted.sum_duplicates();

    set_size(data.size);
    const auto nnz = sorted.num_stored();
    values_.resize_and_reset(nnz);
    col_idxs_.resize_and_reset(nnz);
    row_ptrs_.resize_and_reset(data.size.rows + 1);

    auto* values = values_.get_data();
    auto* col_idxs = col_idxs_.get_data();
    auto* row_ptrs = row_ptrs_.get_data();
    std::fill_n(row_ptrs, data.size.rows + 1, IndexType{});
    for (size_type i = 0; i < nnz; ++i) {
        const auto& e = sorted.entries[static_cast<std::size_t>(i)];
        values[i] = e.value;
        col_idxs[i] = e.col;
        ++row_ptrs[e.row + 1];
    }
    std::partial_sum(row_ptrs, row_ptrs + data.size.rows + 1, row_ptrs);
    invalidate_profile_cache();
}


template <typename ValueType, typename IndexType>
matrix_data<ValueType, IndexType> Csr<ValueType, IndexType>::to_data() const
{
    matrix_data<ValueType, IndexType> result{get_size()};
    const auto* values = get_const_values();
    const auto* col_idxs = get_const_col_idxs();
    const auto* row_ptrs = get_const_row_ptrs();
    result.entries.reserve(static_cast<std::size_t>(values_.size()));
    for (size_type row = 0; row < get_size().rows; ++row) {
        for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            result.add(static_cast<IndexType>(row), col_idxs[k], values[k]);
        }
    }
    return result;
}


template <typename ValueType, typename IndexType>
sim::kernel_profile Csr<ValueType, IndexType>::spmv_profile(
    sim::spmv_strategy s, const sim::MachineModel& m, size_type vec_cols,
    bool advanced) const
{
    if (miss_rate_ < 0.0) {
        miss_rate_ = sim::locality_miss_rate(get_const_col_idxs(),
                                             values_.size(), get_size().cols);
    }
    const auto key = std::make_pair(static_cast<int>(s), m.workers);
    auto it = imbalance_cache_.find(key);
    if (it == imbalance_cache_.end()) {
        it = imbalance_cache_
                 .emplace(key, sim::strategy_imbalance(s, m, get_size().rows,
                                                       get_const_row_ptrs()))
                 .first;
    }
    return sim::assemble_spmv_profile(
        s, m, get_size().rows, values_.size(),
        static_cast<size_type>(sizeof(ValueType)),
        static_cast<size_type>(sizeof(IndexType)), miss_rate_, it->second,
        vec_cols, advanced);
}


namespace {

template <typename V, typename I>
void csr_apply_dispatch(const Csr<V, I>* mat, const Dense<V>* b, Dense<V>* x,
                        bool advanced, V alpha, V beta)
{
    const auto* values = mat->get_const_values();
    const auto* col_idxs = mat->get_const_col_idxs();
    const auto* row_ptrs = mat->get_const_row_ptrs();
    const auto rows = mat->get_size().rows;
    const auto vec_cols = b->get_size().cols;
    const auto exec = mat->get_executor();
    const auto classical =
        mat->get_strategy() == Csr<V, I>::strategy::classical;

    auto tick_strategy = [&](const Executor* e, sim::spmv_strategy s) {
        kernels::tick(e, mat->spmv_profile(s, e->model(), vec_cols, advanced));
    };

    exec->run(make_operation(
        "csr_spmv",
        [&](const ReferenceExecutor* e) {
            kernels::csr::spmv_serial(values, col_idxs, row_ptrs,
                                      b->get_const_values(), b->get_stride(),
                                      x->get_values(), x->get_stride(), rows,
                                      vec_cols, advanced, alpha, beta);
            tick_strategy(e, sim::spmv_strategy::serial);
        },
        [&](const OmpExecutor* e) {
            const int nt = kernels::exec_threads(e);
            if (classical) {
                kernels::csr::spmv_classical(
                    nt, values, col_idxs, row_ptrs, b->get_const_values(),
                    b->get_stride(), x->get_values(), x->get_stride(), rows,
                    vec_cols, advanced, alpha, beta);
                tick_strategy(e, sim::spmv_strategy::classical_rows);
            } else {
                kernels::csr::spmv_balanced(
                    nt, values, col_idxs, row_ptrs, b->get_const_values(),
                    b->get_stride(), x->get_values(), x->get_stride(), rows,
                    vec_cols, advanced, alpha, beta);
                tick_strategy(e, sim::spmv_strategy::balanced_nnz);
            }
        },
        [&](const CudaExecutor* e) {
            const int nt = kernels::exec_threads(e);
            kernels::csr::spmv_balanced(nt, values, col_idxs, row_ptrs,
                                        b->get_const_values(), b->get_stride(),
                                        x->get_values(), x->get_stride(), rows,
                                        vec_cols, advanced, alpha, beta);
            tick_strategy(e, classical ? sim::spmv_strategy::classical_rows
                                       : sim::spmv_strategy::balanced_nnz);
        },
        [&](const HipExecutor* e) {
            const int nt = kernels::exec_threads(e);
            kernels::csr::spmv_wavefront(
                nt, values, col_idxs, row_ptrs, b->get_const_values(),
                b->get_stride(), x->get_values(), x->get_stride(), rows,
                vec_cols, advanced, alpha, beta);
            tick_strategy(e, sim::spmv_strategy::wavefront64);
        }));
}

}  // namespace


template <typename ValueType, typename IndexType>
void Csr<ValueType, IndexType>::apply_impl(const LinOp* b, LinOp* x) const
{
    csr_apply_dispatch(this, as_dense<ValueType>(b), as_dense<ValueType>(x),
                       false, one<ValueType>(), zero<ValueType>());
}


template <typename ValueType, typename IndexType>
void Csr<ValueType, IndexType>::apply_impl(const LinOp* alpha, const LinOp* b,
                                           const LinOp* beta, LinOp* x) const
{
    csr_apply_dispatch(this, as_dense<ValueType>(b), as_dense<ValueType>(x),
                       true, as_dense<ValueType>(alpha)->at(0, 0),
                       as_dense<ValueType>(beta)->at(0, 0));
}


template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>>
Csr<ValueType, IndexType>::transpose() const
{
    const auto rows = get_size().rows;
    const auto cols = get_size().cols;
    const auto nnz = values_.size();
    auto result = create(get_executor(), dim2{cols, rows}, nnz);

    auto* t_row_ptrs = result->get_row_ptrs();
    auto* t_col_idxs = result->get_col_idxs();
    auto* t_values = result->get_values();
    const auto* row_ptrs = get_const_row_ptrs();
    const auto* col_idxs = get_const_col_idxs();
    const auto* values = get_const_values();

    std::fill_n(t_row_ptrs, cols + 1, IndexType{});
    for (size_type k = 0; k < nnz; ++k) {
        ++t_row_ptrs[col_idxs[k] + 1];
    }
    std::partial_sum(t_row_ptrs, t_row_ptrs + cols + 1, t_row_ptrs);
    std::vector<IndexType> offset(static_cast<std::size_t>(cols), IndexType{});
    for (size_type row = 0; row < rows; ++row) {
        for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            const auto col = static_cast<std::size_t>(col_idxs[k]);
            const auto dst = t_row_ptrs[col] + offset[col]++;
            t_col_idxs[dst] = static_cast<IndexType>(row);
            t_values[dst] = values[k];
        }
    }
    get_executor()->clock().tick(
        sim::profile_stream(static_cast<double>(nnz) *
                                (sizeof(ValueType) + sizeof(IndexType)) * 3.0,
                            0.0, 0.4)
            .time_ns(get_executor()->model()));
    return result;
}


template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>> Csr<ValueType, IndexType>::clone_to(
    std::shared_ptr<const Executor> exec) const
{
    auto result = create(exec, get_size(), values_.size());
    result->values_ = array<ValueType>{exec, values_};
    result->col_idxs_ = array<IndexType>{exec, col_idxs_};
    result->row_ptrs_ = array<IndexType>{exec, row_ptrs_};
    result->strategy_ = strategy_;
    return result;
}


template <typename ValueType, typename IndexType>
void Csr<ValueType, IndexType>::sort_by_column_index()
{
    auto* values = get_values();
    auto* col_idxs = get_col_idxs();
    const auto* row_ptrs = get_const_row_ptrs();
    std::vector<std::pair<IndexType, ValueType>> row_buffer;
    for (size_type row = 0; row < get_size().rows; ++row) {
        const auto begin = row_ptrs[row];
        const auto end = row_ptrs[row + 1];
        row_buffer.clear();
        for (auto k = begin; k < end; ++k) {
            row_buffer.emplace_back(col_idxs[k], values[k]);
        }
        std::sort(row_buffer.begin(), row_buffer.end(),
                  [](const auto& a, const auto& b) {
                      return a.first < b.first;
                  });
        for (auto k = begin; k < end; ++k) {
            col_idxs[k] = row_buffer[static_cast<std::size_t>(k - begin)].first;
            values[k] = row_buffer[static_cast<std::size_t>(k - begin)].second;
        }
    }
    invalidate_profile_cache();
}


template <typename ValueType, typename IndexType>
bool Csr<ValueType, IndexType>::is_sorted_by_column_index() const
{
    const auto* col_idxs = get_const_col_idxs();
    const auto* row_ptrs = get_const_row_ptrs();
    for (size_type row = 0; row < get_size().rows; ++row) {
        for (auto k = row_ptrs[row] + 1; k < row_ptrs[row + 1]; ++k) {
            if (col_idxs[k - 1] >= col_idxs[k]) {
                return false;
            }
        }
    }
    return true;
}


template <typename ValueType, typename IndexType>
std::unique_ptr<Dense<ValueType>>
Csr<ValueType, IndexType>::extract_diagonal() const
{
    auto result = Dense<ValueType>::create(get_executor(),
                                           dim2{get_size().rows, 1});
    result->fill(zero<ValueType>());
    const auto* values = get_const_values();
    const auto* col_idxs = get_const_col_idxs();
    const auto* row_ptrs = get_const_row_ptrs();
    for (size_type row = 0; row < get_size().rows; ++row) {
        for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            if (static_cast<size_type>(col_idxs[k]) == row) {
                result->at(row, 0) = values[k];
            }
        }
    }
    return result;
}


template <typename ValueType, typename IndexType>
void Csr<ValueType, IndexType>::convert_to(Dense<ValueType>* result) const
{
    result->read(to_data().template cast<ValueType, int64>());
}


template <typename ValueType, typename IndexType>
void Csr<ValueType, IndexType>::convert_to(
    Coo<ValueType, IndexType>* result) const
{
    result->read(to_data());
}


template <typename ValueType, typename IndexType>
void Csr<ValueType, IndexType>::convert_to(
    Ell<ValueType, IndexType>* result) const
{
    result->read(to_data());
}


template <typename ValueType, typename IndexType>
void Csr<ValueType, IndexType>::convert_to(
    SellCs<ValueType, IndexType>* result) const
{
    result->read(to_data());
}


#define MGKO_DECLARE_CSR(ValueType, IndexType) \
    template class Csr<ValueType, IndexType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_CSR);


}  // namespace mgko
