// Coordinate-format sparse matrix, modeled on gko::matrix::Coo.
//
// COO is the second format of the paper's evaluation (and the only format
// TensorFlow supports, §2).  Device SpMV uses a flat nnz split with atomic
// row updates — the strategy of Ginkgo's load-balanced COO kernel.
#pragma once

#include <memory>

#include "core/array.hpp"
#include "core/lin_op.hpp"
#include "core/matrix_data.hpp"
#include "core/types.hpp"
#include "sim/cost_model.hpp"

namespace mgko {


template <typename ValueType>
class Dense;
template <typename ValueType, typename IndexType>
class Csr;


template <typename ValueType = double, typename IndexType = int32>
class Coo : public LinOp {
public:
    using value_type = ValueType;
    using index_type = IndexType;

    static std::unique_ptr<Coo> create(std::shared_ptr<const Executor> exec,
                                       dim2 size = {}, size_type nnz = 0);

    static std::unique_ptr<Coo> create_from_data(
        std::shared_ptr<const Executor> exec,
        const matrix_data<ValueType, IndexType>& data);

    void read(const matrix_data<ValueType, IndexType>& data);
    matrix_data<ValueType, IndexType> to_data() const;

    ValueType* get_values() { return values_.get_data(); }
    const ValueType* get_const_values() const
    {
        return values_.get_const_data();
    }
    IndexType* get_row_idxs() { return row_idxs_.get_data(); }
    const IndexType* get_const_row_idxs() const
    {
        return row_idxs_.get_const_data();
    }
    IndexType* get_col_idxs() { return col_idxs_.get_data(); }
    const IndexType* get_const_col_idxs() const
    {
        return col_idxs_.get_const_data();
    }

    size_type get_num_stored_elements() const { return values_.size(); }

    std::unique_ptr<Coo> clone_to(std::shared_ptr<const Executor> exec) const;

    void convert_to(Csr<ValueType, IndexType>* result) const;
    void convert_to(Dense<ValueType>* result) const;

    sim::kernel_profile spmv_profile(sim::spmv_strategy s,
                                     const sim::MachineModel& m,
                                     size_type vec_cols, bool advanced) const;

    /// x += A * b — the natural accumulation form of COO SpMV; Hybrid uses
    /// it to add the overflow part onto the ELL result.
    void apply_accumulate(const LinOp* b, Dense<ValueType>* x) const;

protected:
    Coo(std::shared_ptr<const Executor> exec, dim2 size, size_type nnz);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    array<ValueType> values_;
    array<IndexType> row_idxs_;
    array<IndexType> col_idxs_;

    mutable double miss_rate_{-1.0};
};


}  // namespace mgko
