#include "matrix/ell.hpp"

#include <algorithm>

#include "core/kernel_utils.hpp"
#include "core/math.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"

namespace mgko {

namespace kernels::ell {

// Column-major ELL: slot k of row r lives at [k * rows + r].
template <typename V, typename I>
void spmv(int nt, const V* values, const I* col_idxs, size_type rows,
          size_type width, const V* b, size_type b_stride, V* x,
          size_type x_stride, size_type vec_cols, bool advanced, V alpha,
          V beta)
{
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type row = 0; row < rows; ++row) {
        for (size_type c = 0; c < vec_cols; ++c) {
            using acc_t = accumulate_t<V>;
            acc_t acc{};
            for (size_type k = 0; k < width; ++k) {
                const auto idx = k * rows + row;
                const auto col = static_cast<size_type>(col_idxs[idx]);
                acc += static_cast<acc_t>(values[idx]) *
                       static_cast<acc_t>(b[col * b_stride + c]);
            }
            auto& out = x[row * x_stride + c];
            // beta == 0 must not read `out` (may be uninitialized).
            out = !advanced           ? V{acc}
                  : beta == zero<V>() ? alpha * V{acc}
                                      : alpha * V{acc} + beta * out;
        }
    }
}

}  // namespace kernels::ell


template <typename ValueType, typename IndexType>
Ell<ValueType, IndexType>::Ell(std::shared_ptr<const Executor> exec, dim2 size,
                               size_type width)
    : LinOp{exec, size},
      values_{exec, size.rows * width},
      col_idxs_{exec, size.rows * width},
      width_{width}
{}


template <typename ValueType, typename IndexType>
std::unique_ptr<Ell<ValueType, IndexType>> Ell<ValueType, IndexType>::create(
    std::shared_ptr<const Executor> exec, dim2 size,
    size_type num_stored_per_row)
{
    return std::unique_ptr<Ell>{
        new Ell{std::move(exec), size, num_stored_per_row}};
}


template <typename ValueType, typename IndexType>
std::unique_ptr<Ell<ValueType, IndexType>>
Ell<ValueType, IndexType>::create_from_data(
    std::shared_ptr<const Executor> exec,
    const matrix_data<ValueType, IndexType>& data)
{
    auto result = create(std::move(exec), data.size);
    result->read(data);
    return result;
}


template <typename ValueType, typename IndexType>
void Ell<ValueType, IndexType>::read(
    const matrix_data<ValueType, IndexType>& data)
{
    data.validate();
    auto sorted = data;
    sorted.sort_row_major();
    sorted.sum_duplicates();

    // Width = longest row.
    std::vector<size_type> row_nnz(static_cast<std::size_t>(data.size.rows),
                                   0);
    for (const auto& e : sorted.entries) {
        ++row_nnz[static_cast<std::size_t>(e.row)];
    }
    const auto width =
        data.size.rows == 0
            ? size_type{0}
            : *std::max_element(row_nnz.begin(), row_nnz.end());

    set_size(data.size);
    width_ = width;
    const auto rows = data.size.rows;
    values_.resize_and_reset(rows * width);
    col_idxs_.resize_and_reset(rows * width);
    std::fill_n(values_.get_data(), values_.size(), zero<ValueType>());
    // Padding points at column 0 with value 0, keeping reads in bounds.
    std::fill_n(col_idxs_.get_data(), col_idxs_.size(), IndexType{});

    std::vector<size_type> slot(static_cast<std::size_t>(rows), 0);
    for (const auto& e : sorted.entries) {
        const auto r = static_cast<size_type>(e.row);
        const auto k = slot[static_cast<std::size_t>(r)]++;
        values_.get_data()[k * rows + r] = e.value;
        col_idxs_.get_data()[k * rows + r] = e.col;
    }
    miss_rate_ = -1.0;
}


template <typename ValueType, typename IndexType>
matrix_data<ValueType, IndexType> Ell<ValueType, IndexType>::to_data() const
{
    matrix_data<ValueType, IndexType> result{get_size()};
    const auto rows = get_size().rows;
    for (size_type r = 0; r < rows; ++r) {
        for (size_type k = 0; k < width_; ++k) {
            const auto v = values_.get_const_data()[k * rows + r];
            if (v != zero<ValueType>()) {
                result.add(static_cast<IndexType>(r),
                           col_idxs_.get_const_data()[k * rows + r], v);
            }
        }
    }
    return result;
}


template <typename ValueType, typename IndexType>
ValueType Ell<ValueType, IndexType>::value_at(size_type row,
                                              size_type slot) const
{
    return values_.at(slot * get_size().rows + row);
}


template <typename ValueType, typename IndexType>
IndexType Ell<ValueType, IndexType>::col_at(size_type row,
                                            size_type slot) const
{
    return col_idxs_.at(slot * get_size().rows + row);
}


template <typename ValueType, typename IndexType>
sim::kernel_profile Ell<ValueType, IndexType>::spmv_profile(
    const sim::MachineModel& m, size_type vec_cols, bool advanced) const
{
    if (miss_rate_ < 0.0) {
        miss_rate_ = sim::locality_miss_rate(get_const_col_idxs(),
                                             col_idxs_.size(),
                                             get_size().cols);
    }
    return sim::assemble_spmv_profile(
        sim::spmv_strategy::ell_rowmajor, m, get_size().rows,
        get_size().rows * width_, static_cast<size_type>(sizeof(ValueType)),
        static_cast<size_type>(sizeof(IndexType)), miss_rate_, 1.0, vec_cols,
        advanced, width_);
}


namespace {

template <typename V, typename I>
void ell_apply(const Ell<V, I>* mat, const LinOp* b, LinOp* x, bool advanced,
               V alpha, V beta)
{
    auto dense_b = as_dense<V>(b);
    auto dense_x = as_dense<V>(x);
    const auto vec_cols = dense_b->get_size().cols;
    auto run_kernel = [&](const Executor* e) {
        kernels::ell::spmv(kernels::exec_threads(e), mat->get_const_values(),
                           mat->get_const_col_idxs(), mat->get_size().rows,
                           mat->get_num_stored_per_row(),
                           dense_b->get_const_values(), dense_b->get_stride(),
                           dense_x->get_values(), dense_x->get_stride(),
                           vec_cols, advanced, alpha, beta);
        kernels::tick(e, mat->spmv_profile(e->model(), vec_cols, advanced));
    };
    mat->get_executor()->run(make_operation(
        "ell_spmv", [&](const ReferenceExecutor* e) { run_kernel(e); },
        [&](const OmpExecutor* e) { run_kernel(e); },
        [&](const CudaExecutor* e) { run_kernel(e); },
        [&](const HipExecutor* e) { run_kernel(e); }));
}

}  // namespace


template <typename ValueType, typename IndexType>
void Ell<ValueType, IndexType>::apply_impl(const LinOp* b, LinOp* x) const
{
    ell_apply(this, b, x, false, one<ValueType>(), zero<ValueType>());
}


template <typename ValueType, typename IndexType>
void Ell<ValueType, IndexType>::apply_impl(const LinOp* alpha, const LinOp* b,
                                           const LinOp* beta, LinOp* x) const
{
    ell_apply(this, b, x, true, as_dense<ValueType>(alpha)->at(0, 0),
              as_dense<ValueType>(beta)->at(0, 0));
}


template <typename ValueType, typename IndexType>
void Ell<ValueType, IndexType>::convert_to(
    Csr<ValueType, IndexType>* result) const
{
    result->read(to_data());
}


#define MGKO_DECLARE_ELL(ValueType, IndexType) \
    template class Ell<ValueType, IndexType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_ELL);


}  // namespace mgko
