#include "matrix/hybrid.hpp"

#include <algorithm>
#include <vector>

#include "core/math.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"

namespace mgko {


template <typename ValueType, typename IndexType>
Hybrid<ValueType, IndexType>::Hybrid(std::shared_ptr<const Executor> exec,
                                     dim2 size, double ell_quantile)
    : LinOp{exec, size},
      ell_quantile_{ell_quantile},
      ell_{Ell<ValueType, IndexType>::create(exec, size)},
      coo_{Coo<ValueType, IndexType>::create(exec, size)}
{
    MGKO_ENSURE(ell_quantile_ >= 0.0 && ell_quantile_ <= 1.0,
                "ell_quantile must be within [0, 1]");
}


template <typename ValueType, typename IndexType>
std::unique_ptr<Hybrid<ValueType, IndexType>>
Hybrid<ValueType, IndexType>::create(std::shared_ptr<const Executor> exec,
                                     dim2 size, double ell_quantile)
{
    return std::unique_ptr<Hybrid>{
        new Hybrid{std::move(exec), size, ell_quantile}};
}


template <typename ValueType, typename IndexType>
std::unique_ptr<Hybrid<ValueType, IndexType>>
Hybrid<ValueType, IndexType>::create_from_data(
    std::shared_ptr<const Executor> exec,
    const matrix_data<ValueType, IndexType>& data, double ell_quantile)
{
    auto result = create(std::move(exec), data.size, ell_quantile);
    result->read(data);
    return result;
}


template <typename ValueType, typename IndexType>
void Hybrid<ValueType, IndexType>::read(
    const matrix_data<ValueType, IndexType>& data)
{
    data.validate();
    auto sorted = data;
    sorted.sort_row_major();
    sorted.sum_duplicates();
    set_size(data.size);
    nnz_ = sorted.num_stored();

    // ELL width = the chosen quantile of row lengths.
    std::vector<size_type> row_nnz(static_cast<std::size_t>(data.size.rows),
                                   0);
    for (const auto& e : sorted.entries) {
        ++row_nnz[static_cast<std::size_t>(e.row)];
    }
    auto lengths = row_nnz;
    std::sort(lengths.begin(), lengths.end());
    const auto width =
        lengths.empty()
            ? size_type{0}
            : lengths[static_cast<std::size_t>(
                  std::min<double>(static_cast<double>(lengths.size()) - 1,
                                   ell_quantile_ *
                                       static_cast<double>(lengths.size())))];

    matrix_data<ValueType, IndexType> ell_data{data.size};
    matrix_data<ValueType, IndexType> coo_data{data.size};
    std::vector<size_type> taken(static_cast<std::size_t>(data.size.rows), 0);
    for (const auto& e : sorted.entries) {
        auto& count = taken[static_cast<std::size_t>(e.row)];
        if (count < width) {
            ell_data.add(e.row, e.col, e.value);
            ++count;
        } else {
            coo_data.add(e.row, e.col, e.value);
        }
    }
    ell_->read(ell_data);
    coo_->read(coo_data);
}


template <typename ValueType, typename IndexType>
matrix_data<ValueType, IndexType> Hybrid<ValueType, IndexType>::to_data()
    const
{
    auto result = ell_->to_data();
    const auto coo_part = coo_->to_data();
    result.entries.insert(result.entries.end(), coo_part.entries.begin(),
                          coo_part.entries.end());
    result.sort_row_major();
    return result;
}


template <typename ValueType, typename IndexType>
void Hybrid<ValueType, IndexType>::apply_impl(const LinOp* b, LinOp* x) const
{
    // x = Ell b; x += Coo b  (two kernels, the Ginkgo hybrid schedule).
    ell_->apply(b, x);
    coo_->apply_accumulate(b, as_dense<ValueType>(x));
}


template <typename ValueType, typename IndexType>
void Hybrid<ValueType, IndexType>::apply_impl(const LinOp* alpha,
                                              const LinOp* b,
                                              const LinOp* beta,
                                              LinOp* x) const
{
    auto dense_x = as_dense<ValueType>(x);
    auto tmp = Dense<ValueType>::create(
        get_executor(), dim2{get_size().rows, b->get_size().cols});
    apply_impl(b, tmp.get());
    dense_x->scale(as_dense<ValueType>(beta));
    dense_x->add_scaled(as_dense<ValueType>(alpha), tmp.get());
}


template <typename ValueType, typename IndexType>
void Hybrid<ValueType, IndexType>::convert_to(
    Csr<ValueType, IndexType>* result) const
{
    result->read(to_data());
}


#define MGKO_DECLARE_HYBRID(ValueType, IndexType) \
    template class Hybrid<ValueType, IndexType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_HYBRID);


}  // namespace mgko
