// COO SpMV kernels, modeled on Ginkgo's load-balanced COO strategy.
//
// Header-exposed (rather than private to coo.cpp) so tests can drive the
// parallel kernel with an explicit thread count: the interesting races —
// one dense row split across many thread ranges — only appear when the
// split is forced, independent of the host's core count.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/math.hpp"
#include "core/types.hpp"

namespace mgko::kernels::coo {


/// Serial reference kernel over (row, col, value) triplets.
template <typename V, typename I>
void spmv_serial(const V* values, const I* row_idxs, const I* col_idxs,
                 size_type nnz, const V* b, size_type b_stride, V* x,
                 size_type x_stride, size_type vec_cols)
{
    for (size_type k = 0; k < nnz; ++k) {
        const auto row = static_cast<size_type>(row_idxs[k]);
        const auto col = static_cast<size_type>(col_idxs[k]);
        for (size_type c = 0; c < vec_cols; ++c) {
            x[row * x_stride + c] += values[k] * b[col * b_stride + c];
        }
    }
}


/// Parallel kernel: flat nnz split, each worker accumulates its contiguous
/// range; rows crossing a range boundary are updated atomically — the
/// structure of Ginkgo's load-balanced COO kernel.
template <typename V, typename I>
void spmv_flat(int nt, const V* values, const I* row_idxs, const I* col_idxs,
               size_type nnz, const V* b, size_type b_stride, V* x,
               size_type x_stride, size_type vec_cols)
{
#pragma omp parallel num_threads(nt) if (nt > 1)
    {
#ifdef _OPENMP
        const int tid = omp_get_thread_num();
        const int threads = omp_get_num_threads();
#else
        const int tid = 0;
        const int threads = 1;
#endif
        const size_type begin = nnz * tid / threads;
        const size_type end = nnz * (tid + 1) / threads;
        size_type k = begin;
        while (k < end) {
            const auto row = row_idxs[k];
            // Accumulate the run of entries sharing this row locally.
            for (size_type c = 0; c < vec_cols; ++c) {
                using acc_t = accumulate_t<V>;
                acc_t acc{};
                size_type j = k;
                while (j < end && row_idxs[j] == row) {
                    acc += static_cast<acc_t>(values[j]) *
                           static_cast<acc_t>(
                               b[static_cast<size_type>(col_idxs[j]) *
                                     b_stride +
                                 c]);
                    ++j;
                }
                const bool boundary =
                    (k == begin && begin > 0 && row_idxs[begin - 1] == row) ||
                    (j == end && end < nnz && row_idxs[end] == row);
                auto& out = x[static_cast<size_type>(row) * x_stride + c];
                if (boundary) {
                    // Every thread whose range begins or ends inside a
                    // split row satisfies the boundary condition, so a row
                    // spanning t >= 2 ranges is updated by all t of its
                    // threads — including the interior threads of a row
                    // spanning three or more ranges.  `half` has no native
                    // atomic, so a named critical section covers all value
                    // types; split rows stay rare (at most one begin- and
                    // one end-boundary per thread).
#pragma omp critical(mgko_coo_boundary)
                    out += V{acc};
                } else {
                    out += V{acc};
                }
            }
            while (k < end && row_idxs[k] == row) {
                ++k;
            }
        }
    }
}


}  // namespace mgko::kernels::coo
