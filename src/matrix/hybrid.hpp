// Hybrid (ELL + COO) sparse matrix, modeled on gko::matrix::Hybrid.
//
// The regular part of each row (up to a width chosen by a row-length
// quantile) lives in ELL for coalesced access; the overflow of long rows
// lives in COO.  This is Ginkgo's answer to power-law matrices where pure
// ELL explodes in padding and pure CSR loses balance.
#pragma once

#include <memory>

#include "core/lin_op.hpp"
#include "core/matrix_data.hpp"
#include "matrix/coo.hpp"
#include "matrix/ell.hpp"

namespace mgko {


template <typename ValueType = double, typename IndexType = int32>
class Hybrid : public LinOp {
public:
    using value_type = ValueType;
    using index_type = IndexType;

    /// `ell_quantile` picks the ELL width as that quantile of the row
    /// lengths (Ginkgo's default strategy uses ~0.8).
    static std::unique_ptr<Hybrid> create(
        std::shared_ptr<const Executor> exec, dim2 size = {},
        double ell_quantile = 0.8);

    static std::unique_ptr<Hybrid> create_from_data(
        std::shared_ptr<const Executor> exec,
        const matrix_data<ValueType, IndexType>& data,
        double ell_quantile = 0.8);

    void read(const matrix_data<ValueType, IndexType>& data);
    matrix_data<ValueType, IndexType> to_data() const;

    const Ell<ValueType, IndexType>* get_ell() const { return ell_.get(); }
    const Coo<ValueType, IndexType>* get_coo() const { return coo_.get(); }
    size_type get_ell_num_stored_elements() const
    {
        return ell_->get_num_stored_elements();
    }
    size_type get_coo_num_stored_elements() const
    {
        return coo_->get_num_stored_elements();
    }
    /// Actual (non-padding) stored entries.
    size_type get_num_stored_elements() const { return nnz_; }

    void convert_to(Csr<ValueType, IndexType>* result) const;

protected:
    Hybrid(std::shared_ptr<const Executor> exec, dim2 size,
           double ell_quantile);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    double ell_quantile_;
    size_type nnz_{0};
    std::unique_ptr<Ell<ValueType, IndexType>> ell_;
    std::unique_ptr<Coo<ValueType, IndexType>> coo_;
};


}  // namespace mgko
