// Diagonal matrix operator (gko::matrix::Diagonal): O(n) storage, used for
// scaling and as the algebraic form of mass matrices (the bcsstm* family
// of the paper's Table 2).
#pragma once

#include <memory>

#include "core/array.hpp"
#include "core/lin_op.hpp"
#include "core/matrix_data.hpp"

namespace mgko {


template <typename ValueType>
class Dense;
template <typename ValueType, typename IndexType>
class Csr;


template <typename ValueType = double>
class Diagonal : public LinOp {
public:
    using value_type = ValueType;

    static std::unique_ptr<Diagonal> create(
        std::shared_ptr<const Executor> exec, size_type n);

    /// Builds from the diagonal entries.
    static std::unique_ptr<Diagonal> create_from_values(
        std::shared_ptr<const Executor> exec,
        const std::vector<ValueType>& values);

    ValueType* get_values() { return values_.get_data(); }
    const ValueType* get_const_values() const
    {
        return values_.get_const_data();
    }

    /// D^{-1} as a new operator (safe reciprocal on zero entries).
    std::unique_ptr<Diagonal> inverse() const;

    template <typename IndexType>
    void convert_to(Csr<ValueType, IndexType>* result) const
    {
        matrix_data<ValueType, IndexType> data{get_size()};
        for (size_type i = 0; i < get_size().rows; ++i) {
            data.add(static_cast<IndexType>(i), static_cast<IndexType>(i),
                     values_.get_const_data()[i]);
        }
        result->read(data);
    }

protected:
    Diagonal(std::shared_ptr<const Executor> exec, size_type n);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    array<ValueType> values_;
};


}  // namespace mgko
