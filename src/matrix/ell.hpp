// ELLPACK sparse matrix, modeled on gko::matrix::Ell.
//
// Rows are padded to a uniform width and stored column-major so that device
// lanes read coalesced columns.  One of the "various other matrix formats"
// the paper lists as Ginkgo capability beyond the CSR/COO evaluation set.
#pragma once

#include <memory>

#include "core/array.hpp"
#include "core/lin_op.hpp"
#include "core/matrix_data.hpp"
#include "core/types.hpp"
#include "sim/cost_model.hpp"

namespace mgko {


template <typename ValueType>
class Dense;
template <typename ValueType, typename IndexType>
class Csr;


template <typename ValueType = double, typename IndexType = int32>
class Ell : public LinOp {
public:
    using value_type = ValueType;
    using index_type = IndexType;

    static std::unique_ptr<Ell> create(std::shared_ptr<const Executor> exec,
                                       dim2 size = {},
                                       size_type num_stored_per_row = 0);

    static std::unique_ptr<Ell> create_from_data(
        std::shared_ptr<const Executor> exec,
        const matrix_data<ValueType, IndexType>& data);

    void read(const matrix_data<ValueType, IndexType>& data);
    matrix_data<ValueType, IndexType> to_data() const;

    /// Padded row width.
    size_type get_num_stored_per_row() const { return width_; }
    /// Stored element (r, k): k-th slot of row r (column-major layout).
    ValueType value_at(size_type row, size_type slot) const;
    IndexType col_at(size_type row, size_type slot) const;

    ValueType* get_values() { return values_.get_data(); }
    const ValueType* get_const_values() const
    {
        return values_.get_const_data();
    }
    IndexType* get_col_idxs() { return col_idxs_.get_data(); }
    const IndexType* get_const_col_idxs() const
    {
        return col_idxs_.get_const_data();
    }

    size_type get_num_stored_elements() const { return values_.size(); }

    void convert_to(Csr<ValueType, IndexType>* result) const;

    sim::kernel_profile spmv_profile(const sim::MachineModel& m,
                                     size_type vec_cols, bool advanced) const;

protected:
    Ell(std::shared_ptr<const Executor> exec, dim2 size, size_type width);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    array<ValueType> values_;
    array<IndexType> col_idxs_;
    size_type width_;

    mutable double miss_rate_{-1.0};
};


}  // namespace mgko
