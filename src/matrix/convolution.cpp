#include "matrix/convolution.hpp"

#include "core/kernel_utils.hpp"
#include "core/math.hpp"
#include "matrix/dense.hpp"

namespace mgko {


template <typename ValueType>
Convolution<ValueType>::Convolution(std::shared_ptr<const Executor> exec,
                                    size_type height, size_type width,
                                    const std::vector<double>& kernel)
    : LinOp{exec, dim2{height * width}},
      height_{height},
      width_{width},
      k_{0},
      kernel_{exec, static_cast<size_type>(kernel.size())}
{
    const auto k = static_cast<size_type>(
        std::llround(std::sqrt(static_cast<double>(kernel.size()))));
    MGKO_ENSURE(k * k == static_cast<size_type>(kernel.size()),
                "convolution kernel must be square");
    MGKO_ENSURE(k % 2 == 1, "convolution kernel size must be odd");
    MGKO_ENSURE(height > 0 && width > 0, "empty image");
    k_ = k;
    for (std::size_t i = 0; i < kernel.size(); ++i) {
        kernel_.get_data()[static_cast<size_type>(i)] =
            static_cast<ValueType>(kernel[i]);
    }
}


template <typename ValueType>
std::unique_ptr<Convolution<ValueType>> Convolution<ValueType>::create(
    std::shared_ptr<const Executor> exec, size_type height, size_type width,
    const std::vector<double>& kernel)
{
    return std::unique_ptr<Convolution>{
        new Convolution{std::move(exec), height, width, kernel}};
}


namespace {

template <typename V>
void conv2d(const Executor* exec, const V* kernel, mgko::size_type k,
            mgko::size_type height, mgko::size_type width, const Dense<V>* b,
            Dense<V>* x, bool advanced, V alpha, V beta)
{
    using mgko::size_type;
    const auto vec_cols = b->get_size().cols;
    const auto half = static_cast<std::int64_t>(k / 2);
    const int nt = mgko::kernels::exec_threads(exec);
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type row = 0; row < height; ++row) {
        for (size_type col = 0; col < width; ++col) {
            for (size_type c = 0; c < vec_cols; ++c) {
                using acc_t = accumulate_t<V>;
                acc_t acc{};
                for (std::int64_t di = -half; di <= half; ++di) {
                    const auto si = static_cast<std::int64_t>(row) + di;
                    if (si < 0 || si >= static_cast<std::int64_t>(height)) {
                        continue;  // zero padding
                    }
                    for (std::int64_t dj = -half; dj <= half; ++dj) {
                        const auto sj = static_cast<std::int64_t>(col) + dj;
                        if (sj < 0 ||
                            sj >= static_cast<std::int64_t>(width)) {
                            continue;
                        }
                        const auto kidx =
                            static_cast<size_type>((di + half) *
                                                       static_cast<std::int64_t>(k) +
                                                   (dj + half));
                        const auto pixel =
                            static_cast<size_type>(si) * width +
                            static_cast<size_type>(sj);
                        acc += static_cast<acc_t>(kernel[kidx]) *
                               static_cast<acc_t>(
                                   b->get_const_values()
                                       [pixel * b->get_stride() + c]);
                    }
                }
                auto& out = x->get_values()
                                [(row * width + col) * x->get_stride() + c];
                out = !advanced           ? V{acc}
                      : beta == zero<V>() ? alpha * V{acc}
                                          : alpha * V{acc} + beta * out;
            }
        }
    }
    const double pixels =
        static_cast<double>(height) * static_cast<double>(width) *
        static_cast<double>(vec_cols);
    const double taps = static_cast<double>(k) * static_cast<double>(k);
    // Stencil reads are cache/shared-memory friendly: each input pixel is
    // reused k^2 times, so the streamed volume is ~2 images + the kernel.
    mgko::kernels::tick(
        exec, sim::profile_stream(2.0 * pixels * sizeof(V) + taps * sizeof(V),
                                  2.0 * pixels * taps, 0.9));
}

}  // namespace


template <typename ValueType>
void Convolution<ValueType>::apply_impl(const LinOp* b, LinOp* x) const
{
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    auto kernel = [&](const Executor* e) {
        conv2d(e, kernel_.get_const_data(), k_, height_, width_, dense_b,
               dense_x, false, one<ValueType>(), zero<ValueType>());
    };
    get_executor()->run(make_operation(
        "conv2d", [&](const ReferenceExecutor* e) { kernel(e); },
        [&](const OmpExecutor* e) { kernel(e); },
        [&](const CudaExecutor* e) { kernel(e); },
        [&](const HipExecutor* e) { kernel(e); }));
}


template <typename ValueType>
void Convolution<ValueType>::apply_impl(const LinOp* alpha, const LinOp* b,
                                        const LinOp* beta, LinOp* x) const
{
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    const auto a = as_dense<ValueType>(alpha)->at(0, 0);
    const auto bt = as_dense<ValueType>(beta)->at(0, 0);
    auto kernel = [&](const Executor* e) {
        conv2d(e, kernel_.get_const_data(), k_, height_, width_, dense_b,
               dense_x, true, a, bt);
    };
    get_executor()->run(make_operation(
        "conv2d", [&](const ReferenceExecutor* e) { kernel(e); },
        [&](const OmpExecutor* e) { kernel(e); },
        [&](const CudaExecutor* e) { kernel(e); },
        [&](const HipExecutor* e) { kernel(e); }));
}


#define MGKO_DECLARE_CONVOLUTION(ValueType) \
    template class Convolution<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_CONVOLUTION);


}  // namespace mgko
