#include "matrix/spgemm.hpp"

#include <algorithm>
#include <vector>

#include "core/kernel_utils.hpp"
#include "core/math.hpp"
#include "sim/cost_model.hpp"

namespace mgko {


template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>> spgemm(
    const Csr<ValueType, IndexType>* a, const Csr<ValueType, IndexType>* b)
{
    MGKO_ASSERT_CONFORMANT("spgemm", a->get_size(), b->get_size());
    auto exec = a->get_executor();
    const auto m = a->get_size().rows;
    const auto n = b->get_size().cols;

    const auto* a_ptrs = a->get_const_row_ptrs();
    const auto* a_cols = a->get_const_col_idxs();
    const auto* a_vals = a->get_const_values();
    const auto* b_ptrs = b->get_const_row_ptrs();
    const auto* b_cols = b->get_const_col_idxs();
    const auto* b_vals = b->get_const_values();

    std::unique_ptr<Csr<ValueType, IndexType>> product;
    // Gustavson: dense accumulator + touched-column list per row.  Runs as
    // an Operation so the data-dependent flop/byte volumes reach the
    // profiler/FlightRecorder through kernels::tick like every other
    // kernel (the analytic counterpart is log::spgemm_work).
    auto kernel = [&](const Executor* e) {
        std::vector<double> accumulator(static_cast<std::size_t>(n), 0.0);
        std::vector<bool> touched(static_cast<std::size_t>(n), false);
        std::vector<IndexType> row_cols;
        matrix_data<ValueType, IndexType> result{dim2{m, n}};
        double products = 0.0;
        for (size_type row = 0; row < m; ++row) {
            row_cols.clear();
            for (auto ka = a_ptrs[row]; ka < a_ptrs[row + 1]; ++ka) {
                const auto inner = static_cast<size_type>(a_cols[ka]);
                const double a_val = to_float(a_vals[ka]);
                for (auto kb = b_ptrs[inner]; kb < b_ptrs[inner + 1]; ++kb) {
                    const auto col = static_cast<std::size_t>(b_cols[kb]);
                    if (!touched[col]) {
                        touched[col] = true;
                        row_cols.push_back(b_cols[kb]);
                    }
                    accumulator[col] += a_val * to_float(b_vals[kb]);
                    products += 1.0;
                }
            }
            std::sort(row_cols.begin(), row_cols.end());
            for (const auto col : row_cols) {
                const auto c = static_cast<std::size_t>(col);
                result.add(static_cast<IndexType>(row), col,
                           static_cast<ValueType>(accumulator[c]));
                accumulator[c] = 0.0;
                touched[c] = false;
            }
        }
        product = Csr<ValueType, IndexType>::create_from_data(exec, result);
        const auto work = log::spgemm_work(
            a->get_num_stored_elements(), b->get_num_stored_elements(),
            product->get_num_stored_elements(), products, sizeof(ValueType),
            sizeof(IndexType));
        kernels::tick(e, sim::profile_stream(work.bytes, work.flops, 0.5));
    };
    exec->run(make_operation(
        "spgemm", [&](const ReferenceExecutor* e) { kernel(e); },
        [&](const OmpExecutor* e) { kernel(e); },
        [&](const CudaExecutor* e) { kernel(e); },
        [&](const HipExecutor* e) { kernel(e); }));
    return product;
}


#define MGKO_DECLARE_SPGEMM(ValueType, IndexType)                          \
    template std::unique_ptr<Csr<ValueType, IndexType>> spgemm(            \
        const Csr<ValueType, IndexType>*, const Csr<ValueType, IndexType>*)
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_SPGEMM);


}  // namespace mgko
