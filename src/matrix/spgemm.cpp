#include "matrix/spgemm.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <vector>

#include "core/math.hpp"
#include "sim/cost_model.hpp"

namespace mgko {


template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>> spgemm(
    const Csr<ValueType, IndexType>* a, const Csr<ValueType, IndexType>* b)
{
    MGKO_ASSERT_CONFORMANT("spgemm", a->get_size(), b->get_size());
    auto exec = a->get_executor();
    const auto m = a->get_size().rows;
    const auto n = b->get_size().cols;

    const auto* a_ptrs = a->get_const_row_ptrs();
    const auto* a_cols = a->get_const_col_idxs();
    const auto* a_vals = a->get_const_values();
    const auto* b_ptrs = b->get_const_row_ptrs();
    const auto* b_cols = b->get_const_col_idxs();
    const auto* b_vals = b->get_const_values();

    // Gustavson: dense accumulator + touched-column list per row.
    std::vector<double> accumulator(static_cast<std::size_t>(n), 0.0);
    std::vector<bool> touched(static_cast<std::size_t>(n), false);
    std::vector<IndexType> row_cols;
    matrix_data<ValueType, IndexType> result{dim2{m, n}};
    double flops = 0.0;
    for (size_type row = 0; row < m; ++row) {
        row_cols.clear();
        for (auto ka = a_ptrs[row]; ka < a_ptrs[row + 1]; ++ka) {
            const auto inner = static_cast<size_type>(a_cols[ka]);
            const double a_val = to_float(a_vals[ka]);
            for (auto kb = b_ptrs[inner]; kb < b_ptrs[inner + 1]; ++kb) {
                const auto col = static_cast<std::size_t>(b_cols[kb]);
                if (!touched[col]) {
                    touched[col] = true;
                    row_cols.push_back(b_cols[kb]);
                }
                accumulator[col] += a_val * to_float(b_vals[kb]);
                flops += 2.0;
            }
        }
        std::sort(row_cols.begin(), row_cols.end());
        for (const auto col : row_cols) {
            const auto c = static_cast<std::size_t>(col);
            result.add(static_cast<IndexType>(row), col,
                       static_cast<ValueType>(accumulator[c]));
            accumulator[c] = 0.0;
            touched[c] = false;
        }
    }
    auto product =
        Csr<ValueType, IndexType>::create_from_data(exec, result);
    // Data-dependent cost: both operands streamed, the intermediate
    // products accumulated, the result written.
    const double bytes =
        static_cast<double>(a->get_num_stored_elements() +
                            b->get_num_stored_elements() +
                            product->get_num_stored_elements()) *
        (sizeof(ValueType) + sizeof(IndexType)) * 1.5;
    exec->clock().tick(
        sim::profile_stream(bytes, flops, 0.5).time_ns(exec->model()));
    return product;
}


template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>> permute_symmetric(
    const Csr<ValueType, IndexType>* a,
    const std::vector<IndexType>& permutation)
{
    const auto n = a->get_size().rows;
    MGKO_ENSURE(a->get_size().rows == a->get_size().cols,
                "symmetric permutation requires a square matrix");
    MGKO_ENSURE(static_cast<size_type>(permutation.size()) == n,
                "permutation length mismatch");
    // inverse[old] = new
    std::vector<IndexType> inverse(static_cast<std::size_t>(n));
    for (size_type i = 0; i < n; ++i) {
        const auto old = static_cast<size_type>(
            permutation[static_cast<std::size_t>(i)]);
        MGKO_ENSURE(old >= 0 && old < n, "permutation entry out of range");
        inverse[static_cast<std::size_t>(old)] = static_cast<IndexType>(i);
    }
    matrix_data<ValueType, IndexType> data{a->get_size()};
    const auto* ptrs = a->get_const_row_ptrs();
    const auto* cols = a->get_const_col_idxs();
    const auto* vals = a->get_const_values();
    for (size_type row = 0; row < n; ++row) {
        const auto new_row = inverse[static_cast<std::size_t>(row)];
        for (auto k = ptrs[row]; k < ptrs[row + 1]; ++k) {
            data.add(new_row,
                     inverse[static_cast<std::size_t>(cols[k])], vals[k]);
        }
    }
    return Csr<ValueType, IndexType>::create_from_data(a->get_executor(),
                                                       data);
}


namespace reorder {

template <typename ValueType, typename IndexType>
std::vector<IndexType> rcm_ordering(const Csr<ValueType, IndexType>* a)
{
    const auto n = a->get_size().rows;
    MGKO_ENSURE(a->get_size().rows == a->get_size().cols,
                "RCM requires a square matrix");
    // Symmetrized adjacency (pattern of A + Aᵀ, no self loops).
    std::vector<std::vector<IndexType>> adj(static_cast<std::size_t>(n));
    const auto* ptrs = a->get_const_row_ptrs();
    const auto* cols = a->get_const_col_idxs();
    for (size_type row = 0; row < n; ++row) {
        for (auto k = ptrs[row]; k < ptrs[row + 1]; ++k) {
            const auto col = static_cast<size_type>(cols[k]);
            if (col != row) {
                adj[static_cast<std::size_t>(row)].push_back(
                    static_cast<IndexType>(col));
                adj[static_cast<std::size_t>(col)].push_back(
                    static_cast<IndexType>(row));
            }
        }
    }
    std::vector<size_type> degree(static_cast<std::size_t>(n));
    for (size_type v = 0; v < n; ++v) {
        auto& neighbors = adj[static_cast<std::size_t>(v)];
        std::sort(neighbors.begin(), neighbors.end());
        neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                        neighbors.end());
        degree[static_cast<std::size_t>(v)] =
            static_cast<size_type>(neighbors.size());
    }

    std::vector<bool> visited(static_cast<std::size_t>(n), false);
    std::vector<IndexType> order;
    order.reserve(static_cast<std::size_t>(n));
    // Process every connected component, seeding each BFS with its
    // minimum-degree unvisited vertex (a cheap pseudo-peripheral choice).
    for (size_type seed_scan = 0; seed_scan < n; ++seed_scan) {
        if (visited[static_cast<std::size_t>(seed_scan)]) {
            continue;
        }
        size_type seed = seed_scan;
        for (size_type v = seed_scan; v < n; ++v) {
            if (!visited[static_cast<std::size_t>(v)] &&
                degree[static_cast<std::size_t>(v)] <
                    degree[static_cast<std::size_t>(seed)]) {
                seed = v;
            }
        }
        std::deque<IndexType> queue;
        queue.push_back(static_cast<IndexType>(seed));
        visited[static_cast<std::size_t>(seed)] = true;
        while (!queue.empty()) {
            const auto v = queue.front();
            queue.pop_front();
            order.push_back(v);
            auto neighbors = adj[static_cast<std::size_t>(v)];
            std::sort(neighbors.begin(), neighbors.end(),
                      [&](IndexType x, IndexType y) {
                          return degree[static_cast<std::size_t>(x)] <
                                 degree[static_cast<std::size_t>(y)];
                      });
            for (const auto w : neighbors) {
                if (!visited[static_cast<std::size_t>(w)]) {
                    visited[static_cast<std::size_t>(w)] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    // Reverse Cuthill-McKee: reverse the BFS order.
    std::reverse(order.begin(), order.end());
    return order;
}


template <typename ValueType, typename IndexType>
size_type bandwidth(const Csr<ValueType, IndexType>* a)
{
    size_type result = 0;
    const auto* ptrs = a->get_const_row_ptrs();
    const auto* cols = a->get_const_col_idxs();
    for (size_type row = 0; row < a->get_size().rows; ++row) {
        for (auto k = ptrs[row]; k < ptrs[row + 1]; ++k) {
            const auto distance =
                std::abs(static_cast<std::int64_t>(cols[k]) -
                         static_cast<std::int64_t>(row));
            result = std::max(result, static_cast<size_type>(distance));
        }
    }
    return result;
}

}  // namespace reorder


#define MGKO_DECLARE_SPGEMM(ValueType, IndexType)                          \
    template std::unique_ptr<Csr<ValueType, IndexType>> spgemm(            \
        const Csr<ValueType, IndexType>*, const Csr<ValueType, IndexType>*); \
    template std::unique_ptr<Csr<ValueType, IndexType>> permute_symmetric( \
        const Csr<ValueType, IndexType>*, const std::vector<IndexType>&);  \
    template std::vector<IndexType> reorder::rcm_ordering(                 \
        const Csr<ValueType, IndexType>*);                                 \
    template size_type reorder::bandwidth(const Csr<ValueType, IndexType>*)
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_SPGEMM);


}  // namespace mgko
