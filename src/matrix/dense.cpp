#include "matrix/dense.hpp"

#include <algorithm>
#include <cmath>

#include "core/kernel_utils.hpp"

namespace mgko {

namespace kernels::dense {

// All dense kernels share one body across backends: the computation is
// identical, and the performance difference between backends is carried by
// each executor's MachineModel when the cost profile is ticked.

template <typename V>
void fill(const Executor* exec, V* values, size_type rows, size_type cols,
          size_type stride, V value)
{
    const int nt = kernels::exec_threads(exec);
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type r = 0; r < rows; ++r) {
        std::fill_n(values + r * stride, cols, value);
    }
    kernels::tick(exec, sim::profile_stream(
                            static_cast<double>(rows * cols * sizeof(V)), 0.0));
}

template <typename V>
void scale(const Executor* exec, V* x, size_type rows, size_type cols,
           size_type stride, const V* alpha, size_type alpha_cols)
{
    const int nt = kernels::exec_threads(exec);
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type r = 0; r < rows; ++r) {
        for (size_type c = 0; c < cols; ++c) {
            x[r * stride + c] *= alpha[alpha_cols == 1 ? 0 : c];
        }
    }
    const double bytes = static_cast<double>(2 * rows * cols * sizeof(V));
    kernels::tick(exec, sim::profile_stream(bytes,
                                            static_cast<double>(rows * cols)));
}

template <typename V>
void add_scaled(const Executor* exec, V* x, const V* b, size_type rows,
                size_type cols, size_type x_stride, size_type b_stride,
                const V* alpha, size_type alpha_cols, bool subtract)
{
    const int nt = kernels::exec_threads(exec);
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type r = 0; r < rows; ++r) {
        for (size_type c = 0; c < cols; ++c) {
            const V a = alpha[alpha_cols == 1 ? 0 : c];
            const V term = a * b[r * b_stride + c];
            if (subtract) {
                x[r * x_stride + c] -= term;
            } else {
                x[r * x_stride + c] += term;
            }
        }
    }
    const double bytes = static_cast<double>(3 * rows * cols * sizeof(V));
    kernels::tick(exec, sim::profile_stream(
                            bytes, static_cast<double>(2 * rows * cols)));
}

template <typename V>
void compute_dot(const Executor* exec, const V* a, const V* b, size_type rows,
                 size_type cols, size_type a_stride, size_type b_stride,
                 V* result)
{
    for (size_type c = 0; c < cols; ++c) {
        result[c] = zero<V>();
    }
    const int nt = kernels::exec_threads(exec);
#pragma omp parallel num_threads(nt) if (nt > 1)
    {
        for (size_type c = 0; c < cols; ++c) {
            double acc = 0.0;
#pragma omp for nowait
            for (size_type r = 0; r < rows; ++r) {
                acc += to_float(a[r * a_stride + c]) *
                       to_float(b[r * b_stride + c]);
            }
#pragma omp critical
            result[c] += static_cast<V>(acc);
        }
    }
    const double bytes = static_cast<double>(2 * rows * cols * sizeof(V));
    kernels::tick(exec,
                  sim::profile_reduction(exec->model(), bytes,
                                         static_cast<double>(2 * rows * cols)));
}

template <typename V>
void compute_norm2(const Executor* exec, const V* a, size_type rows,
                   size_type cols, size_type stride, V* result)
{
    const int nt = kernels::exec_threads(exec);
    for (size_type c = 0; c < cols; ++c) {
        double acc = 0.0;
#pragma omp parallel for num_threads(nt) if (nt > 1) reduction(+ : acc)
        for (size_type r = 0; r < rows; ++r) {
            const double v = to_float(a[r * stride + c]);
            acc += v * v;
        }
        result[c] = static_cast<V>(std::sqrt(acc));
    }
    const double bytes = static_cast<double>(rows * cols * sizeof(V));
    kernels::tick(exec,
                  sim::profile_reduction(exec->model(), bytes,
                                         static_cast<double>(2 * rows * cols)));
}

template <typename V>
void gemm(const Executor* exec, const V* a, const V* b, V* x, size_type m,
          size_type k, size_type n, size_type a_stride, size_type b_stride,
          size_type x_stride, V alpha, V beta)
{
    const int nt = kernels::exec_threads(exec);
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type i = 0; i < m; ++i) {
        for (size_type j = 0; j < n; ++j) {
            using acc_t = accumulate_t<V>;
            acc_t acc{};
            for (size_type l = 0; l < k; ++l) {
                acc += static_cast<acc_t>(a[i * a_stride + l]) *
                       static_cast<acc_t>(b[l * b_stride + j]);
            }
            auto& out = x[i * x_stride + j];
            // beta == 0 must not read `out`: it may be uninitialized
            // (0 * NaN would poison the result).
            out = beta == zero<V>() ? alpha * V{acc}
                                    : alpha * V{acc} + beta * out;
        }
    }
    const double bytes =
        static_cast<double>((m * k + k * n + 2 * m * n) * sizeof(V));
    kernels::tick(exec, sim::profile_stream(
                            bytes, 2.0 * static_cast<double>(m) *
                                       static_cast<double>(k) *
                                       static_cast<double>(n)));
}

template <typename V>
void gemv_t(const Executor* exec, const V* a, const V* b, V* x, size_type m,
            size_type k, size_type n, size_type a_stride, size_type b_stride,
            size_type x_stride)
{
    // x(k x n) = aᵀ(k x m) * b(m x n), a stored as (m x k) row-major.
    const int nt = kernels::exec_threads(exec);
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type i = 0; i < k; ++i) {
        for (size_type j = 0; j < n; ++j) {
            using acc_t = accumulate_t<V>;
            acc_t acc{};
            for (size_type l = 0; l < m; ++l) {
                acc += static_cast<acc_t>(a[l * a_stride + i]) *
                       static_cast<acc_t>(b[l * b_stride + j]);
            }
            x[i * x_stride + j] = V{acc};
        }
    }
    const double bytes =
        static_cast<double>((m * k + m * n + k * n) * sizeof(V));
    kernels::tick(exec, sim::profile_stream(
                            bytes, 2.0 * static_cast<double>(m) *
                                       static_cast<double>(k) *
                                       static_cast<double>(n)));
}

}  // namespace kernels::dense


template <typename ValueType>
Dense<ValueType>::Dense(std::shared_ptr<const Executor> exec, dim2 size,
                        size_type stride)
    : LinOp{exec, size},
      values_{exec, size.rows * (stride == 0 ? size.cols : stride)},
      stride_{stride == 0 ? size.cols : stride}
{}


template <typename ValueType>
Dense<ValueType>::Dense(std::shared_ptr<const Executor> exec, dim2 size,
                        array<ValueType> values, size_type stride)
    : LinOp{exec, size}, values_{std::move(values)}, stride_{stride}
{
    MGKO_ENSURE(values_.size() >= (size.rows - 1) * stride + size.cols ||
                    size.rows == 0,
                "value buffer too small for dimensions");
}


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::create(
    std::shared_ptr<const Executor> exec, dim2 size, size_type stride)
{
    return std::unique_ptr<Dense>{new Dense{std::move(exec), size, stride}};
}


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::create_filled(
    std::shared_ptr<const Executor> exec, dim2 size, ValueType value)
{
    auto result = create(std::move(exec), size);
    result->fill(value);
    return result;
}


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::create_scalar(
    std::shared_ptr<const Executor> exec, ValueType value)
{
    return create_filled(std::move(exec), dim2{1, 1}, value);
}


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::create_view(
    std::shared_ptr<const Executor> exec, dim2 size, ValueType* data,
    size_type stride)
{
    if (stride == 0) {
        stride = size.cols;
    }
    auto buffer = array<ValueType>::view(
        exec, size.rows == 0 ? 0 : (size.rows - 1) * stride + size.cols, data);
    return std::unique_ptr<Dense>{
        new Dense{std::move(exec), size, std::move(buffer), stride}};
}


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::create_from_data(
    std::shared_ptr<const Executor> exec,
    const matrix_data<ValueType, int64>& data)
{
    auto result = create(std::move(exec), data.size);
    result->read(data);
    return result;
}


template <typename ValueType>
void Dense<ValueType>::read(const matrix_data<ValueType, int64>& data)
{
    data.validate();
    set_size(data.size);
    stride_ = data.size.cols;
    values_.resize_and_reset(data.size.rows * stride_);
    std::fill_n(values_.get_data(), values_.size(), zero<ValueType>());
    for (const auto& e : data.entries) {
        values_.get_data()[e.row * stride_ + e.col] += e.value;
    }
}


template <typename ValueType>
matrix_data<ValueType, int64> Dense<ValueType>::to_data() const
{
    matrix_data<ValueType, int64> result{get_size()};
    for (size_type r = 0; r < get_size().rows; ++r) {
        for (size_type c = 0; c < get_size().cols; ++c) {
            const auto v = values_.get_const_data()[r * stride_ + c];
            if (v != zero<ValueType>()) {
                result.add(r, c, v);
            }
        }
    }
    return result;
}


template <typename ValueType>
ValueType& Dense<ValueType>::at(size_type row, size_type col)
{
    if (row < 0 || row >= get_size().rows) {
        throw OutOfBounds(__FILE__, __LINE__, row, get_size().rows);
    }
    if (col < 0 || col >= get_size().cols) {
        throw OutOfBounds(__FILE__, __LINE__, col, get_size().cols);
    }
    return values_.get_data()[row * stride_ + col];
}


template <typename ValueType>
ValueType Dense<ValueType>::at(size_type row, size_type col) const
{
    if (row < 0 || row >= get_size().rows) {
        throw OutOfBounds(__FILE__, __LINE__, row, get_size().rows);
    }
    if (col < 0 || col >= get_size().cols) {
        throw OutOfBounds(__FILE__, __LINE__, col, get_size().cols);
    }
    return values_.get_const_data()[row * stride_ + col];
}


template <typename ValueType>
void Dense<ValueType>::fill(ValueType value)
{
    auto exec = get_executor();
    exec->run(make_operation(
        "dense_fill",
        [&](const ReferenceExecutor* e) {
            kernels::dense::fill(e, get_values(), get_size().rows,
                                 get_size().cols, stride_, value);
        },
        [&](const OmpExecutor* e) {
            kernels::dense::fill(e, get_values(), get_size().rows,
                                 get_size().cols, stride_, value);
        },
        [&](const CudaExecutor* e) {
            kernels::dense::fill(e, get_values(), get_size().rows,
                                 get_size().cols, stride_, value);
        },
        [&](const HipExecutor* e) {
            kernels::dense::fill(e, get_values(), get_size().rows,
                                 get_size().cols, stride_, value);
        }));
}


namespace {

/// Shorthand: runs the same kernel functor on whichever backend the
/// executor is.  Dense kernels share bodies across backends (their cost
/// model, not their code, differs), so the dispatch is uniform.
template <typename Fn>
void run_uniform(const Executor* exec, const char* name, Fn fn)
{
    exec->run(make_operation(
        name, [&](const ReferenceExecutor* e) { fn(e); },
        [&](const OmpExecutor* e) { fn(e); },
        [&](const CudaExecutor* e) { fn(e); },
        [&](const HipExecutor* e) { fn(e); }));
}

}  // namespace


template <typename ValueType>
void Dense<ValueType>::scale(const Dense* alpha)
{
    MGKO_ENSURE(alpha->get_size().rows == 1 &&
                    (alpha->get_size().cols == 1 ||
                     alpha->get_size().cols == get_size().cols),
                "alpha must be 1x1 or 1 x cols");
    run_uniform(get_executor().get(), "dense_scale", [&](const Executor* e) {
        kernels::dense::scale(e, get_values(), get_size().rows,
                              get_size().cols, stride_,
                              alpha->get_const_values(),
                              alpha->get_size().cols);
    });
}


template <typename ValueType>
void Dense<ValueType>::add_scaled(const Dense* alpha, const Dense* b)
{
    MGKO_ASSERT_EQUAL_DIMENSIONS("add_scaled", get_size(), b->get_size());
    run_uniform(get_executor().get(), "dense_add_scaled",
                [&](const Executor* e) {
                    kernels::dense::add_scaled(
                        e, get_values(), b->get_const_values(),
                        get_size().rows, get_size().cols, stride_, b->stride_,
                        alpha->get_const_values(), alpha->get_size().cols,
                        false);
                });
}


template <typename ValueType>
void Dense<ValueType>::sub_scaled(const Dense* alpha, const Dense* b)
{
    MGKO_ASSERT_EQUAL_DIMENSIONS("sub_scaled", get_size(), b->get_size());
    run_uniform(get_executor().get(), "dense_sub_scaled",
                [&](const Executor* e) {
                    kernels::dense::add_scaled(
                        e, get_values(), b->get_const_values(),
                        get_size().rows, get_size().cols, stride_, b->stride_,
                        alpha->get_const_values(), alpha->get_size().cols,
                        true);
                });
}


template <typename ValueType>
void Dense<ValueType>::compute_dot(const Dense* b, Dense* result) const
{
    MGKO_ASSERT_EQUAL_DIMENSIONS("compute_dot", get_size(), b->get_size());
    MGKO_ASSERT_EQUAL_DIMENSIONS("compute_dot result",
                                 result->get_size(),
                                 (dim2{1, get_size().cols}));
    run_uniform(get_executor().get(), "dense_dot", [&](const Executor* e) {
        kernels::dense::compute_dot(e, get_const_values(),
                                    b->get_const_values(), get_size().rows,
                                    get_size().cols, stride_, b->stride_,
                                    result->get_values());
    });
}


template <typename ValueType>
void Dense<ValueType>::compute_norm2(Dense* result) const
{
    MGKO_ASSERT_EQUAL_DIMENSIONS("compute_norm2 result", result->get_size(),
                                 (dim2{1, get_size().cols}));
    run_uniform(get_executor().get(), "dense_norm2", [&](const Executor* e) {
        kernels::dense::compute_norm2(e, get_const_values(), get_size().rows,
                                      get_size().cols, stride_,
                                      result->get_values());
    });
}


template <typename ValueType>
double Dense<ValueType>::dot_scalar(const Dense* b) const
{
    auto result = Dense::create(get_executor(), dim2{1, get_size().cols});
    compute_dot(b, result.get());
    return to_float(result->at(0, 0));
}


template <typename ValueType>
double Dense<ValueType>::norm2_scalar() const
{
    auto result = Dense::create(get_executor(), dim2{1, get_size().cols});
    compute_norm2(result.get());
    return to_float(result->at(0, 0));
}


template <typename ValueType>
void Dense<ValueType>::transpose_apply(const Dense* b, Dense* x) const
{
    MGKO_ASSERT_CONFORMANT("transpose_apply", get_size().transposed(),
                           b->get_size());
    MGKO_ASSERT_EQUAL_DIMENSIONS("transpose_apply result", x->get_size(),
                                 (dim2{get_size().cols, b->get_size().cols}));
    run_uniform(get_executor().get(), "dense_gemv_t", [&](const Executor* e) {
        kernels::dense::gemv_t(e, get_const_values(), b->get_const_values(),
                               x->get_values(), get_size().rows,
                               get_size().cols, b->get_size().cols, stride_,
                               b->get_stride(), x->get_stride());
    });
}


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::transpose() const
{
    auto result =
        Dense::create(get_executor(), dim2{get_size().cols, get_size().rows});
    for (size_type r = 0; r < get_size().rows; ++r) {
        for (size_type c = 0; c < get_size().cols; ++c) {
            result->get_values()[c * result->stride_ + r] =
                get_const_values()[r * stride_ + c];
        }
    }
    get_executor()->clock().tick(
        sim::profile_stream(
            static_cast<double>(2 * get_size().area() * sizeof(ValueType)),
            0.0, 0.5)
            .time_ns(get_executor()->model()));
    return result;
}


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::clone() const
{
    return clone_to(get_executor());
}


namespace {

/// Row-wise strided copy charged as ONE transfer of the full payload (the
/// per-row loop is a host artifact; devices move the block in one burst).
template <typename V>
void strided_copy(const Executor* dst_exec, const Executor* src_exec,
                  dim2 size, const V* src, mgko::size_type src_stride, V* dst,
                  mgko::size_type dst_stride)
{
    if (size.rows == 0 || size.cols == 0) {
        return;
    }
    if (src_stride == size.cols && dst_stride == size.cols) {
        dst_exec->copy_from(src_exec,
                            size.area() *
                                static_cast<mgko::size_type>(sizeof(V)),
                            src, dst);
        return;
    }
    for (mgko::size_type r = 0; r < size.rows; ++r) {
        std::copy_n(src + r * src_stride, size.cols, dst + r * dst_stride);
    }
    dst_exec->charge_copy(src_exec, size.area() *
                                        static_cast<mgko::size_type>(sizeof(V)));
}

}  // namespace


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::clone_to(
    std::shared_ptr<const Executor> exec) const
{
    auto result = Dense::create(exec, get_size());
    strided_copy(exec.get(), get_executor().get(), get_size(),
                 get_const_values(), stride_, result->get_values(),
                 result->stride_);
    return result;
}


template <typename ValueType>
void Dense<ValueType>::copy_from(const Dense* other)
{
    MGKO_ASSERT_EQUAL_DIMENSIONS("copy_from", get_size(), other->get_size());
    strided_copy(get_executor().get(), other->get_executor().get(), get_size(),
                 other->get_const_values(), other->stride_, get_values(),
                 stride_);
}


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::column_view(size_type col)
{
    MGKO_ENSURE(col >= 0 && col < get_size().cols, "column out of range");
    return create_view(get_executor(), dim2{get_size().rows, 1},
                       get_values() + col, stride_);
}


template <typename ValueType>
std::unique_ptr<const Dense<ValueType>> Dense<ValueType>::column_view(
    size_type col) const
{
    MGKO_ENSURE(col >= 0 && col < get_size().cols, "column out of range");
    return create_view(get_executor(), dim2{get_size().rows, 1},
                       const_cast<ValueType*>(get_const_values()) + col,
                       stride_);
}


template <typename ValueType>
std::unique_ptr<Dense<ValueType>> Dense<ValueType>::row_block_view(
    size_type begin, size_type end)
{
    MGKO_ENSURE(begin >= 0 && begin <= end && end <= get_size().rows,
                "invalid row block");
    return create_view(get_executor(), dim2{end - begin, get_size().cols},
                       get_values() + begin * stride_, stride_);
}


template <typename ValueType>
void Dense<ValueType>::apply_impl(const LinOp* b, LinOp* x) const
{
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    run_uniform(get_executor().get(), "dense_gemm", [&](const Executor* e) {
        kernels::dense::gemm(e, get_const_values(), dense_b->get_const_values(),
                             dense_x->get_values(), get_size().rows,
                             get_size().cols, dense_b->get_size().cols,
                             stride_, dense_b->get_stride(),
                             dense_x->get_stride(), one<ValueType>(),
                             zero<ValueType>());
    });
}


template <typename ValueType>
void Dense<ValueType>::apply_impl(const LinOp* alpha, const LinOp* b,
                                  const LinOp* beta, LinOp* x) const
{
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    const auto a = as_dense<ValueType>(alpha)->at(0, 0);
    const auto bt = as_dense<ValueType>(beta)->at(0, 0);
    run_uniform(get_executor().get(), "dense_gemm", [&](const Executor* e) {
        kernels::dense::gemm(e, get_const_values(), dense_b->get_const_values(),
                             dense_x->get_values(), get_size().rows,
                             get_size().cols, dense_b->get_size().cols,
                             stride_, dense_b->get_stride(),
                             dense_x->get_stride(), a, bt);
    });
}


template <typename ValueType>
Dense<ValueType>* as_dense(LinOp* op)
{
    auto result = dynamic_cast<Dense<ValueType>*>(op);
    if (result == nullptr) {
        MGKO_NOT_SUPPORTED("operand is not Dense<" +
                           to_string(dtype_of<ValueType>::value) + ">");
    }
    return result;
}


template <typename ValueType>
const Dense<ValueType>* as_dense(const LinOp* op)
{
    auto result = dynamic_cast<const Dense<ValueType>*>(op);
    if (result == nullptr) {
        MGKO_NOT_SUPPORTED("operand is not Dense<" +
                           to_string(dtype_of<ValueType>::value) + ">");
    }
    return result;
}


std::unique_ptr<LinOp> create_dense_like(const LinOp* proto, dim2 size)
{
    if (auto d = dynamic_cast<const Dense<half>*>(proto)) {
        return Dense<half>::create(d->get_executor(), size);
    }
    if (auto d = dynamic_cast<const Dense<float>*>(proto)) {
        return Dense<float>::create(d->get_executor(), size);
    }
    if (auto d = dynamic_cast<const Dense<double>*>(proto)) {
        return Dense<double>::create(d->get_executor(), size);
    }
    MGKO_NOT_SUPPORTED("prototype is not a Dense operator");
}


void copy_dense(const LinOp* src, LinOp* dst)
{
    if (auto s = dynamic_cast<const Dense<half>*>(src)) {
        as_dense<half>(dst)->copy_from(s);
        return;
    }
    if (auto s = dynamic_cast<const Dense<float>*>(src)) {
        as_dense<float>(dst)->copy_from(s);
        return;
    }
    if (auto s = dynamic_cast<const Dense<double>*>(src)) {
        as_dense<double>(dst)->copy_from(s);
        return;
    }
    MGKO_NOT_SUPPORTED("source is not a Dense operator");
}


#define MGKO_DECLARE_DENSE(ValueType) template class Dense<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_DENSE);

#define MGKO_DECLARE_AS_DENSE(ValueType)                      \
    template Dense<ValueType>* as_dense<ValueType>(LinOp*);   \
    template const Dense<ValueType>* as_dense<ValueType>(const LinOp*)
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_AS_DENSE);


}  // namespace mgko
