#include "matrix/diagonal.hpp"

#include "core/kernel_utils.hpp"
#include "core/math.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"

namespace mgko {


template <typename ValueType>
Diagonal<ValueType>::Diagonal(std::shared_ptr<const Executor> exec,
                              size_type n)
    : LinOp{exec, dim2{n}}, values_{exec, n}
{}


template <typename ValueType>
std::unique_ptr<Diagonal<ValueType>> Diagonal<ValueType>::create(
    std::shared_ptr<const Executor> exec, size_type n)
{
    return std::unique_ptr<Diagonal>{new Diagonal{std::move(exec), n}};
}


template <typename ValueType>
std::unique_ptr<Diagonal<ValueType>> Diagonal<ValueType>::create_from_values(
    std::shared_ptr<const Executor> exec,
    const std::vector<ValueType>& values)
{
    auto result = create(std::move(exec),
                         static_cast<size_type>(values.size()));
    std::copy(values.begin(), values.end(), result->get_values());
    return result;
}


template <typename ValueType>
std::unique_ptr<Diagonal<ValueType>> Diagonal<ValueType>::inverse() const
{
    auto result = create(get_executor(), get_size().rows);
    for (size_type i = 0; i < get_size().rows; ++i) {
        result->get_values()[i] =
            safe_reciprocal(values_.get_const_data()[i]);
    }
    get_executor()->clock().tick(
        sim::profile_stream(static_cast<double>(2 * values_.bytes()), 0.0)
            .time_ns(get_executor()->model()));
    return result;
}


namespace {

template <typename V>
void diagonal_apply(const Executor* exec, const V* diag, const Dense<V>* b,
                    Dense<V>* x, size_type n, bool advanced, V alpha, V beta)
{
    const auto vec_cols = b->get_size().cols;
    const int nt = kernels::exec_threads(exec);
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type i = 0; i < n; ++i) {
        for (size_type c = 0; c < vec_cols; ++c) {
            const V term =
                diag[i] *
                b->get_const_values()[i * b->get_stride() + c];
            auto& out = x->get_values()[i * x->get_stride() + c];
            out = !advanced           ? term
                  : beta == zero<V>() ? alpha * term
                                      : alpha * term + beta * out;
        }
    }
    kernels::tick(exec,
                  sim::profile_stream(
                      static_cast<double>((3 * n * vec_cols + n) * sizeof(V)),
                      2.0 * static_cast<double>(n * vec_cols)));
}

}  // namespace


template <typename ValueType>
void Diagonal<ValueType>::apply_impl(const LinOp* b, LinOp* x) const
{
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    auto kernel = [&](const Executor* e) {
        diagonal_apply(e, values_.get_const_data(), dense_b, dense_x,
                       get_size().rows, false, one<ValueType>(),
                       zero<ValueType>());
    };
    get_executor()->run(make_operation(
        "diagonal_apply", [&](const ReferenceExecutor* e) { kernel(e); },
        [&](const OmpExecutor* e) { kernel(e); },
        [&](const CudaExecutor* e) { kernel(e); },
        [&](const HipExecutor* e) { kernel(e); }));
}


template <typename ValueType>
void Diagonal<ValueType>::apply_impl(const LinOp* alpha, const LinOp* b,
                                     const LinOp* beta, LinOp* x) const
{
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    const auto a = as_dense<ValueType>(alpha)->at(0, 0);
    const auto bt = as_dense<ValueType>(beta)->at(0, 0);
    auto kernel = [&](const Executor* e) {
        diagonal_apply(e, values_.get_const_data(), dense_b, dense_x,
                       get_size().rows, true, a, bt);
    };
    get_executor()->run(make_operation(
        "diagonal_apply", [&](const ReferenceExecutor* e) { kernel(e); },
        [&](const OmpExecutor* e) { kernel(e); },
        [&](const CudaExecutor* e) { kernel(e); },
        [&](const HipExecutor* e) { kernel(e); }));
}


#define MGKO_DECLARE_DIAGONAL(ValueType) template class Diagonal<ValueType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_TYPE(MGKO_DECLARE_DIAGONAL);


}  // namespace mgko
