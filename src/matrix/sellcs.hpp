// SELL-C-σ sparse matrix (sliced ELLPACK with sorting), modeled on
// gko::matrix::Sellp and the SELL-C-σ format of "Porting a sparse linear
// algebra math library to Intel GPUs" (Tsai et al.).
//
// Rows are grouped into slices of C rows; each slice is padded only to the
// width of its own longest row and stored column-major within the slice, so
// device lanes read coalesced C-wide stripes while the padded slab stays
// close to the true nnz.  A local sorting window of σ rows reorders rows by
// descending length before slicing, which packs rows of similar length into
// the same slice — the mechanism that closes ELL's bandwidth gap on
// matrices with irregular row lengths.
#pragma once

#include <memory>

#include "core/array.hpp"
#include "core/lin_op.hpp"
#include "core/matrix_data.hpp"
#include "core/types.hpp"
#include "sim/cost_model.hpp"

namespace mgko {


template <typename ValueType>
class Dense;
template <typename ValueType, typename IndexType>
class Csr;


template <typename ValueType = double, typename IndexType = int32>
class SellCs : public LinOp {
public:
    using value_type = ValueType;
    using index_type = IndexType;

    /// Paper defaults: slice size C = 32 (one warp / SIMD group per slice),
    /// sorting window σ = 256 (8 slices reordered together).
    static constexpr size_type default_slice_size = 32;
    static constexpr size_type default_sorting_window = 256;
    /// Upper bound on C: the SpMV kernel keeps one accumulator per lane on
    /// the stack.
    static constexpr size_type max_slice_size = 256;

    static std::unique_ptr<SellCs> create(
        std::shared_ptr<const Executor> exec, dim2 size = {},
        size_type slice_size = default_slice_size,
        size_type sorting_window = default_sorting_window);

    static std::unique_ptr<SellCs> create_from_data(
        std::shared_ptr<const Executor> exec,
        const matrix_data<ValueType, IndexType>& data,
        size_type slice_size = default_slice_size,
        size_type sorting_window = default_sorting_window);

    void read(const matrix_data<ValueType, IndexType>& data);
    matrix_data<ValueType, IndexType> to_data() const;

    size_type get_slice_size() const { return slice_size_; }
    size_type get_sorting_window() const { return sorting_window_; }
    size_type get_num_slices() const
    {
        return slice_sets_.size() > 0
                   ? static_cast<size_type>(slice_sets_.size()) - 1
                   : 0;
    }

    ValueType* get_values() { return values_.get_data(); }
    const ValueType* get_const_values() const
    {
        return values_.get_const_data();
    }
    IndexType* get_col_idxs() { return col_idxs_.get_data(); }
    const IndexType* get_const_col_idxs() const
    {
        return col_idxs_.get_const_data();
    }
    /// Prefix sum of per-slice widths; the element offset of slice `s` is
    /// slice_sets[s] * slice_size.
    const IndexType* get_const_slice_sets() const
    {
        return slice_sets_.get_const_data();
    }
    /// Row permutation from the σ-window sort: perm[storage_row] =
    /// original_row.  SpMV writes results to the original positions, so
    /// the reordering is invisible to callers.
    const IndexType* get_const_permutation() const
    {
        return perm_.get_const_data();
    }

    /// Padded storage size (values array length).
    size_type get_num_stored_elements() const { return values_.size(); }
    /// True number of nonzeros represented.
    size_type get_num_nonzeros() const { return nnz_; }

    void convert_to(Csr<ValueType, IndexType>* result) const;

    sim::kernel_profile spmv_profile(const sim::MachineModel& m,
                                     size_type vec_cols, bool advanced) const;

protected:
    SellCs(std::shared_ptr<const Executor> exec, dim2 size,
           size_type slice_size, size_type sorting_window);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    array<ValueType> values_;
    array<IndexType> col_idxs_;
    array<IndexType> slice_sets_;
    array<IndexType> perm_;
    size_type slice_size_;
    size_type sorting_window_;
    size_type nnz_{0};

    mutable double miss_rate_{-1.0};
};


}  // namespace mgko
