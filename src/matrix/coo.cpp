#include "matrix/coo.hpp"

#include <algorithm>
#include <numeric>

#include "core/kernel_utils.hpp"
#include "core/math.hpp"
#include "matrix/coo_kernels.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"

namespace mgko {


template <typename ValueType, typename IndexType>
Coo<ValueType, IndexType>::Coo(std::shared_ptr<const Executor> exec, dim2 size,
                               size_type nnz)
    : LinOp{exec, size},
      values_{exec, nnz},
      row_idxs_{exec, nnz},
      col_idxs_{exec, nnz}
{}


template <typename ValueType, typename IndexType>
std::unique_ptr<Coo<ValueType, IndexType>> Coo<ValueType, IndexType>::create(
    std::shared_ptr<const Executor> exec, dim2 size, size_type nnz)
{
    return std::unique_ptr<Coo>{new Coo{std::move(exec), size, nnz}};
}


template <typename ValueType, typename IndexType>
std::unique_ptr<Coo<ValueType, IndexType>>
Coo<ValueType, IndexType>::create_from_data(
    std::shared_ptr<const Executor> exec,
    const matrix_data<ValueType, IndexType>& data)
{
    auto result = create(std::move(exec), data.size);
    result->read(data);
    return result;
}


template <typename ValueType, typename IndexType>
void Coo<ValueType, IndexType>::read(
    const matrix_data<ValueType, IndexType>& data)
{
    data.validate();
    auto sorted = data;
    sorted.sort_row_major();
    sorted.sum_duplicates();

    set_size(data.size);
    const auto nnz = sorted.num_stored();
    values_.resize_and_reset(nnz);
    row_idxs_.resize_and_reset(nnz);
    col_idxs_.resize_and_reset(nnz);
    for (size_type i = 0; i < nnz; ++i) {
        const auto& e = sorted.entries[static_cast<std::size_t>(i)];
        values_.get_data()[i] = e.value;
        row_idxs_.get_data()[i] = e.row;
        col_idxs_.get_data()[i] = e.col;
    }
    miss_rate_ = -1.0;
}


template <typename ValueType, typename IndexType>
matrix_data<ValueType, IndexType> Coo<ValueType, IndexType>::to_data() const
{
    matrix_data<ValueType, IndexType> result{get_size()};
    result.entries.reserve(static_cast<std::size_t>(values_.size()));
    for (size_type k = 0; k < values_.size(); ++k) {
        result.add(row_idxs_.get_const_data()[k],
                   col_idxs_.get_const_data()[k],
                   values_.get_const_data()[k]);
    }
    return result;
}


template <typename ValueType, typename IndexType>
sim::kernel_profile Coo<ValueType, IndexType>::spmv_profile(
    sim::spmv_strategy s, const sim::MachineModel& m, size_type vec_cols,
    bool advanced) const
{
    if (miss_rate_ < 0.0) {
        miss_rate_ = sim::locality_miss_rate(get_const_col_idxs(),
                                             values_.size(), get_size().cols);
    }
    return sim::assemble_spmv_profile(
        s, m, get_size().rows, values_.size(),
        static_cast<size_type>(sizeof(ValueType)),
        static_cast<size_type>(sizeof(IndexType)), miss_rate_,
        sim::strategy_imbalance<IndexType>(s, m, get_size().rows, nullptr),
        vec_cols, advanced);
}


template <typename ValueType, typename IndexType>
void Coo<ValueType, IndexType>::apply_impl(const LinOp* b, LinOp* x) const
{
    auto dense_x = as_dense<ValueType>(x);
    dense_x->fill(zero<ValueType>());
    // COO SpMV naturally accumulates: x += A b.
    apply_accumulate(b, dense_x);
}


template <typename ValueType, typename IndexType>
void Coo<ValueType, IndexType>::apply_impl(const LinOp* alpha, const LinOp* b,
                                           const LinOp* beta, LinOp* x) const
{
    auto dense_x = as_dense<ValueType>(x);
    // x = alpha * A * b + beta * x: scale x by beta, accumulate alpha-scaled
    // product through a temporary.
    auto tmp = Dense<ValueType>::create(get_executor(), dense_x->get_size());
    tmp->fill(zero<ValueType>());
    apply_accumulate(b, tmp.get());
    dense_x->scale(as_dense<ValueType>(beta));
    dense_x->add_scaled(as_dense<ValueType>(alpha), tmp.get());
}


template <typename ValueType, typename IndexType>
void Coo<ValueType, IndexType>::apply_accumulate(const LinOp* b,
                                                 Dense<ValueType>* x) const
{
    auto dense_b = as_dense<ValueType>(b);
    const auto nnz = values_.size();
    const auto vec_cols = dense_b->get_size().cols;
    const auto* values = get_const_values();
    const auto* row_idxs = get_const_row_idxs();
    const auto* col_idxs = get_const_col_idxs();

    get_executor()->run(make_operation(
        "coo_spmv",
        [&](const ReferenceExecutor* e) {
            kernels::coo::spmv_serial(values, row_idxs, col_idxs, nnz,
                                      dense_b->get_const_values(),
                                      dense_b->get_stride(), x->get_values(),
                                      x->get_stride(), vec_cols);
            kernels::tick(e, spmv_profile(sim::spmv_strategy::serial,
                                          e->model(), vec_cols, false));
        },
        [&](const OmpExecutor* e) {
            kernels::coo::spmv_flat(kernels::exec_threads(e), values,
                                    row_idxs, col_idxs, nnz,
                                    dense_b->get_const_values(),
                                    dense_b->get_stride(), x->get_values(),
                                    x->get_stride(), vec_cols);
            kernels::tick(e, spmv_profile(sim::spmv_strategy::coo_flat_atomic,
                                          e->model(), vec_cols, false));
        },
        [&](const CudaExecutor* e) {
            kernels::coo::spmv_flat(kernels::exec_threads(e), values,
                                    row_idxs, col_idxs, nnz,
                                    dense_b->get_const_values(),
                                    dense_b->get_stride(), x->get_values(),
                                    x->get_stride(), vec_cols);
            kernels::tick(e, spmv_profile(sim::spmv_strategy::coo_flat_atomic,
                                          e->model(), vec_cols, false));
        },
        [&](const HipExecutor* e) {
            kernels::coo::spmv_flat(kernels::exec_threads(e), values,
                                    row_idxs, col_idxs, nnz,
                                    dense_b->get_const_values(),
                                    dense_b->get_stride(), x->get_values(),
                                    x->get_stride(), vec_cols);
            kernels::tick(e, spmv_profile(sim::spmv_strategy::coo_flat_atomic,
                                          e->model(), vec_cols, false));
        }));
}


template <typename ValueType, typename IndexType>
std::unique_ptr<Coo<ValueType, IndexType>> Coo<ValueType, IndexType>::clone_to(
    std::shared_ptr<const Executor> exec) const
{
    auto result = create(exec, get_size(), values_.size());
    result->values_ = array<ValueType>{exec, values_};
    result->row_idxs_ = array<IndexType>{exec, row_idxs_};
    result->col_idxs_ = array<IndexType>{exec, col_idxs_};
    return result;
}


template <typename ValueType, typename IndexType>
void Coo<ValueType, IndexType>::convert_to(
    Csr<ValueType, IndexType>* result) const
{
    result->read(to_data());
}


template <typename ValueType, typename IndexType>
void Coo<ValueType, IndexType>::convert_to(Dense<ValueType>* result) const
{
    result->read(to_data().template cast<ValueType, int64>());
}


#define MGKO_DECLARE_COO(ValueType, IndexType) \
    template class Coo<ValueType, IndexType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_COO);


}  // namespace mgko
