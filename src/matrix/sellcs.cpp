#include "matrix/sellcs.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/kernel_utils.hpp"
#include "core/math.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"

namespace mgko {

namespace kernels::sellcs {

// Slice-local column-major SELL-C-σ: slot k of lane i in slice s lives at
// (slice_sets[s] + k) * C + i, so each k step reads one contiguous C-wide
// stripe of values/col_idxs — the per-slice vectorizable access the format
// exists for.  `perm[storage_row] = original_row` undoes the σ-window sort
// on the output side.
template <typename V, typename I>
void spmv(int nt, const V* values, const I* col_idxs, const I* slice_sets,
          const I* perm, size_type rows, size_type slice_size,
          size_type num_slices, const V* b, size_type b_stride, V* x,
          size_type x_stride, size_type vec_cols, bool advanced, V alpha,
          V beta)
{
#pragma omp parallel for num_threads(nt) if (nt > 1)
    for (size_type s = 0; s < num_slices; ++s) {
        using acc_t = accumulate_t<V>;
        const auto set = static_cast<size_type>(slice_sets[s]);
        const auto width = static_cast<size_type>(slice_sets[s + 1]) - set;
        const auto base = s * slice_size;
        const auto lanes = std::min(slice_size, rows - base);
        acc_t acc[SellCs<V, I>::max_slice_size];
        for (size_type c = 0; c < vec_cols; ++c) {
            for (size_type i = 0; i < lanes; ++i) {
                acc[i] = acc_t{};
            }
            for (size_type k = 0; k < width; ++k) {
                const auto stripe = (set + k) * slice_size;
#pragma omp simd
                for (size_type i = 0; i < lanes; ++i) {
                    const auto col =
                        static_cast<size_type>(col_idxs[stripe + i]);
                    acc[i] += static_cast<acc_t>(values[stripe + i]) *
                              static_cast<acc_t>(b[col * b_stride + c]);
                }
            }
            for (size_type i = 0; i < lanes; ++i) {
                const auto row = static_cast<size_type>(perm[base + i]);
                auto& out = x[row * x_stride + c];
                // beta == 0 must not read `out` (may be uninitialized).
                out = !advanced           ? V{acc[i]}
                      : beta == zero<V>() ? alpha * V{acc[i]}
                                          : alpha * V{acc[i]} + beta * out;
            }
        }
    }
}

}  // namespace kernels::sellcs


template <typename ValueType, typename IndexType>
SellCs<ValueType, IndexType>::SellCs(std::shared_ptr<const Executor> exec,
                                     dim2 size, size_type slice_size,
                                     size_type sorting_window)
    : LinOp{exec, size},
      values_{exec, 0},
      col_idxs_{exec, 0},
      slice_sets_{exec, 0},
      perm_{exec, 0},
      slice_size_{slice_size},
      sorting_window_{sorting_window}
{
    MGKO_ENSURE(slice_size_ >= 1 && slice_size_ <= max_slice_size,
                "SELL-C-σ slice size must be in [1, 256]");
    MGKO_ENSURE(sorting_window_ >= 1,
                "SELL-C-σ sorting window must be positive");
}


template <typename ValueType, typename IndexType>
std::unique_ptr<SellCs<ValueType, IndexType>>
SellCs<ValueType, IndexType>::create(std::shared_ptr<const Executor> exec,
                                     dim2 size, size_type slice_size,
                                     size_type sorting_window)
{
    return std::unique_ptr<SellCs>{
        new SellCs{std::move(exec), size, slice_size, sorting_window}};
}


template <typename ValueType, typename IndexType>
std::unique_ptr<SellCs<ValueType, IndexType>>
SellCs<ValueType, IndexType>::create_from_data(
    std::shared_ptr<const Executor> exec,
    const matrix_data<ValueType, IndexType>& data, size_type slice_size,
    size_type sorting_window)
{
    auto result = create(std::move(exec), data.size, slice_size,
                         sorting_window);
    result->read(data);
    return result;
}


template <typename ValueType, typename IndexType>
void SellCs<ValueType, IndexType>::read(
    const matrix_data<ValueType, IndexType>& data)
{
    data.validate();
    auto sorted = data;
    sorted.sort_row_major();
    sorted.sum_duplicates();

    set_size(data.size);
    const auto rows = data.size.rows;
    std::vector<size_type> row_nnz(static_cast<std::size_t>(rows), 0);
    for (const auto& e : sorted.entries) {
        ++row_nnz[static_cast<std::size_t>(e.row)];
    }
    // Row offsets into the sorted entry list (CSR-style prefix sum).
    std::vector<size_type> row_begin(static_cast<std::size_t>(rows) + 1, 0);
    for (size_type r = 0; r < rows; ++r) {
        row_begin[static_cast<std::size_t>(r) + 1] =
            row_begin[static_cast<std::size_t>(r)] +
            row_nnz[static_cast<std::size_t>(r)];
    }

    // σ-window sort: within each window of `sorting_window_` rows, order
    // rows by descending length (stable, so ties keep the natural order);
    // a window larger than the matrix degenerates to one global sort.
    std::vector<IndexType> perm(static_cast<std::size_t>(rows));
    std::iota(perm.begin(), perm.end(), IndexType{});
    for (size_type w = 0; w < rows; w += sorting_window_) {
        const auto end = std::min(rows, w + sorting_window_);
        std::stable_sort(perm.begin() + w, perm.begin() + end,
                         [&](IndexType a, IndexType b) {
                             return row_nnz[static_cast<std::size_t>(a)] >
                                    row_nnz[static_cast<std::size_t>(b)];
                         });
    }

    const auto num_slices = ceildiv(rows, slice_size_);
    slice_sets_.resize_and_reset(num_slices + 1);
    auto* sets = slice_sets_.get_data();
    sets[0] = IndexType{};
    for (size_type s = 0; s < num_slices; ++s) {
        size_type width = 0;
        const auto base = s * slice_size_;
        const auto lanes = std::min(slice_size_, rows - base);
        for (size_type i = 0; i < lanes; ++i) {
            width = std::max(
                width, row_nnz[static_cast<std::size_t>(
                           perm[static_cast<std::size_t>(base + i)])]);
        }
        sets[s + 1] = sets[s] + static_cast<IndexType>(width);
    }

    const auto stored =
        static_cast<size_type>(sets[num_slices]) * slice_size_;
    values_.resize_and_reset(stored);
    col_idxs_.resize_and_reset(stored);
    std::fill_n(values_.get_data(), values_.size(), zero<ValueType>());
    // Padding points at column 0 with value 0, keeping reads in bounds.
    std::fill_n(col_idxs_.get_data(), col_idxs_.size(), IndexType{});

    perm_.resize_and_reset(rows);
    std::copy(perm.begin(), perm.end(), perm_.get_data());
    for (size_type s = 0; s < num_slices; ++s) {
        const auto base = s * slice_size_;
        const auto lanes = std::min(slice_size_, rows - base);
        for (size_type i = 0; i < lanes; ++i) {
            const auto row = static_cast<size_type>(
                perm[static_cast<std::size_t>(base + i)]);
            const auto begin = row_begin[static_cast<std::size_t>(row)];
            const auto len = row_nnz[static_cast<std::size_t>(row)];
            for (size_type k = 0; k < len; ++k) {
                const auto idx =
                    (static_cast<size_type>(sets[s]) + k) * slice_size_ + i;
                values_.get_data()[idx] =
                    sorted.entries[static_cast<std::size_t>(begin + k)].value;
                col_idxs_.get_data()[idx] =
                    sorted.entries[static_cast<std::size_t>(begin + k)].col;
            }
        }
    }
    nnz_ = static_cast<size_type>(sorted.entries.size());
    miss_rate_ = -1.0;
}


template <typename ValueType, typename IndexType>
matrix_data<ValueType, IndexType> SellCs<ValueType, IndexType>::to_data()
    const
{
    matrix_data<ValueType, IndexType> result{get_size()};
    const auto rows = get_size().rows;
    const auto* sets = slice_sets_.get_const_data();
    for (size_type s = 0; s < get_num_slices(); ++s) {
        const auto base = s * slice_size_;
        const auto lanes = std::min(slice_size_, rows - base);
        const auto width =
            static_cast<size_type>(sets[s + 1]) - static_cast<size_type>(sets[s]);
        for (size_type i = 0; i < lanes; ++i) {
            const auto row = perm_.get_const_data()[base + i];
            for (size_type k = 0; k < width; ++k) {
                const auto idx =
                    (static_cast<size_type>(sets[s]) + k) * slice_size_ + i;
                const auto v = values_.get_const_data()[idx];
                if (v != zero<ValueType>()) {
                    result.add(row, col_idxs_.get_const_data()[idx], v);
                }
            }
        }
    }
    result.sort_row_major();
    return result;
}


template <typename ValueType, typename IndexType>
sim::kernel_profile SellCs<ValueType, IndexType>::spmv_profile(
    const sim::MachineModel& m, size_type vec_cols, bool advanced) const
{
    if (miss_rate_ < 0.0) {
        miss_rate_ = sim::locality_miss_rate(get_const_col_idxs(),
                                             col_idxs_.size(),
                                             get_size().cols);
    }
    return sim::assemble_spmv_profile(
        sim::spmv_strategy::sellcs, m, get_size().rows, nnz_,
        static_cast<size_type>(sizeof(ValueType)),
        static_cast<size_type>(sizeof(IndexType)), miss_rate_, 1.0, vec_cols,
        advanced, get_num_stored_elements());
}


namespace {

template <typename V, typename I>
void sellcs_apply(const SellCs<V, I>* mat, const LinOp* b, LinOp* x,
                  bool advanced, V alpha, V beta)
{
    auto dense_b = as_dense<V>(b);
    auto dense_x = as_dense<V>(x);
    const auto vec_cols = dense_b->get_size().cols;
    auto run_kernel = [&](const Executor* e) {
        kernels::sellcs::spmv(
            kernels::exec_threads(e), mat->get_const_values(),
            mat->get_const_col_idxs(), mat->get_const_slice_sets(),
            mat->get_const_permutation(), mat->get_size().rows,
            mat->get_slice_size(), mat->get_num_slices(),
            dense_b->get_const_values(), dense_b->get_stride(),
            dense_x->get_values(), dense_x->get_stride(), vec_cols, advanced,
            alpha, beta);
        kernels::tick(e, mat->spmv_profile(e->model(), vec_cols, advanced));
    };
    mat->get_executor()->run(make_operation(
        "sellcs_spmv", [&](const ReferenceExecutor* e) { run_kernel(e); },
        [&](const OmpExecutor* e) { run_kernel(e); },
        [&](const CudaExecutor* e) { run_kernel(e); },
        [&](const HipExecutor* e) { run_kernel(e); }));
}

}  // namespace


template <typename ValueType, typename IndexType>
void SellCs<ValueType, IndexType>::apply_impl(const LinOp* b, LinOp* x) const
{
    sellcs_apply(this, b, x, false, one<ValueType>(), zero<ValueType>());
}


template <typename ValueType, typename IndexType>
void SellCs<ValueType, IndexType>::apply_impl(const LinOp* alpha,
                                              const LinOp* b,
                                              const LinOp* beta,
                                              LinOp* x) const
{
    sellcs_apply(this, b, x, true, as_dense<ValueType>(alpha)->at(0, 0),
                 as_dense<ValueType>(beta)->at(0, 0));
}


template <typename ValueType, typename IndexType>
void SellCs<ValueType, IndexType>::convert_to(
    Csr<ValueType, IndexType>* result) const
{
    result->read(to_data());
}


#define MGKO_DECLARE_SELLCS(ValueType, IndexType) \
    template class SellCs<ValueType, IndexType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_SELLCS);


}  // namespace mgko
