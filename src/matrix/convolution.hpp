// 2D convolution as a linear operator — the paper's outlook feature
// ("future work includes the integration of a convolution kernel, which
// would allow Ginkgo and pyGinkgo to support key operations required in
// image processing and convolutional neural networks", §7).
//
// The operator treats an n = height x width vector as an image and applies
// a k x k stencil with zero padding ("same" convolution), so it composes
// with every other LinOp: it can appear in solver pipelines, be applied to
// multi-column batches, or back an image-smoothing preconditioner.
#pragma once

#include <memory>
#include <vector>

#include "core/array.hpp"
#include "core/lin_op.hpp"

namespace mgko {


template <typename ValueType = double>
class Convolution : public LinOp {
public:
    using value_type = ValueType;

    /// `kernel` is k x k row-major with odd k (centered stencil).
    static std::unique_ptr<Convolution> create(
        std::shared_ptr<const Executor> exec, size_type height,
        size_type width, const std::vector<double>& kernel);

    size_type height() const { return height_; }
    size_type width() const { return width_; }
    size_type kernel_size() const { return k_; }
    const ValueType* get_const_kernel() const
    {
        return kernel_.get_const_data();
    }

protected:
    Convolution(std::shared_ptr<const Executor> exec, size_type height,
                size_type width, const std::vector<double>& kernel);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    size_type height_;
    size_type width_;
    size_type k_;
    array<ValueType> kernel_;
};


}  // namespace mgko
