// Sparse general matrix-matrix multiplication (SpGEMM), C = A * B.
//
// The paper's introduction names sparse matrix-matrix products alongside
// SpMV as the core operations sparse neural networks rely on (§1).  The
// implementation is Gustavson's row-merge algorithm with a dense
// accumulator per row; the cost model charges the data-dependent FLOP and
// byte volumes computed from the actual operands.
#pragma once

#include <memory>

#include "matrix/csr.hpp"

namespace mgko {


/// C = A * B for CSR operands on the same executor.
template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>> spgemm(
    const Csr<ValueType, IndexType>* a, const Csr<ValueType, IndexType>* b);


/// Symmetric permutation P A Pᵀ (rows and columns) of a square matrix;
/// `permutation[new_index] = old_index`.
template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>> permute_symmetric(
    const Csr<ValueType, IndexType>* a,
    const std::vector<IndexType>& permutation);


namespace reorder {

/// Reverse Cuthill-McKee ordering computed on the symmetrized pattern of
/// `a`; returns `perm` with perm[new_index] = old_index.  Reduces the
/// matrix bandwidth, which improves SpMV locality and level-scheduled
/// triangular-solve parallelism.
template <typename ValueType, typename IndexType>
std::vector<IndexType> rcm_ordering(const Csr<ValueType, IndexType>* a);

/// Half bandwidth max_{(i,j) in A} |i - j| — the quantity RCM minimizes.
template <typename ValueType, typename IndexType>
size_type bandwidth(const Csr<ValueType, IndexType>* a);

}  // namespace reorder


}  // namespace mgko
