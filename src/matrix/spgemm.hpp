// Sparse general matrix-matrix multiplication (SpGEMM), C = A * B.
//
// The paper's introduction names sparse matrix-matrix products alongside
// SpMV as the core operations sparse neural networks rely on (§1).  The
// implementation is Gustavson's row-merge algorithm with a dense
// accumulator per row; the cost model charges the data-dependent FLOP and
// byte volumes computed from the actual operands.
#pragma once

#include <memory>

#include "matrix/csr.hpp"
// Deprecated include path: permute_symmetric and the reorder:: orderings
// moved to the first-class reorder module.  This header keeps re-exporting
// them so existing includes of matrix/spgemm.hpp continue to compile;
// include reorder/reorder.hpp directly in new code.
#include "reorder/reorder.hpp"

namespace mgko {


/// C = A * B for CSR operands on the same executor.
template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>> spgemm(
    const Csr<ValueType, IndexType>* a, const Csr<ValueType, IndexType>* b);


}  // namespace mgko
