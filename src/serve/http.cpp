#include "serve/http.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace mgko::serve {

namespace {

using clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline`, clamped to [0, overall deadline].
int remaining_ms(clock::time_point deadline)
{
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - clock::now())
                          .count();
    return left < 0 ? 0 : static_cast<int>(left);
}

/// Polls `fd` for `events` until the deadline; true when the fd is ready.
bool wait_ready(int fd, short events, clock::time_point deadline)
{
    for (;;) {
        const int left = remaining_ms(deadline);
        if (left == 0) {
            return false;
        }
        pollfd pfd{fd, events, 0};
        const int ready = ::poll(&pfd, 1, left);
        if (ready > 0) {
            // POLLERR/POLLHUP also count as "ready": the following
            // recv/send will surface the concrete error or EOF.
            return true;
        }
        if (ready < 0 && errno != EINTR) {
            return false;
        }
        // ready == 0 (timeout, loop re-checks the deadline) or EINTR.
    }
}

std::string trim(const std::string& s)
{
    std::size_t first = 0;
    std::size_t last = s.size();
    while (first < last &&
           std::isspace(static_cast<unsigned char>(s[first]))) {
        ++first;
    }
    while (last > first &&
           std::isspace(static_cast<unsigned char>(s[last - 1]))) {
        --last;
    }
    return s.substr(first, last - first);
}

std::string to_lower(std::string s)
{
    for (char& c : s) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return s;
}

/// Parses the request line + header block (everything before the blank
/// line, excluding it).  Returns false on malformed input.
bool parse_header_block(const std::string& block, HttpRequest& out)
{
    std::istringstream stream{block};
    std::string line;
    if (!std::getline(stream, line)) {
        return false;
    }
    if (!line.empty() && line.back() == '\r') {
        line.pop_back();
    }
    std::istringstream request_line{line};
    if (!(request_line >> out.method >> out.target)) {
        return false;
    }
    request_line >> out.version;  // optional in crude clients
    while (std::getline(stream, line)) {
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();
        }
        if (line.empty()) {
            continue;
        }
        const auto colon = line.find(':');
        if (colon == std::string::npos) {
            return false;
        }
        out.headers[to_lower(trim(line.substr(0, colon)))] =
            trim(line.substr(colon + 1));
    }
    return true;
}

}  // namespace


const char* to_string(read_result r)
{
    switch (r) {
    case read_result::ok:
        return "ok";
    case read_result::timeout:
        return "timeout";
    case read_result::too_large:
        return "too_large";
    case read_result::closed:
        return "closed";
    case read_result::malformed:
        return "malformed";
    case read_result::error:
        return "error";
    }
    return "?";
}


bool set_nonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}


read_result read_http_request(int fd, HttpRequest& out,
                              std::size_t max_header_bytes,
                              std::size_t max_body_bytes, int deadline_ms)
{
    const auto deadline =
        clock::now() + std::chrono::milliseconds(deadline_ms);
    std::string data;
    std::size_t header_end = std::string::npos;
    // Phase 1: accumulate until the header terminator, however the bytes
    // are segmented.  A request line split across TCP segments used to
    // parse as garbage (single-recv assumption); this loop is the fix.
    while (header_end == std::string::npos) {
        if (data.size() > max_header_bytes) {
            return read_result::too_large;
        }
        char buffer[4096];
        const ssize_t received = ::recv(fd, buffer, sizeof(buffer), 0);
        if (received > 0) {
            // Search from just before the old tail so a terminator split
            // across recv() calls is still found.
            const std::size_t scan_from = data.size() < 3 ? 0 : data.size() - 3;
            data.append(buffer, static_cast<std::size_t>(received));
            header_end = data.find("\r\n\r\n", scan_from);
            continue;
        }
        if (received == 0) {
            return read_result::closed;
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!wait_ready(fd, POLLIN, deadline)) {
                return read_result::timeout;
            }
            continue;
        }
        return read_result::error;
    }
    if (header_end > max_header_bytes) {
        return read_result::too_large;
    }
    out = HttpRequest{};
    if (!parse_header_block(data.substr(0, header_end), out)) {
        return read_result::malformed;
    }
    // Phase 2: the body, when the client declared one.
    std::size_t body_size = 0;
    const auto declared = out.header("content-length");
    if (!declared.empty()) {
        char* end = nullptr;
        const unsigned long long parsed =
            std::strtoull(declared.c_str(), &end, 10);
        if (end == declared.c_str() || *end != '\0') {
            return read_result::malformed;
        }
        body_size = static_cast<std::size_t>(parsed);
    }
    if (body_size > max_body_bytes) {
        return read_result::too_large;
    }
    out.body = data.substr(header_end + 4);
    if (out.body.size() > body_size) {
        // More bytes than declared: a pipelined or confused client.
        out.body.resize(body_size);
    }
    while (out.body.size() < body_size) {
        char buffer[16 * 1024];
        const std::size_t want = std::min(sizeof(buffer),
                                          body_size - out.body.size());
        const ssize_t received = ::recv(fd, buffer, want, 0);
        if (received > 0) {
            out.body.append(buffer, static_cast<std::size_t>(received));
            continue;
        }
        if (received == 0) {
            return read_result::closed;
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!wait_ready(fd, POLLIN, deadline)) {
                return read_result::timeout;
            }
            continue;
        }
        return read_result::error;
    }
    return read_result::ok;
}


bool send_all(int fd, const std::string& data, int deadline_ms)
{
    const auto deadline =
        clock::now() + std::chrono::milliseconds(deadline_ms);
    const char* p = data.data();
    std::size_t remaining = data.size();
    while (remaining > 0) {
        const ssize_t sent = ::send(fd, p, remaining, MSG_NOSIGNAL);
        if (sent > 0) {
            p += sent;
            remaining -= static_cast<std::size_t>(sent);
            continue;
        }
        // sent == 0 never happens for TCP with remaining > 0; treat it
        // like EAGAIN to stay deadline-bounded rather than spinning.
        if (sent < 0 && errno == EINTR) {
            continue;
        }
        if (sent == 0 || errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!wait_ready(fd, POLLOUT, deadline)) {
                return false;
            }
            continue;
        }
        return false;  // EPIPE, ECONNRESET, ...: surfaced, not swallowed
    }
    return true;
}


const char* http_status_text(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 408:
        return "Request Timeout";
    case 413:
        return "Payload Too Large";
    case 429:
        return "Too Many Requests";
    case 431:
        return "Request Header Fields Too Large";
    case 500:
        return "Internal Server Error";
    case 503:
        return "Service Unavailable";
    default:
        return "Unknown";
    }
}


std::string http_response(int status, const char* content_type,
                          const std::string& body,
                          const std::string& extra_headers)
{
    std::ostringstream out;
    out << "HTTP/1.0 " << status << " " << http_status_text(status) << "\r\n"
        << "Content-Type: " << content_type << "\r\n"
        << "Content-Length: " << body.size() << "\r\n"
        << extra_headers << "Connection: close\r\n\r\n"
        << body;
    return out.str();
}


config::Json error_json(const std::string& message)
{
    config::Json body = config::Json::make_object();
    body["error"] = config::Json{message};
    return body;
}


std::string json_response(int status, const config::Json& body,
                          const std::string& extra_headers)
{
    return http_response(status, "application/json", body.dump() + "\n",
                         extra_headers);
}


std::string with_response_header(std::string response,
                                 const std::string& header_line)
{
    const auto blank = response.find("\r\n\r\n");
    if (blank == std::string::npos) {
        return response;  // not a formatted response; leave it alone
    }
    response.insert(blank + 2, header_line);
    return response;
}


std::string query_param(const std::string& target, const std::string& key)
{
    const auto question = target.find('?');
    if (question == std::string::npos) {
        return {};
    }
    std::string query = target.substr(question + 1);
    std::size_t pos = 0;
    while (pos < query.size()) {
        auto next = query.find('&', pos);
        if (next == std::string::npos) {
            next = query.size();
        }
        const auto eq = query.find('=', pos);
        if (eq != std::string::npos && eq < next &&
            query.compare(pos, eq - pos, key) == 0) {
            return query.substr(eq + 1, next - eq - 1);
        }
        pos = next + 1;
    }
    return {};
}


std::uint64_t parse_trace_filter(const std::string& value, bool& ok)
{
    ok = false;
    if (value.size() != 16 && value.size() != 32) {
        return 0;
    }
    std::uint64_t word = 0;
    for (std::size_t i = value.size() - 16; i < value.size(); ++i) {
        const char c = value[i];
        const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!hex) {
            return 0;
        }
        word = (word << 4) |
               static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
    }
    // The high half must still be hex when a full 32-hex id was given.
    for (std::size_t i = 0; i + 16 < value.size(); ++i) {
        const char c = value[i];
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) {
            return 0;
        }
    }
    ok = true;
    return word;
}


namespace {

/// True when `text` is exactly `len` lowercase hex digits; `nonzero_out`
/// reports whether any digit was nonzero (the spec forbids all-zero trace
/// and parent ids).
bool parse_hex_field(const std::string& text, std::size_t pos,
                     std::size_t len, bool& nonzero_out)
{
    nonzero_out = false;
    if (pos + len > text.size()) {
        return false;
    }
    for (std::size_t i = 0; i < len; ++i) {
        const char c = text[pos + i];
        const bool hex =
            (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!hex) {
            return false;  // uppercase is malformed per W3C
        }
        nonzero_out = nonzero_out || c != '0';
    }
    return true;
}

std::uint64_t hex_to_u64(const std::string& text, std::size_t pos,
                         std::size_t len)
{
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < len; ++i) {
        const char c = text[pos + i];
        value = (value << 4) |
                static_cast<std::uint64_t>(
                    c <= '9' ? c - '0' : c - 'a' + 10);
    }
    return value;
}

}  // namespace


log::TraceContext parse_traceparent(const std::string& header_value)
{
    // 00-<32 hex>-<16 hex>-<2 hex>: 55 characters, fixed dashes.  Version
    // 00 admits no trailing fields; "ff" is forbidden outright.
    bool nonzero = false;
    if (header_value.size() != 55 || header_value[2] != '-' ||
        header_value[35] != '-' || header_value[52] != '-') {
        return {};
    }
    if (!parse_hex_field(header_value, 0, 2, nonzero) ||
        header_value.compare(0, 2, "ff") == 0 ||
        header_value.compare(0, 2, "00") != 0) {
        return {};
    }
    if (!parse_hex_field(header_value, 3, 32, nonzero) || !nonzero) {
        return {};
    }
    log::TraceContext ctx;
    ctx.trace_high = hex_to_u64(header_value, 3, 16);
    ctx.trace_low = hex_to_u64(header_value, 19, 16);
    if (!parse_hex_field(header_value, 36, 16, nonzero) || !nonzero) {
        return {};
    }
    ctx.span_id = hex_to_u64(header_value, 36, 16);
    if (!parse_hex_field(header_value, 53, 2, nonzero)) {
        return {};
    }
    ctx.sampled = (hex_to_u64(header_value, 53, 2) & 1) != 0;
    return ctx;
}


std::string emit_traceparent(const log::TraceContext& ctx)
{
    return "traceparent: " + ctx.traceparent() + "\r\n";
}


}  // namespace mgko::serve
