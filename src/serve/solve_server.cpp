#include "serve/solve_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <list>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "config/config_solver.hpp"
#include "config/json.hpp"
#include "core/exception.hpp"
#include "core/executor.hpp"
#include "core/mtx_io.hpp"
#include "log/flight_recorder.hpp"
#include "log/hw_counters.hpp"
#include "log/metrics.hpp"
#include "log/sampling_profiler.hpp"
#include "log/trace_context.hpp"

namespace mgko::serve {

namespace {

using config::Json;

/// An unknown operator handle: a client-visible 404, distinct from the
/// 400 every other mgko::Error maps to.
class NotFoundError : public Error {
public:
    NotFoundError(const std::string& file, int line, const std::string& what)
        : Error(file, line, what)
    {}
};

/// Size of one value/index pair for the configured types; used by the
/// cache's byte estimate.
size_type config_element_bytes(const Json& config)
{
    return size_of(config::config_value_type(config)) +
           size_of(config::config_index_type(config));
}

/// Parses the matrix payload of an upload or inline-solve body: either a
/// Matrix Market document under "mtx" or a triplet object under
/// "triplet".  Throws BadParameter / FileError on malformed payloads.
matrix_data<double, int64> parse_matrix_payload(const Json& body)
{
    if (body.contains("mtx")) {
        std::istringstream stream{body.at("mtx").as_string()};
        return read_mtx(stream, "<upload>");
    }
    if (!body.contains("triplet")) {
        throw BadParameter(__FILE__, __LINE__,
                           "matrix payload requires 'mtx' or 'triplet'");
    }
    const auto& triplet = body.at("triplet");
    const auto rows = triplet.at("rows").as_int();
    const auto cols = triplet.at("cols").as_int();
    MGKO_ENSURE(rows > 0 && cols > 0,
                "'triplet' needs positive 'rows' and 'cols'");
    matrix_data<double, int64> data{
        dim2{static_cast<size_type>(rows), static_cast<size_type>(cols)}};
    for (const auto& entry : triplet.at("entries").elements()) {
        const auto& cells = entry.elements();
        MGKO_ENSURE(cells.size() == 3,
                    "'triplet' entries are [row, col, value] triples");
        data.add(cells[0].as_int(), cells[1].as_int(),
                 cells[2].as_double());
    }
    data.validate();
    data.sort_row_major();
    data.sum_duplicates();
    return data;
}

std::vector<double> parse_vector(const Json& body, const std::string& key,
                                 size_type rows)
{
    if (!body.contains(key)) {
        return {};
    }
    std::vector<double> result;
    result.reserve(rows);
    for (const auto& cell : body.at(key).elements()) {
        result.push_back(cell.as_double());
    }
    MGKO_ENSURE(result.size() == rows,
                "'" + key + "' length " + std::to_string(result.size()) +
                    " does not match the operator's " +
                    std::to_string(rows) + " rows");
    return result;
}

}  // namespace


/// Cache and queue state behind the public interface.
struct SolveServer::Impl {
    /// One generated solver: the product of parse + convert + factor for a
    /// concrete (operator, config) pair.  Iterative solvers keep
    /// persistent workspaces, so applies are serialized per solver by
    /// apply_mutex; distinct solvers apply concurrently.
    struct CachedSolver {
        std::unique_ptr<LinOp> solver;
        std::mutex apply_mutex;
        size_type bytes{0};
    };

    /// One uploaded operator: staging data plus the solvers generated from
    /// it, keyed by the compact config document.
    struct OperatorEntry {
        std::string handle;
        matrix_data<double, int64> data;
        size_type staging_bytes{0};
        std::map<std::string, std::shared_ptr<CachedSolver>> solvers;
        std::list<std::string>::iterator lru_position;
    };

    std::shared_ptr<Executor> exec;

    // --- operator cache (cache_mutex guards all four) ---
    std::mutex cache_mutex;
    std::map<std::string, std::shared_ptr<OperatorEntry>> operators;
    std::list<std::string> lru;  ///< front = least recently used
    size_type cache_bytes{0};
    std::uint64_t next_handle{0};

    // --- request queue ---
    /// One accepted connection awaiting a worker.  The acceptor captures
    /// its trace context at enqueue time and the worker re-enters it
    /// before serving, so request-scoped attribution survives the
    /// accept -> queue -> worker-pool thread hop explicitly instead of
    /// leaking whatever context the worker last held.
    struct pending {
        int fd{-1};
        log::TraceContext ambient{};
    };
    std::mutex queue_mutex;
    std::condition_variable queue_cv;
    std::deque<pending> queue;
    bool draining{false};
    std::vector<std::thread> workers;

    // --- recent-request ring (GET /v1/requests) ---
    /// One served request's summary: identity plus the cost attributed to
    /// it while its context was in scope.
    struct RequestSummary {
        std::string trace_id;
        std::string route;
        int status{0};
        bool sampled{false};
        double wall_ns{0.0};
        double flops{0.0};
        double bytes{0.0};
        double alloc_bytes{0.0};
        std::uint64_t kernels{0};
    };
    static constexpr std::size_t recent_capacity = 256;
    std::mutex recent_mutex;
    std::deque<RequestSummary> recent;  ///< front = oldest

    void record_request(RequestSummary summary)
    {
        std::lock_guard<std::mutex> guard{recent_mutex};
        recent.push_back(std::move(summary));
        while (recent.size() > recent_capacity) {
            recent.pop_front();
        }
    }

    // --- counters (relaxed: each is independently monotone) ---
    std::atomic<std::uint64_t> requests_total{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> client_errors{0};
    std::atomic<std::uint64_t> server_errors{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> send_failures{0};
    std::atomic<std::uint64_t> uploads{0};
    std::atomic<std::uint64_t> solves{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    std::atomic<std::uint64_t> cache_evictions{0};
    std::atomic<std::uint64_t> solver_generations{0};
    std::atomic<std::uint64_t> queue_peak{0};

    /// Moves `handle` to the back (most recently used) of the LRU list.
    /// Caller holds cache_mutex.
    void touch(OperatorEntry& entry)
    {
        lru.erase(entry.lru_position);
        entry.lru_position = lru.insert(lru.end(), entry.handle);
    }

    /// Evicts least-recently-used operators until the cache fits the
    /// budget, sparing `in_use`.  Caller holds cache_mutex.
    void evict_to_fit(size_type capacity, const std::string& in_use)
    {
        auto it = lru.begin();
        while (cache_bytes > capacity && it != lru.end()) {
            if (*it == in_use) {
                ++it;
                continue;
            }
            auto found = operators.find(*it);
            size_type freed = found->second->staging_bytes;
            for (const auto& [key, solver] : found->second->solvers) {
                freed += solver->bytes;
            }
            cache_bytes -= std::min(cache_bytes, freed);
            operators.erase(found);
            it = lru.erase(it);
            cache_evictions.fetch_add(1, std::memory_order_relaxed);
            log::shared_metrics()->registry().inc_counter(
                "mgko_solve_cache_total", "evict");
        }
    }
};


SolveServer::~SolveServer() { stop(); }


std::unique_ptr<SolveServer> SolveServer::start(SolveServerOptions options)
{
    MGKO_ENSURE(options.num_workers > 0, "solve server needs >= 1 worker");
    MGKO_ENSURE(options.queue_capacity > 0,
                "solve server needs a queue of >= 1");
    std::unique_ptr<SolveServer> server{new SolveServer{}};
    server->options_ = std::move(options);
    server->impl_ = std::make_unique<Impl>();
    server->impl_->exec = OmpExecutor::create();

    server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    MGKO_ENSURE(server->listen_fd_ >= 0, "solve server: cannot create socket");
    const int reuse = 1;
    ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse,
                 sizeof(reuse));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_ANY);
    address.sin_port =
        htons(static_cast<std::uint16_t>(server->options_.port));
    if (::bind(server->listen_fd_,
               reinterpret_cast<const sockaddr*>(&address),
               sizeof(address)) != 0 ||
        ::listen(server->listen_fd_,
                 static_cast<int>(server->options_.queue_capacity)) != 0) {
        ::close(server->listen_fd_);
        server->listen_fd_ = -1;
        MGKO_ENSURE(false, "solve server: cannot bind port " +
                               std::to_string(server->options_.port));
    }
    socklen_t length = sizeof(address);
    ::getsockname(server->listen_fd_,
                  reinterpret_cast<sockaddr*>(&address), &length);
    server->port_ = static_cast<int>(ntohs(address.sin_port));

    server->accepting_.store(true, std::memory_order_release);
    for (size_type w = 0; w < server->options_.num_workers; ++w) {
        server->impl_->workers.emplace_back(
            [raw = server.get()] { raw->worker_loop(); });
    }
    server->acceptor_ =
        std::thread{[raw = server.get()] { raw->accept_loop(); }};
    return server;
}


void SolveServer::accept_loop()
{
    while (accepting_.load(std::memory_order_acquire)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0 || (pfd.revents & POLLIN) == 0) {
            continue;
        }
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) {
            continue;
        }
        set_nonblocking(client);
        bool enqueued = false;
        {
            std::lock_guard<std::mutex> guard{impl_->queue_mutex};
            if (impl_->queue.size() <
                static_cast<std::size_t>(options_.queue_capacity)) {
                // Capture the acceptor's context for the worker to
                // restore; the request's own traceparent (parsed on the
                // worker once the headers are read) then nests under it.
                impl_->queue.push_back(
                    {client, log::current_trace_context()});
                const auto depth =
                    static_cast<std::uint64_t>(impl_->queue.size());
                auto& peak = impl_->queue_peak;
                std::uint64_t seen = peak.load(std::memory_order_relaxed);
                while (seen < depth &&
                       !peak.compare_exchange_weak(
                           seen, depth, std::memory_order_relaxed)) {
                }
                enqueued = true;
            }
        }
        if (enqueued) {
            impl_->queue_cv.notify_one();
            continue;
        }
        // Backpressure: answer 429 immediately instead of queueing
        // unboundedly.  The response is small; a short send deadline keeps
        // the acceptor responsive even against a stalled client.
        impl_->requests_total.fetch_add(1, std::memory_order_relaxed);
        impl_->rejected.fetch_add(1, std::memory_order_relaxed);
        log::shared_metrics()->registry().inc_counter(
            "mgko_solve_requests_total", "serve.rejected");
        send_all(client,
                 json_response(429,
                               error_json("server saturated, retry later"),
                               "Retry-After: 1\r\n"),
                 250);
        ::close(client);
    }
}


void SolveServer::worker_loop()
{
    for (;;) {
        Impl::pending next;
        {
            std::unique_lock<std::mutex> lock{impl_->queue_mutex};
            impl_->queue_cv.wait(lock, [this] {
                return !impl_->queue.empty() || impl_->draining;
            });
            if (impl_->queue.empty()) {
                return;  // draining and nothing left: graceful exit
            }
            next = impl_->queue.front();
            impl_->queue.pop_front();
        }
        if (options_.worker_test_hook) {
            options_.worker_test_hook();
        }
        // Restore the context captured at enqueue time for the duration
        // of this connection — the explicit half of the accept -> worker
        // handoff.
        log::TraceContextScope scope{next.ambient};
        serve_connection(next.fd);
    }
}


void SolveServer::serve_connection(int fd)
{
    HttpRequest request;
    const auto result =
        read_http_request(fd, request, 8 * 1024, options_.max_body_bytes,
                          options_.request_deadline_ms);
    std::string response;
    switch (result) {
    case read_result::ok:
        response = handle(request);
        break;
    case read_result::timeout:
        impl_->requests_total.fetch_add(1, std::memory_order_relaxed);
        impl_->client_errors.fetch_add(1, std::memory_order_relaxed);
        response = json_response(408, error_json("request timeout"),
                                 emit_traceparent(log::make_trace_context()));
        break;
    case read_result::too_large:
        impl_->requests_total.fetch_add(1, std::memory_order_relaxed);
        impl_->client_errors.fetch_add(1, std::memory_order_relaxed);
        response = json_response(413, error_json("request too large"),
                                 emit_traceparent(log::make_trace_context()));
        break;
    case read_result::malformed:
        impl_->requests_total.fetch_add(1, std::memory_order_relaxed);
        impl_->client_errors.fetch_add(1, std::memory_order_relaxed);
        response = json_response(400, error_json("malformed request"),
                                 emit_traceparent(log::make_trace_context()));
        break;
    case read_result::closed:
    case read_result::error:
        ::close(fd);
        return;  // nothing to answer
    }
    if (!send_all(fd, response, options_.request_deadline_ms)) {
        impl_->send_failures.fetch_add(1, std::memory_order_relaxed);
    }
    ::close(fd);
}


std::string SolveServer::handle(const HttpRequest& request)
{
    impl_->requests_total.fetch_add(1, std::memory_order_relaxed);
    const std::string path =
        request.target.substr(0, request.target.find('?'));
    const char* route = path == "/v1/solve"       ? "serve.solve"
                        : path == "/v1/operators" ? "serve.upload"
                        : path == "/v1/stats"     ? "serve.stats"
                        : path == "/v1/requests"  ? "serve.requests"
                                                  : "serve.other";
    // Measured tier: the route becomes a sampling-profiler frame, so
    // flamegraphs show serve.solve -> kernel stacks (one relaxed load
    // when the profiler is off).
    log::SampleFrame sample_frame{route};
    // Adopt the caller's W3C trace context (its trace id and sampling
    // decision, under a fresh span of our own) or mint one; a malformed
    // traceparent header is ignored, never rejected.  The scope makes
    // every span, kernel dispatch, metric observation, and pool
    // allocation below attributable to exactly this request.
    log::TraceContext ctx = parse_traceparent(request.header("traceparent"));
    if (ctx.valid()) {
        ctx.span_id = log::mint_span_id();
    } else {
        ctx = log::make_trace_context();
    }
    log::RequestCost cost;
    if (ctx.sampled) {
        ctx.cost = &cost;
    }
    log::TraceContextScope scope{ctx};
    auto& registry = log::shared_metrics()->registry();
    auto recorder = log::shared_flight_recorder();
    recorder->on_span_begin(route);
    const auto started = std::chrono::steady_clock::now();
    std::string response;
    int status = 500;
    try {
        if (path == "/healthz") {
            status = 200;
            response = http_response(200, "text/plain", "ok\n");
        } else if (path == "/readyz") {
            // Readiness is stricter than liveness: a load balancer pulls
            // the instance on the first 503 here, while /healthz stays 200
            // until the process exits.  Three states, one transition each:
            // accepting -> draining (stop() running, queue still served)
            // -> stopped (drain complete).
            Json ready = Json::make_object();
            const bool accepting =
                accepting_.load(std::memory_order_acquire);
            const char* state =
                accepting ? "accepting"
                          : (drained_.load(std::memory_order_acquire)
                                 ? "stopped"
                                 : "draining");
            ready["state"] = Json{std::string{state}};
            ready["accepting"] = Json{accepting};
            status = accepting ? 200 : 503;
            response = json_response(status, ready);
        } else if (path == "/metrics") {
            status = 200;
            response = http_response(200, "text/plain; version=0.0.4",
                                     metrics_text());
        } else if (path == "/v1/stats") {
            if (request.method != "GET") {
                status = 405;
                response = json_response(
                    405, error_json("stats is GET-only"));
            } else {
                status = 200;
                response = http_response(200, "application/json",
                                         stats_json() + "\n");
            }
        } else if (path == "/v1/requests") {
            if (request.method != "GET") {
                status = 405;
                response = json_response(
                    405, error_json("requests is GET-only"));
            } else {
                // ?limit=N bounds the answer to the N most recent entries,
                // ?trace_id= narrows it to one request.  Malformed values
                // are typed 400s in the same shape /trace.json answers
                // with, not silently ignored filters.
                std::size_t limit = 0;
                std::uint64_t trace_filter = 0;
                bool bad = false;
                const auto limit_text =
                    query_param(request.target, "limit");
                if (!limit_text.empty()) {
                    char* end = nullptr;
                    const long parsed =
                        std::strtol(limit_text.c_str(), &end, 10);
                    if (end == limit_text.c_str() || *end != '\0' ||
                        parsed < 1 ||
                        parsed >
                            static_cast<long>(Impl::recent_capacity)) {
                        status = 400;
                        response = json_response(
                            400,
                            error_json(
                                "limit must be an integer in [1, " +
                                std::to_string(Impl::recent_capacity) +
                                "]"));
                        bad = true;
                    } else {
                        limit = static_cast<std::size_t>(parsed);
                    }
                }
                const auto wanted =
                    query_param(request.target, "trace_id");
                if (!bad && !wanted.empty()) {
                    bool ok = false;
                    trace_filter = parse_trace_filter(wanted, ok);
                    if (!ok) {
                        status = 400;
                        response = json_response(
                            400,
                            error_json("trace_id must be 16 or 32 "
                                       "lowercase hex characters"));
                        bad = true;
                    }
                }
                if (!bad) {
                    status = 200;
                    response = http_response(
                        200, "application/json",
                        requests_json(limit, trace_filter) + "\n");
                }
            }
        } else if (path == "/v1/operators") {
            if (request.method != "POST") {
                status = 405;
                response = json_response(
                    405, error_json("operator upload is POST-only"));
            } else {
                status = 200;
                response = handle_upload(request);
            }
        } else if (path == "/v1/solve") {
            if (request.method != "POST") {
                status = 405;
                response = json_response(
                    405, error_json("solve is POST-only"));
            } else {
                status = 200;
                response = handle_solve(request);
            }
        } else {
            status = 404;
            response = json_response(
                404, error_json("unknown target: " + path));
        }
    } catch (const NotFoundError& e) {
        status = 404;
        response = json_response(404, error_json(e.what()));
    } catch (const Error& e) {
        // The repo's own exceptions are client errors: malformed configs,
        // malformed matrices, mismatched shapes.
        status = 400;
        response = json_response(400, error_json(e.what()));
    } catch (const std::exception& e) {
        status = 500;
        response = json_response(500, error_json(e.what()));
    }
    const auto wall_ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - started)
                .count());
    recorder->on_operation_completed(nullptr, route, wall_ns, 0.0, 0.0);
    recorder->on_span_end(route);
    registry.observe("mgko_solve_latency_ns", route, wall_ns);
    const char* outcome = status < 400                  ? "ok"
                          : status == 429              ? "rejected"
                          : status < 500               ? "client_error"
                                                        : "server_error";
    registry.inc_counter("mgko_solve_requests_total",
                         std::string{route} + "." + outcome);
    if (status < 400) {
        impl_->ok.fetch_add(1, std::memory_order_relaxed);
    } else if (status < 500) {
        impl_->client_errors.fetch_add(1, std::memory_order_relaxed);
    } else {
        impl_->server_errors.fetch_add(1, std::memory_order_relaxed);
    }
    {
        const auto totals = cost.quick_totals();
        Impl::RequestSummary summary;
        summary.trace_id = ctx.trace_id_hex();
        summary.route = route;
        summary.status = status;
        summary.sampled = ctx.sampled;
        summary.wall_ns = wall_ns;
        summary.flops = totals.flops;
        summary.bytes = totals.bytes;
        summary.alloc_bytes = totals.alloc_bytes;
        summary.kernels = totals.kernels;
        impl_->record_request(std::move(summary));
    }
    // Echo the context on every response so the caller can navigate from
    // its own logs to /trace.json?trace_id= and /v1/requests.
    return with_response_header(std::move(response), emit_traceparent(ctx));
}


std::string SolveServer::requests_json(std::size_t limit,
                                       std::uint64_t trace_filter) const
{
    // Trace ids are stored as 32-hex text; a filter (parsed to the low
    // 64 bits, same as /trace.json) matches when the id's last 16 hex
    // digits equal the filter's — so both 16- and 32-digit queries find
    // their request.
    char filter_hex[17] = {0};
    if (trace_filter != 0) {
        std::snprintf(filter_hex, sizeof(filter_hex), "%016llx",
                      static_cast<unsigned long long>(trace_filter));
    }
    Json doc = Json::make_object();
    Json list = Json::make_array();
    {
        std::lock_guard<std::mutex> guard{impl_->recent_mutex};
        std::vector<const Impl::RequestSummary*> selected;
        selected.reserve(impl_->recent.size());
        for (const auto& summary : impl_->recent) {
            if (trace_filter != 0 &&
                (summary.trace_id.size() < 16 ||
                 summary.trace_id.compare(summary.trace_id.size() - 16, 16,
                                          filter_hex) != 0)) {
                continue;
            }
            selected.push_back(&summary);
        }
        // The ring is oldest-first; "the N most recent" keeps the tail.
        const std::size_t start =
            (limit > 0 && selected.size() > limit)
                ? selected.size() - limit
                : 0;
        for (std::size_t i = start; i < selected.size(); ++i) {
            const auto& summary = *selected[i];
            Json entry = Json::make_object();
            entry["trace_id"] = Json{summary.trace_id};
            entry["route"] = Json{summary.route};
            entry["status"] =
                Json{static_cast<std::int64_t>(summary.status)};
            entry["sampled"] = Json{summary.sampled};
            entry["wall_ns"] = Json{summary.wall_ns};
            entry["flops"] = Json{summary.flops};
            entry["bytes"] = Json{summary.bytes};
            entry["alloc_bytes"] = Json{summary.alloc_bytes};
            entry["kernels"] =
                Json{static_cast<std::int64_t>(summary.kernels)};
            list.push_back(std::move(entry));
        }
    }
    doc["requests"] = std::move(list);
    doc["capacity"] =
        Json{static_cast<std::int64_t>(Impl::recent_capacity)};
    return doc.dump();
}


std::string SolveServer::handle_upload(const HttpRequest& request)
{
    auto body = Json::parse(request.body);
    auto data = parse_matrix_payload(body);
    const auto staging_bytes =
        static_cast<size_type>(data.entries.size()) *
            sizeof(matrix_data<double, int64>::entry) +
        1024;  // map/list/handle bookkeeping
    auto entry = std::make_shared<Impl::OperatorEntry>();
    entry->data = std::move(data);
    entry->staging_bytes = staging_bytes;
    Json response = Json::make_object();
    {
        std::lock_guard<std::mutex> guard{impl_->cache_mutex};
        entry->handle = "op-" + std::to_string(++impl_->next_handle);
        entry->lru_position =
            impl_->lru.insert(impl_->lru.end(), entry->handle);
        impl_->operators[entry->handle] = entry;
        impl_->cache_bytes += staging_bytes;
        impl_->evict_to_fit(options_.cache_capacity_bytes, entry->handle);
    }
    impl_->uploads.fetch_add(1, std::memory_order_relaxed);
    response["operator"] = Json{entry->handle};
    response["rows"] =
        Json{static_cast<std::int64_t>(entry->data.size.rows)};
    response["cols"] =
        Json{static_cast<std::int64_t>(entry->data.size.cols)};
    response["nnz"] =
        Json{static_cast<std::int64_t>(entry->data.num_stored())};
    response["bytes"] = Json{static_cast<std::int64_t>(staging_bytes)};
    return json_response(200, response);
}


std::string SolveServer::handle_solve(const HttpRequest& request)
{
    // Measured tier: counter reading at entry, delta at response time.
    // Costs two clock reads when counters are off (hw_read_now always
    // fills cpu_ns/wall_ns so the "measured" block degrades, never lies).
    const auto hw_begin = log::hw_read_now();
    auto body = Json::parse(request.body);
    MGKO_ENSURE(body.contains("config"),
                "solve request requires a 'config' object");
    const auto config = body.at("config");
    const auto config_key = config.dump();

    std::shared_ptr<Impl::OperatorEntry> entry;
    std::shared_ptr<Impl::CachedSolver> cached;
    const char* cache_outcome = "inline";
    std::string handle_name;
    auto& registry = log::shared_metrics()->registry();

    matrix_data<double, int64> inline_data;
    if (body.contains("operator")) {
        handle_name = body.at("operator").as_string();
        std::lock_guard<std::mutex> guard{impl_->cache_mutex};
        auto found = impl_->operators.find(handle_name);
        if (found == impl_->operators.end()) {
            throw NotFoundError(
                __FILE__, __LINE__,
                "unknown operator '" + handle_name +
                    "' (expired from the cache or never uploaded)");
        }
        entry = found->second;
        impl_->touch(*entry);
        auto solver_it = entry->solvers.find(config_key);
        if (solver_it != entry->solvers.end()) {
            cached = solver_it->second;
            cache_outcome = "hit";
        }
    } else {
        inline_data = parse_matrix_payload(body);
    }

    size_type rows = entry ? entry->data.size.rows : inline_data.size.rows;
    std::unique_ptr<LinOp> inline_solver;
    LinOp* solver = nullptr;

    if (cached) {
        impl_->cache_hits.fetch_add(1, std::memory_order_relaxed);
        registry.inc_counter("mgko_solve_cache_total", "hit");
        solver = cached->solver.get();
    } else if (entry) {
        // Miss: generate (parse + convert + factor) outside the cache
        // lock — factorization is the expensive step the cache exists to
        // amortize — then publish.  Two concurrent misses may both
        // generate; the first one published wins and the loser's work is
        // discarded (correct, just not free).
        impl_->cache_misses.fetch_add(1, std::memory_order_relaxed);
        registry.inc_counter("mgko_solve_cache_total", "miss");
        auto generated = std::make_shared<Impl::CachedSolver>();
        generated->solver =
            config::generate_solver(config, impl_->exec, entry->data);
        impl_->solver_generations.fetch_add(1, std::memory_order_relaxed);
        registry.inc_counter("mgko_solve_generations_total", "serve");
        generated->bytes =
            static_cast<size_type>(entry->data.num_stored()) *
                config_element_bytes(config) * 3 +
            rows * 16 + 4096;
        {
            std::lock_guard<std::mutex> guard{impl_->cache_mutex};
            auto [it, inserted] =
                entry->solvers.emplace(config_key, generated);
            if (inserted) {
                impl_->cache_bytes += generated->bytes;
                impl_->evict_to_fit(options_.cache_capacity_bytes,
                                    entry->handle);
            }
            cached = it->second;
        }
        cache_outcome = "miss";
        solver = cached->solver.get();
    } else {
        // Inline matrix: solve once, cache nothing.
        inline_solver =
            config::generate_solver(config, impl_->exec, inline_data);
        impl_->solver_generations.fetch_add(1, std::memory_order_relaxed);
        registry.inc_counter("mgko_solve_generations_total", "serve");
        solver = inline_solver.get();
    }

    auto rhs = parse_vector(body, "b", rows);
    if (rhs.empty()) {
        rhs.assign(rows, 1.0);
    }
    const auto guess = parse_vector(body, "x0", rows);

    config::solve_report report;
    if (cached) {
        // Persistent workspaces make a generated solver single-flight;
        // distinct (operator, config) pairs still solve concurrently.
        std::lock_guard<std::mutex> guard{cached->apply_mutex};
        report =
            config::apply_solver(config, impl_->exec, solver, rhs, guess);
    } else {
        report =
            config::apply_solver(config, impl_->exec, solver, rhs, guess);
    }
    impl_->solves.fetch_add(1, std::memory_order_relaxed);

    Json response = Json::make_object();
    Json solution = Json::make_array();
    for (const double v : report.solution) {
        solution.push_back(Json{v});
    }
    response["x"] = std::move(solution);
    response["iterations"] =
        Json{static_cast<std::int64_t>(report.iterations)};
    response["converged"] = Json{report.converged};
    response["residual_norm"] = Json{report.residual_norm};
    response["stop_reason"] = Json{report.stop_reason};
    response["cache"] = Json{cache_outcome};
    if (!handle_name.empty()) {
        response["operator"] = Json{handle_name};
    }
    // Sampled requests answer "what did this solve cost": the work the
    // executor attributed to this request's context while it was in
    // scope, down to a per-kernel breakdown.  Serialized by hand and
    // spliced into the dumped body: this runs on every sampled request,
    // and a Json subtree (one map node per kernel) costs more to build
    // and walk than serializing the numbers directly.  Kernel names are
    // identifier-like literals, so no string escaping is needed.
    const auto ctx = log::current_trace_context();
    if (ctx.cost == nullptr) {
        return json_response(200, response);
    }
    const auto totals = ctx.cost->snapshot();
    std::string cost;
    cost.reserve(256 + totals.per_kernel.size() * 128);
    const auto number = [&cost](const char* key, double value) {
        char buffer[48];
        std::snprintf(buffer, sizeof(buffer), "\"%s\": %.6g", key, value);
        cost += buffer;
    };
    cost += ",\"cost\": {\"trace_id\": \"" + ctx.trace_id_hex() + "\", ";
    number("flops", totals.flops);
    cost += ", ";
    number("bytes", totals.bytes);
    cost += ", ";
    number("alloc_bytes", totals.alloc_bytes);
    cost += ", \"kernels\": " + std::to_string(totals.kernels) +
            ", \"per_kernel\": {";
    bool first = true;
    for (const auto& [name, slice] : totals.per_kernel) {
        cost += first ? "\"" : ", \"";
        first = false;
        cost += name;
        cost += "\": {\"count\": " + std::to_string(slice.count) + ", ";
        number("wall_ns", slice.wall_ns);
        cost += ", ";
        number("flops", slice.flops);
        cost += ", ";
        number("bytes", slice.bytes);
        cost += "}";
    }
    cost += "}}";
    // The "measured" sibling of "cost": the same request seen by the
    // hardware-counter tier instead of the model.  gflops/gbps proxies
    // divide the *modeled* work by the *measured* CPU time — the
    // model-drift gate compares exactly these two views.
    const auto hw_delta = log::hw_read_now() - hw_begin;
    const double cpu_ns = hw_delta.cpu_ns > 0.0 ? hw_delta.cpu_ns : 0.0;
    cost += ",\"measured\": {\"source\": \"";
    cost += log::hw_counters_source();
    cost += "\", ";
    number("wall_ns", hw_delta.wall_ns);
    cost += ", ";
    number("cpu_ns", cpu_ns);
    cost += ", ";
    number("cycles", hw_delta.cycles);
    cost += ", ";
    number("instructions", hw_delta.instructions);
    cost += ", ";
    number("llc_misses", hw_delta.llc_misses);
    cost += ", ";
    number("gflops_proxy", cpu_ns > 0.0 ? totals.flops / cpu_ns : 0.0);
    cost += ", ";
    number("gbps_proxy", cpu_ns > 0.0 ? totals.bytes / cpu_ns : 0.0);
    cost += "}";
    auto payload = response.dump();
    payload.insert(payload.size() - 1, cost);
    return http_response(200, "application/json", payload + "\n");
}


std::string SolveServer::metrics_text() const
{
    const auto s = stats();
    std::ostringstream body;
    body << log::shared_metrics()->registry().prometheus_text();
    body << "# TYPE mgko_solve_requests_served_total counter\n"
         << "mgko_solve_requests_served_total " << s.requests_total << "\n"
         << "# TYPE mgko_solve_rejected_total counter\n"
         << "mgko_solve_rejected_total " << s.rejected << "\n"
         << "# TYPE mgko_solve_cache_hits_total counter\n"
         << "mgko_solve_cache_hits_total " << s.cache_hits << "\n"
         << "# TYPE mgko_solve_cache_misses_total counter\n"
         << "mgko_solve_cache_misses_total " << s.cache_misses << "\n"
         << "# TYPE mgko_solve_cache_evictions_total counter\n"
         << "mgko_solve_cache_evictions_total " << s.cache_evictions << "\n"
         << "# TYPE mgko_solve_cache_bytes gauge\n"
         << "mgko_solve_cache_bytes " << s.cache_bytes << "\n"
         << "# TYPE mgko_solve_queue_peak gauge\n"
         << "mgko_solve_queue_peak " << s.queue_peak << "\n";
    // Measured tier: the same mgko_hw_*/mgko_sampling_* series the
    // telemetry endpoint scrapes, so either server alone tells the story.
    body << log::hw_counters_prometheus();
    body << "# TYPE mgko_sampling_hz gauge\n"
         << "mgko_sampling_hz " << log::sampling_hz() << "\n"
         << "# TYPE mgko_sampling_samples_total counter\n"
         << "mgko_sampling_samples_total " << log::sampling_samples() << "\n"
         << "# TYPE mgko_sampling_dropped_total counter\n"
         << "mgko_sampling_dropped_total " << log::sampling_dropped()
         << "\n";
    return body.str();
}


SolveServer::Stats SolveServer::stats() const
{
    Stats s;
    s.requests_total =
        impl_->requests_total.load(std::memory_order_relaxed);
    s.ok = impl_->ok.load(std::memory_order_relaxed);
    s.client_errors = impl_->client_errors.load(std::memory_order_relaxed);
    s.server_errors = impl_->server_errors.load(std::memory_order_relaxed);
    s.rejected = impl_->rejected.load(std::memory_order_relaxed);
    s.send_failures = impl_->send_failures.load(std::memory_order_relaxed);
    s.uploads = impl_->uploads.load(std::memory_order_relaxed);
    s.solves = impl_->solves.load(std::memory_order_relaxed);
    s.cache_hits = impl_->cache_hits.load(std::memory_order_relaxed);
    s.cache_misses = impl_->cache_misses.load(std::memory_order_relaxed);
    s.cache_evictions =
        impl_->cache_evictions.load(std::memory_order_relaxed);
    s.solver_generations =
        impl_->solver_generations.load(std::memory_order_relaxed);
    s.queue_peak = impl_->queue_peak.load(std::memory_order_relaxed);
    s.queue_capacity = options_.queue_capacity;
    {
        std::lock_guard<std::mutex> guard{impl_->cache_mutex};
        s.cache_operators = static_cast<size_type>(impl_->operators.size());
        s.cache_bytes = impl_->cache_bytes;
    }
    return s;
}


std::string SolveServer::stats_json() const
{
    const auto s = stats();
    Json doc = Json::make_object();
    auto put = [&doc](const char* key, std::uint64_t v) {
        doc[key] = Json{static_cast<std::int64_t>(v)};
    };
    put("requests_total", s.requests_total);
    put("ok", s.ok);
    put("client_errors", s.client_errors);
    put("server_errors", s.server_errors);
    put("rejected", s.rejected);
    put("send_failures", s.send_failures);
    put("uploads", s.uploads);
    put("solves", s.solves);
    Json cache = Json::make_object();
    cache["operators"] = Json{static_cast<std::int64_t>(s.cache_operators)};
    cache["bytes"] = Json{static_cast<std::int64_t>(s.cache_bytes)};
    cache["capacity_bytes"] =
        Json{static_cast<std::int64_t>(options_.cache_capacity_bytes)};
    cache["hits"] = Json{static_cast<std::int64_t>(s.cache_hits)};
    cache["misses"] = Json{static_cast<std::int64_t>(s.cache_misses)};
    cache["evictions"] =
        Json{static_cast<std::int64_t>(s.cache_evictions)};
    cache["solver_generations"] =
        Json{static_cast<std::int64_t>(s.solver_generations)};
    doc["cache"] = std::move(cache);
    Json queue = Json::make_object();
    queue["capacity"] =
        Json{static_cast<std::int64_t>(s.queue_capacity)};
    queue["peak"] = Json{static_cast<std::int64_t>(s.queue_peak)};
    doc["queue"] = std::move(queue);
    doc["workers"] =
        Json{static_cast<std::int64_t>(options_.num_workers)};
    return doc.dump();
}


void SolveServer::stop()
{
    if (stopped_.exchange(true)) {
        return;
    }
    // Phase 1: no new connections.
    accepting_.store(false, std::memory_order_release);
    if (acceptor_.joinable()) {
        acceptor_.join();
    }
    // Phase 2: drain — workers keep serving until the queue is empty,
    // finish whatever solve is in flight, then exit.
    {
        std::lock_guard<std::mutex> guard{impl_->queue_mutex};
        impl_->draining = true;
    }
    impl_->queue_cv.notify_all();
    for (auto& worker : impl_->workers) {
        if (worker.joinable()) {
            worker.join();
        }
    }
    impl_->workers.clear();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    // Drain complete: /readyz flips from "draining" to "stopped".
    drained_.store(true, std::memory_order_release);
}


// --- process-wide server ---------------------------------------------------

namespace {

std::mutex& global_mutex()
{
    static std::mutex mutex;
    return mutex;
}

std::unique_ptr<SolveServer>& global_server()
{
    static std::unique_ptr<SolveServer> server;
    return server;
}

std::atomic<bool> global_active{false};
std::atomic<int> global_port{0};

/// One-shot latch for solve_server_from_env.  Deliberately not a
/// call_once: SolveServer::start creates its executor through the factory,
/// which calls solve_server_from_env again — with a call_once that
/// re-entrant call would deadlock on the in-flight once_flag.
std::atomic<bool> env_attempted{false};

}  // namespace


int solve_server_start(int port)
{
    // An explicit start supersedes the env wiring; claiming the latch here
    // also keeps the executor created inside SolveServer::start from
    // re-entering this function (global_mutex is not recursive).
    env_attempted.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> guard{global_mutex()};
    auto& server = global_server();
    if (!server) {
        SolveServerOptions options;
        options.port = port;
        server = SolveServer::start(std::move(options));
        global_active.store(true, std::memory_order_release);
        global_port.store(server->port(), std::memory_order_release);
    } else if (port != 0 && port != server->port()) {
        throw BadParameter(
            __FILE__, __LINE__,
            "solve server already running on port " +
                std::to_string(server->port()) + ", cannot rebind to " +
                std::to_string(port) + " (solve_server_stop() it first)");
    }
    return server->port();
}


void solve_server_stop()
{
    std::lock_guard<std::mutex> guard{global_mutex()};
    global_active.store(false, std::memory_order_release);
    global_port.store(0, std::memory_order_release);
    global_server().reset();
}


bool solve_server_active()
{
    return global_active.load(std::memory_order_acquire);
}


int solve_server_port() { return global_port.load(std::memory_order_acquire); }


std::string solve_server_stats_json()
{
    std::lock_guard<std::mutex> guard{global_mutex()};
    auto& server = global_server();
    return server ? server->stats_json() : std::string{"{}"};
}


void solve_server_from_env()
{
    if (env_attempted.exchange(true, std::memory_order_acq_rel)) {
        return;
    }
    const char* value = std::getenv("MGKO_SOLVE_PORT");
    if (value == nullptr || *value == '\0') {
        return;
    }
    char* end = nullptr;
    const long port = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || port < 0 || port > 65535) {
        std::fprintf(stderr, "mgko: MGKO_SOLVE_PORT='%s' is not a port\n",
                     value);
        return;
    }
    try {
        const int bound = solve_server_start(static_cast<int>(port));
        std::fprintf(stderr, "mgko: solve server on port %d\n", bound);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mgko: solve server failed: %s\n", e.what());
    }
}


}  // namespace mgko::serve
