// Shared POSIX HTTP plumbing for the serve:: layer.
//
// TelemetryServer proved a dependency-free HTTP endpoint can live in-tree;
// SolveServer put real traffic on it.  Both now share the hardened helpers
// here instead of each open-coding recv/send loops:
//
//   * send_all()          writes a full response even when the socket is
//                         non-blocking, the send buffer is tiny, or a
//                         signal lands mid-write: EINTR retries, EAGAIN
//                         polls for writability with a deadline, all other
//                         errnos are surfaced to the caller instead of
//                         silently truncating the response.
//   * read_http_request() reads one request without assuming it arrives in
//                         a single recv(): it accumulates until the
//                         "\r\n\r\n" header terminator (bounded), then
//                         reads Content-Length body bytes (bounded
//                         separately), with a wall-clock deadline so a
//                         stalled client cannot pin a worker.  The request
//                         line and headers are parsed into HttpRequest.
//   * http_response()     formats a full HTTP/1.0 response with
//                         Content-Length and Connection: close, plus any
//                         extra headers (e.g. Retry-After for 429s).
//   * json_response() /   the one error shape every serve:: endpoint
//     error_json()        answers with ({"error": "..."} as
//                         application/json), so clients need one parser
//                         for telemetry and solve traffic alike.
//   * parse_traceparent() W3C Trace Context propagation: servers adopt a
//     emit_traceparent()  caller's trace id from its `traceparent` header
//                         (malformed headers are ignored, never rejected),
//                         mint one when absent, and echo the context on
//                         every response (see log/trace_context.hpp and
//                         DESIGN.md §17).
//
// Servers put accepted client sockets into non-blocking mode (see
// set_nonblocking) so every wait happens in poll() under an explicit
// deadline rather than inside a blocking syscall.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "config/json.hpp"
#include "log/trace_context.hpp"

namespace mgko::serve {


/// One parsed HTTP request.  Header names are lowercased; values are
/// trimmed of surrounding whitespace.
struct HttpRequest {
    std::string method;
    std::string target;
    std::string version;
    std::map<std::string, std::string> headers;
    std::string body;

    /// Lowercased-name header lookup; empty string when absent.
    std::string header(const std::string& name) const
    {
        auto it = headers.find(name);
        return it == headers.end() ? std::string{} : it->second;
    }
};


/// Outcome of read_http_request.
enum class read_result {
    ok,         ///< a complete request was parsed
    timeout,    ///< the deadline expired before the request completed (408)
    too_large,  ///< header block or body exceeded its bound (431 / 413)
    closed,     ///< the peer closed before sending a complete request
    malformed,  ///< bytes arrived but do not parse as an HTTP request (400)
    error,      ///< a socket error other than EINTR/EAGAIN
};

/// Human-readable name of a read_result (diagnostics and tests).
const char* to_string(read_result r);

/// Puts `fd` into non-blocking mode; returns false on fcntl failure.
bool set_nonblocking(int fd);

/// Reads one HTTP request from `fd` (which should be non-blocking):
/// accumulates until the "\r\n\r\n" header terminator — tolerating
/// arbitrary TCP segmentation, down to one byte per segment — then reads
/// the Content-Length body.  The header block is bounded by
/// `max_header_bytes`, the body by `max_body_bytes`, and the whole read by
/// `deadline_ms` of wall time.  On read_result::ok, `out` carries the
/// parsed request; on any other result its contents are unspecified.
read_result read_http_request(int fd, HttpRequest& out,
                              std::size_t max_header_bytes = 8 * 1024,
                              std::size_t max_body_bytes = 0,
                              int deadline_ms = 1000);

/// Writes all of `data` to `fd`: retries on EINTR, polls for writability
/// on EAGAIN/EWOULDBLOCK until `deadline_ms` expires, and returns false on
/// the deadline or any other errno (the caller knows the response may be
/// truncated instead of finding out from the peer's logs).
bool send_all(int fd, const std::string& data, int deadline_ms = 5000);

/// The standard reason phrase for the status codes the serve:: layer
/// emits; "Unknown" otherwise.
const char* http_status_text(int status);

/// Formats a complete HTTP/1.0 response with Content-Type, Content-Length,
/// and Connection: close headers.  `extra_headers` is spliced verbatim
/// into the header block and must be empty or "Name: value\r\n"-shaped.
std::string http_response(int status, const char* content_type,
                          const std::string& body,
                          const std::string& extra_headers = {});

/// The structured error body every serve:: endpoint answers with:
/// {"error": message}.
config::Json error_json(const std::string& message);

/// http_response() for a JSON body (the body is dumped with a trailing
/// newline so curl output stays readable).
std::string json_response(int status, const config::Json& body,
                          const std::string& extra_headers = {});

/// Inserts one "Name: value\r\n" header line into an already formatted
/// response, just before the blank line ending the header block.  Lets a
/// server stamp a response-wide header (the traceparent echo) without
/// threading extra_headers through every route.
std::string with_response_header(std::string response,
                                 const std::string& header_line);

/// The value of `key` in a request target's "?k=v&k2=v2" query string;
/// empty when the query or the key is absent.  Shared by every endpoint
/// that takes filters (/trace.json, /v1/requests), so all of them parse
/// queries identically.
std::string query_param(const std::string& target, const std::string& key);

/// Parses a trace id filter: 32 or 16 lowercase hex digits (the full W3C
/// trace id or just its low 64 bits — records carry the low word).
/// Returns 0 on malformed input, with `ok` false; endpoints turn that
/// into the one typed 400 every filter answers with.
std::uint64_t parse_trace_filter(const std::string& value, bool& ok);

/// Parses a W3C `traceparent` header value
/// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>") into a
/// TraceContext carrying the caller's trace id and sampled flag.  Any
/// malformed value — wrong version, wrong field lengths, non-hex or
/// uppercase characters, all-zero trace or parent id, missing fields —
/// yields a zero (invalid) context: propagation headers are ignored when
/// broken, never a reason to reject the request.
log::TraceContext parse_traceparent(const std::string& header_value);

/// The "traceparent: 00-...-...-0?\r\n" header line for `ctx`, ready for
/// extra_headers or with_response_header.
std::string emit_traceparent(const log::TraceContext& ctx);


}  // namespace mgko::serve
