// Shared POSIX HTTP plumbing for the serve:: layer.
//
// TelemetryServer proved a dependency-free HTTP endpoint can live in-tree;
// SolveServer put real traffic on it.  Both now share the hardened helpers
// here instead of each open-coding recv/send loops:
//
//   * send_all()          writes a full response even when the socket is
//                         non-blocking, the send buffer is tiny, or a
//                         signal lands mid-write: EINTR retries, EAGAIN
//                         polls for writability with a deadline, all other
//                         errnos are surfaced to the caller instead of
//                         silently truncating the response.
//   * read_http_request() reads one request without assuming it arrives in
//                         a single recv(): it accumulates until the
//                         "\r\n\r\n" header terminator (bounded), then
//                         reads Content-Length body bytes (bounded
//                         separately), with a wall-clock deadline so a
//                         stalled client cannot pin a worker.  The request
//                         line and headers are parsed into HttpRequest.
//   * http_response()     formats a full HTTP/1.0 response with
//                         Content-Length and Connection: close, plus any
//                         extra headers (e.g. Retry-After for 429s).
//
// Servers put accepted client sockets into non-blocking mode (see
// set_nonblocking) so every wait happens in poll() under an explicit
// deadline rather than inside a blocking syscall.
#pragma once

#include <cstddef>
#include <map>
#include <string>

namespace mgko::serve {


/// One parsed HTTP request.  Header names are lowercased; values are
/// trimmed of surrounding whitespace.
struct HttpRequest {
    std::string method;
    std::string target;
    std::string version;
    std::map<std::string, std::string> headers;
    std::string body;

    /// Lowercased-name header lookup; empty string when absent.
    std::string header(const std::string& name) const
    {
        auto it = headers.find(name);
        return it == headers.end() ? std::string{} : it->second;
    }
};


/// Outcome of read_http_request.
enum class read_result {
    ok,         ///< a complete request was parsed
    timeout,    ///< the deadline expired before the request completed (408)
    too_large,  ///< header block or body exceeded its bound (431 / 413)
    closed,     ///< the peer closed before sending a complete request
    malformed,  ///< bytes arrived but do not parse as an HTTP request (400)
    error,      ///< a socket error other than EINTR/EAGAIN
};

/// Human-readable name of a read_result (diagnostics and tests).
const char* to_string(read_result r);

/// Puts `fd` into non-blocking mode; returns false on fcntl failure.
bool set_nonblocking(int fd);

/// Reads one HTTP request from `fd` (which should be non-blocking):
/// accumulates until the "\r\n\r\n" header terminator — tolerating
/// arbitrary TCP segmentation, down to one byte per segment — then reads
/// the Content-Length body.  The header block is bounded by
/// `max_header_bytes`, the body by `max_body_bytes`, and the whole read by
/// `deadline_ms` of wall time.  On read_result::ok, `out` carries the
/// parsed request; on any other result its contents are unspecified.
read_result read_http_request(int fd, HttpRequest& out,
                              std::size_t max_header_bytes = 8 * 1024,
                              std::size_t max_body_bytes = 0,
                              int deadline_ms = 1000);

/// Writes all of `data` to `fd`: retries on EINTR, polls for writability
/// on EAGAIN/EWOULDBLOCK until `deadline_ms` expires, and returns false on
/// the deadline or any other errno (the caller knows the response may be
/// truncated instead of finding out from the peer's logs).
bool send_all(int fd, const std::string& data, int deadline_ms = 5000);

/// The standard reason phrase for the status codes the serve:: layer
/// emits; "Unknown" otherwise.
const char* http_status_text(int status);

/// Formats a complete HTTP/1.0 response with Content-Type, Content-Length,
/// and Connection: close headers.  `extra_headers` is spliced verbatim
/// into the header block and must be empty or "Name: value\r\n"-shaped.
std::string http_response(int status, const char* content_type,
                          const std::string& body,
                          const std::string& extra_headers = {});


}  // namespace mgko::serve
