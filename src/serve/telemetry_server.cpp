#include "serve/telemetry_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>

#include "core/exception.hpp"
#include "log/flight_recorder.hpp"
#include "log/hw_counters.hpp"
#include "log/metrics.hpp"
#include "log/sampling_profiler.hpp"
#include "serve/http.hpp"

namespace mgko::serve {


std::string TelemetryServer::respond(const std::string& method,
                                     const std::string& target,
                                     std::uint64_t requests_so_far)
{
    if (method != "GET") {
        return json_response(405, error_json("method not allowed"));
    }
    // Strip any query string: scrapers commonly append cache busters.
    std::string path = target.substr(0, target.find('?'));
    if (path == "/healthz") {
        return http_response(200, "text/plain", "ok\n");
    }
    if (path == "/metrics") {
        auto recorder = log::shared_flight_recorder();
        std::ostringstream body;
        body << log::shared_metrics()->registry().prometheus_text();
        body << "# TYPE mgko_flight_records_total counter\n"
             << "mgko_flight_records_total " << recorder->recorded() << "\n"
             << "# TYPE mgko_flight_dropped_total counter\n"
             << "mgko_flight_dropped_total " << recorder->dropped() << "\n"
             << "# TYPE mgko_telemetry_requests_total counter\n"
             << "mgko_telemetry_requests_total " << requests_so_far << "\n";
        // Measured tier: hardware-counter series plus the sampling
        // profiler's own health counters.
        body << log::hw_counters_prometheus();
        body << "# TYPE mgko_sampling_hz gauge\n"
             << "mgko_sampling_hz " << log::sampling_hz() << "\n"
             << "# TYPE mgko_sampling_samples_total counter\n"
             << "mgko_sampling_samples_total " << log::sampling_samples()
             << "\n"
             << "# TYPE mgko_sampling_dropped_total counter\n"
             << "mgko_sampling_dropped_total " << log::sampling_dropped()
             << "\n";
        return http_response(200, "text/plain; version=0.0.4", body.str());
    }
    if (path == "/profile.json") {
        return http_response(200, "application/json",
                             log::shared_flight_recorder()->to_profile_json());
    }
    if (path == "/profile_cpu.json") {
        // The measured profile: aggregated SIGPROF samples, pprof-like
        // shape.  Valid (with zero stacks) when sampling never ran.
        return http_response(200, "application/json",
                             log::sampling_profile_json());
    }
    if (path == "/flamegraph.txt") {
        // Folded stacks, one "frame;frame;... count" line per distinct
        // stack — pipe straight into flamegraph.pl.
        return http_response(200, "text/plain", log::sampling_folded());
    }
    if (path == "/trace.json") {
        // ?trace_id=<32-or-16 hex> narrows the dump to one request's
        // records — the navigation target for metric exemplars and
        // traceparent echoes.
        std::uint64_t filter = 0;
        const auto wanted = query_param(target, "trace_id");
        if (!wanted.empty()) {
            bool ok = false;
            filter = parse_trace_filter(wanted, ok);
            if (!ok) {
                return json_response(
                    400, error_json("trace_id must be 16 or 32 lowercase "
                                    "hex characters"));
            }
        }
        return http_response(
            200, "application/json",
            log::shared_flight_recorder()->to_chrome_trace_json(filter));
    }
    return json_response(404, error_json("not found: " + path));
}


std::unique_ptr<TelemetryServer> TelemetryServer::start(int port)
{
    std::unique_ptr<TelemetryServer> server{new TelemetryServer{}};
    server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    MGKO_ENSURE(server->listen_fd_ >= 0, "telemetry: cannot create socket");
    const int reuse = 1;
    ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse,
                 sizeof(reuse));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_ANY);
    address.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(server->listen_fd_,
               reinterpret_cast<const sockaddr*>(&address),
               sizeof(address)) != 0 ||
        ::listen(server->listen_fd_, 16) != 0) {
        ::close(server->listen_fd_);
        MGKO_ENSURE(false, "telemetry: cannot bind port " +
                               std::to_string(port));
    }
    socklen_t length = sizeof(address);
    ::getsockname(server->listen_fd_,
                  reinterpret_cast<sockaddr*>(&address), &length);
    server->port_ = static_cast<int>(ntohs(address.sin_port));
    server->running_.store(true, std::memory_order_release);
    server->thread_ = std::thread{[raw = server.get()] { raw->serve_loop(); }};
    return server;
}


void TelemetryServer::serve_loop()
{
    while (running_.load(std::memory_order_acquire)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        // A bounded poll keeps stop() latency under ~100ms without
        // needing a self-pipe.
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0 || (pfd.revents & POLLIN) == 0) {
            continue;
        }
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) {
            continue;
        }
        set_nonblocking(client);
        // Requests may arrive in arbitrarily small TCP segments; the shared
        // reader accumulates until the header terminator (8 KiB bound,
        // telemetry requests carry no body) instead of trusting one recv.
        HttpRequest request;
        const auto result =
            read_http_request(client, request, 8 * 1024, 0, 1000);
        if (result == read_result::ok) {
            const auto count =
                requests_.fetch_add(1, std::memory_order_relaxed) + 1;
            send_all(client,
                     respond(request.method, request.target, count));
        } else if (result == read_result::timeout) {
            send_all(client,
                     json_response(408, error_json("request timeout")));
        } else if (result == read_result::too_large ||
                   result == read_result::malformed) {
            send_all(client,
                     json_response(
                         result == read_result::too_large ? 431 : 400,
                         error_json(result == read_result::too_large
                                        ? "request header fields too large"
                                        : "malformed request")));
        }
        ::close(client);
    }
}


void TelemetryServer::stop()
{
    if (!running_.exchange(false)) {
        return;
    }
    if (thread_.joinable()) {
        thread_.join();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}


TelemetryServer::~TelemetryServer() { stop(); }


// --- process-wide server ---------------------------------------------------

namespace {

std::mutex& global_mutex()
{
    static std::mutex mutex;
    return mutex;
}

std::unique_ptr<TelemetryServer>& global_server()
{
    static std::unique_ptr<TelemetryServer> server;
    return server;
}

std::atomic<bool> global_active{false};
std::atomic<int> global_port{0};

}  // namespace


int telemetry_start(int port)
{
    std::lock_guard<std::mutex> guard{global_mutex()};
    auto& server = global_server();
    if (!server) {
        server = TelemetryServer::start(port);
        global_active.store(true, std::memory_order_release);
        global_port.store(server->port(), std::memory_order_release);
    } else if (port != 0 && port != server->port()) {
        // Silently answering with a server bound elsewhere hid
        // misconfigurations; an explicit conflicting port is an error.
        // Port 0 ("any port") keeps reporting the running server.
        throw BadParameter(
            __FILE__, __LINE__,
            "telemetry server already running on port " +
                std::to_string(server->port()) + ", cannot rebind to " +
                std::to_string(port) + " (telemetry_stop() it first)");
    }
    return server->port();
}


void telemetry_stop()
{
    std::lock_guard<std::mutex> guard{global_mutex()};
    global_active.store(false, std::memory_order_release);
    global_port.store(0, std::memory_order_release);
    global_server().reset();
}


bool telemetry_active()
{
    return global_active.load(std::memory_order_acquire);
}


int telemetry_port() { return global_port.load(std::memory_order_acquire); }


void telemetry_from_env()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char* value = std::getenv("MGKO_TELEMETRY_PORT");
        if (value == nullptr || *value == '\0') {
            return;
        }
        char* end = nullptr;
        const long port = std::strtol(value, &end, 10);
        if (end == value || *end != '\0' || port < 0 || port > 65535) {
            std::fprintf(stderr,
                         "mgko: MGKO_TELEMETRY_PORT='%s' is not a port\n",
                         value);
            return;
        }
        try {
            const int bound = telemetry_start(static_cast<int>(port));
            std::fprintf(stderr, "mgko: telemetry server on port %d\n",
                         bound);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "mgko: telemetry server failed: %s\n",
                         e.what());
        }
    });
}


}  // namespace mgko::serve
