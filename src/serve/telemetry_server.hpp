// Live telemetry exposition — the pull side of the always-on tier.
//
// TelemetryServer is a minimal dependency-free HTTP/1.0 endpoint over raw
// POSIX sockets: one background thread accepts loopback or scrape traffic
// and serves
//
//   GET /healthz           "ok" liveness probe
//   GET /metrics           Prometheus text from the shared MetricsRegistry,
//                          plus the server's own mgko_flight_*/
//                          mgko_telemetry_* series (so a scrape is never
//                          empty) and the measured tier's mgko_hw_* /
//                          mgko_sampling_* series
//   GET /profile.json      flight-recorder snapshot aggregated per tag
//                          (ProfilerLogger's {"tags": ...} schema)
//   GET /profile_cpu.json  sampling-profiler aggregate, pprof-like JSON
//                          (log/sampling_profiler.hpp)
//   GET /flamegraph.txt    the same samples as folded stacks, one
//                          "frame;frame;... count" line per stack —
//                          flamegraph.pl-ready
//   GET /trace.json        flight-recorder snapshot as Chrome Trace JSON
//
// so a production host can be inspected while it runs instead of waiting
// for an exit-time dump (cf. Koch et al. on observability surviving
// embedding).  Serving is serial by design: responses are small snapshots
// and the instrumented threads never block on a scrape.  Socket I/O goes
// through the shared serve/http.hpp helpers (bounded segmented request
// reads, EINTR/EAGAIN-hardened sends) — the same spine SolveServer's
// request traffic rides on.
//
// Process-wide control: telemetry_start(port) / telemetry_stop() manage a
// single shared server (also reachable through the `telemetry_start` /
// `telemetry_stop` bindings and the "telemetry" config key);
// telemetry_from_env() starts it when MGKO_TELEMETRY_PORT is set.  Port 0
// binds an ephemeral port, reported by the return value / port().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

namespace mgko::serve {


class TelemetryServer {
public:
    /// Binds 0.0.0.0:`port` (0 picks an ephemeral port) and starts the
    /// accept thread.  Throws mgko::Error when the socket cannot be
    /// bound.
    static std::unique_ptr<TelemetryServer> start(int port);

    ~TelemetryServer();

    TelemetryServer(const TelemetryServer&) = delete;
    TelemetryServer& operator=(const TelemetryServer&) = delete;

    /// The bound port (the concrete one when constructed with port 0).
    int port() const { return port_; }

    std::uint64_t requests_served() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

    /// Stops the accept loop and joins the thread; idempotent (the
    /// destructor calls it).
    void stop();

    /// Routes one request to a full HTTP response string; exposed so unit
    /// tests can exercise routing without sockets.
    static std::string respond(const std::string& method,
                               const std::string& target,
                               std::uint64_t requests_so_far);

private:
    TelemetryServer() = default;
    void serve_loop();

    int listen_fd_{-1};
    int port_{0};
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::thread thread_;
};


/// Starts the process-wide server if none is running; returns the bound
/// port.  When a server is already running, `port` 0 (meaning "any
/// port") reports the running server's port, while a non-zero `port`
/// that differs from the bound one throws BadParameter — a second
/// explicit port is a conflicting configuration, not a request the
/// running server can satisfy.  Pass 0 to bind an ephemeral port on
/// first start (the concrete port comes back as the return value).
int telemetry_start(int port);

/// Stops and discards the process-wide server; no-op when none runs.
void telemetry_stop();

/// True while the process-wide server is running.
bool telemetry_active();

/// The process-wide server's port, 0 when inactive.
int telemetry_port();

/// telemetry_start($MGKO_TELEMETRY_PORT) once per process when that
/// variable holds a port number; bind failures are reported on stderr
/// rather than thrown (an embedded library must not kill its host over an
/// occupied port).
void telemetry_from_env();


}  // namespace mgko::serve
