// Solve-as-a-service: the request-serving layer on the serve:: spine.
//
// TelemetryServer proved a dependency-free POSIX HTTP endpoint can live
// in-tree; SolveServer promotes that spine into a real service.  The
// economics mirror Ginkgo's LinOp design (generate once, apply many): a
// matrix uploaded once is parsed and factored once, then solved thousands
// of times against different right-hand sides.
//
//   POST /v1/operators   matrix payload -> cached operator handle.
//                        Body is JSON carrying either
//                          {"mtx": "<Matrix Market text>"}          or
//                          {"triplet": {"rows": R, "cols": C,
//                                       "entries": [[r, c, v], ...]}}
//                        Response: {"operator": "op-1", "rows", "cols",
//                        "nnz", "bytes"}.
//   POST /v1/solve       config JSON + operator handle or inline matrix.
//                        Body: {"config": {...config_solver schema...},
//                               "operator": "op-1" | "mtx"/"triplet": ...,
//                               "b": [...], "x0": [...]}   (b defaults to
//                        all ones, x0 to zeros).  The (operator, config)
//                        pair selects a cached generated solver — a cache
//                        hit skips parsing, conversion, and
//                        factorization.  Response: {"x": [...],
//                        "iterations", "converged", "residual_norm",
//                        "stop_reason", "cache": "hit"|"miss"|"inline",
//                        "operator"}.
//   GET  /v1/stats       live counters: requests by outcome, cache
//                        hits/misses/evictions and resident bytes, queue
//                        high-water mark, rejected (429) count.
//   GET  /v1/requests    bounded ring of recent per-request summaries:
//                        trace id, route, status, wall time, and the cost
//                        attributed to each request (flops, bytes, pool
//                        alloc bytes, kernel launches).  Filters:
//                        ?limit=N keeps the N most recent entries
//                        (1..256), ?trace_id=<16-or-32 hex> keeps one
//                        request's entries; malformed values answer the
//                        same typed JSON 400 as /trace.json.
//
// Request-scoped tracing (DESIGN.md §17): every request adopts the trace
// id and sampled flag of a valid W3C `traceparent` header (malformed
// headers are ignored and a fresh context minted — never a 400), mints a
// context otherwise (sampled per MGKO_TRACE_SAMPLE / "trace_sample"), and
// echoes the context as a `traceparent` response header.  While the
// request is in flight its context scopes the worker thread, so
// FlightRecorder records carry its trace id (filterable via
// /trace.json?trace_id= on the telemetry endpoint), metric observations
// leave OpenMetrics exemplars, and sampled /v1/solve responses gain a
// "cost" block with a per-kernel breakdown.
//   GET  /metrics        Prometheus text: the shared MetricsRegistry plus
//                        the server's own mgko_solve_* series and the
//                        measured tier's mgko_hw_*/mgko_sampling_* series.
//   GET  /healthz        liveness probe: 200 while the process serves,
//                        including during drain (the process is alive and
//                        still answering queued work).
//   GET  /readyz         readiness probe: 200 {"state": "accepting"} only
//                        while new connections are admitted; 503 with
//                        "draining" (stop() running, queued work still
//                        being served) or "stopped" (drain complete) —
//                        the signal a load balancer needs to pull the
//                        instance before /healthz ever flips.
//
// Concurrency: one acceptor thread feeds a bounded queue drained by a
// worker pool.  Admission control is explicit backpressure — when the
// queue is full the acceptor answers 429 with a Retry-After header
// immediately instead of queueing unboundedly (clients see latency honestly
// instead of through a growing queue).  Cached solvers hold persistent
// workspaces, so each one is applied under its own mutex; different
// operators (and different configs on one operator) solve concurrently.
// stop() is graceful: it stops accepting, then drains queued and
// in-flight requests before joining the workers.
//
// Observability rides the existing spine: every request lands in the
// shared MetricsRegistry (mgko_solve_latency_ns histograms per route,
// outcome counters) and opens a FlightRecorder span ("serve.solve", ...),
// so /metrics, /v1/stats, the telemetry endpoints, and the crash black box
// all see solve traffic with no extra wiring.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "core/types.hpp"
#include "serve/http.hpp"

namespace mgko::serve {


struct SolveServerOptions {
    /// TCP port; 0 binds an ephemeral port (see SolveServer::port()).
    int port{0};
    /// Worker threads draining the request queue.
    size_type num_workers{4};
    /// Accepted-but-unserviced connections held before the acceptor
    /// answers 429 + Retry-After instead of queueing further.
    size_type queue_capacity{64};
    /// Approximate byte budget for cached operators and their generated
    /// solvers; least-recently-used operators are evicted beyond it.
    size_type cache_capacity_bytes{size_type{64} << 20};
    /// Per-request body bound (413 beyond it) — matrix uploads dominate.
    size_type max_body_bytes{size_type{8} << 20};
    /// Wall-clock bound on reading one request (408) and writing its
    /// response.
    int request_deadline_ms{5000};
    /// Test-only: called by each worker after dequeuing a connection and
    /// before serving it; lets tests stall the pool deterministically to
    /// exercise backpressure.  Leave empty in production.
    std::function<void()> worker_test_hook{};
};


class SolveServer {
public:
    /// Binds and starts the acceptor + worker pool.  Throws mgko::Error
    /// when the socket cannot be bound.
    static std::unique_ptr<SolveServer> start(SolveServerOptions options = {});

    ~SolveServer();

    SolveServer(const SolveServer&) = delete;
    SolveServer& operator=(const SolveServer&) = delete;

    /// The bound port (the concrete one when constructed with port 0).
    int port() const { return port_; }

    /// Graceful shutdown: stop accepting, serve everything queued and
    /// in flight, join the pool.  Idempotent; the destructor calls it.
    void stop();

    /// Point-in-time counters (also exported as /v1/stats and /metrics).
    struct Stats {
        std::uint64_t requests_total{0};
        std::uint64_t ok{0};
        std::uint64_t client_errors{0};  ///< 4xx other than 429
        std::uint64_t server_errors{0};  ///< 5xx
        std::uint64_t rejected{0};       ///< 429 backpressure answers
        std::uint64_t send_failures{0};  ///< responses we could not write
        std::uint64_t uploads{0};
        std::uint64_t solves{0};
        std::uint64_t cache_hits{0};
        std::uint64_t cache_misses{0};
        std::uint64_t cache_evictions{0};
        std::uint64_t solver_generations{0};
        size_type cache_operators{0};
        size_type cache_bytes{0};
        size_type queue_capacity{0};
        std::uint64_t queue_peak{0};
    };
    Stats stats() const;
    /// Stats as a JSON object (the /v1/stats body).
    std::string stats_json() const;
    /// The bounded recent-request ring as JSON (the /v1/requests body).
    /// `limit` keeps only the most recent N entries (0 means all);
    /// `trace_filter` (the low 64 bits of a trace id, 0 meaning no
    /// filter) keeps only entries whose trace id ends in that word.
    std::string requests_json(std::size_t limit = 0,
                              std::uint64_t trace_filter = 0) const;

    /// Routes one parsed request to a full HTTP response; exposed so unit
    /// tests can exercise routing, parsing, and the cache without
    /// sockets.  Thread-safe.
    std::string handle(const HttpRequest& request);

private:
    SolveServer() = default;

    void accept_loop();
    void worker_loop();
    void serve_connection(int fd);

    std::string handle_upload(const HttpRequest& request);
    std::string handle_solve(const HttpRequest& request);
    std::string metrics_text() const;

    struct Impl;
    std::unique_ptr<Impl> impl_;

    SolveServerOptions options_;
    int listen_fd_{-1};
    int port_{0};
    std::atomic<bool> accepting_{false};
    std::atomic<bool> stopped_{false};
    /// Set when stop() finishes draining; /readyz distinguishes
    /// "draining" (stopped_ set, workers still serving the queue) from
    /// "stopped" (drain complete) with it.
    std::atomic<bool> drained_{false};
    std::thread acceptor_;
};


/// Starts the process-wide solve server if none is running; returns the
/// bound port.  Like telemetry_start: with a server already running,
/// port 0 reports it and a conflicting explicit port throws BadParameter.
int solve_server_start(int port);

/// Graceful stop + discard of the process-wide server; no-op when none.
void solve_server_stop();

/// True while the process-wide server is running.
bool solve_server_active();

/// The process-wide server's port, 0 when inactive.
int solve_server_port();

/// The process-wide server's /v1/stats JSON; "{}" when inactive.
std::string solve_server_stats_json();

/// solve_server_start($MGKO_SOLVE_PORT) once per process when that
/// variable holds a port number; bind failures are reported on stderr
/// rather than thrown (same embedded-library contract as telemetry).
void solve_server_from_env();


}  // namespace mgko::serve
