// Algorithms implemented "in pure Python" (paper §3.4): composed only from
// operations the binding layer exposes — no direct access to the engine.
//
// The paper's proof-of-concept is the Rayleigh-Ritz method, "not natively
// supported by Ginkgo yet", built from repeated sparse matrix-vector
// products and dense operations available as operators.  We implement it as
// subspace iteration with a Rayleigh-Ritz projection, plus a plain power
// iteration; the small dense symmetric eigenproblem is solved host-side by
// the classic Jacobi rotation algorithm (the numpy.linalg.eigh stand-in).
#pragma once

#include <cstdint>
#include <vector>

#include "bindings/api.hpp"

namespace mgko::pyside {


struct eig_result {
    /// Ritz values, descending by magnitude.
    std::vector<double> eigenvalues;
    /// n x k Ritz vectors (columns match eigenvalues).
    bind::Tensor eigenvectors;
    size_type iterations{};
    /// max_i ||A v_i - lambda_i v_i|| at exit.
    double max_residual{};
};

/// Rayleigh-Ritz subspace iteration for the k dominant eigenpairs of a
/// symmetric operator.  `tolerance` bounds the eigen-residual; iteration
/// stops early once reached.
eig_result rayleigh_ritz(const bind::Device& dev, const bind::Matrix& a,
                         size_type k, size_type max_iterations = 100,
                         double tolerance = 1e-8, std::uint64_t seed = 42);


struct power_result {
    double eigenvalue{};
    bind::Tensor eigenvector;
    size_type iterations{};
};

/// Power iteration for the dominant eigenpair.
power_result power_iteration(const bind::Device& dev, const bind::Matrix& a,
                             size_type max_iterations = 1000,
                             double tolerance = 1e-10,
                             std::uint64_t seed = 42);


/// Host-side symmetric eigensolver (Jacobi rotations) for the small
/// projected problem.  `a` is k x k row-major and is overwritten; returns
/// eigenvalues ascending with matching eigenvector columns in `vectors`.
void symmetric_eig_host(std::vector<double>& a, size_type k,
                        std::vector<double>& eigenvalues,
                        std::vector<double>& vectors);


}  // namespace mgko::pyside
