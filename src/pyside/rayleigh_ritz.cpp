#include "pyside/rayleigh_ritz.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

#include "core/exception.hpp"

namespace mgko::pyside {

namespace {

/// Gram-Schmidt orthonormalization of the columns of an n x k tensor,
/// expressed through binding-layer tensor ops only: G = XᵀX, host Cholesky,
/// X <- X R^{-1}.
bind::Tensor orthonormalize(const bind::Device& dev, const bind::Tensor& x)
{
    const auto n = x.shape().rows;
    const auto k = x.shape().cols;
    auto gram = x.t_matmul(x);              // k x k
    auto g = gram.to_host();                // row-major k*k

    // Host Cholesky G = Rᵀ R (R upper).
    std::vector<double> r(static_cast<std::size_t>(k * k), 0.0);
    auto at = [&](std::vector<double>& m, size_type i, size_type j) -> double& {
        return m[static_cast<std::size_t>(i * k + j)];
    };
    for (size_type i = 0; i < k; ++i) {
        for (size_type j = i; j < k; ++j) {
            double sum = g[static_cast<std::size_t>(i * k + j)];
            for (size_type l = 0; l < i; ++l) {
                sum -= at(r, l, i) * at(r, l, j);
            }
            if (i == j) {
                if (sum <= 0.0) {
                    throw NumericalError(__FILE__, __LINE__,
                                         "rank-deficient subspace in "
                                         "Rayleigh-Ritz orthonormalization");
                }
                at(r, i, i) = std::sqrt(sum);
            } else {
                at(r, i, j) = sum / at(r, i, i);
            }
        }
    }
    // Invert R (upper triangular) on the host.
    std::vector<double> rinv(static_cast<std::size_t>(k * k), 0.0);
    for (size_type j = 0; j < k; ++j) {
        at(rinv, j, j) = 1.0 / at(r, j, j);
        for (size_type i = j; i-- > 0;) {
            double sum = 0.0;
            for (size_type l = i + 1; l <= j; ++l) {
                sum += at(r, i, l) * at(rinv, l, j);
            }
            at(rinv, i, j) = -sum / at(r, i, i);
        }
    }
    auto rinv_tensor =
        bind::as_tensor(dev, rinv, dim2{k, k}, x.dtype_name());
    auto q = x.matmul(rinv_tensor);  // n x k, orthonormal columns
    (void)n;
    return q;
}

}  // namespace


void symmetric_eig_host(std::vector<double>& a, size_type k,
                        std::vector<double>& eigenvalues,
                        std::vector<double>& vectors)
{
    MGKO_ENSURE(static_cast<size_type>(a.size()) == k * k,
                "matrix size mismatch in symmetric_eig_host");
    auto at = [&](std::vector<double>& m, size_type i, size_type j) -> double& {
        return m[static_cast<std::size_t>(i * k + j)];
    };
    vectors.assign(static_cast<std::size_t>(k * k), 0.0);
    for (size_type i = 0; i < k; ++i) {
        at(vectors, i, i) = 1.0;
    }
    // Cyclic Jacobi rotations until off-diagonal mass is negligible.
    for (int sweep = 0; sweep < 100; ++sweep) {
        double off = 0.0;
        for (size_type i = 0; i < k; ++i) {
            for (size_type j = i + 1; j < k; ++j) {
                off += at(a, i, j) * at(a, i, j);
            }
        }
        if (off < 1e-24) {
            break;
        }
        for (size_type p = 0; p < k; ++p) {
            for (size_type q = p + 1; q < k; ++q) {
                const double apq = at(a, p, q);
                if (std::abs(apq) < 1e-18) {
                    continue;
                }
                const double theta = (at(a, q, q) - at(a, p, p)) / (2 * apq);
                const double t = (theta >= 0 ? 1.0 : -1.0) /
                                 (std::abs(theta) +
                                  std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (size_type i = 0; i < k; ++i) {
                    const double aip = at(a, i, p);
                    const double aiq = at(a, i, q);
                    at(a, i, p) = c * aip - s * aiq;
                    at(a, i, q) = s * aip + c * aiq;
                }
                for (size_type i = 0; i < k; ++i) {
                    const double api = at(a, p, i);
                    const double aqi = at(a, q, i);
                    at(a, p, i) = c * api - s * aqi;
                    at(a, q, i) = s * api + c * aqi;
                }
                for (size_type i = 0; i < k; ++i) {
                    const double vip = at(vectors, i, p);
                    const double viq = at(vectors, i, q);
                    at(vectors, i, p) = c * vip - s * viq;
                    at(vectors, i, q) = s * vip + c * viq;
                }
            }
        }
    }
    eigenvalues.resize(static_cast<std::size_t>(k));
    for (size_type i = 0; i < k; ++i) {
        eigenvalues[static_cast<std::size_t>(i)] = at(a, i, i);
    }
    // Sort ascending, permuting eigenvector columns alongside.
    std::vector<size_type> order(static_cast<std::size_t>(k));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_type x, size_type y) {
        return eigenvalues[static_cast<std::size_t>(x)] <
               eigenvalues[static_cast<std::size_t>(y)];
    });
    std::vector<double> sorted_vals(static_cast<std::size_t>(k));
    std::vector<double> sorted_vecs(static_cast<std::size_t>(k * k));
    for (size_type j = 0; j < k; ++j) {
        const auto src = order[static_cast<std::size_t>(j)];
        sorted_vals[static_cast<std::size_t>(j)] =
            eigenvalues[static_cast<std::size_t>(src)];
        for (size_type i = 0; i < k; ++i) {
            sorted_vecs[static_cast<std::size_t>(i * k + j)] =
                at(vectors, i, src);
        }
    }
    eigenvalues = std::move(sorted_vals);
    vectors = std::move(sorted_vecs);
}


eig_result rayleigh_ritz(const bind::Device& dev, const bind::Matrix& a,
                         size_type k, size_type max_iterations,
                         double tolerance, std::uint64_t seed)
{
    const auto n = a.shape().rows;
    MGKO_ENSURE(a.shape().rows == a.shape().cols,
                "Rayleigh-Ritz requires a square operator");
    MGKO_ENSURE(k >= 1 && k <= n, "invalid subspace dimension");

    // Random start block.
    std::mt19937_64 engine{seed};
    std::uniform_real_distribution<double> dist{-1.0, 1.0};
    std::vector<double> host(static_cast<std::size_t>(n * k));
    for (auto& v : host) {
        v = dist(engine);
    }
    auto x = bind::as_tensor(dev, host, dim2{n, k}, "double");

    eig_result result;
    result.eigenvalues.assign(static_cast<std::size_t>(k), 0.0);
    for (size_type iter = 1; iter <= max_iterations; ++iter) {
        auto q = orthonormalize(dev, x);
        // Projected operator T = Qᵀ (A Q).
        auto aq = a.spmv(q);
        auto t = q.t_matmul(aq);
        auto t_host = t.to_host();
        // Symmetrize against round-off before the host eigensolve.
        for (size_type i = 0; i < k; ++i) {
            for (size_type j = i + 1; j < k; ++j) {
                const auto avg =
                    0.5 * (t_host[static_cast<std::size_t>(i * k + j)] +
                           t_host[static_cast<std::size_t>(j * k + i)]);
                t_host[static_cast<std::size_t>(i * k + j)] = avg;
                t_host[static_cast<std::size_t>(j * k + i)] = avg;
            }
        }
        std::vector<double> values, vectors;
        symmetric_eig_host(t_host, k, values, vectors);
        // Descending by magnitude: subspace iteration converges to the
        // dominant spectrum.
        std::reverse(values.begin(), values.end());
        std::vector<double> vectors_desc(vectors.size());
        for (size_type i = 0; i < k; ++i) {
            for (size_type j = 0; j < k; ++j) {
                vectors_desc[static_cast<std::size_t>(i * k + j)] =
                    vectors[static_cast<std::size_t>(i * k + (k - 1 - j))];
            }
        }
        auto c = bind::as_tensor(dev, vectors_desc, dim2{k, k}, "double");
        auto ritz = q.matmul(c);  // n x k Ritz vectors

        // Residual check: max_i ||A v_i - lambda_i v_i||.
        auto a_ritz = a.spmv(ritz);
        double max_res = 0.0;
        {
            auto av = a_ritz.to_host();
            auto v = ritz.to_host();
            for (size_type j = 0; j < k; ++j) {
                double res = 0.0;
                for (size_type i = 0; i < n; ++i) {
                    const double d =
                        av[static_cast<std::size_t>(i * k + j)] -
                        values[static_cast<std::size_t>(j)] *
                            v[static_cast<std::size_t>(i * k + j)];
                    res += d * d;
                }
                max_res = std::max(max_res, std::sqrt(res));
            }
        }
        result.eigenvalues = values;
        result.eigenvectors = ritz;
        result.iterations = iter;
        result.max_residual = max_res;
        if (max_res < tolerance) {
            break;
        }
        // Next subspace: A * (current Ritz vectors).
        x = a_ritz;
    }
    return result;
}


power_result power_iteration(const bind::Device& dev, const bind::Matrix& a,
                             size_type max_iterations, double tolerance,
                             std::uint64_t seed)
{
    const auto n = a.shape().rows;
    std::mt19937_64 engine{seed};
    std::uniform_real_distribution<double> dist{-1.0, 1.0};
    std::vector<double> host(static_cast<std::size_t>(n));
    for (auto& v : host) {
        v = dist(engine);
    }
    auto x = bind::as_tensor(dev, host, dim2{n, 1}, "double");
    x.scale(1.0 / x.norm());

    power_result result;
    double lambda_prev = 0.0;
    for (size_type iter = 1; iter <= max_iterations; ++iter) {
        auto y = a.spmv(x);
        const double lambda = x.dot(y);
        const double y_norm = y.norm();
        if (y_norm == 0.0) {
            break;
        }
        y.scale(1.0 / y_norm);
        x = y;
        result.eigenvalue = lambda;
        result.iterations = iter;
        if (std::abs(lambda - lambda_prev) <
            tolerance * std::max(1.0, std::abs(lambda))) {
            break;
        }
        lambda_prev = lambda;
    }
    result.eigenvector = x;
    return result;
}


}  // namespace mgko::pyside
