#include "reorder/reorder.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "core/math.hpp"

namespace mgko {


template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>> permute_symmetric(
    const Csr<ValueType, IndexType>* a,
    const std::vector<IndexType>& permutation)
{
    const auto n = a->get_size().rows;
    MGKO_ENSURE(a->get_size().rows == a->get_size().cols,
                "symmetric permutation requires a square matrix");
    MGKO_ENSURE(static_cast<size_type>(permutation.size()) == n,
                "permutation length mismatch");
    // inverse[old] = new
    std::vector<IndexType> inverse(static_cast<std::size_t>(n));
    for (size_type i = 0; i < n; ++i) {
        const auto old = static_cast<size_type>(
            permutation[static_cast<std::size_t>(i)]);
        MGKO_ENSURE(old >= 0 && old < n, "permutation entry out of range");
        inverse[static_cast<std::size_t>(old)] = static_cast<IndexType>(i);
    }
    matrix_data<ValueType, IndexType> data{a->get_size()};
    const auto* ptrs = a->get_const_row_ptrs();
    const auto* cols = a->get_const_col_idxs();
    const auto* vals = a->get_const_values();
    for (size_type row = 0; row < n; ++row) {
        const auto new_row = inverse[static_cast<std::size_t>(row)];
        for (auto k = ptrs[row]; k < ptrs[row + 1]; ++k) {
            data.add(new_row,
                     inverse[static_cast<std::size_t>(cols[k])], vals[k]);
        }
    }
    return Csr<ValueType, IndexType>::create_from_data(a->get_executor(),
                                                       data);
}


namespace reorder {


std::string to_string(strategy s)
{
    switch (s) {
    case strategy::none:
        return "none";
    case strategy::rcm:
        return "rcm";
    case strategy::degree:
        return "degree";
    }
    throw BadParameter(__FILE__, __LINE__, "invalid reorder strategy");
}


strategy strategy_from_string(const std::string& name)
{
    std::string lower;
    for (const auto ch : name) {
        lower.push_back(static_cast<char>(std::tolower(ch)));
    }
    if (lower == "none" || lower.empty()) {
        return strategy::none;
    }
    if (lower == "rcm") {
        return strategy::rcm;
    }
    if (lower == "degree") {
        return strategy::degree;
    }
    throw BadParameter(__FILE__, __LINE__,
                       "unknown reorder strategy: " + name);
}


template <typename ValueType, typename IndexType>
std::vector<IndexType> rcm_ordering(const Csr<ValueType, IndexType>* a)
{
    const auto n = a->get_size().rows;
    MGKO_ENSURE(a->get_size().rows == a->get_size().cols,
                "RCM requires a square matrix");
    // Symmetrized adjacency (pattern of A + Aᵀ, no self loops).
    std::vector<std::vector<IndexType>> adj(static_cast<std::size_t>(n));
    const auto* ptrs = a->get_const_row_ptrs();
    const auto* cols = a->get_const_col_idxs();
    for (size_type row = 0; row < n; ++row) {
        for (auto k = ptrs[row]; k < ptrs[row + 1]; ++k) {
            const auto col = static_cast<size_type>(cols[k]);
            if (col != row) {
                adj[static_cast<std::size_t>(row)].push_back(
                    static_cast<IndexType>(col));
                adj[static_cast<std::size_t>(col)].push_back(
                    static_cast<IndexType>(row));
            }
        }
    }
    std::vector<size_type> degree(static_cast<std::size_t>(n));
    for (size_type v = 0; v < n; ++v) {
        auto& neighbors = adj[static_cast<std::size_t>(v)];
        std::sort(neighbors.begin(), neighbors.end());
        neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                        neighbors.end());
        degree[static_cast<std::size_t>(v)] =
            static_cast<size_type>(neighbors.size());
    }

    std::vector<bool> visited(static_cast<std::size_t>(n), false);
    std::vector<IndexType> order;
    order.reserve(static_cast<std::size_t>(n));
    // Process every connected component, seeding each BFS with its
    // minimum-degree unvisited vertex (a cheap pseudo-peripheral choice).
    for (size_type seed_scan = 0; seed_scan < n; ++seed_scan) {
        if (visited[static_cast<std::size_t>(seed_scan)]) {
            continue;
        }
        size_type seed = seed_scan;
        for (size_type v = seed_scan; v < n; ++v) {
            if (!visited[static_cast<std::size_t>(v)] &&
                degree[static_cast<std::size_t>(v)] <
                    degree[static_cast<std::size_t>(seed)]) {
                seed = v;
            }
        }
        std::deque<IndexType> queue;
        queue.push_back(static_cast<IndexType>(seed));
        visited[static_cast<std::size_t>(seed)] = true;
        while (!queue.empty()) {
            const auto v = queue.front();
            queue.pop_front();
            order.push_back(v);
            auto neighbors = adj[static_cast<std::size_t>(v)];
            std::sort(neighbors.begin(), neighbors.end(),
                      [&](IndexType x, IndexType y) {
                          return degree[static_cast<std::size_t>(x)] <
                                 degree[static_cast<std::size_t>(y)];
                      });
            for (const auto w : neighbors) {
                if (!visited[static_cast<std::size_t>(w)]) {
                    visited[static_cast<std::size_t>(w)] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    // Reverse Cuthill-McKee: reverse the BFS order.
    std::reverse(order.begin(), order.end());
    return order;
}


template <typename ValueType, typename IndexType>
std::vector<IndexType> degree_ordering(const Csr<ValueType, IndexType>* a)
{
    const auto n = a->get_size().rows;
    MGKO_ENSURE(a->get_size().rows == a->get_size().cols,
                "degree ordering requires a square matrix");
    const auto* ptrs = a->get_const_row_ptrs();
    std::vector<IndexType> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), IndexType{});
    std::stable_sort(order.begin(), order.end(),
                     [&](IndexType x, IndexType y) {
                         return ptrs[x + 1] - ptrs[x] > ptrs[y + 1] - ptrs[y];
                     });
    return order;
}


template <typename ValueType, typename IndexType>
size_type bandwidth(const Csr<ValueType, IndexType>* a)
{
    size_type result = 0;
    const auto* ptrs = a->get_const_row_ptrs();
    const auto* cols = a->get_const_col_idxs();
    for (size_type row = 0; row < a->get_size().rows; ++row) {
        for (auto k = ptrs[row]; k < ptrs[row + 1]; ++k) {
            const auto distance =
                std::abs(static_cast<std::int64_t>(cols[k]) -
                         static_cast<std::int64_t>(row));
            result = std::max(result, static_cast<size_type>(distance));
        }
    }
    return result;
}


template <typename IndexType>
template <typename ValueType>
void Permutation<IndexType>::apply_rows(const Dense<ValueType>* in,
                                        Dense<ValueType>* out,
                                        bool inverse) const
{
    MGKO_ENSURE(in->get_size() == out->get_size(),
                "permutation input/output shape mismatch");
    MGKO_ENSURE(in->get_size().rows == size(),
                "permutation length must match the vector rows");
    const auto cols = in->get_size().cols;
    const auto* src = in->get_const_values();
    auto* dst = out->get_values();
    const auto in_stride = in->get_stride();
    const auto out_stride = out->get_stride();
    for (size_type i = 0; i < size(); ++i) {
        const auto old = static_cast<size_type>(
            perm_[static_cast<std::size_t>(i)]);
        const auto from = inverse ? i : old;
        const auto to = inverse ? old : i;
        for (size_type c = 0; c < cols; ++c) {
            dst[to * out_stride + c] = src[from * in_stride + c];
        }
    }
    // Gather + scatter: both vectors traverse memory once each.
    in->get_executor()->charge_copy(
        nullptr, 2 * size() * cols * sizeof(ValueType));
}


template <typename ValueType, typename IndexType>
void ReorderedLinOp<ValueType, IndexType>::ensure_buffers(dim2 b_size,
                                                          dim2 x_size) const
{
    if (!perm_b_ || perm_b_->get_size() != b_size) {
        perm_b_ = Dense<ValueType>::create(get_executor(), b_size);
    }
    if (!perm_x_ || perm_x_->get_size() != x_size) {
        perm_x_ = Dense<ValueType>::create(get_executor(), x_size);
    }
}


template <typename ValueType, typename IndexType>
void ReorderedLinOp<ValueType, IndexType>::apply_impl(const LinOp* b,
                                                      LinOp* x) const
{
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    ensure_buffers(dense_b->get_size(), dense_x->get_size());
    perm_.permute_rows(dense_b, perm_b_.get());
    // Solvers use x as the initial guess, so it crosses into the permuted
    // space too.
    perm_.permute_rows(dense_x, perm_x_.get());
    inner_->apply(perm_b_.get(), perm_x_.get());
    perm_.inverse_permute_rows(perm_x_.get(), dense_x);
}


template <typename ValueType, typename IndexType>
void ReorderedLinOp<ValueType, IndexType>::apply_impl(const LinOp* alpha,
                                                      const LinOp* b,
                                                      const LinOp* beta,
                                                      LinOp* x) const
{
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    ensure_buffers(dense_b->get_size(), dense_x->get_size());
    perm_.permute_rows(dense_b, perm_b_.get());
    perm_.permute_rows(dense_x, perm_x_.get());
    inner_->apply(alpha, perm_b_.get(), beta, perm_x_.get());
    perm_.inverse_permute_rows(perm_x_.get(), dense_x);
}


}  // namespace reorder


#define MGKO_DECLARE_REORDER(ValueType, IndexType)                          \
    template std::unique_ptr<Csr<ValueType, IndexType>> permute_symmetric(  \
        const Csr<ValueType, IndexType>*, const std::vector<IndexType>&);   \
    template std::vector<IndexType> reorder::rcm_ordering(                  \
        const Csr<ValueType, IndexType>*);                                  \
    template std::vector<IndexType> reorder::degree_ordering(               \
        const Csr<ValueType, IndexType>*);                                  \
    template size_type reorder::bandwidth(                                  \
        const Csr<ValueType, IndexType>*);                                  \
    template void reorder::Permutation<IndexType>::apply_rows(              \
        const Dense<ValueType>*, Dense<ValueType>*, bool) const;            \
    template class reorder::ReorderedLinOp<ValueType, IndexType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_REORDER);


}  // namespace mgko
