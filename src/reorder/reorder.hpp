// First-class reordering transforms.
//
// Home of the matrix-reordering layer that used to live inside
// matrix/spgemm.hpp: ordering computations (RCM, degree sort), the
// symmetric permutation kernel, and two composable wrappers —
// reorder::Permutation, which applies an ordering to CSR operators and
// Dense vectors, and reorder::ReorderedLinOp, which makes a solver run on
// the permuted system while presenting the original index space to
// callers (permute b in, inverse-permute x out).  Config selects all of
// this with {"reorder": "rcm"}.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "matrix/csr.hpp"
#include "matrix/dense.hpp"

namespace mgko {


/// Symmetric permutation P A Pᵀ (rows and columns) of a square matrix;
/// `permutation[new_index] = old_index`.
template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>> permute_symmetric(
    const Csr<ValueType, IndexType>* a,
    const std::vector<IndexType>& permutation);


namespace reorder {


/// Ordering strategies selectable from config ("reorder" key).
enum class strategy { none, rcm, degree };

std::string to_string(strategy s);
/// Parses "none" / "rcm" / "degree" (case-insensitive); throws
/// BadParameter on anything else.
strategy strategy_from_string(const std::string& name);


/// Reverse Cuthill-McKee ordering computed on the symmetrized pattern of
/// `a`; returns `perm` with perm[new_index] = old_index.  Reduces the
/// matrix bandwidth, which improves SpMV locality and level-scheduled
/// triangular-solve parallelism.
template <typename ValueType, typename IndexType>
std::vector<IndexType> rcm_ordering(const Csr<ValueType, IndexType>* a);

/// Descending-degree ordering (stable): rows sorted by decreasing nonzero
/// count.  Groups rows of similar length, which is exactly what SELL-C-σ's
/// σ-window wants globally; also a useful load-balance baseline against
/// RCM in ablations.
template <typename ValueType, typename IndexType>
std::vector<IndexType> degree_ordering(const Csr<ValueType, IndexType>* a);

/// Half bandwidth max_{(i,j) in A} |i - j| — the quantity RCM minimizes.
template <typename ValueType, typename IndexType>
size_type bandwidth(const Csr<ValueType, IndexType>* a);


/// A row/column ordering as a reusable transform; perm[new_index] =
/// old_index throughout, matching rcm_ordering's output.
template <typename IndexType>
class Permutation {
public:
    explicit Permutation(std::vector<IndexType> perm)
        : perm_{std::move(perm)}
    {}

    /// Identity permutation of length n.
    static Permutation identity(size_type n)
    {
        std::vector<IndexType> p(static_cast<std::size_t>(n));
        for (size_type i = 0; i < n; ++i) {
            p[static_cast<std::size_t>(i)] = static_cast<IndexType>(i);
        }
        return Permutation{std::move(p)};
    }

    size_type size() const { return static_cast<size_type>(perm_.size()); }
    const std::vector<IndexType>& get_order() const { return perm_; }

    /// P A Pᵀ.
    template <typename ValueType>
    std::unique_ptr<Csr<ValueType, IndexType>> permute(
        const Csr<ValueType, IndexType>* a) const
    {
        return permute_symmetric(a, perm_);
    }

    /// out[new_row] = in[old_row]: moves vectors into the permuted index
    /// space (apply to b before solving the permuted system).
    template <typename ValueType>
    void permute_rows(const Dense<ValueType>* in,
                      Dense<ValueType>* out) const
    {
        apply_rows(in, out, /* inverse= */ false);
    }

    /// out[old_row] = in[new_row]: moves vectors back to the original
    /// index space (apply to x after solving the permuted system).
    template <typename ValueType>
    void inverse_permute_rows(const Dense<ValueType>* in,
                              Dense<ValueType>* out) const
    {
        apply_rows(in, out, /* inverse= */ true);
    }

private:
    template <typename ValueType>
    void apply_rows(const Dense<ValueType>* in, Dense<ValueType>* out,
                    bool inverse) const;

    std::vector<IndexType> perm_;
};


/// Computes the ordering `s` for `a`; strategy::none yields the identity.
template <typename ValueType, typename IndexType>
Permutation<IndexType> make_permutation(strategy s,
                                        const Csr<ValueType, IndexType>* a)
{
    switch (s) {
    case strategy::none:
        return Permutation<IndexType>::identity(a->get_size().rows);
    case strategy::rcm:
        return Permutation<IndexType>{rcm_ordering(a)};
    case strategy::degree:
        return Permutation<IndexType>{degree_ordering(a)};
    }
    throw BadParameter(__FILE__, __LINE__, "invalid reorder strategy");
}


/// Type-erased view of a reordered operator so callers (the binding
/// layer's solver_apply) can recover the wrapped solver without knowing
/// the value/index types.
class ReorderedOperator {
public:
    virtual ~ReorderedOperator() = default;
    /// The operator running in the permuted index space.
    virtual std::shared_ptr<LinOp> inner_operator() const = 0;
};


/// Runs `inner` (built on the permuted system P A Pᵀ) while exposing the
/// original index space: apply permutes b in, solves, and inverse-permutes
/// x back out.  Permutation buffers persist across applies, so steady-state
/// applications allocate nothing.
template <typename ValueType, typename IndexType>
class ReorderedLinOp : public LinOp, public ReorderedOperator {
public:
    static std::unique_ptr<ReorderedLinOp> create(
        std::shared_ptr<LinOp> inner, Permutation<IndexType> perm)
    {
        return std::unique_ptr<ReorderedLinOp>{
            new ReorderedLinOp{std::move(inner), std::move(perm)}};
    }

    std::shared_ptr<LinOp> inner_operator() const override
    {
        return inner_;
    }

    const Permutation<IndexType>& get_permutation() const { return perm_; }

protected:
    ReorderedLinOp(std::shared_ptr<LinOp> inner, Permutation<IndexType> perm)
        : LinOp{inner->get_executor(), inner->get_size()},
          inner_{std::move(inner)},
          perm_{std::move(perm)}
    {
        MGKO_ENSURE(perm_.size() == get_size().rows,
                    "permutation length must match the operator size");
    }

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    /// Grows the persistent buffers to the shapes of this apply; no-op
    /// (and no allocation) when shapes are unchanged.
    void ensure_buffers(dim2 b_size, dim2 x_size) const;

    std::shared_ptr<LinOp> inner_;
    Permutation<IndexType> perm_;
    mutable std::unique_ptr<Dense<ValueType>> perm_b_;
    mutable std::unique_ptr<Dense<ValueType>> perm_x_;
};


}  // namespace reorder


}  // namespace mgko
