#include "sim/machine_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace mgko::sim {


double env_override(const char* name, double fallback)
{
    const char* value = std::getenv(name);
    if (value == nullptr) {
        return fallback;
    }
    char* end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value) {
        return fallback;
    }
    return parsed;
}


double MachineModel::stream_time_ns(double bytes, double imbalance,
                                    double efficiency) const
{
    imbalance = std::max(imbalance, 1.0);
    efficiency = std::clamp(efficiency, 1e-3, 1.0);
    const double gbps = bandwidth_gbps * efficiency / imbalance;
    return bytes / gbps;  // bytes / (GB/s) == ns
}


double MachineModel::flop_time_ns(double flops) const
{
    if (flop_throughput_gflops <= 0.0) {
        return 0.0;
    }
    return flops / flop_throughput_gflops;  // flops / GFLOP/s == ns
}


double MachineModel::kernel_time_ns(double bytes, double flops,
                                    double imbalance, double efficiency) const
{
    return launch_latency_ns +
           std::max(stream_time_ns(bytes, imbalance, efficiency),
                    flop_time_ns(flops));
}


MachineModel MachineModel::a100()
{
    MachineModel m;
    m.name = "A100-sim";
    m.bandwidth_gbps = env_override("MGKO_SIM_A100_BW_GBPS", 1555.0);
    m.workers = static_cast<int>(env_override("MGKO_SIM_A100_WORKERS", 1024));
    m.launch_latency_ns = env_override("MGKO_SIM_LAUNCH_US", 8.0) * 1000.0;
    m.transfer_latency_ns = env_override("MGKO_SIM_XFER_US", 8.0) * 1000.0;
    m.atomic_penalty_ns = 0.8;
    m.framework_call_ns = 0.0;
    m.flop_throughput_gflops = 19500.0;  // fp32
    return m;
}


MachineModel MachineModel::mi100()
{
    MachineModel m;
    m.name = "MI100-sim";
    m.bandwidth_gbps = env_override("MGKO_SIM_MI100_BW_GBPS", 1228.0);
    m.workers = static_cast<int>(env_override("MGKO_SIM_MI100_WORKERS", 960));
    m.launch_latency_ns = env_override("MGKO_SIM_HIP_LAUNCH_US", 9.0) * 1000.0;
    m.transfer_latency_ns = env_override("MGKO_SIM_XFER_US", 10.0) * 1000.0;
    m.atomic_penalty_ns = 1.3;
    // The ROCm runtime's dispatch path from a dynamic language layer costs
    // noticeably more than CUDA's (the paper observes higher and more
    // fluctuating binding overhead on the AMD backend, §6.3.2).
    m.framework_call_ns = env_override("MGKO_SIM_HIP_PYCALL_EXTRA_NS", 6000.0);
    m.flop_throughput_gflops = 23100.0;  // fp32
    return m;
}


MachineModel MachineModel::xeon8368(int threads)
{
    threads = std::max(threads, 1);
    MachineModel m;
    m.name = "Xeon8368-sim(" + std::to_string(threads) + "t)";
    // Per-core streaming bandwidth ~11.5 GB/s, saturating towards the
    // socket's ~190 GB/s with a smooth knee; matches STREAM-like scaling on
    // Ice Lake SP parts.
    const double per_core = env_override("MGKO_SIM_CPU_CORE_BW_GBPS", 11.5);
    const double socket = env_override("MGKO_SIM_CPU_SOCKET_BW_GBPS", 190.0);
    m.bandwidth_gbps = socket * (1.0 - std::exp(-per_core * threads / socket));
    m.workers = threads;
    // An OpenMP parallel-for fork/join on a warm team.
    m.launch_latency_ns =
        threads == 1 ? 30.0 : env_override("MGKO_SIM_OMP_FORK_NS", 2000.0);
    m.transfer_latency_ns = 0.0;
    m.atomic_penalty_ns = 12.0;
    m.framework_call_ns = 0.0;
    m.flop_throughput_gflops = 40.0 * threads;
    return m;
}


MachineModel MachineModel::reference_cpu()
{
    MachineModel m;
    m.name = "ref-cpu-sim";
    m.bandwidth_gbps = env_override("MGKO_SIM_CPU_CORE_BW_GBPS", 11.5);
    m.workers = 1;
    m.launch_latency_ns = 0.0;
    m.transfer_latency_ns = 0.0;
    m.atomic_penalty_ns = 6.0;
    m.framework_call_ns = 0.0;
    m.flop_throughput_gflops = 40.0;
    return m;
}


}  // namespace mgko::sim
