// Kernel cost models (DESIGN.md §2.1).
//
// Each kernel derives its modeled execution time from the *actual* data it
// processed: bytes streamed for its storage format, a cache/coalescing miss
// rate estimated from the matrix's real column-index locality, the real
// per-worker load imbalance of its partitioning strategy, and atomic
// conflict counts.  The executor's `run()` separately charges one kernel
// launch; profiles that internally launch several kernels (the
// gather/scatter pipeline of the TensorFlow-like baseline) report the
// surplus in `extra_launches`.
//
// Strategy efficiencies are fixed constants documented below; they encode
// how well each access pattern uses the memory system relative to a pure
// streaming kernel and are the only "free parameters" of the simulation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "sim/machine_model.hpp"

namespace mgko::sim {


/// Partitioning / access strategies modeled for sparse kernels.
enum class spmv_strategy {
    serial,             ///< one worker, textbook loop (SciPy-like, reference)
    classical_rows,     ///< contiguous equal-rows blocks per worker (OMP default)
    balanced_nnz,       ///< nnz-balanced row split (Ginkgo's load-balanced CSR)
    scalar_row,         ///< one worker per row, round-robin (cuSPARSE/CuPy-like)
    wavefront64,        ///< 64-row chunks round-robin (HIP path)
    coo_flat_atomic,    ///< flat nnz split with atomic row updates (PyTorch-like)
    coo_gather_scatter, ///< gather/multiply/scatter pipeline (TensorFlow-like)
    ell_rowmajor,       ///< ELL padded rows
    sellcs,             ///< SELL-C-σ sliced, per-slice column-major
};

/// Memory-system efficiency of each strategy relative to pure streaming.
constexpr double strategy_efficiency(spmv_strategy s)
{
    switch (s) {
    case spmv_strategy::serial:
        return 0.88;
    case spmv_strategy::classical_rows:
        return 0.85;
    case spmv_strategy::balanced_nnz:
        return 0.85;
    case spmv_strategy::scalar_row:
        return 0.22;  // uncoalesced per-lane row traversal
    case spmv_strategy::wavefront64:
        return 0.72;
    case spmv_strategy::coo_flat_atomic:
        return 0.55;
    case spmv_strategy::coo_gather_scatter:
        return 0.48;
    case spmv_strategy::ell_rowmajor:
        return 0.80;
    case spmv_strategy::sellcs:
        // Per-slice column-major: lanes stay coalesced like ELL, but the
        // fixed slice height keeps the streamed slab contiguous per slice
        // (no strided jumps across the full row count), so the access
        // pattern sits between ELL and the classical row split.
        return 0.86;
    }
    return 0.5;
}


struct kernel_profile {
    double bytes{};          ///< effective bytes streamed
    double flops{};
    double imbalance{1.0};   ///< max worker load / mean worker load
    double efficiency{1.0};
    double extra_ns{};       ///< atomic penalties etc.
    int extra_launches{};    ///< kernels beyond the one charged by run()

    double time_ns(const MachineModel& m) const
    {
        return std::max(m.stream_time_ns(bytes, imbalance, efficiency),
                        m.flop_time_ns(flops)) +
               extra_ns + extra_launches * m.launch_latency_ns;
    }
};


/// Fraction of irregular vector accesses expected to miss cache, estimated
/// by sampling the real column-index stream: consecutive accesses within 16
/// elements are treated as hits (same / adjacent cache line), long jumps as
/// misses damped by the fraction of the vector that fits in cache.
template <typename IndexType>
double locality_miss_rate(const IndexType* col_idxs, size_type nnz,
                          size_type num_cols)
{
    if (nnz <= 1) {
        return 0.0;
    }
    const size_type samples = std::min<size_type>(nnz - 1, 65536);
    const size_type stride = std::max<size_type>((nnz - 1) / samples, 1);
    size_type misses = 0;
    size_type counted = 0;
    for (size_type i = 1; i < nnz; i += stride) {
        const auto delta = static_cast<std::int64_t>(col_idxs[i]) -
                           static_cast<std::int64_t>(col_idxs[i - 1]);
        misses += (delta < -16 || delta > 16) ? 1 : 0;
        ++counted;
    }
    const double raw = static_cast<double>(misses) /
                       static_cast<double>(std::max<size_type>(counted, 1));
    // Small vectors live in cache regardless of access order (~4 MB of
    // effective vector cache per worker pool).
    const double vector_bytes = static_cast<double>(num_cols) * 8.0;
    const double cache_fraction =
        std::min(1.0, 4.0 * 1024 * 1024 / std::max(vector_bytes, 1.0));
    return raw * (1.0 - cache_fraction);
}


/// Imbalance of splitting rows into `workers` contiguous equal-count blocks,
/// measured on the real nnz-per-row distribution.
template <typename IndexType>
double rows_block_imbalance(const IndexType* row_ptrs, size_type rows,
                            int workers)
{
    if (rows <= 0 || workers <= 1) {
        return 1.0;
    }
    workers = static_cast<int>(std::min<size_type>(workers, rows));
    const double mean =
        static_cast<double>(row_ptrs[rows]) / workers;
    if (mean <= 0.0) {
        return 1.0;
    }
    double max_load = 0.0;
    for (int w = 0; w < workers; ++w) {
        const size_type begin = rows * w / workers;
        const size_type end = rows * (w + 1) / workers;
        max_load = std::max(
            max_load, static_cast<double>(row_ptrs[end] - row_ptrs[begin]));
    }
    return std::max(max_load / mean, 1.0);
}


/// Imbalance of assigning single rows round-robin to workers (scalar-row
/// kernels): with many more rows than workers this evens out, but the warp
/// executes at the pace of its longest row, which is the real cost driver.
/// We model it as the mean over 32-row groups of (max row / mean row),
/// capped at 2x because vendor kernels fall back to warp-per-row handling
/// for very long rows, bounding the divergence penalty in practice.
template <typename IndexType>
double scalar_row_divergence(const IndexType* row_ptrs, size_type rows)
{
    if (rows <= 0) {
        return 1.0;
    }
    const size_type group = 32;
    double total = 0.0;
    size_type groups = 0;
    for (size_type g = 0; g < rows; g += group) {
        const size_type end = std::min(rows, g + group);
        double max_len = 0.0, sum = 0.0;
        for (size_type r = g; r < end; ++r) {
            const double len = static_cast<double>(row_ptrs[r + 1] - row_ptrs[r]);
            max_len = std::max(max_len, len);
            sum += len;
        }
        const double mean = sum / static_cast<double>(end - g);
        total += mean > 0.0 ? max_len / mean : 1.0;
        ++groups;
    }
    const double raw = groups > 0
                           ? std::max(total / static_cast<double>(groups), 1.0)
                           : 1.0;
    return std::min(raw, 2.2);
}


/// Imbalance of a row-aligned nnz-balanced partition: workers receive
/// contiguous row ranges holding (nearly) equal nonzeros, but a single row
/// never splits, so a very long (dense) row caps one worker's load — the
/// mechanism behind the paper's Fig. 4 dip for the dense matrix E.
/// Escalation to splitting long rows with atomics bounds the worst case
/// at ~4x.
template <typename IndexType>
double nnz_balanced_row_imbalance(const IndexType* row_ptrs, size_type rows,
                                  int workers)
{
    if (rows <= 0 || workers <= 1) {
        return 1.0;
    }
    workers = static_cast<int>(std::min<size_type>(workers, rows));
    const auto nnz = static_cast<double>(row_ptrs[rows]);
    const double target = nnz / workers;
    if (target <= 0.0) {
        return 1.0;
    }
    // The worker holding the longest row carries at least that row.
    double max_row = 0.0;
    for (size_type r = 0; r < rows; ++r) {
        max_row = std::max(max_row,
                           static_cast<double>(row_ptrs[r + 1] - row_ptrs[r]));
    }
    const double raw = std::max(1.0, max_row / target);
    return std::min(raw, 4.0);
}


/// Imbalance of 64-row chunks distributed round-robin (wavefront kernels).
template <typename IndexType>
double wavefront_chunk_imbalance(const IndexType* row_ptrs, size_type rows,
                                 int workers)
{
    if (rows <= 0 || workers <= 1) {
        return 1.0;
    }
    const size_type chunk = 64;
    const size_type num_chunks = (rows + chunk - 1) / chunk;
    if (num_chunks <= static_cast<size_type>(workers)) {
        // fewer chunks than workers: device underutilized
        return static_cast<double>(workers) /
               static_cast<double>(std::max<size_type>(num_chunks, 1));
    }
    // Round-robin chunks: compute per-worker totals on a sampled basis.
    const int w = workers;
    std::vector<double> load(static_cast<std::size_t>(w), 0.0);
    for (size_type c = 0; c < num_chunks; ++c) {
        const size_type begin = c * chunk;
        const size_type end = std::min(rows, begin + chunk);
        load[static_cast<std::size_t>(c % w)] +=
            static_cast<double>(row_ptrs[end] - row_ptrs[begin]);
    }
    const double total = static_cast<double>(row_ptrs[rows]);
    const double mean = total / w;
    const double max_load = *std::max_element(load.begin(), load.end());
    return mean > 0.0 ? std::max(max_load / mean, 1.0) : 1.0;
}


/// Expected number of conflicting atomic updates for a flat COO split:
/// every row shared between adjacent nnz-ranges conflicts; with sorted COO
/// that is at most one row per worker boundary, but unsorted scatter
/// conflicts scale with duplicate rows per cache window.  We charge the
/// boundary term plus a density-dependent share of nnz.
inline double coo_atomic_conflicts(size_type nnz, size_type rows, int workers)
{
    const double boundary = static_cast<double>(std::max(workers - 1, 0));
    const double per_row = rows > 0 ? static_cast<double>(nnz) /
                                          static_cast<double>(rows)
                                    : 1.0;
    // Rows revisited within a worker's window still serialize on L2.
    const double revisit_share = std::min(per_row / 64.0, 1.0);
    return boundary + revisit_share * static_cast<double>(nnz) * 0.02;
}


/// Load imbalance of the given strategy on the given row structure; sparse
/// matrix classes cache this per (strategy, workers).
template <typename IndexType>
double strategy_imbalance(spmv_strategy strategy, const MachineModel& m,
                          size_type rows, const IndexType* row_ptrs)
{
    switch (strategy) {
    case spmv_strategy::serial:
        return 1.0;
    case spmv_strategy::classical_rows:
        return row_ptrs != nullptr
                   ? rows_block_imbalance(row_ptrs, rows, m.workers)
                   : 1.0;
    case spmv_strategy::balanced_nnz:
        return row_ptrs != nullptr
                   ? nnz_balanced_row_imbalance(row_ptrs, rows, m.workers)
                   : 1.02;
    case spmv_strategy::scalar_row:
        return row_ptrs != nullptr ? scalar_row_divergence(row_ptrs, rows)
                                   : 1.5;
    case spmv_strategy::wavefront64:
        return row_ptrs != nullptr
                   ? wavefront_chunk_imbalance(row_ptrs, rows, m.workers)
                   : 1.2;
    case spmv_strategy::coo_flat_atomic:
    case spmv_strategy::coo_gather_scatter:
        return 1.05;
    case spmv_strategy::ell_rowmajor:
    case spmv_strategy::sellcs:
        return 1.0;  // padding cost is carried in the byte count instead
    }
    return 1.0;
}


/// Assembles a sparse-apply cost profile from (possibly cached) structural
/// statistics.  `vec_cols` is the number of right-hand-side columns (1 for
/// SpMV); `padded` is the padded storage extent: the per-row width for ELL,
/// the total stored (padded) element count for SELL-C-σ, unused otherwise.
inline kernel_profile assemble_spmv_profile(
    spmv_strategy strategy, const MachineModel& m, size_type rows,
    size_type nnz, size_type value_bytes, size_type index_bytes, double miss,
    double imbalance, size_type vec_cols = 1, bool advanced = false,
    size_type padded = 0)
{
    kernel_profile p;
    const double vb = static_cast<double>(value_bytes);
    const double ib = static_cast<double>(index_bytes);
    const double n = static_cast<double>(nnz);
    const double r = static_cast<double>(rows);
    const double k = static_cast<double>(vec_cols);

    // Streamed: values + column indices + row structure + result write (+
    // result read for advanced apply) + irregular b-gather misses.
    double structure_bytes = 0.0;
    switch (strategy) {
    case spmv_strategy::coo_flat_atomic:
    case spmv_strategy::coo_gather_scatter:
        structure_bytes = n * ib;  // explicit row indices
        break;
    default:
        structure_bytes = (r + 1) * ib;  // row pointers
        break;
    }
    p.bytes = n * (vb + ib) + structure_bytes +
              r * vb * k * (advanced ? 2 : 1) + n * vb * k * miss;
    if (strategy == spmv_strategy::coo_gather_scatter) {
        // gather temp write+read, product temp write+read
        p.bytes += 4.0 * n * vb * k;
        p.extra_launches = 2;  // gather, multiply, scatter = 3 kernels total
    }
    if (strategy == spmv_strategy::ell_rowmajor) {
        p.bytes = r * static_cast<double>(padded) * (vb + ib) + r * vb * k +
                  n * vb * k * miss;
    }
    if (strategy == spmv_strategy::sellcs) {
        // The padded slab (typically far smaller than ELL's rows * max_width
        // on irregular-row matrices) plus the slice offsets are streamed;
        // flops still scale with the true nnz.
        p.bytes = static_cast<double>(padded) * (vb + ib) + r * ib +
                  r * vb * k * (advanced ? 2 : 1) + n * vb * k * miss;
    }
    p.flops = 2.0 * n * k;
    p.efficiency = strategy_efficiency(strategy);
    p.imbalance = imbalance;
    if (strategy == spmv_strategy::coo_flat_atomic) {
        p.extra_ns =
            coo_atomic_conflicts(nnz, rows, m.workers) * m.atomic_penalty_ns;
    }
    // Row-loop overhead (~1.2 ns/row: loop control, accumulator init,
    // store) — significant for matrices with few nonzeros per row, and the
    // reason serial CSR looks relatively better on dense matrices.
    switch (strategy) {
    case spmv_strategy::serial:
    case spmv_strategy::classical_rows:
    case spmv_strategy::balanced_nnz:
    case spmv_strategy::wavefront64:
    case spmv_strategy::ell_rowmajor:
    case spmv_strategy::sellcs:
        p.extra_ns += 1.2 * r / std::max(m.workers, 1);
        break;
    default:
        break;
    }
    return p;
}


/// Uncached convenience wrapper computing structural statistics on the fly.
template <typename IndexType>
kernel_profile profile_spmv(spmv_strategy strategy, const MachineModel& m,
                            size_type rows, size_type cols, size_type nnz,
                            const IndexType* row_ptrs,
                            const IndexType* col_idxs, size_type value_bytes,
                            size_type index_bytes, size_type vec_cols = 1,
                            bool advanced = false, size_type padded = 0)
{
    const double miss =
        col_idxs != nullptr ? locality_miss_rate(col_idxs, nnz, cols) : 0.3;
    const double imbalance = strategy_imbalance(strategy, m, rows, row_ptrs);
    return assemble_spmv_profile(strategy, m, rows, nnz, value_bytes,
                                 index_bytes, miss, imbalance, vec_cols,
                                 advanced, padded);
}


/// Simple streaming profile for dense / vector kernels.
inline kernel_profile profile_stream(double bytes, double flops,
                                     double efficiency = 0.95)
{
    kernel_profile p;
    p.bytes = bytes;
    p.flops = flops;
    p.efficiency = efficiency;
    return p;
}


/// Reduction kernels (dot, norm): stream the inputs, then pay a tree
/// reduction which on devices costs an extra (small) latency.
inline kernel_profile profile_reduction(const MachineModel& m, double bytes,
                                        double flops)
{
    kernel_profile p;
    p.bytes = bytes;
    p.flops = flops;
    p.efficiency = 0.9;
    p.extra_ns = 0.15 * m.launch_latency_ns;  // final reduction pass
    return p;
}


}  // namespace mgko::sim
