// The simulated execution clock carried by every executor.
//
// Kernels tick modeled execution times onto this clock (DESIGN.md §2.1);
// software layers (the binding layer, the baselines' interpreter models)
// tick measured or modeled dispatch overheads.  Benchmarks time code by
// reading clock deltas, so the figures reflect the modeled machines rather
// than the single-core build host.
#pragma once

#include <atomic>
#include <cstdint>

namespace mgko::sim {


class SimClock {
public:
    /// Advances the clock by `ns` nanoseconds of simulated execution.
    void tick(double ns)
    {
        if (ns > 0.0) {
            ns_.fetch_add(static_cast<std::int64_t>(ns),
                          std::memory_order_relaxed);
        }
    }

    /// Total simulated nanoseconds since construction (or last reset).
    std::int64_t now_ns() const { return ns_.load(std::memory_order_relaxed); }

    double now_seconds() const { return static_cast<double>(now_ns()) * 1e-9; }

    void reset() { ns_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> ns_{0};
};


/// RAII stopwatch over a SimClock; the unit benches and harness use it to
/// time a region of simulated execution.
class SimStopwatch {
public:
    explicit SimStopwatch(const SimClock& clock)
        : clock_{&clock}, start_ns_{clock.now_ns()}
    {}

    double elapsed_ns() const
    {
        return static_cast<double>(clock_->now_ns() - start_ns_);
    }
    double elapsed_seconds() const { return elapsed_ns() * 1e-9; }

    void restart() { start_ns_ = clock_->now_ns(); }

private:
    const SimClock* clock_;
    std::int64_t start_ns_;
};


}  // namespace mgko::sim
