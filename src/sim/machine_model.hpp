// Machine performance models for the SimClock timing layer.
//
// The build/eval machine for this reproduction has a single CPU core and no
// GPU, while the paper's evaluation ran on Intel Xeon 8368 CPUs (up to 32
// threads used), NVIDIA A100, and AMD MI100 accelerators.  Following the
// substitution rule documented in DESIGN.md §2.1, kernels compute real
// results and *tick* a simulated clock with a modeled execution time:
//
//     t = launch_latency + bytes_effective / (bandwidth * efficiency /
//                                             imbalance) [+ penalties]
//
// where bytes_effective, imbalance, and penalties are derived from the
// actual data structures each kernel touched (see sim/cost_model.hpp), and
// the machine constants below are taken from published hardware specs.
//
// All constants can be overridden through MGKO_SIM_* environment variables,
// which the ablation bench uses for sensitivity analysis.
#pragma once

#include <string>

#include "core/types.hpp"

namespace mgko::sim {


struct MachineModel {
    std::string name;
    /// Aggregate streaming bandwidth at full occupancy [GB/s].
    double bandwidth_gbps{};
    /// Number of parallel workers used for load-imbalance computation
    /// (thread-groups on a GPU, threads on a CPU).
    int workers{1};
    /// Fixed cost of launching one kernel [ns].  ~6 us for CUDA, ~9 us for
    /// HIP, ~0.3 us for an OpenMP parallel region, 0 for serial code.
    double launch_latency_ns{};
    /// Cost of one host<->device transfer setup [ns] (on top of bytes/BW).
    double transfer_latency_ns{};
    /// Extra cost per conflicting atomic update [ns].
    double atomic_penalty_ns{};
    /// Per-call cost of a dynamic framework layer driving this device
    /// (CPython dispatch for the baseline libraries) [ns].
    double framework_call_ns{};
    /// Compute roofline [GFLOP/s]; SpMV rarely hits it but dense ops can.
    double flop_throughput_gflops{};

    /// Time to stream `bytes` with a kernel whose partition causes the given
    /// imbalance (max worker load / mean worker load, >= 1) and whose memory
    /// access pattern achieves the given efficiency in (0, 1].
    double stream_time_ns(double bytes, double imbalance,
                          double efficiency) const;

    /// Time for `flops` floating point operations at the compute roofline.
    double flop_time_ns(double flops) const;

    /// Full kernel model: launch + max(stream, flop) phases.
    double kernel_time_ns(double bytes, double flops, double imbalance = 1.0,
                          double efficiency = 1.0) const;

    /// NVIDIA A100-SXM4-40GB-like device (paper's CUDA backend).
    static MachineModel a100();
    /// AMD Instinct MI100-like device (paper's HIP backend).
    static MachineModel mi100();
    /// Intel Xeon Platinum 8368-like socket restricted to `threads` OpenMP
    /// threads (paper's CPU backend; they sweep 1..32 threads).
    static MachineModel xeon8368(int threads);
    /// Single core of the Xeon, sequential code (the SciPy baseline and the
    /// reference executor).
    static MachineModel reference_cpu();
};

/// Reads a double-valued override from the environment, e.g.
/// MGKO_SIM_LAUNCH_US for device launch latency.  Returns fallback when the
/// variable is unset or unparsable.
double env_override(const char* name, double fallback);


}  // namespace mgko::sim
