#include "preconditioner/ilu.hpp"

namespace mgko::preconditioner {


template <typename ValueType, typename IndexType>
Ilu<ValueType, IndexType>::Ilu(
    std::shared_ptr<const Executor> exec,
    std::shared_ptr<const Csr<ValueType, IndexType>> system)
    : LinOp{exec, system->get_size()},
      factors_{factorization::factorize_ilu0(system.get())}
{
    lower_solve_ = solver::LowerTrs<ValueType, IndexType>::build()
                       .with_unit_diagonal(true)
                       .on(exec)
                       ->generate(factors_.lower);
    upper_solve_ = solver::UpperTrs<ValueType, IndexType>::build().on(exec)
                       ->generate(factors_.upper);
}


template <typename ValueType, typename IndexType>
void Ilu<ValueType, IndexType>::apply_impl(const LinOp* b, LinOp* x) const
{
    auto* y = solver::detail::ensure_vec(
        mid_, get_executor(), dim2{get_size().rows, b->get_size().cols});
    lower_solve_->apply(b, y);
    upper_solve_->apply(y, x);
}


template <typename ValueType, typename IndexType>
void Ilu<ValueType, IndexType>::apply_impl(const LinOp* alpha, const LinOp* b,
                                           const LinOp* beta, LinOp* x) const
{
    auto dense_x = as_dense<ValueType>(x);
    auto* tmp = solver::detail::ensure_vec(adv_tmp_, get_executor(),
                                           dense_x->get_size());
    apply_impl(b, tmp);
    dense_x->scale(as_dense<ValueType>(beta));
    dense_x->add_scaled(as_dense<ValueType>(alpha), tmp);
}


template <typename ValueType, typename IndexType>
std::unique_ptr<LinOp> Ilu<ValueType, IndexType>::Factory::generate_impl(
    std::shared_ptr<const LinOp> system) const
{
    auto csr =
        std::dynamic_pointer_cast<const Csr<ValueType, IndexType>>(system);
    if (!csr) {
        MGKO_NOT_SUPPORTED(
            "Ilu requires a Csr system of matching value/index type");
    }
    return std::unique_ptr<LinOp>{
        new Ilu{this->get_executor(), std::move(csr)}};
}


template <typename ValueType, typename IndexType>
Ic<ValueType, IndexType>::Ic(
    std::shared_ptr<const Executor> exec,
    std::shared_ptr<const Csr<ValueType, IndexType>> system)
    : LinOp{exec, system->get_size()},
      lower_{factorization::factorize_ic0(system.get())}
{
    upper_ = lower_->transpose();
    lower_solve_ = solver::LowerTrs<ValueType, IndexType>::build().on(exec)
                       ->generate(lower_);
    upper_solve_ = solver::UpperTrs<ValueType, IndexType>::build().on(exec)
                       ->generate(upper_);
}


template <typename ValueType, typename IndexType>
void Ic<ValueType, IndexType>::apply_impl(const LinOp* b, LinOp* x) const
{
    auto* y = solver::detail::ensure_vec(
        mid_, get_executor(), dim2{get_size().rows, b->get_size().cols});
    lower_solve_->apply(b, y);
    upper_solve_->apply(y, x);
}


template <typename ValueType, typename IndexType>
void Ic<ValueType, IndexType>::apply_impl(const LinOp* alpha, const LinOp* b,
                                          const LinOp* beta, LinOp* x) const
{
    auto dense_x = as_dense<ValueType>(x);
    auto* tmp = solver::detail::ensure_vec(adv_tmp_, get_executor(),
                                           dense_x->get_size());
    apply_impl(b, tmp);
    dense_x->scale(as_dense<ValueType>(beta));
    dense_x->add_scaled(as_dense<ValueType>(alpha), tmp);
}


template <typename ValueType, typename IndexType>
std::unique_ptr<LinOp> Ic<ValueType, IndexType>::Factory::generate_impl(
    std::shared_ptr<const LinOp> system) const
{
    auto csr =
        std::dynamic_pointer_cast<const Csr<ValueType, IndexType>>(system);
    if (!csr) {
        MGKO_NOT_SUPPORTED(
            "Ic requires a Csr system of matching value/index type");
    }
    return std::unique_ptr<LinOp>{new Ic{this->get_executor(), std::move(csr)}};
}


#define MGKO_DECLARE_ILU_IC(ValueType, IndexType) \
    template class Ilu<ValueType, IndexType>;     \
    template class Ic<ValueType, IndexType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_ILU_IC);


}  // namespace mgko::preconditioner
