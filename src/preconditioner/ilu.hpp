// ILU and IC preconditioners: incomplete factorization at generate time,
// two triangular solves per application (paper Listing 1 uses Ilu + GMRES).
#pragma once

#include <memory>

#include "core/lin_op.hpp"
#include "factorization/ilu.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"
#include "solver/triangular.hpp"
#include "solver/workspace.hpp"

namespace mgko::preconditioner {


/// Applies (LU)^{-1}: y = L^{-1} b (unit diagonal), x = U^{-1} y.
template <typename ValueType = double, typename IndexType = int32>
class Ilu : public LinOp {
public:
    using value_type = ValueType;
    using index_type = IndexType;

    class Factory : public LinOpFactory {
    public:
        explicit Factory(std::shared_ptr<const Executor> exec)
            : LinOpFactory{std::move(exec)}
        {}

    protected:
        std::unique_ptr<LinOp> generate_impl(
            std::shared_ptr<const LinOp> system) const override;
    };

    static std::shared_ptr<Factory> build_on(
        std::shared_ptr<const Executor> exec)
    {
        return std::make_shared<Factory>(std::move(exec));
    }

    /// Paper-style convenience: pg.preconditioner.Ilu(dev, mtx).
    static std::unique_ptr<Ilu> create(
        std::shared_ptr<const Executor> exec,
        std::shared_ptr<const Csr<ValueType, IndexType>> system)
    {
        return std::unique_ptr<Ilu>{new Ilu{std::move(exec), std::move(system)}};
    }

    std::shared_ptr<const Csr<ValueType, IndexType>> lower_factor() const
    {
        return factors_.lower;
    }
    std::shared_ptr<const Csr<ValueType, IndexType>> upper_factor() const
    {
        return factors_.upper;
    }

protected:
    Ilu(std::shared_ptr<const Executor> exec,
        std::shared_ptr<const Csr<ValueType, IndexType>> system);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    factorization::lu_factors<ValueType, IndexType> factors_;
    std::unique_ptr<LinOp> lower_solve_;
    std::unique_ptr<LinOp> upper_solve_;
    /// Cached intermediate (y = L^{-1} b) and advanced-apply temporary,
    /// reused across calls.
    mutable std::unique_ptr<Dense<ValueType>> mid_;
    mutable std::unique_ptr<Dense<ValueType>> adv_tmp_;
};


/// Applies (L Lᵀ)^{-1} for SPD systems.
template <typename ValueType = double, typename IndexType = int32>
class Ic : public LinOp {
public:
    using value_type = ValueType;
    using index_type = IndexType;

    class Factory : public LinOpFactory {
    public:
        explicit Factory(std::shared_ptr<const Executor> exec)
            : LinOpFactory{std::move(exec)}
        {}

    protected:
        std::unique_ptr<LinOp> generate_impl(
            std::shared_ptr<const LinOp> system) const override;
    };

    static std::shared_ptr<Factory> build_on(
        std::shared_ptr<const Executor> exec)
    {
        return std::make_shared<Factory>(std::move(exec));
    }

    static std::unique_ptr<Ic> create(
        std::shared_ptr<const Executor> exec,
        std::shared_ptr<const Csr<ValueType, IndexType>> system)
    {
        return std::unique_ptr<Ic>{new Ic{std::move(exec), std::move(system)}};
    }

    std::shared_ptr<const Csr<ValueType, IndexType>> lower_factor() const
    {
        return lower_;
    }

protected:
    Ic(std::shared_ptr<const Executor> exec,
       std::shared_ptr<const Csr<ValueType, IndexType>> system);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    std::shared_ptr<Csr<ValueType, IndexType>> lower_;
    std::shared_ptr<Csr<ValueType, IndexType>> upper_;  // Lᵀ
    std::unique_ptr<LinOp> lower_solve_;
    std::unique_ptr<LinOp> upper_solve_;
    /// Cached intermediate (y = L^{-1} b) and advanced-apply temporary,
    /// reused across calls.
    mutable std::unique_ptr<Dense<ValueType>> mid_;
    mutable std::unique_ptr<Dense<ValueType>> adv_tmp_;
};


}  // namespace mgko::preconditioner
