// Jacobi preconditioner: scalar (block size 1) and block variants.
//
// The paper's config-solver example (Listing 2) instantiates GMRES with a
// Jacobi preconditioner of block size 1.  The block variant inverts the
// dense diagonal blocks at generate time and applies them as small GEMVs.
#pragma once

#include <memory>

#include "core/array.hpp"
#include "core/lin_op.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"
#include "solver/workspace.hpp"

namespace mgko::preconditioner {


struct jacobi_parameters {
    /// Diagonal-block edge length; 1 selects the scalar path.
    size_type max_block_size{1};
};


template <typename ValueType, typename IndexType>
class Jacobi;

template <typename ValueType, typename IndexType>
class JacobiFactory : public LinOpFactory {
public:
    JacobiFactory(std::shared_ptr<const Executor> exec,
                  jacobi_parameters params)
        : LinOpFactory{std::move(exec)}, params_{params}
    {}
    const jacobi_parameters& get_parameters() const { return params_; }

protected:
    std::unique_ptr<LinOp> generate_impl(
        std::shared_ptr<const LinOp> system) const override;

private:
    jacobi_parameters params_;
};

template <typename ValueType, typename IndexType>
class jacobi_builder : public jacobi_parameters {
public:
    jacobi_builder& with_max_block_size(size_type size)
    {
        max_block_size = size;
        return *this;
    }
    std::shared_ptr<JacobiFactory<ValueType, IndexType>> on(
        std::shared_ptr<const Executor> exec) const
    {
        return std::make_shared<JacobiFactory<ValueType, IndexType>>(
            std::move(exec), *this);
    }
};


template <typename ValueType = double, typename IndexType = int32>
class Jacobi : public LinOp {
public:
    using value_type = ValueType;
    using index_type = IndexType;

    static jacobi_builder<ValueType, IndexType> build() { return {}; }

    size_type block_size() const { return block_size_; }

protected:
    friend class JacobiFactory<ValueType, IndexType>;
    Jacobi(std::shared_ptr<const Executor> exec, jacobi_parameters params,
           std::shared_ptr<const Csr<ValueType, IndexType>> system);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    size_type block_size_;
    /// Scalar path: 1/diag per row.  Block path: inverted bs x bs blocks,
    /// stored contiguously block after block (row-major within a block).
    array<ValueType> inv_data_;
    /// Cached temporary of the advanced apply, reused across calls.
    mutable std::unique_ptr<Dense<ValueType>> adv_tmp_;
};


}  // namespace mgko::preconditioner
