#include "preconditioner/jacobi.hpp"

#include <cmath>
#include <vector>

#include "core/kernel_utils.hpp"
#include "core/math.hpp"

namespace mgko::preconditioner {

namespace {

/// Inverts a dense bs x bs block in place via Gauss-Jordan with partial
/// pivoting; throws NumericalError on singularity.
template <typename V>
void invert_block(std::vector<double>& block, size_type bs)
{
    std::vector<double> inv(static_cast<std::size_t>(bs * bs), 0.0);
    for (size_type i = 0; i < bs; ++i) {
        inv[static_cast<std::size_t>(i * bs + i)] = 1.0;
    }
    auto at = [&](std::vector<double>& m, size_type r, size_type c) -> double& {
        return m[static_cast<std::size_t>(r * bs + c)];
    };
    for (size_type col = 0; col < bs; ++col) {
        // partial pivot
        size_type pivot_row = col;
        double best = std::abs(at(block, col, col));
        for (size_type r = col + 1; r < bs; ++r) {
            if (std::abs(at(block, r, col)) > best) {
                best = std::abs(at(block, r, col));
                pivot_row = r;
            }
        }
        if (best == 0.0) {
            throw NumericalError(__FILE__, __LINE__,
                                 "singular diagonal block in block-Jacobi");
        }
        if (pivot_row != col) {
            for (size_type c = 0; c < bs; ++c) {
                std::swap(at(block, col, c), at(block, pivot_row, c));
                std::swap(at(inv, col, c), at(inv, pivot_row, c));
            }
        }
        const double pivot = at(block, col, col);
        for (size_type c = 0; c < bs; ++c) {
            at(block, col, c) /= pivot;
            at(inv, col, c) /= pivot;
        }
        for (size_type r = 0; r < bs; ++r) {
            if (r == col) {
                continue;
            }
            const double factor = at(block, r, col);
            if (factor != 0.0) {
                for (size_type c = 0; c < bs; ++c) {
                    at(block, r, c) -= factor * at(block, col, c);
                    at(inv, r, c) -= factor * at(inv, col, c);
                }
            }
        }
    }
    block = std::move(inv);
}

}  // namespace


template <typename ValueType, typename IndexType>
Jacobi<ValueType, IndexType>::Jacobi(
    std::shared_ptr<const Executor> exec, jacobi_parameters params,
    std::shared_ptr<const Csr<ValueType, IndexType>> system)
    : LinOp{exec, system->get_size()},
      block_size_{std::max<size_type>(params.max_block_size, 1)},
      inv_data_{exec}
{
    MGKO_ENSURE(system->get_size().rows == system->get_size().cols,
                "Jacobi requires a square system");
    const auto n = system->get_size().rows;
    const auto* values = system->get_const_values();
    const auto* col_idxs = system->get_const_col_idxs();
    const auto* row_ptrs = system->get_const_row_ptrs();

    if (block_size_ == 1) {
        inv_data_.resize_and_reset(n);
        for (size_type row = 0; row < n; ++row) {
            ValueType diag = zero<ValueType>();
            for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
                if (static_cast<size_type>(col_idxs[k]) == row) {
                    diag = values[k];
                }
            }
            inv_data_.get_data()[row] = safe_reciprocal(diag);
        }
        return;
    }

    const auto bs = block_size_;
    const auto num_blocks = ceildiv(n, bs);
    inv_data_.resize_and_reset(num_blocks * bs * bs);
    std::fill_n(inv_data_.get_data(), inv_data_.size(), zero<ValueType>());
    std::vector<double> block;
    for (size_type blk = 0; blk < num_blocks; ++blk) {
        const auto begin = blk * bs;
        const auto end = std::min(n, begin + bs);
        const auto cur = end - begin;
        block.assign(static_cast<std::size_t>(bs * bs), 0.0);
        // Identity padding keeps partial trailing blocks invertible.
        for (size_type i = cur; i < bs; ++i) {
            block[static_cast<std::size_t>(i * bs + i)] = 1.0;
        }
        for (size_type r = begin; r < end; ++r) {
            for (auto k = row_ptrs[r]; k < row_ptrs[r + 1]; ++k) {
                const auto c = static_cast<size_type>(col_idxs[k]);
                if (c >= begin && c < end) {
                    block[static_cast<std::size_t>((r - begin) * bs +
                                                   (c - begin))] =
                        to_float(values[k]);
                }
            }
        }
        invert_block<ValueType>(block, bs);
        auto* out = inv_data_.get_data() + blk * bs * bs;
        for (size_type i = 0; i < bs * bs; ++i) {
            out[i] =
                static_cast<ValueType>(block[static_cast<std::size_t>(i)]);
        }
    }
    // Generate-time cost: stream the matrix once + invert blocks.
    exec->clock().tick(
        sim::profile_stream(static_cast<double>(system->get_num_stored_elements()) *
                                    (sizeof(ValueType) + sizeof(IndexType)) +
                                static_cast<double>(inv_data_.size()) *
                                    sizeof(ValueType),
                            static_cast<double>(num_blocks) * 2.0 *
                                static_cast<double>(bs * bs * bs),
                            0.6)
            .time_ns(exec->model()));
}


template <typename ValueType, typename IndexType>
void Jacobi<ValueType, IndexType>::apply_impl(const LinOp* b, LinOp* x) const
{
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    const auto n = get_size().rows;
    const auto vec_cols = dense_b->get_size().cols;
    const auto bs = block_size_;
    const auto* inv = inv_data_.get_const_data();

    auto kernel = [&](const Executor* e) {
        const int nt = kernels::exec_threads(e);
        if (bs == 1) {
#pragma omp parallel for num_threads(nt) if (nt > 1)
            for (size_type row = 0; row < n; ++row) {
                for (size_type c = 0; c < vec_cols; ++c) {
                    dense_x->get_values()[row * dense_x->get_stride() + c] =
                        inv[row] *
                        dense_b->get_const_values()
                            [row * dense_b->get_stride() + c];
                }
            }
        } else {
            const auto num_blocks = ceildiv(n, bs);
#pragma omp parallel for num_threads(nt) if (nt > 1)
            for (size_type blk = 0; blk < num_blocks; ++blk) {
                const auto begin = blk * bs;
                const auto end = std::min(n, begin + bs);
                const auto* binv = inv + blk * bs * bs;
                for (size_type r = begin; r < end; ++r) {
                    for (size_type c = 0; c < vec_cols; ++c) {
                        using acc_t = accumulate_t<ValueType>;
                        acc_t acc{};
                        for (size_type j = begin; j < end; ++j) {
                            acc += static_cast<acc_t>(
                                       binv[(r - begin) * bs + (j - begin)]) *
                                   static_cast<acc_t>(
                                       dense_b->get_const_values()
                                           [j * dense_b->get_stride() + c]);
                        }
                        dense_x->get_values()[r * dense_x->get_stride() + c] =
                            ValueType{acc};
                    }
                }
            }
        }
        kernels::tick(
            e, sim::profile_stream(
                   static_cast<double>(inv_data_.size() + 2 * n * vec_cols) *
                       sizeof(ValueType),
                   2.0 * static_cast<double>(inv_data_.size()) *
                       static_cast<double>(vec_cols),
                   0.85));
    };

    get_executor()->run(make_operation(
        "jacobi_apply", [&](const ReferenceExecutor* e) { kernel(e); },
        [&](const OmpExecutor* e) { kernel(e); },
        [&](const CudaExecutor* e) { kernel(e); },
        [&](const HipExecutor* e) { kernel(e); }));
}


template <typename ValueType, typename IndexType>
void Jacobi<ValueType, IndexType>::apply_impl(const LinOp* alpha,
                                              const LinOp* b,
                                              const LinOp* beta,
                                              LinOp* x) const
{
    auto dense_x = as_dense<ValueType>(x);
    auto* tmp = solver::detail::ensure_vec(adv_tmp_, get_executor(),
                                           dense_x->get_size());
    apply_impl(b, tmp);
    dense_x->scale(as_dense<ValueType>(beta));
    dense_x->add_scaled(as_dense<ValueType>(alpha), tmp);
}


template <typename ValueType, typename IndexType>
std::unique_ptr<LinOp> JacobiFactory<ValueType, IndexType>::generate_impl(
    std::shared_ptr<const LinOp> system) const
{
    auto csr =
        std::dynamic_pointer_cast<const Csr<ValueType, IndexType>>(system);
    if (!csr) {
        MGKO_NOT_SUPPORTED(
            "Jacobi requires a Csr system of matching value/index type");
    }
    return std::unique_ptr<LinOp>{new Jacobi<ValueType, IndexType>{
        get_executor(), params_, std::move(csr)}};
}


#define MGKO_DECLARE_JACOBI(ValueType, IndexType)       \
    template class Jacobi<ValueType, IndexType>;        \
    template class JacobiFactory<ValueType, IndexType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_JACOBI);


}  // namespace mgko::preconditioner
