#include "multigrid/amg_solver.hpp"

#include <cmath>

#include "solver/detail.hpp"

namespace mgko::multigrid {

namespace {

enum amg_slots : std::size_t {
    ws_r,
    ws_reduce,
    ws_one,
    ws_neg_one,
};

template <typename ValueType, typename IndexType>
std::shared_ptr<const Csr<ValueType, IndexType>> require_csr(
    const std::shared_ptr<const LinOp>& system)
{
    auto csr =
        std::dynamic_pointer_cast<const Csr<ValueType, IndexType>>(system);
    if (!csr) {
        MGKO_NOT_SUPPORTED(
            "AMG requires a Csr system of matching value/index type");
    }
    return csr;
}

}  // namespace


template <typename ValueType, typename IndexType>
AmgSolver<ValueType, IndexType>::AmgSolver(
    std::shared_ptr<const Executor> exec, amg_solver_parameters params,
    std::shared_ptr<const LinOp> system)
    : solver::IterativeSolver<ValueType>{exec, params, system},
      amg_params_{params.amg},
      hierarchy_{std::make_unique<Hierarchy<ValueType, IndexType>>(
          exec, params.amg, require_csr<ValueType, IndexType>(system))}
{}


template <typename ValueType, typename IndexType>
void AmgSolver<ValueType, IndexType>::apply_impl(const LinOp* b,
                                                 LinOp* x) const
{
    auto apply_span = this->make_span("solver.amg.apply");
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    this->validate_single_column(dense_b);
    this->logger_->reset();

    const auto n = this->get_size().rows;
    auto& ws = this->workspace_;
    auto* r = ws.vec(ws_r, dim2{n, 1});
    auto* reduce = ws.vec(ws_reduce, dim2{1, 1});
    auto* one_s = ws.scalar(ws_one, 1.0);
    auto* neg_one_s = ws.scalar(ws_neg_one, -1.0);

    const double b_norm = solver::detail::norm2(dense_b, reduce);
    double r_norm = solver::detail::compute_residual(
        this->system_.get(), dense_b, dense_x, r, one_s, neg_one_s, reduce);
    auto criterion = this->bind_criterion(b_norm, r_norm);
    this->log_iteration(0, r_norm);

    size_type iter = 0;
    while (!criterion->is_satisfied(iter, r_norm)) {
        auto iteration_span = this->make_span("solver.amg.iteration");
        hierarchy_->cycle(dense_b, dense_x, this);
        r_norm = solver::detail::compute_residual(this->system_.get(),
                                                  dense_b, dense_x, r, one_s,
                                                  neg_one_s, reduce);
        ++iter;
        this->log_iteration(iter, r_norm);
        if (!std::isfinite(r_norm)) {
            this->log_stop(iter, false, "breakdown: non-finite residual");
            return;
        }
    }
    this->log_stop(iter, criterion->indicates_convergence(),
                   criterion->reason());
}


template <typename ValueType, typename IndexType>
std::unique_ptr<LinOp> AmgSolverFactory<ValueType, IndexType>::generate_impl(
    std::shared_ptr<const LinOp> system) const
{
    return std::unique_ptr<LinOp>{new AmgSolver<ValueType, IndexType>{
        get_executor(), params_, std::move(system)}};
}


template <typename ValueType, typename IndexType>
AmgPreconditioner<ValueType, IndexType>::AmgPreconditioner(
    std::shared_ptr<const Executor> exec, amg_parameters params,
    std::shared_ptr<const Csr<ValueType, IndexType>> system)
    : LinOp{exec, system->get_size()},
      params_{params},
      hierarchy_{std::make_unique<Hierarchy<ValueType, IndexType>>(
          exec, params, std::move(system))}
{
    MGKO_ENSURE(params_.cycles >= 1,
                "AMG preconditioner needs at least one cycle");
}


template <typename ValueType, typename IndexType>
void AmgPreconditioner<ValueType, IndexType>::apply_impl(const LinOp* b,
                                                         LinOp* x) const
{
    auto dense_b = as_dense<ValueType>(b);
    auto dense_x = as_dense<ValueType>(x);
    dense_x->fill(zero<ValueType>());
    for (size_type c = 0; c < params_.cycles; ++c) {
        hierarchy_->cycle(dense_b, dense_x, this);
    }
}


template <typename ValueType, typename IndexType>
void AmgPreconditioner<ValueType, IndexType>::apply_impl(const LinOp* alpha,
                                                         const LinOp* b,
                                                         const LinOp* beta,
                                                         LinOp* x) const
{
    auto dense_x = as_dense<ValueType>(x);
    auto* tmp = solver::detail::ensure_vec(adv_tmp_, get_executor(),
                                           dense_x->get_size());
    apply_impl(b, tmp);
    dense_x->scale(as_dense<ValueType>(beta));
    dense_x->add_scaled(as_dense<ValueType>(alpha), tmp);
}


template <typename ValueType, typename IndexType>
std::unique_ptr<LinOp>
AmgPreconditionerFactory<ValueType, IndexType>::generate_impl(
    std::shared_ptr<const LinOp> system) const
{
    return std::unique_ptr<LinOp>{new AmgPreconditioner<ValueType, IndexType>{
        get_executor(), params_,
        require_csr<ValueType, IndexType>(system)}};
}


#define MGKO_DECLARE_AMG_SOLVER(ValueType, IndexType)              \
    template class AmgSolver<ValueType, IndexType>;                \
    template class AmgSolverFactory<ValueType, IndexType>;         \
    template class AmgPreconditioner<ValueType, IndexType>;        \
    template class AmgPreconditionerFactory<ValueType, IndexType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_AMG_SOLVER);


}  // namespace mgko::multigrid
