// Aggregation-based algebraic multigrid hierarchy (DESIGN.md §16).
//
// The hierarchy builder mirrors amgcl's smoothed-aggregation pipeline on
// this repo's CSR/LinOp types: a strength-of-connection filter
// (|a_ij| >= theta * sqrt(|a_ii a_jj|)), greedy aggregation producing a
// piecewise-constant tentative prolongation, an optional Jacobi smoothing
// pass over the prolongation (P = (I - omega D_f^{-1} A_f) T via
// matrix::spgemm), and Galerkin coarse operators A_c = R A P with
// R = P^T.  Coarsening stops at `max_levels`, `min_coarse_rows`, or when
// aggregation stalls; the coarsest system is solved with the dense direct
// solver.
//
// Hierarchy::cycle runs one V-cycle.  All per-level temporaries live in a
// persistent solver::Workspace, so a steady-state cycle performs zero
// executor allocations — the property the AmgSolver/AmgPreconditioner
// zero-allocation tests assert.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/lin_op.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"
#include "solver/workspace.hpp"

namespace mgko::multigrid {


/// Relaxation scheme used on every level above the coarsest.  The V-cycle
/// applies `jacobi` symmetrically and `gauss_seidel` as a forward sweep
/// before and a backward sweep after coarse correction, so both keep the
/// cycle symmetric (and thus CG-safe) on SPD systems.
enum class smoother_type { jacobi, gauss_seidel };

std::string to_string(smoother_type s);
/// Parses "jacobi" / "gauss_seidel" ("gs"); throws BadParameter otherwise.
smoother_type smoother_from_string(const std::string& name);


/// Knobs of the hierarchy construction and the V-cycle.  The config layer
/// maps the "amg" solver/preconditioner keys onto these.
struct amg_parameters {
    /// Strength-of-connection threshold: keep |a_ij| >= theta *
    /// sqrt(|a_ii a_jj|).  0 keeps every connection.
    double theta{0.08};
    /// Upper bound on hierarchy depth, counting the finest level.
    size_type max_levels{12};
    /// Coarsening stops once a level has at most this many rows.
    size_type min_coarse_rows{64};
    smoother_type smoother{smoother_type::jacobi};
    /// Relaxation sweeps before (and after) each coarse correction.
    size_type pre_sweeps{1};
    size_type post_sweeps{1};
    /// Damping factor of the Jacobi smoother.
    double jacobi_weight{2.0 / 3.0};
    /// Jacobi-smoothed prolongation (smoothed aggregation) when true;
    /// piecewise-constant tentative P otherwise.
    bool smoothed_prolongation{true};
    /// V-cycles per AmgPreconditioner application.
    size_type cycles{1};
};


/// The multilevel operator stack: level 0 holds the fine system; every
/// level above the coarsest owns the transfer operators down to the next.
template <typename ValueType = double, typename IndexType = int32>
class Hierarchy {
public:
    struct level {
        std::shared_ptr<const Csr<ValueType, IndexType>> op;
        /// Prolongation from the next-coarser level (empty on the coarsest).
        std::unique_ptr<Csr<ValueType, IndexType>> prolong;
        /// Restriction to the next-coarser level, R = P^T.
        std::unique_ptr<Csr<ValueType, IndexType>> restrict_op;
        /// 1 / a_ii per row, used by both smoothers.
        std::unique_ptr<Dense<ValueType>> inv_diag;
        /// Persistent storage for the per-level cycle span name
        /// ("amg.cycle.level<k>"); ScopedSpan keeps only the pointer.
        std::string cycle_span;
    };

    /// Builds the full hierarchy (strength graph, aggregates, transfer
    /// operators, Galerkin products, coarse factorization) under an
    /// "amg.setup" span; each Galerkin product runs through
    /// matrix::spgemm and is visible in the profiler.
    Hierarchy(std::shared_ptr<const Executor> exec, amg_parameters params,
              std::shared_ptr<const Csr<ValueType, IndexType>> fine);

    size_type num_levels() const { return levels_.size(); }
    const level& get_level(size_type k) const { return levels_.at(k); }
    const amg_parameters& get_parameters() const { return params_; }
    std::shared_ptr<const Executor> get_executor() const { return exec_; }

    /// Total stored elements across all level operators divided by the
    /// fine operator's — the classic AMG grid/operator complexity measure.
    double operator_complexity() const;

    /// Runs one V-cycle on A x = b, improving x in place (x is the initial
    /// guess and may be nonzero).  `owner` is an optional extra span
    /// attachment point (the solver/preconditioner wrapping this
    /// hierarchy); spans are always also emitted through the executor.
    void cycle(const Dense<ValueType>* b, Dense<ValueType>* x,
               const log::EnableLogging* owner = nullptr) const;

private:
    void run_level(size_type lvl, const Dense<ValueType>* b,
                   Dense<ValueType>* x,
                   const log::EnableLogging* owner) const;
    void smooth(size_type lvl, const Dense<ValueType>* b,
                Dense<ValueType>* x, bool backward) const;

    std::shared_ptr<const Executor> exec_;
    amg_parameters params_;
    std::vector<level> levels_;
    /// Dense LU of the coarsest operator (null only when the coarsest
    /// level is smoothed instead, i.e. it exceeded Direct::max_dimension).
    std::unique_ptr<LinOp> coarse_solver_;
    /// Per-level V-cycle temporaries (residual, smoother scratch, coarse
    /// rhs/solution) plus the +-1 scalars; slots persist across cycles.
    mutable solver::Workspace<ValueType> workspace_;
};


}  // namespace mgko::multigrid
