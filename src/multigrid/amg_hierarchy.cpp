#include "multigrid/amg_hierarchy.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/kernel_utils.hpp"
#include "core/math.hpp"
#include "core/matrix_data.hpp"
#include "matrix/spgemm.hpp"
#include "solver/direct.hpp"

namespace mgko::multigrid {


std::string to_string(smoother_type s)
{
    return s == smoother_type::jacobi ? "jacobi" : "gauss_seidel";
}

smoother_type smoother_from_string(const std::string& name)
{
    if (name == "jacobi") {
        return smoother_type::jacobi;
    }
    if (name == "gauss_seidel" || name == "gs") {
        return smoother_type::gauss_seidel;
    }
    throw BadParameter(__FILE__, __LINE__,
                       "unknown smoother '" + name +
                           "' (expected \"jacobi\" or \"gauss_seidel\")");
}


namespace {

// Workspace layout: four slots per level (residual, smoother scratch,
// coarse rhs, coarse solution), then the +-1 scalars after the last level.
constexpr std::size_t slots_per_level = 4;
constexpr std::size_t ws_r = 0;
constexpr std::size_t ws_tmp = 1;
constexpr std::size_t ws_coarse_b = 2;
constexpr std::size_t ws_coarse_x = 3;


/// Greedy unsmoothed aggregation over the strength graph.  Fills `agg`
/// (fine row -> aggregate id) and returns the number of aggregates.
///
/// Pass 1 seeds an aggregate from every node whose strong neighbourhood is
/// still untouched (the node plus all strong neighbours join).  Pass 2
/// attaches leftovers to the aggregate of their strongest aggregated
/// neighbour.  Pass 3 turns isolated stragglers into singletons.
template <typename ValueType, typename IndexType>
size_type aggregate_rows(const Csr<ValueType, IndexType>* a, double theta,
                         std::vector<IndexType>& agg)
{
    const auto n = a->get_size().rows;
    const auto* row_ptrs = a->get_const_row_ptrs();
    const auto* col_idxs = a->get_const_col_idxs();
    const auto* values = a->get_const_values();

    std::vector<double> diag(static_cast<std::size_t>(n), 0.0);
    for (size_type row = 0; row < n; ++row) {
        for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            if (static_cast<size_type>(col_idxs[k]) == row) {
                diag[static_cast<std::size_t>(row)] =
                    std::abs(to_float(values[k]));
            }
        }
    }
    auto strong = [&](size_type row, size_type k) {
        const auto col = static_cast<size_type>(col_idxs[k]);
        if (col == row || col >= n) {
            return false;
        }
        const double bound = theta * std::sqrt(diag[row] * diag[col]);
        return std::abs(to_float(values[static_cast<std::size_t>(k)])) >=
               bound;
    };

    constexpr IndexType unassigned = -1;
    agg.assign(static_cast<std::size_t>(n), unassigned);
    IndexType num_agg = 0;
    for (size_type row = 0; row < n; ++row) {
        if (agg[row] != unassigned) {
            continue;
        }
        bool neighborhood_free = true;
        for (auto k = row_ptrs[row];
             neighborhood_free && k < row_ptrs[row + 1]; ++k) {
            if (strong(row, static_cast<size_type>(k)) &&
                agg[static_cast<std::size_t>(col_idxs[k])] != unassigned) {
                neighborhood_free = false;
            }
        }
        if (!neighborhood_free) {
            continue;
        }
        agg[row] = num_agg;
        for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            if (strong(row, static_cast<size_type>(k))) {
                agg[static_cast<std::size_t>(col_idxs[k])] = num_agg;
            }
        }
        ++num_agg;
    }
    for (size_type row = 0; row < n; ++row) {
        if (agg[row] != unassigned) {
            continue;
        }
        double best = -1.0;
        IndexType target = unassigned;
        for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            const auto col = static_cast<std::size_t>(col_idxs[k]);
            if (strong(row, static_cast<size_type>(k)) &&
                agg[col] != unassigned) {
                const double w =
                    std::abs(to_float(values[static_cast<std::size_t>(k)]));
                if (w > best) {
                    best = w;
                    target = agg[col];
                }
            }
        }
        agg[row] = target;
    }
    for (size_type row = 0; row < n; ++row) {
        if (agg[row] == unassigned) {
            agg[row] = num_agg++;
        }
    }
    return static_cast<size_type>(num_agg);
}


/// The prolongation smoother M = I - omega * D_f^{-1} A_f, where A_f keeps
/// the strong entries and lumps the filtered weak couplings into the
/// diagonal, and omega = 4 / (3 rho) with rho the Gershgorin bound on
/// rho(D_f^{-1} A_f) — the standard smoothed-aggregation damping.
template <typename ValueType, typename IndexType>
std::unique_ptr<Csr<ValueType, IndexType>> prolongation_smoother(
    const Csr<ValueType, IndexType>* a, double theta)
{
    const auto exec = a->get_executor();
    const auto n = a->get_size().rows;
    const auto* row_ptrs = a->get_const_row_ptrs();
    const auto* col_idxs = a->get_const_col_idxs();
    const auto* values = a->get_const_values();

    std::vector<double> diag(static_cast<std::size_t>(n), 0.0);
    for (size_type row = 0; row < n; ++row) {
        for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            if (static_cast<size_type>(col_idxs[k]) == row) {
                diag[static_cast<std::size_t>(row)] = to_float(values[k]);
            }
        }
    }
    // Filtered diagonal (weak couplings lumped in) and Gershgorin bound.
    std::vector<double> filtered_diag(diag);
    double rho = 0.0;
    for (size_type row = 0; row < n; ++row) {
        double strong_abs = 0.0;
        for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            const auto col = static_cast<size_type>(col_idxs[k]);
            if (col == row) {
                continue;
            }
            const double v = to_float(values[k]);
            const double bound =
                theta * std::sqrt(std::abs(diag[row] * diag[col]));
            if (std::abs(v) >= bound) {
                strong_abs += std::abs(v);
            } else {
                filtered_diag[static_cast<std::size_t>(row)] += v;
            }
        }
        const double d = std::abs(filtered_diag[static_cast<std::size_t>(row)]);
        if (d > 0.0) {
            rho = std::max(rho, (d + strong_abs) / d);
        }
    }
    const double omega = rho > 0.0 ? 4.0 / (3.0 * rho) : 2.0 / 3.0;

    matrix_data<ValueType, IndexType> m{dim2{n, n}};
    for (size_type row = 0; row < n; ++row) {
        double df = filtered_diag[static_cast<std::size_t>(row)];
        if (df == 0.0) {
            df = diag[static_cast<std::size_t>(row)] != 0.0
                     ? diag[static_cast<std::size_t>(row)]
                     : 1.0;
        }
        m.add(static_cast<IndexType>(row), static_cast<IndexType>(row),
              static_cast<ValueType>(1.0 - omega));
        for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            const auto col = static_cast<size_type>(col_idxs[k]);
            if (col == row) {
                continue;
            }
            const double v = to_float(values[k]);
            const double bound =
                theta * std::sqrt(std::abs(diag[row] * diag[col]));
            if (std::abs(v) >= bound) {
                m.add(static_cast<IndexType>(row),
                      static_cast<IndexType>(col),
                      static_cast<ValueType>(-omega * v / df));
            }
        }
    }
    return Csr<ValueType, IndexType>::create_from_data(exec, m);
}


/// 1 / a_ii per row, shared by both smoothers.
template <typename ValueType, typename IndexType>
std::unique_ptr<Dense<ValueType>> inverted_diagonal(
    const Csr<ValueType, IndexType>* a)
{
    auto diag = a->extract_diagonal();
    auto* vals = diag->get_values();
    for (size_type row = 0; row < a->get_size().rows; ++row) {
        vals[row] = safe_reciprocal(vals[row]);
    }
    return diag;
}

}  // namespace


template <typename ValueType, typename IndexType>
Hierarchy<ValueType, IndexType>::Hierarchy(
    std::shared_ptr<const Executor> exec, amg_parameters params,
    std::shared_ptr<const Csr<ValueType, IndexType>> fine)
    : exec_{std::move(exec)}, params_{params}, workspace_{exec_}
{
    MGKO_ENSURE(fine != nullptr, "AMG hierarchy requires a system matrix");
    MGKO_ENSURE(fine->get_size().rows == fine->get_size().cols,
                "AMG hierarchy requires a square system");
    MGKO_ENSURE(params_.theta >= 0.0 && params_.theta < 1.0,
                "AMG strength threshold theta must be in [0, 1)");
    MGKO_ENSURE(params_.max_levels >= 1, "AMG needs at least one level");
    log::ScopedSpan setup_span{nullptr, exec_.get(), "amg.setup"};

    levels_.push_back(level{});
    levels_.back().op = fine;
    while (levels_.size() < params_.max_levels &&
           levels_.back().op->get_size().rows > params_.min_coarse_rows) {
        auto& fine_level = levels_.back();
        const auto* a = fine_level.op.get();
        const auto n = a->get_size().rows;

        // Strength filter + greedy aggregation run as one host-side
        // operation so setup work is attributed in the profiler like any
        // other kernel.
        std::vector<IndexType> agg;
        size_type num_agg = 0;
        auto agg_kernel = [&](const Executor* e) {
            num_agg = aggregate_rows(a, params_.theta, agg);
            kernels::tick(
                e, sim::profile_stream(
                       static_cast<double>(a->get_num_stored_elements()) *
                           (sizeof(ValueType) + sizeof(IndexType)) * 2.0,
                       4.0 * static_cast<double>(a->get_num_stored_elements()),
                       0.6));
        };
        exec_->run(make_operation(
            "amg_aggregate",
            [&](const ReferenceExecutor* e) { agg_kernel(e); },
            [&](const OmpExecutor* e) { agg_kernel(e); },
            [&](const CudaExecutor* e) { agg_kernel(e); },
            [&](const HipExecutor* e) { agg_kernel(e); }));
        if (num_agg * 10 > n * 9) {
            // Aggregation stalled (less than 10% reduction): deeper levels
            // would near-replicate this one and blow up the operator
            // complexity; stop and let the bottom solver handle this level.
            break;
        }

        // Tentative piecewise-constant prolongation: T[i, agg[i]] = 1.
        matrix_data<ValueType, IndexType> t_data{dim2{n, num_agg}};
        for (size_type row = 0; row < n; ++row) {
            t_data.add(static_cast<IndexType>(row), agg[row],
                       one<ValueType>());
        }
        auto tentative =
            Csr<ValueType, IndexType>::create_from_data(exec_, t_data);

        if (params_.smoothed_prolongation) {
            auto smoother = prolongation_smoother(a, params_.theta);
            fine_level.prolong = spgemm(smoother.get(), tentative.get());
        } else {
            fine_level.prolong = std::move(tentative);
        }
        fine_level.restrict_op = fine_level.prolong->transpose();

        // Galerkin coarse operator A_c = R (A P).
        auto ap = spgemm(a, fine_level.prolong.get());
        auto coarse = spgemm(fine_level.restrict_op.get(), ap.get());
        levels_.push_back(level{});
        levels_.back().op = std::move(coarse);
    }

    for (size_type k = 0; k < levels_.size(); ++k) {
        levels_[k].cycle_span = "amg.cycle.level" + std::to_string(k);
        levels_[k].inv_diag = inverted_diagonal(levels_[k].op.get());
    }
    const auto& coarsest = levels_.back().op;
    if (coarsest->get_size().rows <=
        solver::Direct<ValueType, IndexType>::max_dimension) {
        coarse_solver_ = solver::Direct<ValueType, IndexType>::build_on(exec_)
                             ->generate(coarsest);
    }
}


template <typename ValueType, typename IndexType>
double Hierarchy<ValueType, IndexType>::operator_complexity() const
{
    double total = 0.0;
    for (const auto& l : levels_) {
        total += static_cast<double>(l.op->get_num_stored_elements());
    }
    const auto fine_nnz =
        static_cast<double>(levels_.front().op->get_num_stored_elements());
    return fine_nnz > 0.0 ? total / fine_nnz : 1.0;
}


template <typename ValueType, typename IndexType>
void Hierarchy<ValueType, IndexType>::smooth(size_type lvl,
                                             const Dense<ValueType>* b,
                                             Dense<ValueType>* x,
                                             bool backward) const
{
    const auto& l = levels_[lvl];
    const auto n = l.op->get_size().rows;
    const auto* inv_diag = l.inv_diag->get_const_values();
    const auto* bv = b->get_const_values();
    const auto b_stride = b->get_stride();
    auto* xv = x->get_values();
    const auto x_stride = x->get_stride();

    if (params_.smoother == smoother_type::jacobi) {
        // x += w * D^{-1} (b - A x), with the SpMV charged by Csr::apply
        // and the fused update charged here.
        auto* tmp = workspace_.vec(slots_per_level * lvl + ws_tmp, dim2{n, 1});
        l.op->apply(x, tmp);
        const auto* tv = tmp->get_const_values();
        const auto w = params_.jacobi_weight;
        auto kernel = [&](const Executor* e) {
            const int nt = kernels::exec_threads(e);
#pragma omp parallel for num_threads(nt) if (nt > 1)
            for (size_type i = 0; i < n; ++i) {
                xv[i * x_stride] += static_cast<ValueType>(
                    w * to_float(inv_diag[i]) *
                    (to_float(bv[i * b_stride]) - to_float(tv[i])));
            }
            kernels::tick(
                e, sim::profile_stream(
                       4.0 * static_cast<double>(n) * sizeof(ValueType),
                       4.0 * static_cast<double>(n), 0.9));
        };
        exec_->run(make_operation(
            "amg_jacobi_relax", [&](const ReferenceExecutor* e) { kernel(e); },
            [&](const OmpExecutor* e) { kernel(e); },
            [&](const CudaExecutor* e) { kernel(e); },
            [&](const HipExecutor* e) { kernel(e); }));
        return;
    }

    // Gauss-Seidel: x_i = inv_diag_i * (b_i - sum_{j != i} a_ij x_j), swept
    // forward before and backward after coarse correction so the cycle
    // stays symmetric.  The row recurrence is sequential by construction,
    // so every backend runs the serial loop (the cost model still charges
    // the streamed matrix traffic).
    const auto* row_ptrs = l.op->get_const_row_ptrs();
    const auto* col_idxs = l.op->get_const_col_idxs();
    const auto* values = l.op->get_const_values();
    auto kernel = [&](const Executor* e) {
        for (size_type step = 0; step < n; ++step) {
            const auto row = backward ? n - 1 - step : step;
            double acc = to_float(bv[row * b_stride]);
            for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
                const auto col = static_cast<size_type>(col_idxs[k]);
                if (col != row) {
                    acc -= to_float(values[k]) * to_float(xv[col * x_stride]);
                }
            }
            xv[row * x_stride] =
                static_cast<ValueType>(to_float(inv_diag[row]) * acc);
        }
        kernels::tick(
            e, sim::profile_stream(
                   static_cast<double>(l.op->get_num_stored_elements()) *
                           (sizeof(ValueType) + sizeof(IndexType)) +
                       3.0 * static_cast<double>(n) * sizeof(ValueType),
                   2.0 * static_cast<double>(l.op->get_num_stored_elements()),
                   0.7));
    };
    exec_->run(make_operation(
        "amg_gauss_seidel", [&](const ReferenceExecutor* e) { kernel(e); },
        [&](const OmpExecutor* e) { kernel(e); },
        [&](const CudaExecutor* e) { kernel(e); },
        [&](const HipExecutor* e) { kernel(e); }));
}


template <typename ValueType, typename IndexType>
void Hierarchy<ValueType, IndexType>::run_level(
    size_type lvl, const Dense<ValueType>* b, Dense<ValueType>* x,
    const log::EnableLogging* owner) const
{
    log::ScopedSpan span{owner, exec_.get(), levels_[lvl].cycle_span.c_str()};
    const auto& l = levels_[lvl];
    const auto n = l.op->get_size().rows;

    if (lvl + 1 == levels_.size()) {
        if (coarse_solver_) {
            coarse_solver_->apply(b, x);
        } else {
            // Coarsest level too large to densify: relax instead.
            for (size_type s = 0; s < 2 * (params_.pre_sweeps +
                                           params_.post_sweeps);
                 ++s) {
                smooth(lvl, b, x, s % 2 == 1);
            }
        }
        return;
    }

    for (size_type s = 0; s < params_.pre_sweeps; ++s) {
        smooth(lvl, b, x, false);
    }

    const auto base = slots_per_level * lvl;
    auto* one_s = workspace_.scalar(slots_per_level * levels_.size(), 1.0);
    auto* neg_one_s =
        workspace_.scalar(slots_per_level * levels_.size() + 1, -1.0);
    auto* r = workspace_.vec(base + ws_r, dim2{n, 1});
    r->copy_from(b);
    l.op->apply(neg_one_s, x, one_s, r);

    const auto nc = l.restrict_op->get_size().rows;
    auto* coarse_b = workspace_.vec(base + ws_coarse_b, dim2{nc, 1});
    auto* coarse_x = workspace_.vec(base + ws_coarse_x, dim2{nc, 1});
    l.restrict_op->apply(r, coarse_b);
    coarse_x->fill(zero<ValueType>());
    run_level(lvl + 1, coarse_b, coarse_x, owner);
    // x += P x_c
    l.prolong->apply(one_s, coarse_x, one_s, x);

    for (size_type s = 0; s < params_.post_sweeps; ++s) {
        smooth(lvl, b, x, true);
    }
}


template <typename ValueType, typename IndexType>
void Hierarchy<ValueType, IndexType>::cycle(
    const Dense<ValueType>* b, Dense<ValueType>* x,
    const log::EnableLogging* owner) const
{
    MGKO_ENSURE(b != nullptr && x != nullptr,
                "AMG cycle requires non-null vectors");
    MGKO_ENSURE(b->get_size() == x->get_size() &&
                    b->get_size().rows == levels_.front().op->get_size().rows,
                "AMG cycle vectors must match the fine system");
    if (b->get_size().cols != 1) {
        MGKO_NOT_SUPPORTED("AMG cycles support a single right-hand side");
    }
    run_level(0, b, x, owner);
}


#define MGKO_DECLARE_AMG_HIERARCHY(ValueType, IndexType) \
    template class Hierarchy<ValueType, IndexType>
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_AMG_HIERARCHY);


}  // namespace mgko::multigrid
