// Standalone AMG V-cycle solver and the AMG preconditioner (DESIGN.md §16).
//
//   auto solver = multigrid::AmgSolver<double>::build()
//                     .with_criteria(stop::iteration(50))
//                     .with_criteria(stop::residual_norm(1e-10))
//                     .with_theta(0.08)
//                     .on(exec)->generate(A);
//   solver->apply(b, x);
//
//   auto cg = solver::Cg<double>::build()
//                 .with_criteria(stop::residual_norm(1e-10))
//                 .with_preconditioner(
//                     multigrid::AmgPreconditioner<double>::build().on(exec))
//                 .on(exec)->generate(A);
//
// Both own a multigrid::Hierarchy; its per-level workspace persists across
// applies, so the steady-state apply() of either is zero-allocation.
#pragma once

#include <memory>

#include "multigrid/amg_hierarchy.hpp"
#include "solver/solver_base.hpp"

namespace mgko::multigrid {


/// Iterative stopping parameters plus the hierarchy knobs.
struct amg_solver_parameters : solver::iterative_parameters {
    amg_parameters amg;
};


template <typename ValueType, typename IndexType>
class AmgSolver;

template <typename ValueType, typename IndexType>
class AmgSolverFactory : public LinOpFactory {
public:
    AmgSolverFactory(std::shared_ptr<const Executor> exec,
                     amg_solver_parameters params)
        : LinOpFactory{std::move(exec)}, params_{std::move(params)}
    {}
    const amg_solver_parameters& get_parameters() const { return params_; }

protected:
    std::unique_ptr<LinOp> generate_impl(
        std::shared_ptr<const LinOp> system) const override;

private:
    amg_solver_parameters params_;
};

template <typename ValueType, typename IndexType>
class amg_solver_builder : public amg_solver_parameters {
public:
    amg_solver_builder& with_criteria(
        std::shared_ptr<const stop::CriterionFactory> c)
    {
        criteria.push_back(std::move(c));
        return *this;
    }
    amg_solver_builder& with_theta(double theta)
    {
        amg.theta = theta;
        return *this;
    }
    amg_solver_builder& with_max_levels(size_type levels)
    {
        amg.max_levels = levels;
        return *this;
    }
    amg_solver_builder& with_min_coarse_rows(size_type rows)
    {
        amg.min_coarse_rows = rows;
        return *this;
    }
    amg_solver_builder& with_smoother(smoother_type s)
    {
        amg.smoother = s;
        return *this;
    }
    amg_solver_builder& with_pre_sweeps(size_type sweeps)
    {
        amg.pre_sweeps = sweeps;
        return *this;
    }
    amg_solver_builder& with_post_sweeps(size_type sweeps)
    {
        amg.post_sweeps = sweeps;
        return *this;
    }
    amg_solver_builder& with_jacobi_weight(double weight)
    {
        amg.jacobi_weight = weight;
        return *this;
    }
    amg_solver_builder& with_smoothed_prolongation(bool smoothed)
    {
        amg.smoothed_prolongation = smoothed;
        return *this;
    }

    std::shared_ptr<AmgSolverFactory<ValueType, IndexType>> on(
        std::shared_ptr<const Executor> exec) const
    {
        return std::make_shared<AmgSolverFactory<ValueType, IndexType>>(
            std::move(exec), *this);
    }
};


/// V-cycle iteration as an IterativeSolver: each outer iteration runs one
/// V-cycle and logs the true residual norm, so the residual-history
/// invariant and the convergence logger work exactly as for the Krylov
/// solvers.
template <typename ValueType = double, typename IndexType = int32>
class AmgSolver : public solver::IterativeSolver<ValueType> {
public:
    using index_type = IndexType;

    static amg_solver_builder<ValueType, IndexType> build() { return {}; }

    const Hierarchy<ValueType, IndexType>& get_hierarchy() const
    {
        return *hierarchy_;
    }
    const amg_parameters& get_amg_parameters() const { return amg_params_; }

protected:
    friend class AmgSolverFactory<ValueType, IndexType>;
    AmgSolver(std::shared_ptr<const Executor> exec,
              amg_solver_parameters params,
              std::shared_ptr<const LinOp> system);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    using solver::IterativeSolver<ValueType>::apply_impl;

private:
    amg_parameters amg_params_;
    std::unique_ptr<const Hierarchy<ValueType, IndexType>> hierarchy_;
};


template <typename ValueType, typename IndexType>
class AmgPreconditioner;

template <typename ValueType, typename IndexType>
class AmgPreconditionerFactory : public LinOpFactory {
public:
    AmgPreconditionerFactory(std::shared_ptr<const Executor> exec,
                             amg_parameters params)
        : LinOpFactory{std::move(exec)}, params_{params}
    {}
    const amg_parameters& get_parameters() const { return params_; }

protected:
    std::unique_ptr<LinOp> generate_impl(
        std::shared_ptr<const LinOp> system) const override;

private:
    amg_parameters params_;
};

template <typename ValueType, typename IndexType>
class amg_precond_builder : public amg_parameters {
public:
    amg_precond_builder& with_theta(double t)
    {
        theta = t;
        return *this;
    }
    amg_precond_builder& with_max_levels(size_type levels)
    {
        max_levels = levels;
        return *this;
    }
    amg_precond_builder& with_min_coarse_rows(size_type rows)
    {
        min_coarse_rows = rows;
        return *this;
    }
    amg_precond_builder& with_smoother(smoother_type s)
    {
        smoother = s;
        return *this;
    }
    amg_precond_builder& with_cycles(size_type c)
    {
        cycles = c;
        return *this;
    }
    amg_precond_builder& with_smoothed_prolongation(bool smoothed)
    {
        smoothed_prolongation = smoothed;
        return *this;
    }
    std::shared_ptr<AmgPreconditionerFactory<ValueType, IndexType>> on(
        std::shared_ptr<const Executor> exec) const
    {
        return std::make_shared<
            AmgPreconditionerFactory<ValueType, IndexType>>(std::move(exec),
                                                            *this);
    }
};


/// Fixed number of V-cycles from a zero initial guess — a fixed linear
/// operator, symmetric for the symmetric smoothing schemes above, so it
/// plugs into CG/FCG/GMRES/BiCGStab wherever Jacobi/ILU do.
template <typename ValueType = double, typename IndexType = int32>
class AmgPreconditioner : public LinOp {
public:
    using value_type = ValueType;
    using index_type = IndexType;

    static amg_precond_builder<ValueType, IndexType> build() { return {}; }

    const Hierarchy<ValueType, IndexType>& get_hierarchy() const
    {
        return *hierarchy_;
    }
    const amg_parameters& get_parameters() const { return params_; }

protected:
    friend class AmgPreconditionerFactory<ValueType, IndexType>;
    AmgPreconditioner(std::shared_ptr<const Executor> exec,
                      amg_parameters params,
                      std::shared_ptr<const Csr<ValueType, IndexType>> system);

    void apply_impl(const LinOp* b, LinOp* x) const override;
    void apply_impl(const LinOp* alpha, const LinOp* b, const LinOp* beta,
                    LinOp* x) const override;

private:
    amg_parameters params_;
    std::unique_ptr<const Hierarchy<ValueType, IndexType>> hierarchy_;
    /// Cached temporary of the advanced apply, reused across calls.
    mutable std::unique_ptr<Dense<ValueType>> adv_tmp_;
};


}  // namespace mgko::multigrid
