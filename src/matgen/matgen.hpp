// Synthetic SuiteSparse substitutes (DESIGN.md §2/§5).
//
// The paper benchmarks on SuiteSparse collections: 30 matrices for SpMV,
// 40 for the solver study, 45 for the binding-overhead study, plus six
// named representatives (Table 2).  Without collection access, this module
// generates matrices whose *structural drivers of performance* — dimension,
// nonzero count, density, nnz-per-row distribution, bandwidth/locality —
// match the published characteristics: dimensions up to ~10^6 and density
// below 1% except a handful of denser cases, spanning diagonal mass
// matrices, FEM stencils, planar meshes, circuit-style power-law rows, and
// mixed dense-row matrices.  All generators are deterministic in the seed.
#pragma once

#include <string>
#include <vector>

#include "core/matrix_data.hpp"
#include "core/types.hpp"

namespace mgko::matgen {


using data64 = matrix_data<double, int64>;


// --- raw generators -----------------------------------------------------------

/// 5-point Laplacian on an nx x ny grid (SPD, ~5 nnz/row).
data64 stencil_2d_5pt(size_type nx, size_type ny);
/// 9-point stencil on an nx x ny grid (SPD, ~9 nnz/row).
data64 stencil_2d_9pt(size_type nx, size_type ny);
/// 7-point Laplacian on an nx x ny x nz grid (SPD, ~7 nnz/row).
data64 stencil_3d_7pt(size_type nx, size_type ny, size_type nz);
/// Anisotropic 5-point stencil: x-coupling -1, y-coupling -epsilon, diagonal
/// 2 + 2*epsilon (SPD for epsilon > 0).  Small epsilon makes the y-links
/// weak — the non-trivial target for AMG strength-of-connection filtering.
data64 stencil_2d_aniso(size_type nx, size_type ny, double epsilon);
/// 27-point 3D Poisson stencil: all 26 neighbors -1, diagonal 26 on
/// interior nodes (SPD, diagonally dominant on the boundary).
data64 stencil_3d_27pt(size_type nx, size_type ny, size_type nz);
/// Uniform random pattern with `nnz_per_row` entries/row plus a dominant
/// diagonal.
data64 random_uniform(size_type n, size_type nnz_per_row,
                      std::uint64_t seed);
/// Circuit-like: power-law row lengths (a few very long rows), near-banded
/// column locality with long-range couplings — ASIC_* / mult_dcop-style.
data64 power_law_rows(size_type n, size_type avg_nnz_per_row, double alpha,
                      std::uint64_t seed);
/// Planar-mesh-like (delaunay_*): ~6 neighbors/row with strong index
/// locality.
data64 planar_graph(size_type n, std::uint64_t seed);
/// Diagonal mass matrix with only `nnz` stored entries (bcsstm-style,
/// nnz <= n).
data64 partial_diagonal(size_type n, size_type nnz, std::uint64_t seed);
/// Banded matrix with the given half-bandwidth (dense band).
data64 banded(size_type n, size_type half_bandwidth);
/// Mostly sparse rows plus `num_dense_rows` rows of `dense_row_nnz`
/// entries (av41092-style mixed structure; density can exceed 1%).
data64 mixed_dense_rows(size_type n, size_type base_nnz_per_row,
                        size_type num_dense_rows, size_type dense_row_nnz,
                        std::uint64_t seed);


// --- named specs / suites ------------------------------------------------------

struct spec {
    std::string name;   ///< SuiteSparse name it substitutes, or synthetic id
    std::string kind;   ///< generator id
    size_type n{};
    size_type nnz_estimate{};
    std::uint64_t seed{};
    /// True when the generated matrix is symmetric positive definite.
    bool spd{};
};

/// Generates the matrix a spec describes.
data64 generate(const spec& s);

/// Benchmark scale factor (env MGKO_BENCH_SCALE, default 1.0): scales the
/// suite dimensions so the full harness stays tractable on small machines.
double bench_scale();

/// The 30-matrix SpMV suite (nnz spanning ~1e4..1e7, density <1% except a
/// few).
std::vector<spec> spmv_suite();
/// The 40-matrix solver suite (structurally full diagonals).
std::vector<spec> solver_suite();
/// The 45-matrix binding-overhead suite.
std::vector<spec> overhead_suite();
/// Table 2's six representative matrices (A..F), by their real names.
std::vector<spec> table2_suite();

/// Finds a spec by name across all suites; throws BadParameter if unknown.
spec by_name(const std::string& name);


}  // namespace mgko::matgen
