#include "matgen/matgen.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "core/exception.hpp"
#include "sim/machine_model.hpp"

namespace mgko::matgen {

namespace {

/// Adds a dominant diagonal to keep solver iterations well-behaved.
void add_dominant_diagonal(data64& data)
{
    std::vector<double> row_sum(static_cast<std::size_t>(data.size.rows), 0.0);
    for (const auto& e : data.entries) {
        if (e.row != e.col) {
            row_sum[static_cast<std::size_t>(e.row)] += std::abs(e.value);
        }
    }
    for (size_type r = 0; r < data.size.rows; ++r) {
        data.add(r, r, row_sum[static_cast<std::size_t>(r)] + 1.0);
    }
    data.sort_row_major();
    data.sum_duplicates();
}

}  // namespace


data64 stencil_2d_5pt(size_type nx, size_type ny)
{
    data64 data{dim2{nx * ny}};
    auto idx = [&](size_type i, size_type j) { return i * ny + j; };
    for (size_type i = 0; i < nx; ++i) {
        for (size_type j = 0; j < ny; ++j) {
            const auto row = idx(i, j);
            data.add(row, row, 4.0);
            if (i > 0) data.add(row, idx(i - 1, j), -1.0);
            if (i + 1 < nx) data.add(row, idx(i + 1, j), -1.0);
            if (j > 0) data.add(row, idx(i, j - 1), -1.0);
            if (j + 1 < ny) data.add(row, idx(i, j + 1), -1.0);
        }
    }
    data.sort_row_major();
    return data;
}


data64 stencil_2d_9pt(size_type nx, size_type ny)
{
    data64 data{dim2{nx * ny}};
    auto idx = [&](size_type i, size_type j) { return i * ny + j; };
    for (size_type i = 0; i < nx; ++i) {
        for (size_type j = 0; j < ny; ++j) {
            const auto row = idx(i, j);
            for (int di = -1; di <= 1; ++di) {
                for (int dj = -1; dj <= 1; ++dj) {
                    const auto ni = i + di;
                    const auto nj = j + dj;
                    if (ni < 0 || ni >= nx || nj < 0 || nj >= ny) {
                        continue;
                    }
                    data.add(row, idx(ni, nj),
                             di == 0 && dj == 0 ? 8.0 : -1.0);
                }
            }
        }
    }
    data.sort_row_major();
    return data;
}


data64 stencil_3d_7pt(size_type nx, size_type ny, size_type nz)
{
    data64 data{dim2{nx * ny * nz}};
    auto idx = [&](size_type i, size_type j, size_type k) {
        return (i * ny + j) * nz + k;
    };
    for (size_type i = 0; i < nx; ++i) {
        for (size_type j = 0; j < ny; ++j) {
            for (size_type k = 0; k < nz; ++k) {
                const auto row = idx(i, j, k);
                data.add(row, row, 6.0);
                if (i > 0) data.add(row, idx(i - 1, j, k), -1.0);
                if (i + 1 < nx) data.add(row, idx(i + 1, j, k), -1.0);
                if (j > 0) data.add(row, idx(i, j - 1, k), -1.0);
                if (j + 1 < ny) data.add(row, idx(i, j + 1, k), -1.0);
                if (k > 0) data.add(row, idx(i, j, k - 1), -1.0);
                if (k + 1 < nz) data.add(row, idx(i, j, k + 1), -1.0);
            }
        }
    }
    data.sort_row_major();
    return data;
}


data64 stencil_2d_aniso(size_type nx, size_type ny, double epsilon)
{
    data64 data{dim2{nx * ny}};
    auto idx = [&](size_type i, size_type j) { return i * ny + j; };
    for (size_type i = 0; i < nx; ++i) {
        for (size_type j = 0; j < ny; ++j) {
            const auto row = idx(i, j);
            data.add(row, row, 2.0 + 2.0 * epsilon);
            if (i > 0) data.add(row, idx(i - 1, j), -1.0);
            if (i + 1 < nx) data.add(row, idx(i + 1, j), -1.0);
            if (j > 0) data.add(row, idx(i, j - 1), -epsilon);
            if (j + 1 < ny) data.add(row, idx(i, j + 1), -epsilon);
        }
    }
    data.sort_row_major();
    return data;
}


data64 stencil_3d_27pt(size_type nx, size_type ny, size_type nz)
{
    data64 data{dim2{nx * ny * nz}};
    auto idx = [&](size_type i, size_type j, size_type k) {
        return (i * ny + j) * nz + k;
    };
    for (size_type i = 0; i < nx; ++i) {
        for (size_type j = 0; j < ny; ++j) {
            for (size_type k = 0; k < nz; ++k) {
                const auto row = idx(i, j, k);
                for (int di = -1; di <= 1; ++di) {
                    for (int dj = -1; dj <= 1; ++dj) {
                        for (int dk = -1; dk <= 1; ++dk) {
                            const auto ni = i + di;
                            const auto nj = j + dj;
                            const auto nk = k + dk;
                            if (ni < 0 || nj < 0 || nk < 0 || ni >= nx ||
                                nj >= ny || nk >= nz) {
                                continue;
                            }
                            data.add(row, idx(ni, nj, nk),
                                     di == 0 && dj == 0 && dk == 0 ? 26.0
                                                                   : -1.0);
                        }
                    }
                }
            }
        }
    }
    data.sort_row_major();
    return data;
}


data64 random_uniform(size_type n, size_type nnz_per_row, std::uint64_t seed)
{
    std::mt19937_64 engine{seed};
    std::uniform_int_distribution<size_type> col_dist{0, n - 1};
    std::uniform_real_distribution<double> val_dist{-1.0, 1.0};
    data64 data{dim2{n}};
    for (size_type r = 0; r < n; ++r) {
        for (size_type k = 0; k < nnz_per_row; ++k) {
            const auto c = col_dist(engine);
            if (c != r) {
                data.add(r, c, val_dist(engine));
            }
        }
    }
    add_dominant_diagonal(data);
    return data;
}


data64 power_law_rows(size_type n, size_type avg_nnz_per_row, double alpha,
                      std::uint64_t seed)
{
    std::mt19937_64 engine{seed};
    std::uniform_real_distribution<double> uni{0.0, 1.0};
    std::uniform_real_distribution<double> val_dist{-1.0, 1.0};
    // Pareto-distributed row lengths normalized to the requested average.
    std::vector<double> raw(static_cast<std::size_t>(n));
    double total = 0.0;
    for (auto& v : raw) {
        v = std::pow(1.0 - uni(engine), -1.0 / alpha);
        total += v;
    }
    const double scale =
        static_cast<double>(n * avg_nnz_per_row) / std::max(total, 1.0);
    data64 data{dim2{n}};
    std::normal_distribution<double> local{0.0,
                                           static_cast<double>(n) / 64.0};
    for (size_type r = 0; r < n; ++r) {
        const auto len = std::max<size_type>(
            1, static_cast<size_type>(raw[static_cast<std::size_t>(r)] *
                                      scale));
        for (size_type k = 0; k < std::min(len, n); ++k) {
            // Mostly near-diagonal couplings with occasional long hops —
            // circuit netlist structure.
            size_type c;
            if (uni(engine) < 0.85) {
                c = r + static_cast<size_type>(local(engine));
            } else {
                c = static_cast<size_type>(uni(engine) *
                                           static_cast<double>(n));
            }
            c = std::clamp<size_type>(c, 0, n - 1);
            if (c != r) {
                data.add(r, c, val_dist(engine));
            }
        }
    }
    add_dominant_diagonal(data);
    return data;
}


data64 planar_graph(size_type n, std::uint64_t seed)
{
    // Structured mesh with randomized extra diagonals: ~6 nnz/row with
    // strong locality, like a Delaunay triangulation's adjacency matrix.
    const auto side = std::max<size_type>(
        2, static_cast<size_type>(std::sqrt(static_cast<double>(n))));
    const auto rows = side * side;
    std::mt19937_64 engine{seed};
    std::bernoulli_distribution flip{0.5};
    data64 data{dim2{rows}};
    auto idx = [&](size_type i, size_type j) { return i * side + j; };
    for (size_type i = 0; i < side; ++i) {
        for (size_type j = 0; j < side; ++j) {
            const auto row = idx(i, j);
            data.add(row, row, 6.0);
            if (i > 0) data.add(row, idx(i - 1, j), -1.0);
            if (i + 1 < side) data.add(row, idx(i + 1, j), -1.0);
            if (j > 0) data.add(row, idx(i, j - 1), -1.0);
            if (j + 1 < side) data.add(row, idx(i, j + 1), -1.0);
            // One diagonal of each cell, chosen at random per cell, makes
            // the triangulation.
            if (i > 0 && j > 0 && flip(engine)) {
                data.add(row, idx(i - 1, j - 1), -1.0);
                data.add(idx(i - 1, j - 1), row, -1.0);
            }
        }
    }
    data.sort_row_major();
    data.sum_duplicates();
    return data;
}


data64 partial_diagonal(size_type n, size_type nnz, std::uint64_t seed)
{
    MGKO_ENSURE(nnz <= n, "partial diagonal cannot exceed dimension");
    std::mt19937_64 engine{seed};
    std::uniform_real_distribution<double> val_dist{0.5, 2.0};
    // Choose `nnz` of the n diagonal slots (mass matrices store only the
    // active degrees of freedom).
    std::vector<size_type> slots(static_cast<std::size_t>(n));
    for (size_type i = 0; i < n; ++i) {
        slots[static_cast<std::size_t>(i)] = i;
    }
    std::shuffle(slots.begin(), slots.end(), engine);
    slots.resize(static_cast<std::size_t>(nnz));
    std::sort(slots.begin(), slots.end());
    data64 data{dim2{n}};
    for (const auto s : slots) {
        data.add(s, s, val_dist(engine));
    }
    return data;
}


data64 banded(size_type n, size_type half_bandwidth)
{
    data64 data{dim2{n}};
    for (size_type r = 0; r < n; ++r) {
        const auto begin = r > half_bandwidth ? r - half_bandwidth : 0;
        const auto end = std::min(n, r + half_bandwidth + 1);
        for (size_type c = begin; c < end; ++c) {
            data.add(r, c,
                     c == r ? 2.0 * static_cast<double>(half_bandwidth)
                            : -1.0);
        }
    }
    return data;
}


data64 mixed_dense_rows(size_type n, size_type base_nnz_per_row,
                        size_type num_dense_rows, size_type dense_row_nnz,
                        std::uint64_t seed)
{
    std::mt19937_64 engine{seed};
    std::uniform_int_distribution<size_type> col_dist{0, n - 1};
    std::uniform_int_distribution<size_type> row_dist{0, n - 1};
    std::uniform_real_distribution<double> val_dist{-1.0, 1.0};
    data64 data{dim2{n}};
    for (size_type r = 0; r < n; ++r) {
        for (size_type k = 0; k < base_nnz_per_row; ++k) {
            const auto c = col_dist(engine);
            if (c != r) {
                data.add(r, c, val_dist(engine));
            }
        }
    }
    for (size_type d = 0; d < num_dense_rows; ++d) {
        const auto r = row_dist(engine);
        const auto stride = std::max<size_type>(1, n / dense_row_nnz);
        for (size_type c = d % stride; c < n; c += stride) {
            if (c != r) {
                data.add(r, c, val_dist(engine));
            }
        }
    }
    add_dominant_diagonal(data);
    return data;
}


double bench_scale()
{
    static const double scale =
        std::max(0.01, sim::env_override("MGKO_BENCH_SCALE", 1.0));
    return scale;
}


namespace {

size_type scaled(size_type n)
{
    return std::max<size_type>(
        16, static_cast<size_type>(static_cast<double>(n) * bench_scale()));
}

}  // namespace


data64 generate(const spec& s)
{
    const auto n = s.n;
    if (s.kind == "stencil_2d_5pt") {
        const auto side = static_cast<size_type>(
            std::sqrt(static_cast<double>(n)));
        return stencil_2d_5pt(side, side);
    }
    if (s.kind == "stencil_2d_9pt") {
        const auto side = static_cast<size_type>(
            std::sqrt(static_cast<double>(n)));
        return stencil_2d_9pt(side, side);
    }
    if (s.kind == "stencil_3d_7pt") {
        const auto side = static_cast<size_type>(
            std::cbrt(static_cast<double>(n)));
        return stencil_3d_7pt(side, side, side);
    }
    if (s.kind == "random") {
        return random_uniform(n, std::max<size_type>(1, s.nnz_estimate / n),
                              s.seed);
    }
    if (s.kind == "power_law") {
        return power_law_rows(n, std::max<size_type>(1, s.nnz_estimate / n),
                              1.6, s.seed);
    }
    if (s.kind == "planar") {
        return planar_graph(n, s.seed);
    }
    if (s.kind == "partial_diagonal") {
        return partial_diagonal(n, std::min(n, s.nnz_estimate), s.seed);
    }
    if (s.kind == "banded") {
        return banded(n, std::max<size_type>(1, s.nnz_estimate / (2 * n)));
    }
    if (s.kind == "mixed_dense") {
        // A handful of dense rows on a sparse base: most of the nnz budget
        // goes to the dense rows.
        const size_type dense_rows = 24;
        const auto dense_nnz = std::min(
            n, std::max<size_type>(8, s.nnz_estimate / (2 * dense_rows)));
        return mixed_dense_rows(n, std::max<size_type>(
                                       2, s.nnz_estimate / (2 * n)),
                                dense_rows, dense_nnz, s.seed);
    }
    throw BadParameter(__FILE__, __LINE__, "unknown generator: " + s.kind);
}


namespace {

std::vector<spec> build_spmv_suite()
{
    std::vector<spec> suite;
    auto add = [&](std::string name, std::string kind, size_type n,
                   size_type nnz, bool spd = false) {
        suite.push_back(spec{std::move(name), std::move(kind), scaled(n),
                             std::max<size_type>(
                                 16, static_cast<size_type>(
                                         static_cast<double>(nnz) *
                                         bench_scale())),
                             suite.size() + 1000, spd});
    };
    // 30 matrices, nnz from ~1e4 to ~1e7, density < 1% except a few
    // (banded/mixed entries exceed 1%), mirroring the paper's spread.
    add("syn_mass_s", "partial_diagonal", 20000, 12000);
    add("syn_mass_m", "partial_diagonal", 50000, 48000);
    add("syn_random_xs", "random", 4000, 20000);
    add("syn_banded_xs", "banded", 2500, 60000);  // density > 1%
    add("syn_planar_s", "planar", 16384, 95000, true);
    add("syn_random_s", "random", 20000, 120000);
    add("syn_circuit_s", "power_law", 25000, 190000);
    add("syn_stencil2d_s", "stencil_2d_5pt", 40000, 200000, true);
    add("syn_random_m1", "random", 50000, 300000);
    add("syn_stencil9_s", "stencil_2d_9pt", 40000, 355000, true);
    add("syn_banded_s", "banded", 8000, 480000);  // density > 1%
    add("syn_stencil3d_s", "stencil_3d_7pt", 68000, 470000, true);
    add("syn_planar_m", "planar", 90000, 540000, true);
    add("syn_circuit_m1", "power_law", 80000, 640000);
    add("syn_random_m2", "random", 120000, 720000);
    add("syn_planar_l", "planar", 131072, 786000, true);
    add("syn_stencil2d_m", "stencil_2d_5pt", 180000, 900000, true);
    add("syn_circuit_m2", "power_law", 130000, 1000000);
    add("syn_mixed_s", "mixed_dense", 30000, 1200000);  // density > 1%
    add("syn_stencil9_m", "stencil_2d_9pt", 150000, 1330000, true);
    add("syn_random_l1", "random", 250000, 1500000);
    add("syn_mixed_m", "mixed_dense", 41000, 1680000);  // density > 1%
    add("syn_circuit_l1", "power_law", 320000, 1830000);
    add("syn_stencil3d_m", "stencil_3d_7pt", 300000, 2050000, true);
    add("syn_random_l2", "random", 400000, 2800000);
    add("syn_stencil2d_l", "stencil_2d_5pt", 640000, 3200000, true);
    add("syn_planar_xl", "planar", 640000, 3800000, true);
    add("syn_circuit_l2", "power_law", 600000, 4800000);
    add("syn_stencil3d_l", "stencil_3d_7pt", 900000, 6200000, true);
    add("syn_random_xl", "random", 1000000, 9000000);
    return suite;
}

std::vector<spec> build_solver_suite()
{
    std::vector<spec> suite;
    auto add = [&](std::string name, std::string kind, size_type n,
                   size_type nnz, bool spd = false) {
        suite.push_back(spec{std::move(name), std::move(kind), scaled(n),
                             std::max<size_type>(
                                 16, static_cast<size_type>(
                                         static_cast<double>(nnz) *
                                         bench_scale())),
                             suite.size() + 2000, spd});
    };
    // 40 matrices with structurally full diagonals (solvers need them).
    add("slv_stencil2d_1", "stencil_2d_5pt", 4096, 20000, true);
    add("slv_random_1", "random", 5000, 30000);
    add("slv_planar_1", "planar", 6400, 38000, true);
    add("slv_circuit_1", "power_law", 8000, 56000);
    add("slv_stencil3d_1", "stencil_3d_7pt", 8000, 54000, true);
    add("slv_banded_1", "banded", 3000, 120000);
    add("slv_random_2", "random", 16000, 96000);
    add("slv_stencil9_1", "stencil_2d_9pt", 10000, 88000, true);
    add("slv_planar_2", "planar", 16384, 96000, true);
    add("slv_circuit_2", "power_law", 20000, 140000);
    add("slv_stencil2d_2", "stencil_2d_5pt", 22500, 112000, true);
    add("slv_random_3", "random", 30000, 180000);
    add("slv_mixed_1", "mixed_dense", 12000, 260000);
    add("slv_stencil3d_2", "stencil_3d_7pt", 27000, 185000, true);
    add("slv_planar_3", "planar", 40000, 238000, true);
    add("slv_circuit_3", "power_law", 40000, 300000);
    add("slv_stencil9_2", "stencil_2d_9pt", 40000, 355000, true);
    add("slv_random_4", "random", 60000, 360000);
    add("slv_banded_2", "banded", 9000, 360000);
    add("slv_stencil2d_3", "stencil_2d_5pt", 90000, 448000, true);
    add("slv_planar_4", "planar", 90000, 538000, true);
    add("slv_circuit_4", "power_law", 90000, 640000);
    add("slv_random_5", "random", 110000, 660000);
    add("slv_stencil3d_3", "stencil_3d_7pt", 110000, 760000, true);
    add("slv_mixed_2", "mixed_dense", 30000, 800000);
    add("slv_stencil9_3", "stencil_2d_9pt", 90000, 800000, true);
    add("slv_planar_5", "planar", 131072, 786000, true);
    add("slv_random_6", "random", 150000, 900000);
    add("slv_circuit_5", "power_law", 130000, 980000);
    add("slv_stencil2d_4", "stencil_2d_5pt", 202500, 1010000, true);
    add("slv_banded_3", "banded", 16000, 1140000);
    add("slv_random_7", "random", 200000, 1200000);
    add("slv_stencil3d_4", "stencil_3d_7pt", 216000, 1500000, true);
    add("slv_planar_6", "planar", 250000, 1500000, true);
    add("slv_circuit_6", "power_law", 220000, 1650000);
    add("slv_mixed_3", "mixed_dense", 41000, 1680000);
    add("slv_stencil9_4", "stencil_2d_9pt", 200000, 1780000, true);
    add("slv_random_8", "random", 300000, 1800000);
    add("slv_circuit_7", "power_law", 320000, 1830000);
    add("slv_stencil2d_5", "stencil_2d_5pt", 400000, 2000000, true);
    return suite;
}

std::vector<spec> build_overhead_suite()
{
    std::vector<spec> suite;
    auto add = [&](std::string name, std::string kind, size_type n,
                   size_type nnz, bool spd = false) {
        suite.push_back(spec{std::move(name), std::move(kind), scaled(n),
                             std::max<size_type>(
                                 16, static_cast<size_type>(
                                         static_cast<double>(nnz) *
                                         bench_scale())),
                             suite.size() + 3000, spd});
    };
    // 45 matrices spanning small (binding-overhead dominated) to large
    // (kernel dominated) — the Fig. 5 sweep.
    const struct {
        const char* kind;
        size_type n;
        size_type nnz;
    } grid[] = {
        {"partial_diagonal", 5000, 4000},
        {"random", 2000, 10000},
        {"planar", 4096, 24000},
        {"power_law", 5000, 36000},
        {"stencil_2d_5pt", 10000, 50000},
        {"random", 12000, 72000},
        {"banded", 3000, 120000},
        {"stencil_3d_7pt", 15625, 105000},
        {"planar", 22500, 134000},
        {"power_law", 20000, 150000},
        {"stencil_2d_9pt", 22500, 200000},
        {"random", 40000, 240000},
        {"planar", 48400, 290000},
        {"power_law", 45000, 340000},
        {"stencil_2d_5pt", 80000, 400000},
        {"mixed_dense", 15000, 420000},
        {"random", 80000, 480000},
        {"stencil_3d_7pt", 80000, 550000},
        {"planar", 102400, 614000},
        {"power_law", 80000, 640000},
        {"stencil_2d_9pt", 80000, 710000},
        {"random", 130000, 780000},
        {"planar", 131072, 786000},
        {"banded", 11000, 860000},
        {"power_law", 120000, 900000},
        {"stencil_2d_5pt", 200000, 1000000},
        {"random", 180000, 1080000},
        {"mixed_dense", 28000, 1150000},
        {"stencil_3d_7pt", 170000, 1190000},
        {"planar", 211600, 1270000},
        {"power_law", 170000, 1360000},
        {"stencil_2d_9pt", 160000, 1420000},
        {"random", 250000, 1500000},
        {"mixed_dense", 41000, 1680000},
        {"planar", 300000, 1800000},
        {"power_law", 320000, 1830000},
        {"stencil_2d_5pt", 390625, 1950000},
        {"random", 340000, 2040000},
        {"stencil_3d_7pt", 310000, 2170000},
        {"planar", 400000, 2400000},
        {"power_law", 400000, 3200000},
        {"random", 500000, 4000000},
        {"stencil_2d_9pt", 560000, 5000000},
        {"stencil_3d_7pt", 900000, 6200000},
        {"random", 1000000, 10000000},
    };
    int i = 0;
    for (const auto& g : grid) {
        add("ovh_" + std::to_string(i++) + "_" + g.kind, g.kind, g.n, g.nnz);
    }
    return suite;
}

std::vector<spec> build_table2_suite()
{
    // Table 2 of the paper: name, dimension, nnz (as published).
    return {
        spec{"bcsstm37", "partial_diagonal", 25503, 15500, 11, false},
        spec{"bcsstm39", "partial_diagonal", 46772, 46772, 12, false},
        spec{"mult_dcop_01", "power_law", 25187, 193000, 13, false},
        spec{"delaunay_n17", "planar", 131072, 786000, 14, true},
        spec{"av41092", "mixed_dense", 41092, 1680000, 15, false},
        spec{"ASIC_320ks", "power_law", 321671, 1830000, 16, false},
    };
}

}  // namespace


std::vector<spec> spmv_suite()
{
    static const auto suite = build_spmv_suite();
    return suite;
}


std::vector<spec> solver_suite()
{
    static const auto suite = build_solver_suite();
    return suite;
}


std::vector<spec> overhead_suite()
{
    static const auto suite = build_overhead_suite();
    return suite;
}


std::vector<spec> table2_suite()
{
    static const auto suite = build_table2_suite();
    return suite;
}


spec by_name(const std::string& name)
{
    for (const auto& suite :
         {spmv_suite(), solver_suite(), overhead_suite(), table2_suite()}) {
        for (const auto& s : suite) {
            if (s.name == name) {
                return s;
            }
        }
    }
    throw BadParameter(__FILE__, __LINE__, "unknown matrix name: " + name);
}


}  // namespace mgko::matgen
