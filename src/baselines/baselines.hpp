// Comparison-library models (DESIGN.md §4).
//
// The paper races pyGinkgo against SciPy, CuPy, PyTorch, and TensorFlow.
// We reimplement each library's *documented kernel strategy* and its
// dispatch cost structure, so the benchmark comparisons measure the same
// algorithmic differences the paper attributes results to:
//
//   scipy       serial textbook CSR (one CPU core), Python-loop solvers
//   cupy        device, scalar-row CSR (cuSPARSE-default-like), solvers
//               launched op-by-op from Python; GMRES solves the Hessenberg
//               least-squares on the HOST and checks residuals only at
//               restarts (paper §6.2.1)
//   torch       device, COO with atomic scatter; no iterative solvers
//   tensorflow  device, COO only, gather/multiply/scatter pipeline (three
//               kernels + temporaries); no iterative solvers
//
// Every framework-level operation pays a per-call interpreter/dispatch
// cost on the executor clock in addition to the kernel's modeled time.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "core/kernel_utils.hpp"
#include "core/math.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"
#include "sim/cost_model.hpp"
#include "sim/machine_model.hpp"

namespace mgko::baselines {


struct Framework {
    std::string name;
    /// Interpreter + dispatch cost per framework-level call [ns].
    double per_call_ns{};
    sim::spmv_strategy csr_strategy{sim::spmv_strategy::serial};
    sim::spmv_strategy coo_strategy{sim::spmv_strategy::coo_flat_atomic};
    bool has_iterative_solvers{};
    /// GMRES policy (paper §6.2.1): host-side Hessenberg least squares,
    /// residual checks only at restart boundaries.
    bool gmres_host_lsq{};
};

inline Framework scipy()
{
    Framework f;
    f.name = "scipy";
    f.per_call_ns = sim::env_override("MGKO_SIM_SCIPY_CALL_NS", 2500.0);
    f.csr_strategy = sim::spmv_strategy::serial;
    f.coo_strategy = sim::spmv_strategy::serial;
    f.has_iterative_solvers = true;
    f.gmres_host_lsq = true;
    return f;
}

inline Framework cupy()
{
    Framework f;
    f.name = "cupy";
    f.per_call_ns = sim::env_override("MGKO_SIM_CUPY_CALL_NS", 8000.0);
    f.csr_strategy = sim::spmv_strategy::scalar_row;
    f.coo_strategy = sim::spmv_strategy::coo_flat_atomic;
    f.has_iterative_solvers = true;
    f.gmres_host_lsq = true;
    return f;
}

inline Framework torch()
{
    Framework f;
    f.name = "torch";
    f.per_call_ns = sim::env_override("MGKO_SIM_TORCH_CALL_NS", 6000.0);
    f.csr_strategy = sim::spmv_strategy::coo_flat_atomic;  // sparse COO core
    f.coo_strategy = sim::spmv_strategy::coo_flat_atomic;
    return f;
}

inline Framework tensorflow()
{
    Framework f;
    f.name = "tensorflow";
    f.per_call_ns = sim::env_override("MGKO_SIM_TF_CALL_NS", 12000.0);
    f.csr_strategy = sim::spmv_strategy::coo_gather_scatter;
    f.coo_strategy = sim::spmv_strategy::coo_gather_scatter;
    return f;
}


namespace detail {

/// Serial ground-truth computation used by every baseline kernel (their
/// numerical result is identical; only the modeled cost differs).
template <typename V, typename I>
void csr_spmv_compute(const Csr<V, I>* a, const Dense<V>* b, Dense<V>* x)
{
    const auto* values = a->get_const_values();
    const auto* col_idxs = a->get_const_col_idxs();
    const auto* row_ptrs = a->get_const_row_ptrs();
    const auto vec_cols = b->get_size().cols;
    for (size_type row = 0; row < a->get_size().rows; ++row) {
        for (size_type c = 0; c < vec_cols; ++c) {
            using acc_t = accumulate_t<V>;
            acc_t acc{};
            for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
                acc += static_cast<acc_t>(values[k]) *
                       static_cast<acc_t>(
                           b->get_const_values()
                               [static_cast<size_type>(col_idxs[k]) *
                                    b->get_stride() +
                                c]);
            }
            x->get_values()[row * x->get_stride() + c] = V{acc};
        }
    }
}

template <typename V, typename I>
void coo_spmv_compute(const Coo<V, I>* a, const Dense<V>* b, Dense<V>* x)
{
    x->fill(zero<V>());
    const auto* values = a->get_const_values();
    const auto* row_idxs = a->get_const_row_idxs();
    const auto* col_idxs = a->get_const_col_idxs();
    const auto vec_cols = b->get_size().cols;
    for (size_type k = 0; k < a->get_num_stored_elements(); ++k) {
        for (size_type c = 0; c < vec_cols; ++c) {
            x->get_values()[static_cast<size_type>(row_idxs[k]) *
                                x->get_stride() +
                            c] +=
                values[k] * b->get_const_values()
                                [static_cast<size_type>(col_idxs[k]) *
                                     b->get_stride() +
                                 c];
        }
    }
}

}  // namespace detail


/// x = A b with the framework's CSR kernel strategy.
template <typename V, typename I>
void spmv(const Framework& fw, const Csr<V, I>* a, const Dense<V>* b,
          Dense<V>* x)
{
    auto exec = a->get_executor();
    exec->clock().tick(fw.per_call_ns);
    auto run_kernel = [&](const Executor* e) {
        detail::csr_spmv_compute(a, b, x);
        kernels::tick(e, a->spmv_profile(fw.csr_strategy, e->model(),
                                         b->get_size().cols, false));
    };
    exec->run(make_operation(
        (fw.name + "_csr_spmv").c_str(),
        [&](const ReferenceExecutor* e) { run_kernel(e); },
        [&](const OmpExecutor* e) { run_kernel(e); },
        [&](const CudaExecutor* e) { run_kernel(e); },
        [&](const HipExecutor* e) { run_kernel(e); }));
}


/// x = A b with the framework's COO kernel strategy.
template <typename V, typename I>
void spmv(const Framework& fw, const Coo<V, I>* a, const Dense<V>* b,
          Dense<V>* x)
{
    auto exec = a->get_executor();
    exec->clock().tick(fw.per_call_ns);
    auto run_kernel = [&](const Executor* e) {
        detail::coo_spmv_compute(a, b, x);
        kernels::tick(e, a->spmv_profile(fw.coo_strategy, e->model(),
                                         b->get_size().cols, false));
    };
    exec->run(make_operation(
        (fw.name + "_coo_spmv").c_str(),
        [&](const ReferenceExecutor* e) { run_kernel(e); },
        [&](const OmpExecutor* e) { run_kernel(e); },
        [&](const CudaExecutor* e) { run_kernel(e); },
        [&](const HipExecutor* e) { run_kernel(e); }));
}


struct solve_stats {
    size_type iterations{};
    double residual_norm{};
    bool converged{};
};


namespace detail {

/// Framework-level vector-op helper: each operation is one interpreter
/// call followed by one engine kernel (the cost structure of NumPy/CuPy
/// expression evaluation).
template <typename V>
class PyOps {
public:
    PyOps(const Framework& fw, std::shared_ptr<const Executor> exec)
        : fw_{&fw}, exec_{std::move(exec)}
    {}

    void call() const { exec_->clock().tick(fw_->per_call_ns); }

    double dot(const Dense<V>* a, const Dense<V>* b) const
    {
        call();
        return a->dot_scalar(b);
    }
    double norm(const Dense<V>* a) const
    {
        call();
        return a->norm2_scalar();
    }
    /// x += alpha * y
    void axpy(Dense<V>* x, double alpha, const Dense<V>* y) const
    {
        call();
        auto a = Dense<V>::create(exec_, dim2{1, 1});
        a->get_values()[0] = static_cast<V>(alpha);
        x->add_scaled(a.get(), y);
    }
    /// x = y + beta * x  (two framework ops: scale then add)
    void xpby(Dense<V>* x, const Dense<V>* y, double beta) const
    {
        call();
        auto b = Dense<V>::create(exec_, dim2{1, 1});
        b->get_values()[0] = static_cast<V>(beta);
        x->scale(b.get());
        axpy(x, 1.0, y);
    }
    void copy(Dense<V>* dst, const Dense<V>* src) const
    {
        call();
        dst->copy_from(src);
    }
    std::unique_ptr<Dense<V>> vector(size_type n) const
    {
        return Dense<V>::create(exec_, dim2{n, 1});
    }

    std::shared_ptr<const Executor> exec() const { return exec_; }

private:
    const Framework* fw_;
    std::shared_ptr<const Executor> exec_;
};

}  // namespace detail


/// Unpreconditioned CG, structured like scipy/cupy's Python-level loop.
template <typename V, typename I>
solve_stats cg(const Framework& fw, const Csr<V, I>* a, const Dense<V>* b,
               Dense<V>* x, size_type max_iters, double tol)
{
    detail::PyOps<V> ops{fw, a->get_executor()};
    const auto n = a->get_size().rows;
    auto r = ops.vector(n);
    auto p = ops.vector(n);
    auto q = ops.vector(n);
    // r = b - A x
    spmv(fw, a, x, q.get());
    ops.copy(r.get(), b);
    ops.axpy(r.get(), -1.0, q.get());
    ops.copy(p.get(), r.get());
    double rho = ops.dot(r.get(), r.get());
    const double b_norm = ops.norm(b);
    const double threshold = tol * b_norm;

    solve_stats stats;
    for (size_type iter = 0; iter < max_iters; ++iter) {
        spmv(fw, a, p.get(), q.get());
        const double pq = ops.dot(p.get(), q.get());
        if (pq == 0.0 || !std::isfinite(pq)) {
            break;
        }
        const double alpha = rho / pq;
        ops.axpy(x, alpha, p.get());
        ops.axpy(r.get(), -alpha, q.get());
        const double rho_new = ops.dot(r.get(), r.get());
        stats.iterations = iter + 1;
        stats.residual_norm = std::sqrt(std::max(rho_new, 0.0));
        if (stats.residual_norm <= threshold) {
            stats.converged = true;
            break;
        }
        ops.xpby(p.get(), r.get(), rho_new / rho);
        rho = rho_new;
    }
    return stats;
}


/// Unpreconditioned CGS (Saad's algorithm with explicit temporaries — the
/// Python formulation allocates and touches more intermediates than the
/// fused engine loop, which is why its per-iteration overhead is larger).
template <typename V, typename I>
solve_stats cgs(const Framework& fw, const Csr<V, I>* a, const Dense<V>* b,
                Dense<V>* x, size_type max_iters, double tol)
{
    detail::PyOps<V> ops{fw, a->get_executor()};
    const auto n = a->get_size().rows;
    auto r = ops.vector(n);
    auto r_tilde = ops.vector(n);
    auto u = ops.vector(n);
    auto p = ops.vector(n);
    auto q = ops.vector(n);
    auto v = ops.vector(n);
    auto t = ops.vector(n);
    auto tmp = ops.vector(n);

    spmv(fw, a, x, v.get());
    ops.copy(r.get(), b);
    ops.axpy(r.get(), -1.0, v.get());
    ops.copy(r_tilde.get(), r.get());
    const double threshold = tol * ops.norm(b);

    double rho_prev = 1.0;
    bool first = true;
    solve_stats stats;
    for (size_type iter = 0; iter < max_iters; ++iter) {
        const double rho = ops.dot(r_tilde.get(), r.get());
        if (rho == 0.0 || !std::isfinite(rho)) {
            break;
        }
        if (first) {
            ops.copy(u.get(), r.get());
            ops.copy(p.get(), u.get());
            first = false;
        } else {
            const double beta = rho / rho_prev;
            // u = r + beta q
            ops.copy(u.get(), r.get());
            ops.axpy(u.get(), beta, q.get());
            // p = u + beta (q + beta p)
            ops.copy(tmp.get(), q.get());
            ops.axpy(tmp.get(), beta, p.get());
            ops.copy(p.get(), u.get());
            ops.axpy(p.get(), beta, tmp.get());
        }
        spmv(fw, a, p.get(), v.get());
        const double sigma = ops.dot(r_tilde.get(), v.get());
        if (sigma == 0.0 || !std::isfinite(sigma)) {
            break;
        }
        const double alpha = rho / sigma;
        // q = u - alpha v
        ops.copy(q.get(), u.get());
        ops.axpy(q.get(), -alpha, v.get());
        // t = u + q ; x += alpha t ; r -= alpha A t
        ops.copy(t.get(), u.get());
        ops.axpy(t.get(), 1.0, q.get());
        ops.axpy(x, alpha, t.get());
        spmv(fw, a, t.get(), v.get());
        ops.axpy(r.get(), -alpha, v.get());
        rho_prev = rho;
        stats.iterations = iter + 1;
        stats.residual_norm = ops.norm(r.get());
        if (stats.residual_norm <= threshold) {
            stats.converged = true;
            break;
        }
    }
    return stats;
}


/// Restarted GMRES, CuPy/SciPy style: orthonormal-projection MGS (two
/// block GEMVs per inner step), the Hessenberg least-squares problem is
/// solved on the HOST, and the residual is only checked when a restart
/// cycle completes — the contrasting policy of paper §6.2.1.
template <typename V, typename I>
solve_stats gmres(const Framework& fw, const Csr<V, I>* a, const Dense<V>* b,
                  Dense<V>* x, size_type max_iters, double tol,
                  size_type restart = 30)
{
    detail::PyOps<V> ops{fw, a->get_executor()};
    auto exec = a->get_executor();
    const auto n = a->get_size().rows;
    const auto m = restart;
    auto r = ops.vector(n);
    auto w = ops.vector(n);
    auto basis = Dense<V>::create(exec, dim2{n, m + 1});
    std::vector<double> hessenberg(static_cast<std::size_t>((m + 1) * m), 0.0);
    auto h_at = [&](size_type i, size_type j) -> double& {
        return hessenberg[static_cast<std::size_t>(i * m + j)];
    };

    const double threshold = tol * ops.norm(b);
    solve_stats stats;
    size_type total = 0;
    while (total < max_iters) {
        // r = b - A x
        spmv(fw, a, x, w.get());
        ops.copy(r.get(), b);
        ops.axpy(r.get(), -1.0, w.get());
        const double beta0 = ops.norm(r.get());
        stats.residual_norm = beta0;
        if (beta0 <= threshold) {
            stats.converged = true;
            break;
        }
        {
            auto v0 = basis->column_view(0);
            ops.copy(v0.get(), r.get());
            ops.call();
            auto inv = Dense<V>::create(exec, dim2{1, 1});
            inv->get_values()[0] = static_cast<V>(1.0 / beta0);
            v0->scale(inv.get());
        }
        std::vector<double> g(static_cast<std::size_t>(m + 1), 0.0);
        g[0] = beta0;

        size_type j_end = 0;
        for (size_type j = 0; j < m && total < max_iters; ++j, ++total) {
            {
                auto vj = basis->column_view(j);
                spmv(fw, a, vj.get(), w.get());
            }
            // Orthonormal projection: h = Vᵀ w; w -= V h (two GEMVs).
            auto vblock = Dense<V>::create_view(exec, dim2{n, j + 1},
                                                basis->get_values(), m + 1);
            auto hcol = Dense<V>::create(exec, dim2{j + 1, 1});
            ops.call();
            vblock->transpose_apply(w.get(), hcol.get());
            ops.call();
            {
                auto one_s = Dense<V>::create(exec, dim2{1, 1});
                one_s->get_values()[0] = one<V>();
                auto neg_one = Dense<V>::create(exec, dim2{1, 1});
                neg_one->get_values()[0] = -one<V>();
                vblock->apply(neg_one.get(), hcol.get(), one_s.get(),
                              w.get());
            }
            for (size_type i = 0; i <= j; ++i) {
                h_at(i, j) = to_float(hcol->at(i, 0));
            }
            const double h_next = ops.norm(w.get());
            h_at(j + 1, j) = h_next;
            j_end = j + 1;
            if (h_next <= 1e-14) {
                total += 1;
                break;
            }
            auto vnext = basis->column_view(j + 1);
            ops.copy(vnext.get(), w.get());
            ops.call();
            auto inv = Dense<V>::create(exec, dim2{1, 1});
            inv->get_values()[0] = static_cast<V>(1.0 / h_next);
            vnext->scale(inv.get());
        }

        // Device -> host copy of the Hessenberg block, host LSQ solve.
        exec->charge_copy(exec->get_master().get(),
                          static_cast<size_type>((m + 1) * m * 8));
        std::vector<double> y(static_cast<std::size_t>(j_end), 0.0);
        {
            // Givens least squares on the host (free in the model).
            auto h = hessenberg;
            auto rhs = g;
            for (size_type jj = 0; jj < j_end; ++jj) {
                const double denom =
                    std::hypot(h[static_cast<std::size_t>(jj * m + jj)],
                               h[static_cast<std::size_t>((jj + 1) * m + jj)]);
                if (denom == 0.0) {
                    continue;
                }
                const double c =
                    h[static_cast<std::size_t>(jj * m + jj)] / denom;
                const double s =
                    h[static_cast<std::size_t>((jj + 1) * m + jj)] / denom;
                for (size_type l = jj; l < j_end; ++l) {
                    const double top = h[static_cast<std::size_t>(jj * m + l)];
                    const double bottom =
                        h[static_cast<std::size_t>((jj + 1) * m + l)];
                    h[static_cast<std::size_t>(jj * m + l)] =
                        c * top + s * bottom;
                    h[static_cast<std::size_t>((jj + 1) * m + l)] =
                        -s * top + c * bottom;
                }
                const double gt = rhs[static_cast<std::size_t>(jj)];
                const double gb = rhs[static_cast<std::size_t>(jj + 1)];
                rhs[static_cast<std::size_t>(jj)] = c * gt + s * gb;
                rhs[static_cast<std::size_t>(jj + 1)] = -s * gt + c * gb;
            }
            for (size_type i = j_end; i-- > 0;) {
                double sum = rhs[static_cast<std::size_t>(i)];
                for (size_type l = i + 1; l < j_end; ++l) {
                    sum -= h[static_cast<std::size_t>(i * m + l)] *
                           y[static_cast<std::size_t>(l)];
                }
                const double diag = h[static_cast<std::size_t>(i * m + i)];
                y[static_cast<std::size_t>(i)] = diag == 0.0 ? 0.0 : sum / diag;
            }
        }
        // y back to the device, x += V y (one GEMV).
        exec->charge_copy(exec->get_master().get(),
                          static_cast<size_type>(j_end * 8));
        auto y_dev = Dense<V>::create(exec, dim2{j_end, 1});
        for (size_type i = 0; i < j_end; ++i) {
            y_dev->get_values()[i] =
                static_cast<V>(y[static_cast<std::size_t>(i)]);
        }
        auto vblock = Dense<V>::create_view(exec, dim2{n, j_end},
                                            basis->get_values(), m + 1);
        ops.call();
        {
            auto one_s = Dense<V>::create(exec, dim2{1, 1});
            one_s->get_values()[0] = one<V>();
            vblock->apply(one_s.get(), y_dev.get(), one_s.get(), x);
        }
        stats.iterations = total;
        // Residual check happens only here, at the restart boundary.
    }
    stats.iterations = total;
    return stats;
}


}  // namespace mgko::baselines
