// Minimal JSON value / parser / serializer — the wire format of the
// generic config-solver entry point (paper §5).  pyGinkgo builds these
// values from Python dictionaries "without depending on any temporary
// configuration files on disk"; the binding layer does the same from its
// boxed dict type.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/exception.hpp"
#include "core/types.hpp"

namespace mgko::config {


class Json {
public:
    enum class kind { null, boolean, integer, real, string, array, object };

    using array_t = std::vector<Json>;
    using object_t = std::map<std::string, Json>;

    Json() : value_{nullptr} {}
    Json(std::nullptr_t) : value_{nullptr} {}
    Json(bool b) : value_{b} {}
    Json(int i) : value_{static_cast<std::int64_t>(i)} {}
    Json(std::int64_t i) : value_{i} {}
    Json(double d) : value_{d} {}
    Json(const char* s) : value_{std::string{s}} {}
    Json(std::string s) : value_{std::move(s)} {}

    static Json make_array() { return Json{array_t{}}; }
    static Json make_object() { return Json{object_t{}}; }

    kind get_kind() const
    {
        return static_cast<kind>(value_.index());
    }
    bool is_null() const { return get_kind() == kind::null; }
    bool is_bool() const { return get_kind() == kind::boolean; }
    bool is_integer() const { return get_kind() == kind::integer; }
    bool is_real() const { return get_kind() == kind::real; }
    bool is_number() const { return is_integer() || is_real(); }
    bool is_string() const { return get_kind() == kind::string; }
    bool is_array() const { return get_kind() == kind::array; }
    bool is_object() const { return get_kind() == kind::object; }

    bool as_bool() const { return expect<bool>("boolean"); }
    std::int64_t as_int() const
    {
        if (is_real()) {
            return static_cast<std::int64_t>(std::get<double>(value_));
        }
        return expect<std::int64_t>("integer");
    }
    double as_double() const
    {
        if (is_integer()) {
            return static_cast<double>(std::get<std::int64_t>(value_));
        }
        return expect<double>("number");
    }
    const std::string& as_string() const
    {
        return expect<std::string>("string");
    }

    // --- object interface ---
    bool contains(const std::string& key) const
    {
        return is_object() && items().count(key) > 0;
    }
    /// Object access; creates missing keys (converts null to object).
    Json& operator[](const std::string& key)
    {
        if (is_null()) {
            value_ = object_t{};
        }
        return mutable_items()[key];
    }
    /// Checked access; throws BadParameter when missing.
    const Json& at(const std::string& key) const
    {
        const auto& obj = items();
        auto it = obj.find(key);
        if (it == obj.end()) {
            throw BadParameter(__FILE__, __LINE__,
                               "missing config key: " + key);
        }
        return it->second;
    }
    /// Lookup with fallback.
    Json get_or(const std::string& key, Json fallback) const
    {
        if (contains(key)) {
            return at(key);
        }
        return fallback;
    }
    const object_t& items() const { return expect<object_t>("object"); }
    object_t& mutable_items()
    {
        if (!is_object()) {
            throw BadParameter(__FILE__, __LINE__, "JSON value is not object");
        }
        return std::get<object_t>(value_);
    }

    // --- array interface ---
    void push_back(Json element)
    {
        if (is_null()) {
            value_ = array_t{};
        }
        std::get<array_t>(value_).push_back(std::move(element));
    }
    const array_t& elements() const { return expect<array_t>("array"); }
    size_type size() const
    {
        if (is_array()) {
            return static_cast<size_type>(elements().size());
        }
        if (is_object()) {
            return static_cast<size_type>(items().size());
        }
        throw BadParameter(__FILE__, __LINE__, "size() on non-container JSON");
    }

    friend bool operator==(const Json& a, const Json& b)
    {
        return a.value_ == b.value_;
    }

    /// Parses a JSON document; throws BadParameter on malformed input.
    static Json parse(const std::string& text);
    static Json parse(std::istream& stream);

    /// Serializes; indent < 0 produces compact output.
    std::string dump(int indent = -1) const;

private:
    explicit Json(array_t a) : value_{std::move(a)} {}
    explicit Json(object_t o) : value_{std::move(o)} {}

    template <typename T>
    const T& expect(const char* what) const
    {
        if (!std::holds_alternative<T>(value_)) {
            throw BadParameter(__FILE__, __LINE__,
                               std::string{"JSON value is not "} + what);
        }
        return std::get<T>(value_);
    }

    std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
                 array_t, object_t>
        value_;
};


}  // namespace mgko::config
