// The generic config-solver entry point (paper §5).
//
// A JSON configuration (built from a file, a string, or — through the
// binding layer — a Python-style dictionary) selects a solver, its
// stopping criteria, an optional preconditioner, and the value/index types,
// all at run time.  New functionality reachable through this entry point
// needs no new explicit bindings — the property the paper highlights.
//
// Schema (Listing 2 of the paper, normalized):
// {
//   "type": "solver::Gmres",              // or Cg/Cgs/Bicgstab/Fcg/Ir/
//                                         //    LowerTrs/UpperTrs
//   "value_type": "float64",              // half|float32|float64 (default)
//   "index_type": "int32",                // int32 (default) | int64
//   "krylov_dim": 30,                     // GMRES only
//   "relaxation_factor": 1.0,             // Ir only
//   "criteria": [
//     {"type": "stop::Iteration", "max_iters": 1000},
//     {"type": "stop::ResidualNorm", "reduction_factor": 1e-6,
//      "baseline": "rhs_norm"}
//   ],
//   // shorthands accepted instead of "criteria":
//   "max_iters": 1000, "reduction_factor": 1e-6,
//   "preconditioner": {"type": "preconditioner::Jacobi", "max_block_size": 1}
// }
//
// A "batch": N key routes the configuration to the batched solvers
// (batch::Cg / batch::Bicgstab over a batch::Csr or batch::Dense system of
// N systems); see parse_batch_factory below.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "batch/batch_lin_op.hpp"
#include "config/json.hpp"
#include "core/executor.hpp"
#include "core/lin_op.hpp"
#include "core/matrix_data.hpp"

namespace mgko::config {


/// Builds a solver factory from a configuration.  Throws BadParameter for
/// unknown types / malformed configs, including configs carrying a
/// "batch" key (those belong to parse_batch_factory).
std::shared_ptr<const LinOpFactory> parse_factory(
    const Json& configuration, std::shared_ptr<const Executor> exec);

/// One-shot convenience: builds the factory, generates the solver for
/// `system`, and returns it.
std::unique_ptr<LinOp> config_solver(const Json& configuration,
                                     std::shared_ptr<const Executor> exec,
                                     std::shared_ptr<const LinOp> system);

/// Builds a *batched* solver factory from a configuration carrying a
/// "batch": N key (N = expected number of systems; 0 accepts any batch).
/// Supported types: solver::Cg and solver::Bicgstab, with an optional
/// scalar-Jacobi preconditioner; criteria follow the single-system schema
/// and are bound per system at apply time.
std::shared_ptr<const batch::BatchLinOpFactory> parse_batch_factory(
    const Json& configuration, std::shared_ptr<const Executor> exec);

/// One-shot convenience for the batched path: builds the batch factory and
/// generates the batched solver for `system`.
std::unique_ptr<batch::BatchLinOp> batch_config_solver(
    const Json& configuration, std::shared_ptr<const Executor> exec,
    std::shared_ptr<const batch::BatchLinOp> system);

/// The value/index types a configuration selects (defaults: double, int32).
dtype config_value_type(const Json& configuration);
itype config_index_type(const Json& configuration);


// --- solve-as-a-service glue (serve::SolveServer) --------------------------
//
// The serving layer works in wire types (staging matrix_data and host
// double vectors) while the configuration picks the compute types at run
// time; these helpers bridge the two so the server never has to spell out
// the value/index dispatch the binding layer performs.

/// Host-side outcome of one solve through the config entry point: the
/// solution column plus the convergence log (what bind::Solver::apply
/// returns as a Logger, flattened to plain values for serialization).
struct solve_report {
    std::vector<double> solution;
    size_type iterations{0};
    bool converged{false};
    double residual_norm{0.0};
    std::string stop_reason;
};

/// Builds the CSR system of the configuration's value/index types from
/// staging data and generates the configured solver on it — the setup
/// (including any factorization the preconditioner performs) that a
/// server wants to pay once per uploaded operator, not once per request.
std::unique_ptr<LinOp> generate_solver(const Json& configuration,
                                       std::shared_ptr<const Executor> exec,
                                       const matrix_data<double, int64>& data);

/// Applies a solver generated from the same configuration (generate_solver
/// or config_solver) to `rhs`, starting from `initial_guess` (zeros when
/// empty).  Both host vectors are length rows; the configuration is only
/// consulted for its value type, so it must match the one the solver was
/// generated with.  Returns the solution and the convergence log; solvers
/// without one (Direct, LowerTrs/UpperTrs) report converged with reason
/// "direct".
solve_report apply_solver(const Json& configuration,
                          std::shared_ptr<const Executor> exec, LinOp* solver,
                          const std::vector<double>& rhs,
                          const std::vector<double>& initial_guess = {});


}  // namespace mgko::config
