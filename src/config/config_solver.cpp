#include "config/config_solver.hpp"

#include <algorithm>
#include <initializer_list>
#include <limits>
#include <vector>

#include "batch/batch_bicgstab.hpp"
#include "batch/batch_cg.hpp"
#include "batch/batch_jacobi.hpp"
#include "core/dispatch.hpp"
#include "log/hw_counters.hpp"
#include "log/sampling_profiler.hpp"
#include "log/trace.hpp"
#include "log/trace_context.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"
#include "matrix/ell.hpp"
#include "matrix/hybrid.hpp"
#include "matrix/sellcs.hpp"
#include "multigrid/amg_solver.hpp"
#include "preconditioner/ilu.hpp"
#include "preconditioner/jacobi.hpp"
#include "reorder/reorder.hpp"
#include "serve/solve_server.hpp"
#include "serve/telemetry_server.hpp"
#include "solver/bicgstab.hpp"
#include "solver/cg.hpp"
#include "solver/cgs.hpp"
#include "solver/direct.hpp"
#include "solver/fcg.hpp"
#include "solver/gmres.hpp"
#include "solver/ir.hpp"
#include "solver/triangular.hpp"
#include "stop/criterion.hpp"

namespace mgko::config {

namespace {

/// Rejects config keys outside `valid` so a typo ("thetta") fails loudly
/// instead of silently running with the default; the message lists every
/// key the chosen solver/preconditioner accepts.
void validate_config_keys(const Json& config, std::vector<std::string> valid,
                          const std::string& context)
{
    std::sort(valid.begin(), valid.end());
    for (const auto& [key, value] : config.items()) {
        (void)value;
        if (!std::binary_search(valid.begin(), valid.end(), key)) {
            std::string list;
            for (const auto& k : valid) {
                list += list.empty() ? k : ", " + k;
            }
            throw BadParameter(__FILE__, __LINE__,
                               "unknown config key '" + key + "' for " +
                                   context + " (valid keys: " + list + ")");
        }
    }
}

/// Keys every solver config accepts (dtype selection, storage/reorder
/// transforms, and the observability toggles), plus the chosen solver's own.
std::vector<std::string> solver_config_keys(
    std::initializer_list<const char*> extra)
{
    std::vector<std::string> valid{
        "type",          "value_type", "index_type", "format",
        "reorder",       "slice_size", "sorting_window", "trace",
        "trace_sample",  "telemetry",  "solve_server", "sampling_hz",
        "hw_counters"};
    valid.insert(valid.end(), extra.begin(), extra.end());
    return valid;
}


multigrid::amg_parameters parse_amg_parameters(const Json& config)
{
    multigrid::amg_parameters p;
    p.theta = config.get_or("theta", Json{p.theta}).as_double();
    p.max_levels = static_cast<size_type>(
        config.get_or("max_levels",
                      Json{static_cast<std::int64_t>(p.max_levels)})
            .as_int());
    p.min_coarse_rows = static_cast<size_type>(
        config.get_or("min_coarse_rows",
                      Json{static_cast<std::int64_t>(p.min_coarse_rows)})
            .as_int());
    p.smoother = multigrid::smoother_from_string(
        config.get_or("smoother", Json{multigrid::to_string(p.smoother)})
            .as_string());
    p.pre_sweeps = static_cast<size_type>(
        config.get_or("pre_sweeps",
                      Json{static_cast<std::int64_t>(p.pre_sweeps)})
            .as_int());
    p.post_sweeps = static_cast<size_type>(
        config.get_or("post_sweeps",
                      Json{static_cast<std::int64_t>(p.post_sweeps)})
            .as_int());
    p.smoothed_prolongation =
        config.get_or("smoothed_prolongation", Json{p.smoothed_prolongation})
            .as_bool();
    p.cycles = static_cast<size_type>(
        config.get_or("cycles", Json{static_cast<std::int64_t>(p.cycles)})
            .as_int());
    return p;
}


stop::baseline parse_baseline(const std::string& name)
{
    if (name == "rhs_norm" || name == "rhs") {
        return stop::baseline::rhs_norm;
    }
    if (name == "initial_resnorm" || name == "initial") {
        return stop::baseline::initial_resnorm;
    }
    if (name == "absolute") {
        return stop::baseline::absolute;
    }
    throw BadParameter(__FILE__, __LINE__,
                       "unknown residual baseline: " + name);
}


std::vector<std::shared_ptr<const stop::CriterionFactory>> parse_criteria(
    const Json& config)
{
    std::vector<std::shared_ptr<const stop::CriterionFactory>> result;
    if (config.contains("criteria")) {
        for (const auto& entry : config.at("criteria").elements()) {
            const auto& type = entry.at("type").as_string();
            if (type == "stop::Iteration" || type == "Iteration") {
                result.push_back(
                    stop::iteration(entry.at("max_iters").as_int()));
            } else if (type == "stop::ResidualNorm" ||
                       type == "ResidualNorm") {
                result.push_back(stop::residual_norm(
                    entry.at("reduction_factor").as_double(),
                    parse_baseline(
                        entry.get_or("baseline", Json{"rhs_norm"})
                            .as_string())));
            } else {
                throw BadParameter(__FILE__, __LINE__,
                                   "unknown criterion type: " + type);
            }
        }
    }
    // Listing-1-style keyword shorthands.
    if (config.contains("max_iters")) {
        result.push_back(stop::iteration(config.at("max_iters").as_int()));
    }
    if (config.contains("reduction_factor")) {
        result.push_back(stop::residual_norm(
            config.at("reduction_factor").as_double(),
            parse_baseline(
                config.get_or("baseline", Json{"rhs_norm"}).as_string())));
    }
    if (result.empty()) {
        throw BadParameter(__FILE__, __LINE__,
                           "config selects no stopping criteria (provide "
                           "'criteria', 'max_iters', or 'reduction_factor')");
    }
    return result;
}


template <typename V, typename I>
std::shared_ptr<const LinOpFactory> parse_preconditioner(
    const Json& config, std::shared_ptr<const Executor> exec)
{
    const auto& type = config.at("type").as_string();
    if (type == "preconditioner::Jacobi" || type == "Jacobi" ||
        type == "jacobi") {
        validate_config_keys(config, {"type", "max_block_size"},
                             "preconditioner \"jacobi\"");
        return preconditioner::Jacobi<V, I>::build()
            .with_max_block_size(config.get_or("max_block_size", Json{1})
                                     .as_int())
            .on(std::move(exec));
    }
    if (type == "preconditioner::Ilu" || type == "Ilu" || type == "ilu") {
        validate_config_keys(config, {"type"}, "preconditioner \"ilu\"");
        return preconditioner::Ilu<V, I>::build_on(std::move(exec));
    }
    if (type == "preconditioner::Ic" || type == "Ic" || type == "ic") {
        validate_config_keys(config, {"type"}, "preconditioner \"ic\"");
        return preconditioner::Ic<V, I>::build_on(std::move(exec));
    }
    if (type == "preconditioner::Amg" || type == "Amg" || type == "amg" ||
        type == "multigrid::Amg") {
        validate_config_keys(
            config,
            {"type", "theta", "max_levels", "min_coarse_rows", "smoother",
             "cycles", "pre_sweeps", "post_sweeps", "smoothed_prolongation"},
            "preconditioner \"amg\"");
        return std::make_shared<
            multigrid::AmgPreconditionerFactory<V, I>>(
            std::move(exec), parse_amg_parameters(config));
    }
    throw BadParameter(__FILE__, __LINE__,
                       "unknown preconditioner type: " + type);
}


/// Factory wrapper implementing the config keys "format" and "reorder":
/// at generate() time the CSR system is permuted (P A Pᵀ), converted to
/// the requested storage format, and handed to the wrapped solver factory;
/// when a reordering is active the generated solver is wrapped in a
/// reorder::ReorderedLinOp so callers keep working in the original index
/// space.
template <typename V, typename I>
class TransformedFactory : public LinOpFactory {
public:
    TransformedFactory(std::shared_ptr<const Executor> exec,
                       std::shared_ptr<const LinOpFactory> inner,
                       mat_format format, reorder::strategy strategy,
                       size_type slice_size, size_type sorting_window)
        : LinOpFactory{std::move(exec)},
          inner_{std::move(inner)},
          format_{format},
          strategy_{strategy},
          slice_size_{slice_size},
          sorting_window_{sorting_window}
    {}

protected:
    std::unique_ptr<LinOp> generate_impl(
        std::shared_ptr<const LinOp> system) const override
    {
        auto csr = std::dynamic_pointer_cast<const Csr<V, I>>(system);
        if (!csr) {
            throw BadParameter(
                __FILE__, __LINE__,
                "'format'/'reorder' config keys require a CSR system matrix "
                "of the config's value_type/index_type");
        }
        auto perm = reorder::make_permutation(strategy_, csr.get());
        std::shared_ptr<const Csr<V, I>> working =
            strategy_ == reorder::strategy::none ? csr
                                                 : perm.permute(csr.get());
        std::shared_ptr<const LinOp> converted = working;
        if (format_ == mat_format::sellcs) {
            converted = SellCs<V, I>::create_from_data(
                get_executor(), working->to_data(), slice_size_,
                sorting_window_);
        } else if (format_ != mat_format::csr) {
            converted = dispatch_format(
                format_, [&](auto token) -> std::shared_ptr<const LinOp> {
                    using Mat =
                        typename decltype(token)::template type<V, I>;
                    return Mat::create_from_data(get_executor(),
                                                 working->to_data());
                });
        }
        auto solver = inner_->generate(std::move(converted));
        if (strategy_ == reorder::strategy::none) {
            return solver;
        }
        return reorder::ReorderedLinOp<V, I>::create(
            std::shared_ptr<LinOp>{std::move(solver)}, std::move(perm));
    }

private:
    std::shared_ptr<const LinOpFactory> inner_;
    mat_format format_;
    reorder::strategy strategy_;
    size_type slice_size_;
    size_type sorting_window_;
};


template <typename V, typename I>
std::shared_ptr<const LinOpFactory> parse_factory_inner(
    const Json& config, std::shared_ptr<const Executor> exec)
{
    const auto& type = config.at("type").as_string();

    // Direct and triangular solvers carry no criteria.
    if (type == "solver::Direct" || type == "Direct" || type == "direct") {
        validate_config_keys(config, solver_config_keys({}),
                             "solver \"direct\"");
        return solver::Direct<V, I>::build_on(std::move(exec));
    }
    if (type == "solver::LowerTrs" || type == "LowerTrs") {
        validate_config_keys(config, solver_config_keys({"unit_diagonal"}),
                             "solver \"LowerTrs\"");
        return solver::LowerTrs<V, I>::build()
            .with_unit_diagonal(
                config.get_or("unit_diagonal", Json{false}).as_bool())
            .on(std::move(exec));
    }
    if (type == "solver::UpperTrs" || type == "UpperTrs") {
        validate_config_keys(config, solver_config_keys({"unit_diagonal"}),
                             "solver \"UpperTrs\"");
        return solver::UpperTrs<V, I>::build()
            .with_unit_diagonal(
                config.get_or("unit_diagonal", Json{false}).as_bool())
            .on(std::move(exec));
    }

    // The standalone V-cycle solver: stopping criteria plus the hierarchy
    // knobs; the multigrid cycle itself is the preconditioning, so no
    // "preconditioner" sub-object applies here.
    if (type == "solver::Amg" || type == "Amg" || type == "amg" ||
        type == "multigrid::AmgSolver") {
        validate_config_keys(
            config,
            solver_config_keys({"criteria", "max_iters", "reduction_factor",
                                "baseline", "theta", "max_levels",
                                "min_coarse_rows", "smoother", "pre_sweeps",
                                "post_sweeps", "smoothed_prolongation"}),
            "solver \"amg\"");
        multigrid::amg_solver_parameters params;
        params.criteria = parse_criteria(config);
        params.amg = parse_amg_parameters(config);
        return std::make_shared<multigrid::AmgSolverFactory<V, I>>(
            std::move(exec), std::move(params));
    }

    const bool known_iterative =
        type == "solver::Cg" || type == "Cg" || type == "cg" ||
        type == "solver::Cgs" || type == "Cgs" || type == "cgs" ||
        type == "solver::Bicgstab" || type == "Bicgstab" ||
        type == "bicgstab" || type == "solver::Fcg" || type == "Fcg" ||
        type == "fcg" || type == "solver::Gmres" || type == "Gmres" ||
        type == "gmres" || type == "solver::Ir" || type == "Ir" ||
        type == "ir" || type == "richardson";
    if (!known_iterative) {
        throw BadParameter(__FILE__, __LINE__,
                           "unknown solver type: " + type);
    }
    validate_config_keys(
        config,
        solver_config_keys({"criteria", "max_iters", "reduction_factor",
                            "baseline", "preconditioner", "krylov_dim",
                            "relaxation_factor", "inner_precision"}),
        "solver \"" + type + "\"");

    auto criteria = parse_criteria(config);
    std::shared_ptr<const LinOpFactory> precond;
    if (config.contains("preconditioner") &&
        !config.at("preconditioner").is_null()) {
        precond =
            parse_preconditioner<V, I>(config.at("preconditioner"), exec);
    }

    auto configure = [&](auto builder) {
        for (auto& c : criteria) {
            builder.with_criteria(c);
        }
        if (precond) {
            builder.with_preconditioner(precond);
        }
        builder.with_krylov_dim(config.get_or("krylov_dim", Json{30}).as_int());
        builder.with_relaxation_factor(
            config.get_or("relaxation_factor", Json{1.0}).as_double());
        builder.with_inner_precision(solver::precision_from_string(
            config.get_or("inner_precision", Json{"double"}).as_string()));
        return std::shared_ptr<const LinOpFactory>{builder.on(exec)};
    };

    if (type == "solver::Cg" || type == "Cg" || type == "cg") {
        return configure(solver::Cg<V>::build());
    }
    if (type == "solver::Cgs" || type == "Cgs" || type == "cgs") {
        return configure(solver::Cgs<V>::build());
    }
    if (type == "solver::Bicgstab" || type == "Bicgstab" ||
        type == "bicgstab") {
        return configure(solver::Bicgstab<V>::build());
    }
    if (type == "solver::Fcg" || type == "Fcg" || type == "fcg") {
        return configure(solver::Fcg<V>::build());
    }
    if (type == "solver::Gmres" || type == "Gmres" || type == "gmres") {
        return configure(solver::Gmres<V>::build());
    }
    if (type == "solver::Ir" || type == "Ir" || type == "ir" ||
        type == "richardson") {
        return configure(solver::Ir<V>::build());
    }
    throw BadParameter(__FILE__, __LINE__, "unknown solver type: " + type);
}


template <typename V, typename I>
std::shared_ptr<const LinOpFactory> parse_factory_typed(
    const Json& config, std::shared_ptr<const Executor> exec)
{
    auto factory = parse_factory_inner<V, I>(config, exec);
    // Storage-format and reordering transforms apply uniformly to every
    // solver type; both strings are validated here even at their defaults.
    const auto format = format_from_string(
        config.get_or("format", Json{"csr"}).as_string());
    const auto strategy = reorder::strategy_from_string(
        config.get_or("reorder", Json{"none"}).as_string());
    if (format == mat_format::csr && strategy == reorder::strategy::none) {
        return factory;
    }
    const auto slice_size = static_cast<size_type>(
        config.get_or("slice_size",
                      Json{static_cast<std::int64_t>(
                          SellCs<V, I>::default_slice_size)})
            .as_int());
    const auto sorting_window = static_cast<size_type>(
        config.get_or("sorting_window",
                      Json{static_cast<std::int64_t>(
                          SellCs<V, I>::default_sorting_window)})
            .as_int());
    return std::make_shared<TransformedFactory<V, I>>(
        std::move(exec), std::move(factory), format, strategy, slice_size,
        sorting_window);
}


template <typename V>
std::shared_ptr<const batch::BatchLinOpFactory> parse_batch_factory_typed(
    const Json& config, std::shared_ptr<const Executor> exec)
{
    const auto& type = config.at("type").as_string();
    const auto expected = config.at("batch").as_int();
    MGKO_ENSURE(expected >= 0, "'batch' must be a non-negative system count");
    validate_config_keys(
        config,
        {"type", "batch", "value_type", "index_type", "criteria", "max_iters",
         "reduction_factor", "baseline", "preconditioner", "trace",
         "trace_sample", "telemetry", "solve_server", "sampling_hz",
         "hw_counters"},
        "batched solver \"" + type + "\"");

    auto criteria = parse_criteria(config);
    std::shared_ptr<const batch::BatchLinOpFactory> precond;
    if (config.contains("preconditioner") &&
        !config.at("preconditioner").is_null()) {
        const auto& ptype = config.at("preconditioner").at("type").as_string();
        if (ptype == "preconditioner::Jacobi" || ptype == "Jacobi" ||
            ptype == "jacobi") {
            precond = batch::Jacobi<V>::build().on(exec);
        } else {
            throw BadParameter(__FILE__, __LINE__,
                               "unknown batched preconditioner type: " +
                                   ptype +
                                   " (batched configs support Jacobi)");
        }
    }

    auto configure = [&](auto builder) {
        for (auto& c : criteria) {
            builder.with_criteria(c);
        }
        if (precond) {
            builder.with_preconditioner(precond);
        }
        builder.with_batch_size(static_cast<size_type>(expected));
        return std::shared_ptr<const batch::BatchLinOpFactory>{
            builder.on(exec)};
    };

    if (type == "solver::Cg" || type == "Cg" || type == "cg" ||
        type == "batch::Cg") {
        return configure(batch::Cg<V>::build());
    }
    if (type == "solver::Bicgstab" || type == "Bicgstab" ||
        type == "bicgstab" || type == "batch::Bicgstab") {
        return configure(batch::Bicgstab<V>::build());
    }
    throw BadParameter(__FILE__, __LINE__,
                       "unknown batched solver type: " + type +
                           " (batched configs support Cg and Bicgstab)");
}

}  // namespace


dtype config_value_type(const Json& config)
{
    return dtype_from_string(
        config.get_or("value_type", Json{"double"}).as_string());
}


itype config_index_type(const Json& config)
{
    return itype_from_string(
        config.get_or("index_type", Json{"int32"}).as_string());
}


std::shared_ptr<const LinOpFactory> parse_factory(
    const Json& config, std::shared_ptr<const Executor> exec)
{
    MGKO_ENSURE(config.is_object(), "solver config must be a JSON object");
    if (config.contains("batch")) {
        throw BadParameter(
            __FILE__, __LINE__,
            "config carries a 'batch' key: batched configurations go "
            "through parse_batch_factory / batch_config_solver, which "
            "generate from a batch::Csr or batch::Dense system");
    }
    return dispatch_value_index(
        config_value_type(config), config_index_type(config),
        [&](auto v, auto i) -> std::shared_ptr<const LinOpFactory> {
            using V = typename decltype(v)::type;
            using I = typename decltype(i)::type;
            return parse_factory_typed<V, I>(config, exec);
        });
}


namespace {

/// A `"telemetry"` key starts the process-wide exposition server from
/// config alone: `true` binds an ephemeral port, a number binds that
/// port.  Idempotent — a second solver config sees the running server.
void apply_telemetry_key(const Json& config)
{
    if (!config.contains("telemetry")) {
        return;
    }
    const auto& value = config.at("telemetry");
    if (value.is_bool()) {
        if (value.as_bool()) {
            serve::telemetry_start(0);
        }
        return;
    }
    serve::telemetry_start(static_cast<int>(value.as_int()));
}

/// A `"solve_server"` key starts the process-wide solve-as-a-service
/// endpoint the same way: `true` for an ephemeral port, a number for a
/// concrete one.
void apply_solve_server_key(const Json& config)
{
    if (!config.contains("solve_server")) {
        return;
    }
    const auto& value = config.at("solve_server");
    if (value.is_bool()) {
        if (value.as_bool()) {
            serve::solve_server_start(0);
        }
        return;
    }
    serve::solve_server_start(static_cast<int>(value.as_int()));
}

/// A `"trace_sample"` key sets the process-wide request-trace sampling
/// probability (the config-layer twin of MGKO_TRACE_SAMPLE; see
/// log/trace_context.hpp).  Must be a number in [0, 1].
void apply_trace_sample_key(const Json& config)
{
    if (!config.contains("trace_sample")) {
        return;
    }
    const auto rate = config.at("trace_sample").as_double();
    MGKO_ENSURE(rate >= 0.0 && rate <= 1.0,
                "'trace_sample' must be a probability in [0, 1], got " +
                    std::to_string(rate));
    log::set_trace_sample_rate(rate);
}

/// A `"sampling_hz"` key controls the measured-tier sampling profiler
/// (the config twin of MGKO_SAMPLING_HZ): a positive integer starts (or
/// retunes) sampling at that rate, 0 stops it.
void apply_sampling_key(const Json& config)
{
    if (!config.contains("sampling_hz")) {
        return;
    }
    const auto hz = config.at("sampling_hz").as_int();
    MGKO_ENSURE(hz >= 0 && hz <= 1000,
                "'sampling_hz' must be an integer in [0, 1000], got " +
                    std::to_string(hz));
    if (hz == 0) {
        log::sampling_stop();
    } else {
        log::sampling_start(static_cast<int>(hz));
    }
}

/// A `"hw_counters"` key controls the hardware-counter tier (the config
/// twin of MGKO_HW_COUNTERS): `true`/"auto" probes perf_event_open and
/// falls back to rusage, "rusage" forces the fallback (deterministic for
/// CI), `false`/"off" disables.
void apply_hw_counters_key(const Json& config)
{
    if (!config.contains("hw_counters")) {
        return;
    }
    const auto& value = config.at("hw_counters");
    if (value.is_bool()) {
        if (value.as_bool()) {
            log::hw_counters_enable("auto");
        } else {
            log::hw_counters_disable();
        }
        return;
    }
    const auto mode = value.as_string();
    if (mode == "off" || mode == "false" || mode == "0") {
        log::hw_counters_disable();
        return;
    }
    MGKO_ENSURE(mode == "auto" || mode == "rusage" || mode == "perf_event",
                "'hw_counters' must be a bool or one of \"auto\", "
                "\"rusage\", \"perf_event\", \"off\", got \"" +
                    mode + "\"");
    log::hw_counters_enable(mode);
}

}  // namespace


std::unique_ptr<LinOp> config_solver(const Json& config,
                                     std::shared_ptr<const Executor> exec,
                                     std::shared_ptr<const LinOp> system)
{
    auto solver =
        parse_factory(config, std::move(exec))->generate(std::move(system));
    // A `"trace": true` key attaches the process-wide tracer to the
    // generated solver — per-solver opt-in without MGKO_TRACE.
    if (config.get_or("trace", Json{false}).as_bool()) {
        solver->add_logger(log::shared_tracer());
    }
    apply_telemetry_key(config);
    apply_solve_server_key(config);
    apply_trace_sample_key(config);
    apply_sampling_key(config);
    apply_hw_counters_key(config);
    return solver;
}


std::unique_ptr<LinOp> generate_solver(const Json& config,
                                       std::shared_ptr<const Executor> exec,
                                       const matrix_data<double, int64>& data)
{
    return dispatch_value_index(
        config_value_type(config), config_index_type(config),
        [&](auto v, auto i) -> std::unique_ptr<LinOp> {
            using V = typename decltype(v)::type;
            using I = typename decltype(i)::type;
            std::shared_ptr<const LinOp> system{
                Csr<V, I>::create_from_data(exec,
                                            data.template cast<V, I>())};
            return config_solver(config, exec, std::move(system));
        });
}


solve_report apply_solver(const Json& config,
                          std::shared_ptr<const Executor> exec, LinOp* solver,
                          const std::vector<double>& rhs,
                          const std::vector<double>& initial_guess)
{
    MGKO_ENSURE(solver != nullptr, "apply_solver requires a solver");
    const auto rows = solver->get_size().rows;
    MGKO_ENSURE(rhs.size() == rows,
                "rhs length " + std::to_string(rhs.size()) +
                    " does not match the system's " + std::to_string(rows) +
                    " rows");
    MGKO_ENSURE(initial_guess.empty() || initial_guess.size() == rows,
                "initial guess length does not match the system");
    return dispatch_value_index(
        config_value_type(config), config_index_type(config),
        [&](auto v, auto) -> solve_report {
            using V = typename decltype(v)::type;
            auto b = Dense<V>::create(exec, dim2{rows, 1});
            auto x = Dense<V>::create(exec, dim2{rows, 1});
            for (size_type r = 0; r < rows; ++r) {
                b->at(r, 0) = static_cast<V>(rhs[r]);
                x->at(r, 0) = initial_guess.empty()
                                  ? zero<V>()
                                  : static_cast<V>(initial_guess[r]);
            }
            solver->apply(b.get(), x.get());
            solve_report report;
            report.solution.resize(rows);
            for (size_type r = 0; r < rows; ++r) {
                report.solution[r] =
                    static_cast<double>(to_float(x->at(r, 0)));
            }
            // The convergence log lives on the typed iterative solver; a
            // config "reorder" key wraps it in a ReorderedLinOp whose
            // inner operator runs in the permuted space.
            auto* iterative =
                dynamic_cast<solver::IterativeSolver<V>*>(solver);
            if (iterative == nullptr) {
                if (auto* reordered =
                        dynamic_cast<reorder::ReorderedOperator*>(solver)) {
                    iterative = dynamic_cast<solver::IterativeSolver<V>*>(
                        reordered->inner_operator().get());
                }
            }
            if (iterative != nullptr) {
                const auto logger = iterative->get_logger();
                report.iterations = logger->num_iterations();
                report.converged = logger->has_converged();
                report.residual_norm = logger->final_residual_norm();
                report.stop_reason = logger->stop_reason();
            } else {
                // Direct and triangular solvers run to completion with no
                // iteration log.
                report.converged = true;
                report.residual_norm =
                    std::numeric_limits<double>::quiet_NaN();
                report.stop_reason = "direct";
            }
            return report;
        });
}


std::shared_ptr<const batch::BatchLinOpFactory> parse_batch_factory(
    const Json& config, std::shared_ptr<const Executor> exec)
{
    MGKO_ENSURE(config.is_object(), "solver config must be a JSON object");
    MGKO_ENSURE(config.contains("batch"),
                "batched solver config requires a 'batch' key");
    return dispatch_value_index(
        config_value_type(config), config_index_type(config),
        [&](auto v, auto) -> std::shared_ptr<const batch::BatchLinOpFactory> {
            using V = typename decltype(v)::type;
            return parse_batch_factory_typed<V>(config, exec);
        });
}


std::unique_ptr<batch::BatchLinOp> batch_config_solver(
    const Json& config, std::shared_ptr<const Executor> exec,
    std::shared_ptr<const batch::BatchLinOp> system)
{
    auto solver = parse_batch_factory(config, std::move(exec))
                      ->generate(std::move(system));
    if (config.get_or("trace", Json{false}).as_bool()) {
        solver->add_logger(log::shared_tracer());
    }
    apply_telemetry_key(config);
    apply_solve_server_key(config);
    apply_trace_sample_key(config);
    apply_sampling_key(config);
    apply_hw_counters_key(config);
    return solver;
}


}  // namespace mgko::config
