#include "config/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace mgko::config {

namespace {

class Parser {
public:
    explicit Parser(const std::string& text) : text_{text} {}

    Json parse_document()
    {
        auto result = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON document");
        }
        return result;
    }

private:
    [[noreturn]] void fail(const std::string& what) const
    {
        throw BadParameter(__FILE__, __LINE__,
                           "JSON parse error at offset " +
                               std::to_string(pos_) + ": " + what);
    }

    void skip_whitespace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek()
    {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    char next() { return text_[pos_++]; }

    void expect_literal(const char* literal)
    {
        for (const char* c = literal; *c != '\0'; ++c) {
            if (pos_ >= text_.size() || text_[pos_] != *c) {
                fail(std::string{"expected literal "} + literal);
            }
            ++pos_;
        }
    }

    Json parse_value()
    {
        skip_whitespace();
        switch (peek()) {
        case '{':
            return parse_object();
        case '[':
            return parse_array();
        case '"':
            return Json{parse_string()};
        case 't':
            expect_literal("true");
            return Json{true};
        case 'f':
            expect_literal("false");
            return Json{false};
        case 'n':
            expect_literal("null");
            return Json{nullptr};
        default:
            return parse_number();
        }
    }

    Json parse_object()
    {
        next();  // '{'
        auto result = Json::make_object();
        skip_whitespace();
        if (peek() == '}') {
            next();
            return result;
        }
        while (true) {
            skip_whitespace();
            if (peek() != '"') {
                fail("expected string key");
            }
            auto key = parse_string();
            skip_whitespace();
            if (next() != ':') {
                fail("expected ':' after key");
            }
            result[key] = parse_value();
            skip_whitespace();
            const char c = next();
            if (c == '}') {
                return result;
            }
            if (c != ',') {
                fail("expected ',' or '}' in object");
            }
        }
    }

    Json parse_array()
    {
        next();  // '['
        auto result = Json::make_array();
        skip_whitespace();
        if (peek() == ']') {
            next();
            return result;
        }
        while (true) {
            result.push_back(parse_value());
            skip_whitespace();
            const char c = next();
            if (c == ']') {
                return result;
            }
            if (c != ',') {
                fail("expected ',' or ']' in array");
            }
        }
    }

    std::string parse_string()
    {
        next();  // '"'
        std::string result;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = next();
            if (c == '"') {
                return result;
            }
            if (c != '\\') {
                result.push_back(c);
                continue;
            }
            const char esc = next();
            switch (esc) {
            case '"':
                result.push_back('"');
                break;
            case '\\':
                result.push_back('\\');
                break;
            case '/':
                result.push_back('/');
                break;
            case 'b':
                result.push_back('\b');
                break;
            case 'f':
                result.push_back('\f');
                break;
            case 'n':
                result.push_back('\n');
                break;
            case 'r':
                result.push_back('\r');
                break;
            case 't':
                result.push_back('\t');
                break;
            case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                }
                const auto code = std::stoul(text_.substr(pos_, 4), nullptr, 16);
                pos_ += 4;
                // Basic multilingual plane only; encode as UTF-8.
                if (code < 0x80) {
                    result.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    result.push_back(static_cast<char>(0xc0 | (code >> 6)));
                    result.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    result.push_back(static_cast<char>(0xe0 | (code >> 12)));
                    result.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                    result.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
            }
            default:
                fail("invalid escape character");
            }
        }
    }

    Json parse_number()
    {
        const auto start = pos_;
        bool is_real = false;
        if (peek() == '-') {
            next();
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_real = is_real || c == '.' || c == 'e' || c == 'E';
                ++pos_;
            } else {
                break;
            }
        }
        const auto token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-") {
            fail("invalid number");
        }
        errno = 0;
        char* end = nullptr;
        if (is_real) {
            const double v = std::strtod(token.c_str(), &end);
            if (end != token.c_str() + token.size()) {
                fail("invalid number: " + token);
            }
            return Json{v};
        }
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (end != token.c_str() + token.size()) {
            fail("invalid number: " + token);
        }
        return Json{static_cast<std::int64_t>(v)};
    }

    const std::string& text_;
    std::size_t pos_{0};
};


// Serialization appends straight into one growing string: dump() sits on
// the serve:: response path, where the per-number ostringstream this used
// to construct (locale setup and all) dominated the cost of answering a
// request.
void dump_string(std::string& out, const std::string& s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            out += c;
        }
    }
    out += '"';
}

void append_pad(std::string& out, int indent, int depth)
{
    if (indent >= 0) {
        out += '\n';
        out.append(static_cast<std::size_t>(indent * depth), ' ');
    }
}

void dump_impl(std::string& out, const Json& value, int indent, int depth)
{
    switch (value.get_kind()) {
    case Json::kind::null:
        out += "null";
        break;
    case Json::kind::boolean:
        out += value.as_bool() ? "true" : "false";
        break;
    case Json::kind::integer:
        out += std::to_string(value.as_int());
        break;
    case Json::kind::real: {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.17g", value.as_double());
        std::string s{buffer};
        // Keep reals recognizable as reals.
        if (s.find_first_of(".eE") == std::string::npos) {
            s += ".0";
        }
        out += s;
        break;
    }
    case Json::kind::string:
        dump_string(out, value.as_string());
        break;
    case Json::kind::array: {
        out += '[';
        bool first = true;
        for (const auto& e : value.elements()) {
            if (!first) {
                out += ',';
            }
            append_pad(out, indent, depth + 1);
            dump_impl(out, e, indent, depth + 1);
            first = false;
        }
        append_pad(out, indent, depth);
        out += ']';
        break;
    }
    case Json::kind::object: {
        out += '{';
        bool first = true;
        for (const auto& [key, e] : value.items()) {
            if (!first) {
                out += ',';
            }
            append_pad(out, indent, depth + 1);
            dump_string(out, key);
            out += indent < 0 ? ":" : ": ";
            dump_impl(out, e, indent, depth + 1);
            first = false;
        }
        append_pad(out, indent, depth);
        out += '}';
        break;
    }
    }
}

}  // namespace


Json Json::parse(const std::string& text)
{
    return Parser{text}.parse_document();
}


Json Json::parse(std::istream& stream)
{
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    return parse(buffer.str());
}


std::string Json::dump(int indent) const
{
    std::string out;
    dump_impl(out, *this, indent, 0);
    return out;
}


}  // namespace mgko::config
