#include "factorization/ilu.hpp"

#include <cmath>
#include <vector>

#include "core/math.hpp"
#include "sim/cost_model.hpp"

namespace mgko::factorization {

namespace {

/// Index of the diagonal entry of each row; throws when missing.
template <typename V, typename I>
std::vector<I> diagonal_pointers(const Csr<V, I>* mat)
{
    const auto n = mat->get_size().rows;
    const auto* row_ptrs = mat->get_const_row_ptrs();
    const auto* col_idxs = mat->get_const_col_idxs();
    std::vector<I> diag(static_cast<std::size_t>(n));
    for (size_type row = 0; row < n; ++row) {
        I found = -1;
        for (auto k = row_ptrs[row]; k < row_ptrs[row + 1]; ++k) {
            if (static_cast<size_type>(col_idxs[k]) == row) {
                found = k;
                break;
            }
        }
        if (found < 0) {
            throw NumericalError(
                __FILE__, __LINE__,
                "incomplete factorization requires a structurally full "
                "diagonal (missing at row " +
                    std::to_string(row) + ")");
        }
        diag[static_cast<std::size_t>(row)] = found;
    }
    return diag;
}

/// Charges the (serial, data-dependent) factorization sweep.
template <typename V, typename I>
void tick_factorization(const Csr<V, I>* mat, double passes)
{
    auto exec = mat->get_executor();
    exec->clock().tick(
        sim::profile_stream(passes *
                                static_cast<double>(
                                    mat->get_num_stored_elements()) *
                                (sizeof(V) + sizeof(I)),
                            2.0 * passes *
                                static_cast<double>(
                                    mat->get_num_stored_elements()),
                            0.35)
            .time_ns(exec->model()));
}

}  // namespace


template <typename ValueType, typename IndexType>
lu_factors<ValueType, IndexType> factorize_ilu0(
    const Csr<ValueType, IndexType>* system)
{
    MGKO_ENSURE(system->get_size().rows == system->get_size().cols,
                "ILU(0) requires a square matrix");
    auto exec = system->get_executor();
    auto work = system->clone();
    if (!work->is_sorted_by_column_index()) {
        work->sort_by_column_index();
    }
    const auto n = work->get_size().rows;
    auto* values = work->get_values();
    const auto* col_idxs = work->get_const_col_idxs();
    const auto* row_ptrs = work->get_const_row_ptrs();
    const auto diag = diagonal_pointers(work.get());

    // IKJ variant: for each row i, eliminate with all previous rows k that
    // appear in row i's pattern.
    for (size_type i = 0; i < n; ++i) {
        for (auto kk = row_ptrs[i]; kk < row_ptrs[i + 1]; ++kk) {
            const auto k = static_cast<size_type>(col_idxs[kk]);
            if (k >= i) {
                break;  // sorted: done with the strictly-lower part
            }
            const auto pivot = values[diag[static_cast<std::size_t>(k)]];
            if (pivot == zero<ValueType>()) {
                throw NumericalError(__FILE__, __LINE__,
                                     "zero pivot in ILU(0) at row " +
                                         std::to_string(k));
            }
            const auto lik = values[kk] / pivot;
            values[kk] = lik;
            // Subtract lik * row_k from row_i on the intersection of their
            // patterns right of column k (two-pointer sweep, both sorted).
            auto ii = kk + 1;
            auto kj = diag[static_cast<std::size_t>(k)] + 1;
            while (ii < row_ptrs[i + 1] && kj < row_ptrs[k + 1]) {
                if (col_idxs[ii] == col_idxs[kj]) {
                    values[ii] -= lik * values[kj];
                    ++ii;
                    ++kj;
                } else if (col_idxs[ii] < col_idxs[kj]) {
                    ++ii;
                } else {
                    ++kj;
                }
            }
        }
    }
    tick_factorization(work.get(), 3.0);

    // Split into L (unit diagonal) and U.
    matrix_data<ValueType, IndexType> l_data{work->get_size()};
    matrix_data<ValueType, IndexType> u_data{work->get_size()};
    for (size_type i = 0; i < n; ++i) {
        l_data.add(static_cast<IndexType>(i), static_cast<IndexType>(i),
                   one<ValueType>());
        for (auto k = row_ptrs[i]; k < row_ptrs[i + 1]; ++k) {
            const auto j = static_cast<size_type>(col_idxs[k]);
            if (j < i) {
                l_data.add(static_cast<IndexType>(i), col_idxs[k], values[k]);
            } else {
                u_data.add(static_cast<IndexType>(i), col_idxs[k], values[k]);
            }
        }
    }
    lu_factors<ValueType, IndexType> result;
    result.lower = Csr<ValueType, IndexType>::create_from_data(exec, l_data);
    result.upper = Csr<ValueType, IndexType>::create_from_data(exec, u_data);
    return result;
}


template <typename ValueType, typename IndexType>
std::shared_ptr<Csr<ValueType, IndexType>> factorize_ic0(
    const Csr<ValueType, IndexType>* system)
{
    MGKO_ENSURE(system->get_size().rows == system->get_size().cols,
                "IC(0) requires a square matrix");
    auto exec = system->get_executor();
    auto work = system->clone();
    if (!work->is_sorted_by_column_index()) {
        work->sort_by_column_index();
    }
    const auto n = work->get_size().rows;

    // Build the lower-triangular pattern first, then fill numerically.
    matrix_data<ValueType, IndexType> l_pattern{work->get_size()};
    {
        const auto* row_ptrs = work->get_const_row_ptrs();
        const auto* col_idxs = work->get_const_col_idxs();
        const auto* values = work->get_const_values();
        for (size_type i = 0; i < n; ++i) {
            for (auto k = row_ptrs[i]; k < row_ptrs[i + 1]; ++k) {
                if (static_cast<size_type>(col_idxs[k]) <= i) {
                    l_pattern.add(static_cast<IndexType>(i), col_idxs[k],
                                  values[k]);
                }
            }
        }
    }
    auto lower = Csr<ValueType, IndexType>::create_from_data(exec, l_pattern);
    auto* values = lower->get_values();
    const auto* col_idxs = lower->get_const_col_idxs();
    const auto* row_ptrs = lower->get_const_row_ptrs();
    const auto diag = diagonal_pointers(lower.get());

    for (size_type i = 0; i < n; ++i) {
        for (auto ij = row_ptrs[i]; ij < row_ptrs[i + 1]; ++ij) {
            const auto j = static_cast<size_type>(col_idxs[ij]);
            // s = a_ij - sum_k l_ik * l_jk over the common pattern k < j.
            using acc_t = accumulate_t<ValueType>;
            acc_t s = static_cast<acc_t>(values[ij]);
            auto ik = row_ptrs[i];
            auto jk = row_ptrs[j];
            while (ik < ij && jk < diag[static_cast<std::size_t>(j)]) {
                if (col_idxs[ik] == col_idxs[jk]) {
                    s -= static_cast<acc_t>(values[ik]) *
                         static_cast<acc_t>(values[jk]);
                    ++ik;
                    ++jk;
                } else if (col_idxs[ik] < col_idxs[jk]) {
                    ++ik;
                } else {
                    ++jk;
                }
            }
            if (j < i) {
                const auto pivot = values[diag[static_cast<std::size_t>(j)]];
                if (pivot == zero<ValueType>()) {
                    throw NumericalError(__FILE__, __LINE__,
                                         "zero pivot in IC(0) at row " +
                                             std::to_string(j));
                }
                values[ij] = ValueType{s} / pivot;
            } else {
                if (static_cast<double>(s) <= 0.0) {
                    throw NumericalError(
                        __FILE__, __LINE__,
                        "IC(0) pivot not positive at row " +
                            std::to_string(i) +
                            " (matrix not SPD on this pattern)");
                }
                values[ij] = mgko::sqrt(ValueType{s});
            }
        }
    }
    tick_factorization(lower.get(), 3.0);
    return lower;
}


#define MGKO_DECLARE_ILU0(ValueType, IndexType)                     \
    template lu_factors<ValueType, IndexType> factorize_ilu0(       \
        const Csr<ValueType, IndexType>*);                          \
    template std::shared_ptr<Csr<ValueType, IndexType>> factorize_ic0( \
        const Csr<ValueType, IndexType>*)
MGKO_INSTANTIATE_FOR_EACH_VALUE_AND_INDEX_TYPE(MGKO_DECLARE_ILU0);


}  // namespace mgko::factorization
