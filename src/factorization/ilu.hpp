// Incomplete factorizations: ILU(0) and IC(0).
//
// Both keep the sparsity pattern of the system matrix (zero fill-in).  The
// resulting triangular factors feed the Ilu / Ic preconditioners through
// LowerTrs / UpperTrs (paper Figure 2: IC and ILU are the explicitly bound
// preconditioners).
#pragma once

#include <memory>

#include "matrix/csr.hpp"

namespace mgko::factorization {


template <typename ValueType, typename IndexType>
struct lu_factors {
    /// Unit lower triangular factor (diagonal stored explicitly as 1).
    std::shared_ptr<Csr<ValueType, IndexType>> lower;
    /// Upper triangular factor including the diagonal.
    std::shared_ptr<Csr<ValueType, IndexType>> upper;
};


/// ILU(0): incomplete LU on the matrix's own pattern.  Requires a
/// structurally full diagonal and sorted columns (sorting is performed on a
/// working copy).  Throws NumericalError on a zero pivot.
template <typename ValueType, typename IndexType>
lu_factors<ValueType, IndexType> factorize_ilu0(
    const Csr<ValueType, IndexType>* system);

/// IC(0): incomplete Cholesky for (numerically) SPD matrices; returns the
/// lower factor L with A ≈ L Lᵀ.  Throws NumericalError when a pivot is
/// not positive.
template <typename ValueType, typename IndexType>
std::shared_ptr<Csr<ValueType, IndexType>> factorize_ic0(
    const Csr<ValueType, IndexType>* system);


}  // namespace mgko::factorization
