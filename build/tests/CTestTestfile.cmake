# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_baselines_matgen[1]_include.cmake")
include("/root/repo/build/tests/test_bindings[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_failures[1]_include.cmake")
include("/root/repo/build/tests/test_formats[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_pyside[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_spgemm_reorder[1]_include.cmake")
