file(REMOVE_RECURSE
  "CMakeFiles/test_pyside.dir/test_pyside.cpp.o"
  "CMakeFiles/test_pyside.dir/test_pyside.cpp.o.d"
  "test_pyside"
  "test_pyside.pdb"
  "test_pyside[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pyside.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
