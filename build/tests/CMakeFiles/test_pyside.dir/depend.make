# Empty dependencies file for test_pyside.
# This may be replaced when dependencies are built.
