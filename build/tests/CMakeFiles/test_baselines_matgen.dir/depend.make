# Empty dependencies file for test_baselines_matgen.
# This may be replaced when dependencies are built.
