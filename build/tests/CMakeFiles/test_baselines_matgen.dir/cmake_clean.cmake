file(REMOVE_RECURSE
  "CMakeFiles/test_baselines_matgen.dir/test_baselines_matgen.cpp.o"
  "CMakeFiles/test_baselines_matgen.dir/test_baselines_matgen.cpp.o.d"
  "test_baselines_matgen"
  "test_baselines_matgen.pdb"
  "test_baselines_matgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines_matgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
