file(REMOVE_RECURSE
  "CMakeFiles/test_spgemm_reorder.dir/test_spgemm_reorder.cpp.o"
  "CMakeFiles/test_spgemm_reorder.dir/test_spgemm_reorder.cpp.o.d"
  "test_spgemm_reorder"
  "test_spgemm_reorder.pdb"
  "test_spgemm_reorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spgemm_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
