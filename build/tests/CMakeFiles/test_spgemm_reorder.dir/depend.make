# Empty dependencies file for test_spgemm_reorder.
# This may be replaced when dependencies are built.
