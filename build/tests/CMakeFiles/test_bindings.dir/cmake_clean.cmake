file(REMOVE_RECURSE
  "CMakeFiles/test_bindings.dir/test_bindings.cpp.o"
  "CMakeFiles/test_bindings.dir/test_bindings.cpp.o.d"
  "test_bindings"
  "test_bindings.pdb"
  "test_bindings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bindings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
