# Empty compiler generated dependencies file for sparse_ml_inference.
# This may be replaced when dependencies are built.
