file(REMOVE_RECURSE
  "CMakeFiles/sparse_ml_inference.dir/sparse_ml_inference.cpp.o"
  "CMakeFiles/sparse_ml_inference.dir/sparse_ml_inference.cpp.o.d"
  "sparse_ml_inference"
  "sparse_ml_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_ml_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
