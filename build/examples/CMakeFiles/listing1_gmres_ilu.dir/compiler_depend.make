# Empty compiler generated dependencies file for listing1_gmres_ilu.
# This may be replaced when dependencies are built.
