file(REMOVE_RECURSE
  "CMakeFiles/listing1_gmres_ilu.dir/listing1_gmres_ilu.cpp.o"
  "CMakeFiles/listing1_gmres_ilu.dir/listing1_gmres_ilu.cpp.o.d"
  "listing1_gmres_ilu"
  "listing1_gmres_ilu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listing1_gmres_ilu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
