# Empty dependencies file for backends_tour.
# This may be replaced when dependencies are built.
