file(REMOVE_RECURSE
  "CMakeFiles/backends_tour.dir/backends_tour.cpp.o"
  "CMakeFiles/backends_tour.dir/backends_tour.cpp.o.d"
  "backends_tour"
  "backends_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backends_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
