# Empty dependencies file for rayleigh_ritz_eigen.
# This may be replaced when dependencies are built.
