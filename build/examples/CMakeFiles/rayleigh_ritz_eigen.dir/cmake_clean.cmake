file(REMOVE_RECURSE
  "CMakeFiles/rayleigh_ritz_eigen.dir/rayleigh_ritz_eigen.cpp.o"
  "CMakeFiles/rayleigh_ritz_eigen.dir/rayleigh_ritz_eigen.cpp.o.d"
  "rayleigh_ritz_eigen"
  "rayleigh_ritz_eigen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rayleigh_ritz_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
